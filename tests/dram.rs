//! Integration suite for the bank-aware DRAM subsystem.
//!
//! Three contracts:
//!
//! 1. **Seed equivalence** — the default (fixed-latency) backend
//!    produces reports bit-identical to the seed simulator's: same
//!    stats, same event logs, no per-access DRAM events, and the
//!    seed's golden numbers still hold.
//! 2. **Streaming equivalence** — under `BankedDram`, a streamed
//!    workload and its materialized twin stay byte-identical.
//! 3. **Worst-case soundness** — a property loop: every observed
//!    memory access latency is `≤` the backend's analytical worst case
//!    (the quantity the slot-budget check and WCL bounds fold in), and
//!    a `WorstCase`-wrapped run pins every access to exactly that bound.

use predllc::workload_gen::UniformGen;
use predllc::{
    BankMapping, ConfigError, CoreId, Cycles, DramGeometry, DramTiming, EventKind, MemoryConfig,
    PartitionSpec, RunReport, SharingMode, Simulator, SlotWidth, SystemConfig, Workload,
};

fn platform(memory: MemoryConfig, mode: Option<SharingMode>, record_events: bool) -> SystemConfig {
    let partitions = match mode {
        Some(mode) => vec![PartitionSpec::shared(
            2,
            2,
            CoreId::first(4).collect(),
            mode,
        )],
        None => CoreId::first(4)
            .map(|c| PartitionSpec::private(2, 2, c))
            .collect(),
    };
    SystemConfig::builder(4)
        .partitions(partitions)
        .memory(memory)
        .record_events(record_events)
        .build()
        .expect("valid test platform")
}

fn workload(seed: u64) -> UniformGen {
    UniformGen::new(16 << 10, 300)
        .with_seed(seed)
        .with_write_fraction(0.3)
        .with_cores(4)
}

fn run(config: SystemConfig, w: &impl Workload) -> RunReport {
    Simulator::new(config).unwrap().run(w).unwrap()
}

#[test]
fn default_backend_is_bit_identical_to_explicit_fixed_latency() {
    // The builder default and an explicit fixed(30) selection must be
    // the same backend: identical stats and identical event logs.
    let w = workload(7);
    let implicit = SystemConfig::builder(4)
        .partitions(
            CoreId::first(4)
                .map(|c| PartitionSpec::private(2, 2, c))
                .collect(),
        )
        .record_events(true)
        .build()
        .unwrap();
    let explicit = platform(MemoryConfig::fixed(Cycles::new(30)), None, true);
    let a = run(implicit, &w);
    let b = run(explicit, &w);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.events.events(), b.events.events());
    assert_eq!(a.cycles, b.cycles);
}

#[test]
fn fixed_latency_reports_match_seed_golden_values() {
    // The seed's single-core single-miss scenario: miss issued at cycle
    // 10, serviced in the slot starting at 50, response at 100 → latency
    // 90. The new stats fields stay zero and no DRAM events appear.
    let cfg = SystemConfig::builder(1)
        .partitions(vec![PartitionSpec::private(2, 2, CoreId::new(0))])
        .record_events(true)
        .build()
        .unwrap();
    let report = run(
        cfg,
        &vec![vec![predllc::MemOp::read(predllc::Address::new(0))]],
    );
    assert_eq!(report.max_request_latency(), Cycles::new(90));
    assert_eq!(report.stats.core(CoreId::new(0)).llc_fills, 1);
    assert_eq!(report.stats.dram_reads, 1);
    assert_eq!(
        report.stats.dram_row_hits
            + report.stats.dram_row_empties
            + report.stats.dram_row_conflicts,
        0,
        "the flat backend has no row outcomes"
    );
    assert!(report.stats.dram_bank_conflicts.is_empty());
    assert_eq!(
        report
            .events
            .filter(|k| matches!(k, EventKind::DramAccess { .. }))
            .count(),
        0,
        "fixed-latency logs are identical to the seed's (no DRAM events)"
    );
}

#[test]
fn streamed_and_materialized_twins_agree_under_banked_dram() {
    for memory in [MemoryConfig::banked(), MemoryConfig::bank_private()] {
        for mode in [
            None,
            Some(SharingMode::SetSequencer),
            Some(SharingMode::BestEffort),
        ] {
            let w = workload(42);
            let sim = Simulator::new(platform(memory.clone(), mode, false)).unwrap();
            let streamed = sim.run(&w).unwrap();
            let materialized = sim.run(w.materialize()).unwrap();
            assert_eq!(
                streamed.stats, materialized.stats,
                "stream/materialize divergence under {memory:?} mode {mode:?}"
            );
            // Replays are exact: the backend is rebuilt per run.
            let replay = sim.run(&w).unwrap();
            assert_eq!(streamed.stats, replay.stats);
        }
    }
}

#[test]
fn observed_memory_latency_never_exceeds_the_analytical_worst_case() {
    // Property loop: many seeds × mappings × sharing modes; every
    // DramAccess event's latency must respect the worst case the
    // analysis folds into the slot-budget check.
    for seed in 0..8u64 {
        for memory in [MemoryConfig::banked(), MemoryConfig::bank_private()] {
            for mode in [None, Some(SharingMode::BestEffort)] {
                let cfg = platform(memory.clone(), mode, true);
                let wc = cfg.memory().worst_case_latency();
                let report = run(cfg, &workload(seed));
                let mut accesses = 0u64;
                for e in report.events.events() {
                    if let EventKind::DramAccess { latency, .. } = e.kind {
                        accesses += 1;
                        assert!(
                            latency <= wc,
                            "seed {seed}: observed {latency} > worst case {wc}"
                        );
                    }
                }
                assert!(accesses > 0, "the workload must exercise the backend");
                assert_eq!(accesses, report.stats.dram_reads + report.stats.dram_writes);
                assert!(report.stats.max_dram_latency <= wc);
            }
        }
    }
}

#[test]
fn worst_case_adapter_pins_every_access_to_the_bound() {
    let memory = MemoryConfig::banked().worst_case();
    let cfg = platform(memory, Some(SharingMode::SetSequencer), true);
    let wc = cfg.memory().worst_case_latency();
    assert_eq!(wc, DramTiming::PAPER.worst_case());
    let report = run(cfg, &workload(3));
    let mut seen = 0;
    for e in report.events.events() {
        if let EventKind::DramAccess { latency, .. } = e.kind {
            seen += 1;
            assert_eq!(latency, wc, "worst-case adapter must answer exactly wc");
        }
    }
    assert!(seen > 0);
    assert_eq!(report.stats.max_dram_latency, wc);
}

#[test]
fn banked_run_is_dominated_by_its_worst_case_twin() {
    // The soundness story end to end: per-access latencies of a banked
    // run are bounded by the constant its WorstCase twin charges.
    let w = workload(11);
    let real = run(platform(MemoryConfig::banked(), None, false), &w);
    let pinned = run(
        platform(MemoryConfig::banked().worst_case(), None, false),
        &w,
    );
    assert!(real.stats.max_dram_latency <= pinned.stats.max_dram_latency);
    // Same traffic shape either way: latencies never change scheduling.
    assert_eq!(real.stats.dram_reads, pinned.stats.dram_reads);
    assert_eq!(real.stats.dram_writes, pinned.stats.dram_writes);
}

#[test]
fn builder_enforces_the_slot_budget_invariant_for_backends() {
    // Banked timing whose worst case (2·conflict + 2·tWR = 62) exceeds
    // the 50-cycle paper slot.
    let heavy = MemoryConfig::Banked {
        timing: DramTiming {
            t_rcd: 8,
            t_rp: 8,
            t_cas: 8,
            t_wr: 7,
            t_bus: 0,
        },
        geometry: DramGeometry::PAPER,
        mapping: BankMapping::Interleaved,
    };
    let err = SystemConfig::builder(1)
        .partitions(vec![PartitionSpec::private(1, 1, CoreId::new(0))])
        .memory(heavy)
        .build()
        .unwrap_err();
    match err {
        ConfigError::BackendExceedsSlot {
            worst_case,
            slot_width,
            ..
        } => {
            assert_eq!(worst_case, 62);
            assert_eq!(slot_width, 50);
        }
        other => panic!("expected BackendExceedsSlot, got {other:?}"),
    }

    // A wider slot admits the same backend.
    let heavy = MemoryConfig::Banked {
        timing: DramTiming {
            t_rcd: 8,
            t_rp: 8,
            t_cas: 8,
            t_wr: 7,
            t_bus: 0,
        },
        geometry: DramGeometry::PAPER,
        mapping: BankMapping::Interleaved,
    };
    assert!(SystemConfig::builder(1)
        .partitions(vec![PartitionSpec::private(1, 1, CoreId::new(0))])
        .slot_width(SlotWidth::new(100).unwrap())
        .memory(heavy)
        .build()
        .is_ok());

    // Bank-private slicing must divide evenly: 8 banks across 3 cores.
    let err = SystemConfig::builder(3)
        .partitions(
            CoreId::first(3)
                .map(|c| PartitionSpec::private(1, 1, c))
                .collect(),
        )
        .memory(MemoryConfig::bank_private())
        .build()
        .unwrap_err();
    assert!(matches!(err, ConfigError::Memory(_)), "got {err:?}");
}

#[test]
fn slot_budget_and_memory_aware_wcl_fold_the_backend_in() {
    use predllc::analysis::{MemoryAwareWcl, SlotBudget};
    let cfg = platform(
        MemoryConfig::banked(),
        Some(SharingMode::SetSequencer),
        false,
    );
    let budget = SlotBudget::from_config(&cfg);
    assert!(budget.is_valid());
    assert_eq!(budget.memory_worst_case, Cycles::new(30));
    assert_eq!(budget.slack(), Cycles::new(20));
    let wcl = MemoryAwareWcl::from_config(&cfg).unwrap();
    // 4 sharers under the sequencer: (2·3·4 + 1)·4·50 = 5000.
    assert_eq!(wcl.bound(), Some(Cycles::new(5_000)));
    // The observed WCL of a run stays inside the memory-aware bound.
    let report = run(cfg, &workload(5));
    assert!(report.max_request_latency() <= wcl.bound().unwrap());
}
