//! Measuring the paper's distance dynamics (Observations 1 and 3) on
//! real simulations via `analysis::distance`.

use predllc::analysis::distance::{check_nonincreasing, DistanceTracker};
use predllc::{
    Address, CoreId, EventKind, MemOp, PartitionSpec, ReplacementKind, SharingMode, Simulator,
    SystemConfig,
};

fn c(i: u16) -> CoreId {
    CoreId::new(i)
}

fn read(line: u64) -> MemOp {
    MemOp::read(Address::new(line * 64))
}

fn write(line: u64) -> MemOp {
    MemOp::write(Address::new(line * 64))
}

/// Observation 1: while `c_ua` waits for its response without
/// performing write-backs, the set's total distance never increases.
#[test]
fn observation1_distance_nonincreasing_without_cua_writebacks() {
    // cua (c0) reads one line and owns nothing else in the set (so it
    // can never be forced to write back). c2 pre-warms dirty lines; c3
    // churns. Track the distance profile between cua's broadcast and its
    // fill.
    let cfg = SystemConfig::builder(4)
        .partitions(vec![PartitionSpec::shared(
            1,
            2,
            (0..4).map(c).collect(),
            SharingMode::BestEffort,
        )])
        .record_events(true)
        .max_cycles(10_000_000)
        .build()
        .unwrap();
    let spec = cfg.partitions().spec_of(c(0)).clone();
    let schedule = cfg.schedule().clone();
    let t0 = vec![read(0)];
    let t1 = vec![];
    let t2 = vec![write(10), write(11)];
    let t3: Vec<MemOp> = (0..40).map(|i| write(20 + (i % 6))).collect();
    let report = Simulator::new(cfg)
        .unwrap()
        .run(vec![t0, t1, t2, t3])
        .unwrap();
    assert_eq!(report.stats.core(c(0)).ops_completed, 1);
    // cua never transmitted a write-back.
    assert_eq!(report.stats.core(c(0)).writebacks_sent, 0);

    let events = &report.events;
    events
        .filter(|k| matches!(k, EventKind::RequestBroadcast { core, .. } if *core == c(0)))
        .next()
        .expect("cua broadcasts");
    let broadcast = events
        .events()
        .iter()
        .find(|e| matches!(e.kind, EventKind::RequestBroadcast { core, .. } if core == c(0)))
        .unwrap()
        .slot;
    let fill = events
        .events()
        .iter()
        .find(|e| matches!(e.kind, EventKind::Fill { core, .. } if core == c(0)))
        .unwrap()
        .slot;
    assert!(fill > broadcast, "cua had to wait");

    let tracker = DistanceTracker::new(&schedule, &spec, 0, c(0));
    let samples = tracker.samples(events);
    // The paper's monotonicity claim concerns *full-set* states: a freed
    // entry transiently contributes no distance, so the total dips and
    // rebounds when it is re-occupied. Compare only samples where every
    // way is resident.
    let window: Vec<_> = samples
        .into_iter()
        .filter(|s| s.slot >= broadcast && s.slot < fill && s.lines.len() == 2)
        .collect();
    assert!(window.len() >= 2, "need at least two samples to compare");
    check_nonincreasing(&window).unwrap_or_else(|(a, b)| {
        panic!("distance increased between slots {a} and {b} although cua wrote nothing back")
    });
}

/// Observation 3: when `c_ua` *does* perform a write-back while
/// waiting, the distance can increase — and does, in a dirty churn
/// workload.
#[test]
fn observation3_distance_can_increase_with_cua_writebacks() {
    let cfg = SystemConfig::builder(4)
        .partitions(vec![PartitionSpec::shared(
            1,
            2,
            (0..4).map(c).collect(),
            SharingMode::BestEffort,
        )])
        .llc_replacement(ReplacementKind::Random { seed: 3 })
        .record_events(true)
        .max_cycles(50_000_000)
        .build()
        .unwrap();
    let spec = cfg.partitions().spec_of(c(0)).clone();
    let schedule = cfg.schedule().clone();
    let traces = predllc::workload_gen::UniformGen::new(1024, 300)
        .with_write_fraction(0.5)
        .with_seed(7)
        .traces(4);
    let report = Simulator::new(cfg).unwrap().run(traces).unwrap();
    // cua transmitted write-backs (the Observation 3 precondition).
    assert!(report.stats.core(c(0)).writebacks_sent > 0);

    let tracker = DistanceTracker::new(&schedule, &spec, 0, c(0));
    let samples = tracker.samples(&report.events);
    // Somewhere in the run, consecutive samples show an increase.
    assert!(
        check_nonincreasing(&samples).is_err(),
        "dirty churn with cua write-backs must exhibit a distance increase"
    );
}

/// The sequencer does not change what the distances *are* — it changes
/// who gets freed entries. The tracker must work identically on SS logs.
#[test]
fn tracker_works_on_sequencer_logs() {
    let cfg = SystemConfig::builder(4)
        .partitions(vec![PartitionSpec::shared(
            1,
            2,
            (0..4).map(c).collect(),
            SharingMode::SetSequencer,
        )])
        .record_events(true)
        .max_cycles(10_000_000)
        .build()
        .unwrap();
    let spec = cfg.partitions().spec_of(c(0)).clone();
    let schedule = cfg.schedule().clone();
    let t0 = vec![read(0)];
    let t1 = vec![];
    let t2 = vec![write(10), write(11)];
    let t3: Vec<MemOp> = (0..20).map(|i| write(20 + (i % 6))).collect();
    let report = Simulator::new(cfg)
        .unwrap()
        .run(vec![t0, t1, t2, t3])
        .unwrap();
    let tracker = DistanceTracker::new(&schedule, &spec, 0, c(0));
    let samples = tracker.samples(&report.events);
    assert!(!samples.is_empty());
    // Distances are always within Corollary 4.3's bounds: 1..=N.
    for s in &samples {
        for (_, d) in &s.lines {
            if let Some(d) = d {
                assert!((1..=4).contains(d), "distance {d} outside 1..=N");
            }
        }
    }
}
