//! End-to-end tests of the distributed experiment fleet: whatever the
//! fleet shape — one worker, four, or a worker killed mid-run — the
//! coordinator's merged report must be byte-identical to an in-process
//! `run_spec`, worker-side failures must surface positioned like local
//! ones, and the shared point cache must answer re-runs without
//! touching the workers.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::time::Duration;

use predllc::explore::report::{render_csv, render_json};
use predllc::explore::{run_spec, Executor};
use predllc::fleet::{Coordinator, CoordinatorConfig, FleetError};
use predllc::serve::{Metrics, Server, ServerConfig, ServerHandle};
use predllc::workload_gen::UniformGen;
use predllc::{CoreId, ExperimentSpec, LatencyHistogram, SharingMode, Simulator, SystemConfig};

/// The serve-e2e grid: two platforms (one banked), two workload
/// families, 4 unique points.
const SPEC: &str = r#"{
    "name": "fleet-e2e",
    "cores": 2,
    "configs": [
        {"label": "SS(1,4)", "partition": {"kind": "shared", "sets": 1, "ways": 4, "mode": "SS"}},
        {"partition": {"kind": "private", "sets": 4, "ways": 2},
         "memory": {"kind": "banked", "banks": 8, "mapping": "bank-private"}}
    ],
    "workloads": [
        {"kind": "uniform", "range_bytes": 4096, "ops": 300, "seed": 11, "write_fraction": 0.2},
        {"kind": "stride", "range_bytes": 4096, "stride": 64, "ops": 300}
    ]
}"#;

fn start_worker(config: ServerConfig) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind an ephemeral port");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (handle, join)
}

fn stop_worker(handle: &ServerHandle, join: std::thread::JoinHandle<()>) {
    handle.shutdown();
    join.join().expect("server thread");
}

/// A coordinator over `addrs` with a test-friendly heartbeat.
fn coordinator_over(
    addrs: impl IntoIterator<Item = SocketAddr>,
    metrics: Arc<Metrics>,
) -> Coordinator {
    Coordinator::new(
        addrs,
        CoordinatorConfig {
            heartbeat_interval: Duration::from_millis(50),
            ..CoordinatorConfig::default()
        },
        metrics,
    )
}

#[test]
fn fleet_reports_are_byte_identical_across_fleet_shapes() {
    let spec = ExperimentSpec::parse(SPEC).unwrap();
    let local = run_spec(&spec, &Executor::new(1)).unwrap();
    let reference_csv = render_csv(&local.grid);
    let reference_json = render_json(&spec.name, 1, None, &local.grid, local.search.as_ref());

    for shape in [1usize, 2, 4] {
        let mut workers = Vec::new();
        for _ in 0..shape {
            workers.push(start_worker(ServerConfig::default()));
        }
        let metrics = Arc::new(Metrics::default());
        let coordinator = coordinator_over(workers.iter().map(|(h, _)| h.addr()), metrics);
        let report = coordinator.run(&spec, &|_, _| {}).unwrap();

        assert_eq!(
            report.grid, local.grid,
            "grid diverged at {shape} worker(s)"
        );
        assert_eq!(report.unique_points, local.unique_points);
        assert_eq!(report.total_points, local.total_points);
        assert_eq!(
            render_csv(&report.grid),
            reference_csv,
            "CSV diverged at {shape} worker(s)"
        );
        assert_eq!(
            render_json(&spec.name, 1, None, &report.grid, report.search.as_ref()),
            reference_json,
            "JSON diverged at {shape} worker(s)"
        );
        for (handle, join) in workers {
            stop_worker(&handle, join);
        }
    }
}

#[test]
fn witnesses_ship_losslessly_across_the_fleet_wire() {
    let attributed = SPEC.replacen(
        "\"name\": \"fleet-e2e\",",
        "\"name\": \"fleet-e2e\",\n    \"attribution\": true,",
        1,
    );
    let spec = ExperimentSpec::parse(&attributed).unwrap();
    let local = run_spec(&spec, &Executor::new(1)).unwrap();

    let workers: Vec<_> = (0..2)
        .map(|_| start_worker(ServerConfig::default()))
        .collect();
    let metrics = Arc::new(Metrics::default());
    let coordinator = coordinator_over(workers.iter().map(|(h, _)| h.addr()), metrics);
    let report = coordinator.run(&spec, &|_, _| {}).unwrap();

    // Exact structural equality of the whole grid covers attribution:
    // component sets, witnesses and gap splits crossed the wire as the
    // integers they are, not approximations of them.
    assert_eq!(report.grid, local.grid);
    for row in &report.grid {
        let attr = row
            .attribution
            .as_ref()
            .expect("every fleet row is attributed");
        let w = attr.witness.as_ref().expect("every row has a witness");
        assert_eq!(w.latency.as_u64(), row.observed_wcl);
        assert_eq!(w.components.total(), w.latency, "witness sum broke");
    }
    for (handle, join) in workers {
        stop_worker(&handle, join);
    }
}

#[test]
fn a_worker_killed_mid_run_does_not_change_the_bytes() {
    let spec = ExperimentSpec::parse(SPEC).unwrap();
    let reference = render_csv(&run_spec(&spec, &Executor::new(1)).unwrap().grid);

    // The first worker dies mid-answer on its very first point: the
    // response never arrives, the connection drops, the point goes
    // back on the queue and the survivor absorbs it.
    let (doomed, doomed_join) = start_worker(ServerConfig {
        fail_after_points: Some(0),
        ..ServerConfig::default()
    });
    let (survivor, survivor_join) = start_worker(ServerConfig::default());

    let metrics = Arc::new(Metrics::default());
    let coordinator = coordinator_over([doomed.addr(), survivor.addr()], Arc::clone(&metrics));
    let report = coordinator.run(&spec, &|_, _| {}).unwrap();

    assert_eq!(render_csv(&report.grid), reference);
    assert!(doomed.was_killed(), "the fault injector never fired");
    assert_eq!(coordinator.live_workers(), 1);
    let snap = metrics.snapshot();
    assert_eq!(snap.workers_lost, 1);
    assert_eq!(snap.workers_alive, 1);
    assert!(
        snap.points_retried >= 1,
        "the killed worker's point was never reassigned"
    );
    // Every point was assigned at least once, plus the reassignments.
    assert_eq!(snap.points_assigned, 4 + snap.points_retried);

    doomed_join.join().expect("killed server thread");
    stop_worker(&survivor, survivor_join);
}

#[test]
fn losing_every_worker_fails_instead_of_hanging() {
    let spec = ExperimentSpec::parse(SPEC).unwrap();
    let (doomed, doomed_join) = start_worker(ServerConfig {
        fail_after_points: Some(0),
        ..ServerConfig::default()
    });
    let metrics = Arc::new(Metrics::default());
    let coordinator = coordinator_over([doomed.addr()], Arc::clone(&metrics));
    match coordinator.run(&spec, &|_, _| {}) {
        Err(FleetError::NoWorkers { pending }) => assert_eq!(pending, 4),
        other => panic!("expected NoWorkers, got {other:?}"),
    }
    assert_eq!(coordinator.live_workers(), 0);
    assert_eq!(metrics.snapshot().workers_lost, 1);
    doomed_join.join().expect("killed server thread");
}

#[test]
fn worker_point_rejections_surface_positioned_not_generic() {
    // A test double that speaks just enough HTTP: healthy heartbeats,
    // but every point request is refused with a positioned 422 — the
    // wire form of a worker-side simulation failure.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { break };
            let mut buf = [0u8; 8192];
            let n = stream.read(&mut buf).unwrap_or(0);
            let body = if buf[..n].starts_with(b"GET /healthz") {
                "ok\n".to_string()
            } else {
                r#"{"error": "engine exploded mid-run", "kind": "sim"}"#.to_string()
            };
            let status = if buf[..n].starts_with(b"GET /healthz") {
                "200 OK"
            } else {
                "422 Unprocessable Entity"
            };
            let _ = stream.write_all(
                format!(
                    "HTTP/1.1 {status}\r\ncontent-type: application/json\r\n\
                     content-length: {}\r\nconnection: close\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            );
        }
    });

    let spec = ExperimentSpec::parse(
        r#"{
        "name": "fleet-reject", "cores": 2,
        "configs": [{"label": "C0", "partition": {"kind": "shared", "sets": 1, "ways": 4, "mode": "SS"}}],
        "workloads": [{"label": "W0", "kind": "uniform", "range_bytes": 1024, "ops": 50, "seed": 5}]
    }"#,
    )
    .unwrap();
    let coordinator = coordinator_over([addr], Arc::new(Metrics::default()));
    match coordinator.run(&spec, &|_, _| {}) {
        Err(err) => {
            // The positioned wording mirrors the in-process error.
            assert_eq!(
                err.to_string(),
                "grid point 'C0' x 'W0' failed: engine exploded mid-run"
            );
            match err {
                FleetError::Point {
                    config,
                    workload,
                    kind,
                    message,
                } => {
                    assert_eq!(config, "C0");
                    assert_eq!(workload, "W0");
                    assert_eq!(kind, "sim");
                    assert_eq!(message, "engine exploded mid-run");
                }
                other => panic!("expected a positioned Point failure, got {other:?}"),
            }
        }
        other => panic!("expected a positioned Point failure, got {other:?}"),
    }
}

#[test]
fn config_failures_read_identically_locally_and_on_a_fleet() {
    // A platform too large to build: both paths must tell the same
    // story, positioned at the same column.
    let bad = r#"{
        "name": "fleet-bad", "cores": 2,
        "configs": [{"label": "huge",
                     "partition": {"kind": "private", "sets": 32, "ways": 16}}],
        "workloads": [{"kind": "uniform", "range_bytes": 1024, "ops": 10}]
    }"#;
    let spec = ExperimentSpec::parse(bad).unwrap();
    let local = run_spec(&spec, &Executor::new(1)).unwrap_err().to_string();

    let (handle, join) = start_worker(ServerConfig::default());
    let coordinator = coordinator_over([handle.addr()], Arc::new(Metrics::default()));
    let fleet = coordinator.run(&spec, &|_, _| {}).unwrap_err().to_string();
    assert_eq!(fleet, local);
    assert!(fleet.contains("'huge'"), "{fleet}");
    stop_worker(&handle, join);
}

#[test]
fn the_coordinator_point_cache_spans_runs_and_specs() {
    let spec = ExperimentSpec::parse(SPEC).unwrap();
    let (handle, join) = start_worker(ServerConfig::default());
    let metrics = Arc::new(Metrics::default());
    let coordinator = coordinator_over([handle.addr()], Arc::clone(&metrics));

    let first = coordinator.run(&spec, &|_, _| {}).unwrap();
    assert_eq!(metrics.snapshot().points_assigned, 4);

    // A different experiment sharing two physical points: both answered
    // from the coordinator's cache, nothing reaches the worker.
    let subset = r#"{
        "name": "fleet-subset",
        "cores": 2,
        "configs": [
            {"label": "SS(1,4)", "partition": {"kind": "shared", "sets": 1, "ways": 4, "mode": "SS"}}
        ],
        "workloads": [
            {"kind": "uniform", "range_bytes": 4096, "ops": 300, "seed": 11, "write_fraction": 0.2},
            {"kind": "stride", "range_bytes": 4096, "stride": 64, "ops": 300}
        ]
    }"#;
    let subset_spec = ExperimentSpec::parse(subset).unwrap();
    let served = coordinator.run(&subset_spec, &|_, _| {}).unwrap();
    let local = run_spec(&subset_spec, &Executor::new(1)).unwrap();
    assert_eq!(served.grid, local.grid);
    let snap = metrics.snapshot();
    assert_eq!(snap.points_assigned, 4, "the subset re-reached the worker");
    assert_eq!(snap.points_cache_shared, 2);

    // A full re-run is served entirely from the cache, byte-identically.
    let again = coordinator.run(&spec, &|_, _| {}).unwrap();
    assert_eq!(render_csv(&again.grid), render_csv(&first.grid));
    let snap = metrics.snapshot();
    assert_eq!(snap.points_assigned, 4);
    assert_eq!(snap.points_cache_shared, 6);
    stop_worker(&handle, join);
}

/// A tiny deterministic PRNG for the shard-split property tests.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

#[test]
fn real_run_shards_merge_to_the_single_run_histogram_in_any_order() {
    // The per-core histograms of one real simulation ARE shards of the
    // system-wide distribution: merging them in any order and grouping
    // must rebuild it exactly — the property the fleet's merge-on-
    // coordinator step rests on.
    let config = SystemConfig::shared_partition(8, 4, 4, SharingMode::SetSequencer).unwrap();
    let report = Simulator::new(config)
        .unwrap()
        .run(UniformGen::new(8192, 400).with_cores(4))
        .unwrap();
    let whole = report.latency_histogram();
    assert!(!whole.is_empty());

    let shards: Vec<LatencyHistogram> = (0..4)
        .map(|i| report.stats.core(CoreId::new(i)).latencies.clone())
        .collect();

    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    for _ in 0..16 {
        // A random merge order...
        let mut order: Vec<usize> = (0..shards.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, (xorshift(&mut state) % (i as u64 + 1)) as usize);
        }
        // ...and a random grouping: fold pairs of partial merges, not
        // just a left fold, to exercise associativity.
        let mut partials: Vec<LatencyHistogram> =
            order.iter().map(|&i| shards[i].clone()).collect();
        while partials.len() > 1 {
            let j = 1 + (xorshift(&mut state) % (partials.len() as u64 - 1)) as usize;
            let absorbed = partials.swap_remove(j);
            partials[0].merge(&absorbed);
        }
        let merged = partials.pop().unwrap();
        assert_eq!(merged, whole);
        assert_eq!(merged.percentile(100.0), report.max_request_latency());
        assert_eq!(merged.summary(), whole.summary());
    }
}

#[test]
fn randomized_shard_splits_always_rebuild_the_full_histogram() {
    // Scatter a synthetic latency stream over K shards at random; the
    // shard-merge must equal the everything-in-one histogram bit for
    // bit, for any K and any assignment.
    let mut state = 0xdead_beef_cafe_f00du64;
    for &k in &[1usize, 2, 3, 7] {
        let mut whole = LatencyHistogram::new();
        let mut shards = vec![LatencyHistogram::new(); k];
        for _ in 0..5_000 {
            let latency = predllc::Cycles::new(1 + xorshift(&mut state) % 10_000);
            whole.record(latency);
            let shard = (xorshift(&mut state) % k as u64) as usize;
            shards[shard].record(latency);
        }
        let mut merged = LatencyHistogram::new();
        for shard in &shards {
            merged.merge(shard);
        }
        assert_eq!(merged, whole, "split over {k} shard(s) diverged");
        assert_eq!(merged.summary(), whole.summary());
        assert_eq!(merged.percentile(100.0), whole.max());

        // And the wire round-trip of every shard is lossless, so the
        // property survives serialization too.
        let rebuilt: Vec<LatencyHistogram> = shards
            .iter()
            .map(|s| {
                LatencyHistogram::from_parts(s.total(), s.min(), s.max(), &s.bucket_entries())
                    .unwrap()
            })
            .collect();
        assert_eq!(rebuilt, shards);
    }
}
