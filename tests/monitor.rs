//! End-to-end tests of the continuous-monitoring layer: the collector
//! feeding `/v1/metrics/history`, the SLO evaluator behind
//! `/v1/alerts`, the self-contained `/dashboard`, the exposition
//! parser's round-trip guarantees, and fleet-wide aggregation —
//! including a killed worker whose mirrored series goes stale on the
//! coordinator while the `worker-loss` rule fires.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use predllc::explore::json::Json;
use predllc::fleet::{default_fleet_rules, Coordinator, CoordinatorConfig};
use predllc::obs::expo::{self, ExpoValue};
use predllc::obs::Registry;
use predllc::serve::{
    Client, Metrics, MonitorConfig, Server, ServerConfig, ServerHandle, SpecRunner,
};
use predllc::ExperimentSpec;

/// A small two-platform grid, 4 unique points.
const SPEC: &str = r#"{
    "name": "monitor-e2e",
    "cores": 2,
    "configs": [
        {"label": "SS(1,4)", "partition": {"kind": "shared", "sets": 1, "ways": 4, "mode": "SS"}},
        {"partition": {"kind": "private", "sets": 4, "ways": 2}}
    ],
    "workloads": [
        {"kind": "uniform", "range_bytes": 4096, "ops": 200, "seed": 11},
        {"kind": "stride", "range_bytes": 4096, "stride": 64, "ops": 200}
    ]
}"#;

fn start(config: ServerConfig) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind an ephemeral port");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (handle, join)
}

fn stop(handle: &ServerHandle, join: std::thread::JoinHandle<()>) {
    handle.shutdown();
    join.join().expect("server thread");
}

/// Polls `probe` until it yields within `deadline`; panics with
/// `what` otherwise. Keeps timing-sensitive assertions CI-safe.
fn poll<T>(deadline: Duration, what: &str, mut probe: impl FnMut() -> Option<T>) -> T {
    let started = Instant::now();
    loop {
        if let Some(v) = probe() {
            return v;
        }
        assert!(started.elapsed() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Sample count for `series` in a `/v1/metrics/history` reply.
fn history_samples(history: &Json, series: &str) -> Option<usize> {
    let Some(Json::Array(all)) = history.get("series") else {
        return None;
    };
    let entry = all
        .iter()
        .find(|e| e.get("name").and_then(Json::as_str) == Some(series))?;
    match entry.get("samples") {
        Some(Json::Array(samples)) => Some(samples.len()),
        _ => None,
    }
}

/// The state of `rule` in a `/v1/alerts` reply.
fn rule_state(alerts: &Json, rule: &str) -> Option<String> {
    let Some(Json::Array(all)) = alerts.get("alerts") else {
        return None;
    };
    all.iter()
        .find(|a| a.get("rule").and_then(Json::as_str) == Some(rule))
        .and_then(|a| a.get("state").and_then(Json::as_str))
        .map(str::to_string)
}

#[test]
fn render_runs_concurrently_with_recording() {
    // `Registry::render` snapshots the family list and renders outside
    // the lock, so writers never stall behind a scrape. Hammer one
    // registry from recording threads while rendering continuously;
    // every render must still pass the validator.
    let reg = Arc::new(Registry::new());
    let stop = Arc::new(AtomicBool::new(false));
    let mut writers = Vec::new();
    for t in 0..3 {
        let reg = Arc::clone(&reg);
        let stop = Arc::clone(&stop);
        writers.push(std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                reg.counter("monitor_ops", "ops").inc();
                reg.gauge("monitor_depth", "depth").set(i % 17);
                reg.histogram_with("monitor_lat_ns", "lat", "thread", &t.to_string())
                    .record(Duration::from_nanos(100 + i));
                i += 1;
            }
        }));
    }
    for _ in 0..200 {
        let text = reg.render();
        expo::validate(&text).expect("a mid-write render must still validate");
    }
    stop.store(true, Ordering::Relaxed);
    for w in writers {
        w.join().expect("writer thread");
    }
    let ops = expo::parse(&reg.render())
        .expect("final render parses")
        .family("monitor_ops")
        .and_then(|f| f.sample("monitor_ops").map(|s| s.value))
        .expect("counter present");
    assert!(matches!(ops, ExpoValue::UInt(n) if n > 0));
}

#[test]
fn parse_handles_inf_le_escapes_and_label_free_series() {
    let text = concat!(
        "# HELP h latency\n",
        "# TYPE h histogram\n",
        "h_bucket{le=\"1000\"} 3\n",
        "h_bucket{le=\"+Inf\"} 5\n",
        "h_sum 4200\n",
        "h_count 5\n",
        "# TYPE plain counter\n",
        "plain 7\n",
        "# TYPE awkward gauge\n",
        "awkward{path=\"a\\\\b\",quote=\"say \\\"hi\\\"\",nl=\"line1\\nline2\"} 9\n",
    );
    let doc = expo::parse(text).expect("edge-case exposition parses");

    // +Inf bucket bounds survive as labels and parse as infinity.
    let h = doc.family("h").expect("histogram family");
    let inf = h
        .samples
        .iter()
        .find(|s| s.name == "h_bucket" && s.label("le") == Some("+Inf"))
        .expect("+Inf bucket");
    assert_eq!(inf.value, ExpoValue::UInt(5));
    assert_eq!("+Inf".parse::<f64>().map(|f| f.is_infinite()), Ok(true));

    // A label-free series has an empty label set, not a missing one.
    let plain = doc
        .family("plain")
        .and_then(|f| f.sample("plain"))
        .expect("label-free sample");
    assert!(plain.labels.is_empty());
    assert_eq!(plain.value, ExpoValue::UInt(7));

    // Escaped label values come back unescaped in the structure...
    let awkward = doc
        .family("awkward")
        .and_then(|f| f.sample("awkward"))
        .expect("escaped sample");
    assert_eq!(awkward.label("path"), Some("a\\b"));
    assert_eq!(awkward.label("quote"), Some("say \"hi\""));
    assert_eq!(awkward.label("nl"), Some("line1\nline2"));

    // ...and re-escape on render: the round trip is byte-identical.
    assert_eq!(doc.render(), text);
}

#[test]
fn parse_render_loop_agrees_with_validator_on_random_registries() {
    // Property loop: whatever a randomly populated registry renders,
    // the validator accepts it, the parser accepts it, and rendering
    // the parse reproduces the bytes exactly.
    let mut rng = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    for round in 0..25 {
        let reg = Registry::new();
        for f in 0..(1 + next() % 5) {
            let name = format!("prop_{round}_{f}");
            match next() % 3 {
                0 => {
                    for _ in 0..(1 + next() % 3) {
                        let c = reg.counter_with(&name, "h", "shard", &(next() % 4).to_string());
                        c.add(next() % 1_000_000);
                    }
                }
                1 => reg
                    .gauge_labeled(&name, "h", &[("a", "x\\y"), ("b", "q\"z\nw")])
                    .set(next()),
                _ => {
                    let h = reg.histogram(&name, "h");
                    for _ in 0..(next() % 5) {
                        h.record(Duration::from_nanos(next() % 10_000_000));
                    }
                }
            }
        }
        let rendered = reg.render();
        let summary = expo::validate(&rendered).expect("random registry validates");
        let parsed = expo::parse(&rendered).expect("random registry parses");
        assert_eq!(parsed.samples().count(), summary.samples);
        assert_eq!(
            parsed.render(),
            rendered,
            "round {round}: parse→render drifted"
        );
    }
}

#[test]
fn monitoring_endpoints_round_trip_over_http() {
    let (handle, join) = start(ServerConfig {
        monitor: Some(MonitorConfig::with_interval(Duration::from_millis(25))),
        ..ServerConfig::default()
    });
    let mut client = Client::new(handle.addr());

    let submitted = client.submit(SPEC).unwrap();
    client
        .wait_done(&submitted.id, Duration::from_secs(60))
        .unwrap();

    // The tracer's drop counter is a first-class registry metric.
    let body = client.metrics().unwrap();
    assert!(body.contains("predllc_trace_dropped_total"));
    assert!(body.contains("predllc_alerts_firing 0"));

    // History accumulates as the collector ticks.
    let samples = poll(Duration::from_secs(10), "2 history samples", || {
        let history = client.metrics_history(None, None).ok()?;
        history_samples(&history, "predllc_http_requests").filter(|&n| n >= 2)
    });
    assert!(samples >= 2);

    // Window/step narrowing still answers, with the step echoed back.
    let narrow = client.metrics_history(Some(60_000), Some(1_000)).unwrap();
    assert_eq!(narrow.get("step_ms").and_then(Json::as_u64), Some(1_000));
    assert!(narrow.get("now_ms").and_then(Json::as_u64).is_some());

    // Both default serve rules are evaluated, in a legal state.
    let alerts = client.alerts().unwrap();
    for rule in ["queue-depth", "p99-request-latency"] {
        let state = rule_state(&alerts, rule).expect("rule is reported");
        assert!(
            ["inactive", "pending", "firing", "resolved"].contains(&state.as_str()),
            "rule {rule} in unknown state {state}"
        );
    }

    // The dashboard is one self-contained page with sparklines.
    let dashboard = client.dashboard().unwrap();
    assert!(dashboard.starts_with("<!DOCTYPE html>"));
    assert!(dashboard.contains("<svg"));
    assert!(dashboard.contains("predllc_http_requests"));
    assert!(!dashboard.contains("<script"));

    stop(&handle, join);
}

#[test]
fn history_rejects_zero_and_non_numeric_window_and_step() {
    use std::io::{Read, Write};
    use std::net::TcpStream;

    let (handle, join) = start(ServerConfig {
        monitor: Some(MonitorConfig::with_interval(Duration::from_millis(25))),
        ..ServerConfig::default()
    });

    // Raw TCP, not the typed client: the client can't even express the
    // malformed query strings this endpoint must reject.
    let raw_get = |target: &str| -> (u16, String) {
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        write!(
            stream,
            "GET {target} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
        )
        .expect("send request");
        let mut reply = String::new();
        stream.read_to_string(&mut reply).expect("read reply");
        let status = reply
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("unparseable status line in:\n{reply}"));
        let body = reply.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
        (status, body)
    };

    // Zero and non-numeric values are positioned 400s naming the bad
    // parameter — never silently coerced into a default.
    for (query, param) in [
        ("window=0", "window"),
        ("step=0", "step"),
        ("window=banana", "window"),
        ("step=-5", "step"),
        ("window=1e3", "window"),
        ("step=2.5", "step"),
        ("window=0&step=1000", "window"),
        ("window=60000&step=0", "step"),
    ] {
        let (status, body) = raw_get(&format!("/v1/metrics/history?{query}"));
        assert_eq!(status, 400, "?{query} must be rejected, got:\n{body}");
        let doc = predllc::explore::json::parse(&body)
            .unwrap_or_else(|e| panic!("?{query}: unparseable error body {body}: {e:?}"));
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("query"));
        let message = doc.get("error").and_then(Json::as_str).unwrap().to_string();
        assert!(
            message.contains(param),
            "?{query}: error does not name '{param}': {message}"
        );
    }

    // Explicit positive values and bare defaults still answer 200.
    for query in ["", "?window=60000&step=1000", "?window=1", "?step=1"] {
        let (status, body) = raw_get(&format!("/v1/metrics/history{query}"));
        assert_eq!(status, 200, "{query} must succeed, got:\n{body}");
        let doc = predllc::explore::json::parse(&body).expect("history parses");
        assert!(doc.get("series").is_some());
    }

    stop(&handle, join);
}

#[test]
fn monitoring_disabled_answers_404() {
    let (handle, join) = start(ServerConfig::default());
    let mut client = Client::new(handle.addr());
    for result in [
        client.metrics_history(None, None).map(|_| ()),
        client.alerts().map(|_| ()),
        client.dashboard().map(|_| ()),
    ] {
        match result {
            Err(predllc::serve::ClientError::Status { status, .. }) => assert_eq!(status, 404),
            other => panic!("expected a 404, got {other:?}"),
        }
    }
    // The plain scrape still works without a monitor.
    expo::validate(&client.metrics().unwrap()).unwrap();
    stop(&handle, join);
}

#[test]
fn fleet_worker_loss_goes_stale_and_fires_the_alert() {
    let spec = ExperimentSpec::parse(SPEC).unwrap();

    // The doomed worker dies mid-answer on its first point; the
    // survivor absorbs the grid.
    let (doomed, doomed_join) = start(ServerConfig {
        fail_after_points: Some(0),
        ..ServerConfig::default()
    });
    let (survivor, survivor_join) = start(ServerConfig::default());

    let metrics = Arc::new(Metrics::default());
    let coordinator = Arc::new(Coordinator::new(
        [doomed.addr(), survivor.addr()],
        CoordinatorConfig {
            heartbeat_interval: Duration::from_millis(50),
            retries: 0,
            ..CoordinatorConfig::default()
        },
        Arc::clone(&metrics),
    ));
    let _scrape = coordinator.start_metric_scrape(Duration::from_millis(25));
    let (front, front_join) = {
        let config = ServerConfig {
            monitor: Some(MonitorConfig {
                rules: default_fleet_rules(),
                ..MonitorConfig::with_interval(Duration::from_millis(25))
            }),
            ..ServerConfig::default()
        };
        let server = Server::bind_with(
            "127.0.0.1:0",
            config,
            Arc::clone(&coordinator) as Arc<dyn SpecRunner>,
            Arc::clone(&metrics),
        )
        .expect("bind the front server");
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run().expect("front server run"));
        (handle, join)
    };
    let mut client = Client::new(front.addr());

    // Before the loss: nothing fires, and both workers scrape fresh.
    poll(
        Duration::from_secs(10),
        "first scrape of both workers",
        || {
            let doc = expo::parse(&client.metrics().ok()?).ok()?;
            let fam = doc.family("predllc_fleet_scrape_ok_ms")?;
            (fam.samples.len() == 2).then_some(())
        },
    );
    assert_eq!(client.metric("predllc_alerts_firing").unwrap(), 0);

    let report = coordinator.run(&spec, &|_, _| {}).unwrap();
    assert_eq!(report.unique_points, 4);
    assert!(doomed.was_killed(), "the fault injector never fired");
    assert_eq!(metrics.snapshot().workers_lost, 1);

    // The alerts gauge transitions 0 -> 1 as the worker-loss rule
    // fires on a collector tick.
    poll(Duration::from_secs(10), "the worker-loss alert", || {
        (client.metric("predllc_alerts_firing").ok()? == 1).then_some(())
    });
    let alerts = client.alerts().unwrap();
    assert_eq!(
        rule_state(&alerts, "worker-loss").as_deref(),
        Some("firing")
    );

    // Staleness: the dead worker's scrape-freshness gauge freezes
    // while the survivor's keeps advancing.
    let scrape_ok = |client: &mut Client, worker: &str| -> u64 {
        let doc = expo::parse(&client.metrics().unwrap()).unwrap();
        let fam = doc
            .family("predllc_fleet_scrape_ok_ms")
            .expect("scrape gauge family");
        let sample = fam
            .samples
            .iter()
            .find(|s| s.label("worker") == Some(worker))
            .expect("per-worker scrape sample");
        match sample.value {
            ExpoValue::UInt(v) => v,
            other => panic!("scrape gauge is not an integer: {other:?}"),
        }
    };
    let dead = doomed.addr().to_string();
    let live = survivor.addr().to_string();
    let dead_at = scrape_ok(&mut client, &dead);
    let live_at = scrape_ok(&mut client, &live);
    poll(
        Duration::from_secs(10),
        "the survivor's scrape to advance",
        || (scrape_ok(&mut client, &live) > live_at).then_some(()),
    );
    assert_eq!(
        scrape_ok(&mut client, &dead),
        dead_at,
        "a dead worker's scrape gauge must freeze"
    );

    // The dead worker's mirrored series are a visible gap on the
    // dashboard — present, not erased.
    let dashboard = client.dashboard().unwrap();
    assert!(
        dashboard.contains(&dead),
        "dead worker vanished from the dashboard"
    );
    assert!(dashboard.contains("worker-loss"));

    stop(&front, front_join);
    doomed_join.join().expect("killed server thread");
    stop(&survivor, survivor_join);
}
