//! The Fig. 7 acceptance criterion as a test suite: across
//! configurations, workloads, replacement policies and arbiter policies,
//! every observed request latency stays within the applicable analytical
//! WCL bound.

use predllc::analysis::{classify_schedule, critical, WclParams};
use predllc::workload_gen::UniformGen;
use predllc::{
    ArbiterPolicy, CoreId, ReplacementKind, SharingMode, Simulator, SystemConfig,
    SystemConfigBuilder,
};

fn bound_of(cfg: &SystemConfig) -> u64 {
    classify_schedule(cfg, CoreId::new(0))
        .expect("core 0 exists")
        .cycles()
        .expect("1S-TDM configurations are bounded")
        .as_u64()
}

fn check(cfg: SystemConfig, workload: impl predllc::Workload, context: &str) {
    let bound = bound_of(&cfg);
    let report = Simulator::new(cfg).unwrap().run(workload).unwrap();
    assert!(!report.timed_out, "{context}: timed out");
    let observed = report.max_request_latency().as_u64();
    assert!(
        observed <= bound,
        "{context}: observed WCL {observed} exceeds analytical bound {bound}"
    );
}

#[test]
fn fig7_one_set_configurations_respect_bounds() {
    // The six Fig. 7 configurations at three representative ranges.
    let configs: Vec<(&str, SystemConfig)> = vec![
        (
            "SS(1,2,4)",
            SystemConfig::shared_partition(1, 2, 4, SharingMode::SetSequencer).unwrap(),
        ),
        (
            "SS(1,4,4)",
            SystemConfig::shared_partition(1, 4, 4, SharingMode::SetSequencer).unwrap(),
        ),
        (
            "NSS(1,2,4)",
            SystemConfig::shared_partition(1, 2, 4, SharingMode::BestEffort).unwrap(),
        ),
        (
            "NSS(1,4,4)",
            SystemConfig::shared_partition(1, 4, 4, SharingMode::BestEffort).unwrap(),
        ),
        ("P(1,2)", SystemConfig::private_partitions(1, 2, 4).unwrap()),
        ("P(1,4)", SystemConfig::private_partitions(1, 4, 4).unwrap()),
    ];
    for (name, cfg) in configs {
        for range in [1024u64, 8192, 262_144] {
            let gen = UniformGen::new(range, 600)
                .with_write_fraction(0.3)
                .with_seed(range ^ 0xB0)
                .with_cores(4);
            check(cfg.clone(), gen, &format!("{name} @ {range}"));
        }
    }
}

#[test]
fn adversarial_stress_respects_bounds() {
    for mode in [SharingMode::SetSequencer, SharingMode::BestEffort] {
        for ways in [1u32, 2, 4] {
            let cfg = SystemConfig::shared_partition(1, ways, 4, mode).unwrap();
            let spec = cfg.partitions().spec_of(CoreId::new(0)).clone();
            let traces = critical::wcl_stress_traces(&spec, 400);
            check(cfg, traces, &format!("stress {mode:?} w={ways}"));
        }
    }
}

#[test]
fn bounds_hold_for_every_replacement_policy() {
    for repl in [
        ReplacementKind::Lru,
        ReplacementKind::Fifo,
        ReplacementKind::RoundRobin,
        ReplacementKind::Random { seed: 11 },
    ] {
        for mode in [SharingMode::SetSequencer, SharingMode::BestEffort] {
            let cfg = SystemConfigBuilder::new(4)
                .partitions(vec![predllc::PartitionSpec::shared(
                    1,
                    4,
                    CoreId::first(4).collect(),
                    mode,
                )])
                .llc_replacement(repl)
                .build()
                .unwrap();
            let spec = cfg.partitions().spec_of(CoreId::new(0)).clone();
            let traces = critical::wcl_stress_traces(&spec, 300);
            check(cfg, traces, &format!("{repl:?} {mode:?}"));
        }
    }
}

#[test]
fn bounds_hold_for_every_arbiter_policy() {
    for arb in [
        ArbiterPolicy::WritebackFirst,
        ArbiterPolicy::RoundRobin,
        ArbiterPolicy::RequestFirst,
    ] {
        for mode in [SharingMode::SetSequencer, SharingMode::BestEffort] {
            let cfg = SystemConfigBuilder::new(4)
                .partitions(vec![predllc::PartitionSpec::shared(
                    1,
                    2,
                    CoreId::first(4).collect(),
                    mode,
                )])
                .arbiter(arb)
                .build()
                .unwrap();
            let spec = cfg.partitions().spec_of(CoreId::new(0)).clone();
            let traces = critical::wcl_stress_traces(&spec, 300);
            check(cfg, traces, &format!("{arb} {mode:?}"));
        }
    }
}

#[test]
fn ss_bound_is_size_independent_and_respected() {
    // Theorem 4.8's selling point: the same 5000-cycle bound covers tiny
    // and large partitions alike (n = N = 4, SW = 50).
    for (sets, ways) in [(1u32, 2u32), (1, 16), (8, 4), (32, 16)] {
        let cfg = SystemConfig::shared_partition(sets, ways, 4, SharingMode::SetSequencer).unwrap();
        assert_eq!(bound_of(&cfg), 5_000, "SS bound at {sets}x{ways}");
        let gen = UniformGen::new(16_384, 500)
            .with_write_fraction(0.3)
            .with_seed(99)
            .with_cores(4);
        check(cfg, gen, &format!("SS {sets}x{ways}"));
    }
}

#[test]
fn sharer_count_sweep_respects_bounds() {
    for n in 2..=6u16 {
        for mode in [SharingMode::SetSequencer, SharingMode::BestEffort] {
            let cfg = SystemConfig::shared_partition(1, 4, n, mode).unwrap();
            let spec = cfg.partitions().spec_of(CoreId::new(0)).clone();
            let traces = critical::wcl_stress_traces(&spec, 200);
            check(cfg, traces, &format!("n={n} {mode:?}"));
        }
    }
}

#[test]
fn pwb_depth_stays_within_corollary_bound() {
    // Corollary 4.5's proof bounds the pending write-backs of a core by
    // the sharer count: at most n-1 invalidation acks plus one capacity
    // write-back in flight.
    for n in 2..=6u16 {
        let cfg = SystemConfig::shared_partition(1, 4, n, SharingMode::BestEffort).unwrap();
        let spec = cfg.partitions().spec_of(CoreId::new(0)).clone();
        let traces = critical::wcl_stress_traces(&spec, 400);
        let report = Simulator::new(cfg).unwrap().run(traces).unwrap();
        assert!(
            report.stats.max_pwb_depth <= n as usize,
            "n = {n}: PWB depth {} exceeds n",
            report.stats.max_pwb_depth
        );
    }
}

#[test]
fn sequencer_hardware_cost_is_bounded_by_sharers() {
    // A hardware SQ needs one entry per in-flight request: depth ≤ n.
    let params = WclParams::from_config(
        &SystemConfig::shared_partition(1, 4, 4, SharingMode::SetSequencer).unwrap(),
    )
    .unwrap();
    assert_eq!(params.sharers, 4);
    let cfg = SystemConfig::shared_partition(4, 4, 4, SharingMode::SetSequencer).unwrap();
    let gen = UniformGen::new(65_536, 1_000)
        .with_write_fraction(0.3)
        .with_seed(5)
        .with_cores(4);
    let report = Simulator::new(cfg).unwrap().run(&gen).unwrap();
    assert!(report.stats.max_sequencer_depth <= 4);
    assert!(report.stats.max_sequencer_sets <= 4);
}
