//! Property-based tests of the simulator's structural invariants:
//! completion, determinism, conservation laws on the statistics, and
//! cross-mode consistency — under randomly generated configurations and
//! workloads.

use proptest::prelude::*;

use predllc::workload_gen::UniformGen;
use predllc::{CoreId, RunReport, SharingMode, Simulator, SystemConfig};

#[allow(clippy::too_many_arguments)]
fn run_shared(
    sets: u32,
    ways: u32,
    n: u16,
    mode: SharingMode,
    range: u64,
    ops: usize,
    writes: f64,
    seed: u64,
) -> RunReport {
    let cfg = SystemConfig::shared_partition(sets, ways, n, mode).expect("valid dims");
    let traces = UniformGen::new(range, ops)
        .with_write_fraction(writes)
        .with_seed(seed)
        .traces(n);
    Simulator::new(cfg).unwrap().run(traces).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// Every bounded configuration finishes every operation: no request
    /// is lost, no deadlock occurs, and the completion counters add up.
    #[test]
    fn all_operations_complete(
        sets in 1u32..8,
        ways_pow in 0u32..3,
        n in 2u16..5,
        mode in prop_oneof![Just(SharingMode::SetSequencer), Just(SharingMode::BestEffort)],
        range_pow in 10u64..15,
        writes in 0.0f64..0.6,
        seed in any::<u64>(),
    ) {
        let ways = 1 << ways_pow;
        let ops = 150usize;
        let report = run_shared(sets, ways, n, mode, 1 << range_pow, ops, writes, seed);
        prop_assert!(!report.timed_out);
        for i in 0..n {
            let cs = report.stats.core(CoreId::new(i));
            prop_assert_eq!(cs.ops_completed, ops as u64);
            // Every op was an L1 hit, an L2 hit, or an LLC transaction.
            prop_assert_eq!(
                cs.l1_hits + cs.l2_hits + cs.llc_hits + cs.llc_fills,
                ops as u64
            );
            // Latency accounting matches the number of LLC requests.
            prop_assert_eq!(cs.requests, cs.llc_hits + cs.llc_fills);
        }
    }

    /// Same seed ⇒ byte-identical statistics: the simulator is fully
    /// deterministic.
    #[test]
    fn simulation_is_deterministic(
        n in 2u16..5,
        mode in prop_oneof![Just(SharingMode::SetSequencer), Just(SharingMode::BestEffort)],
        writes in 0.0f64..0.5,
        seed in any::<u64>(),
    ) {
        let a = run_shared(2, 2, n, mode, 4096, 120, writes, seed);
        let b = run_shared(2, 2, n, mode, 4096, 120, writes, seed);
        prop_assert_eq!(a.stats, b.stats);
        prop_assert_eq!(a.cycles, b.cycles);
    }

    /// DRAM conservation: every LLC fill is one DRAM read, and DRAM
    /// writes never exceed the lines that could have been dirty.
    #[test]
    fn dram_traffic_conservation(
        n in 2u16..5,
        writes in 0.0f64..0.6,
        seed in any::<u64>(),
    ) {
        let report = run_shared(2, 4, n, SharingMode::BestEffort, 8192, 200, writes, seed);
        let fills: u64 = (0..n)
            .map(|i| report.stats.core(CoreId::new(i)).llc_fills)
            .sum();
        prop_assert_eq!(report.stats.dram_reads, fills);
        if writes == 0.0 {
            prop_assert_eq!(report.stats.dram_writes, 0);
        }
    }

    /// A read-only workload never produces write-backs or DRAM writes,
    /// and every eviction resolves within the triggering slot (entries
    /// freed by the multi-slot protocol only exist for dirty lines).
    #[test]
    fn read_only_workloads_have_no_writeback_traffic(
        n in 2u16..5,
        seed in any::<u64>(),
    ) {
        let report = run_shared(1, 2, n, SharingMode::BestEffort, 4096, 200, 0.0, seed);
        prop_assert_eq!(report.stats.dram_writes, 0);
        for i in 0..n {
            prop_assert_eq!(report.stats.core(CoreId::new(i)).writebacks_sent, 0);
        }
        // All frees happened inline: the freed-lines counter only counts
        // multi-slot protocol completions plus instant frees; with no
        // dirty lines, evictions equal instant frees.
        prop_assert_eq!(report.stats.lines_freed, report.stats.evictions_triggered);
    }

    /// The sequencer can reorder *who* waits, but both sharing modes
    /// complete the same workload with the same total LLC traffic
    /// profile when there is no contention (disjoint sets).
    #[test]
    fn modes_agree_when_uncontended(
        seed in any::<u64>(),
        writes in 0.0f64..0.5,
    ) {
        // 32-set partition, tiny ranges: every core misses into plenty
        // of free space, no set ever fills up.
        let a = run_shared(32, 16, 2, SharingMode::SetSequencer, 1024, 100, writes, seed);
        let b = run_shared(32, 16, 2, SharingMode::BestEffort, 1024, 100, writes, seed);
        prop_assert_eq!(a.stats.evictions_triggered, 0);
        prop_assert_eq!(b.stats.evictions_triggered, 0);
        prop_assert_eq!(a.execution_time(), b.execution_time());
    }

    /// Private partitions are perfectly isolated: per-core statistics do
    /// not depend on what the other cores run.
    #[test]
    fn private_partitions_isolate_latency(
        seed in any::<u64>(),
        other_ops in 1usize..400,
    ) {
        let cfg = SystemConfig::private_partitions(4, 2, 2).unwrap();
        let mine = UniformGen::new(2048, 100).with_seed(seed).core_trace(CoreId::new(0));
        let quiet = vec![];
        let noisy = UniformGen::new(2048, other_ops)
            .with_write_fraction(0.5)
            .with_seed(!seed)
            .core_trace(CoreId::new(1));
        let a = Simulator::new(cfg.clone()).unwrap().run(vec![mine.clone(), quiet]).unwrap();
        let b = Simulator::new(cfg).unwrap().run(vec![mine, noisy]).unwrap();
        // The neighbour's workload must not change core 0's cache
        // behaviour at all (bus slots are TDM-fixed; LLC is private).
        let sa = a.stats.core(CoreId::new(0));
        let sb = b.stats.core(CoreId::new(0));
        prop_assert_eq!(sa.l1_hits, sb.l1_hits);
        prop_assert_eq!(sa.l2_hits, sb.l2_hits);
        prop_assert_eq!(sa.llc_hits, sb.llc_hits);
        prop_assert_eq!(sa.llc_fills, sb.llc_fills);
        prop_assert_eq!(sa.max_request_latency, sb.max_request_latency);
        prop_assert_eq!(sa.finished_at, sb.finished_at);
    }
}
