//! Property-style tests of the simulator's structural invariants:
//! completion, determinism, conservation laws on the statistics, and
//! cross-mode consistency — under pseudo-randomly generated
//! configurations and workloads.
//!
//! The parameter space is sampled with the workspace's own deterministic
//! RNG (no external property-testing framework): every case is
//! reproducible from the fixed master seed, and a failure message names
//! the offending parameters.

use predllc::workload::rng::Rng64;
use predllc::workload_gen::UniformGen;
use predllc::{CoreId, RunReport, SharingMode, Simulator, SystemConfig};

#[allow(clippy::too_many_arguments)]
fn run_shared(
    sets: u32,
    ways: u32,
    n: u16,
    mode: SharingMode,
    range: u64,
    ops: usize,
    writes: f64,
    seed: u64,
) -> RunReport {
    let cfg = SystemConfig::shared_partition(sets, ways, n, mode).expect("valid dims");
    let gen = UniformGen::new(range, ops)
        .with_write_fraction(writes)
        .with_seed(seed)
        .with_cores(n);
    Simulator::new(cfg).unwrap().run(&gen).unwrap()
}

/// Deterministically samples `cases` parameter tuples.
fn sample_cases(cases: usize) -> impl Iterator<Item = (u32, u32, u16, SharingMode, u64, f64, u64)> {
    let mut rng = Rng64::new(0x1724_11A7_5EED_0001);
    (0..cases).map(move |_| {
        let sets = 1 + rng.below(7) as u32;
        let ways = 1u32 << rng.below(3);
        let n = 2 + rng.below(3) as u16;
        let mode = if rng.chance(0.5) {
            SharingMode::SetSequencer
        } else {
            SharingMode::BestEffort
        };
        let range = 1u64 << (10 + rng.below(5));
        let writes = rng.below(60) as f64 / 100.0;
        let seed = rng.next_u64();
        (sets, ways, n, mode, range, writes, seed)
    })
}

/// Every bounded configuration finishes every operation: no request is
/// lost, no deadlock occurs, and the completion counters add up.
#[test]
fn all_operations_complete() {
    for (sets, ways, n, mode, range, writes, seed) in sample_cases(24) {
        let ops = 150usize;
        let report = run_shared(sets, ways, n, mode, range, ops, writes, seed);
        let ctx = format!("{sets}x{ways} n={n} {mode:?} range={range} seed={seed:#x}");
        assert!(!report.timed_out, "{ctx}: timed out");
        for i in 0..n {
            let cs = report.stats.core(CoreId::new(i));
            assert_eq!(cs.ops_completed, ops as u64, "{ctx}: c{i} completion");
            // Every op was an L1 hit, an L2 hit, or an LLC transaction.
            assert_eq!(
                cs.l1_hits + cs.l2_hits + cs.llc_hits + cs.llc_fills,
                ops as u64,
                "{ctx}: c{i} op accounting"
            );
            // Latency accounting matches the number of LLC requests.
            assert_eq!(
                cs.requests,
                cs.llc_hits + cs.llc_fills,
                "{ctx}: c{i} requests"
            );
        }
    }
}

/// Same seed ⇒ byte-identical statistics: the simulator is fully
/// deterministic.
#[test]
fn simulation_is_deterministic() {
    for (_, _, n, mode, _, writes, seed) in sample_cases(12) {
        let a = run_shared(2, 2, n, mode, 4096, 120, writes, seed);
        let b = run_shared(2, 2, n, mode, 4096, 120, writes, seed);
        assert_eq!(a.stats, b.stats, "n={n} {mode:?} seed={seed:#x}");
        assert_eq!(a.cycles, b.cycles);
    }
}

/// DRAM conservation: every LLC fill is one DRAM read, and a write-free
/// workload produces no DRAM writes.
#[test]
fn dram_traffic_conservation() {
    for (_, _, n, _, _, writes, seed) in sample_cases(12) {
        let report = run_shared(2, 4, n, SharingMode::BestEffort, 8192, 200, writes, seed);
        let fills: u64 = (0..n)
            .map(|i| report.stats.core(CoreId::new(i)).llc_fills)
            .sum();
        assert_eq!(report.stats.dram_reads, fills, "n={n} seed={seed:#x}");
    }
    let read_only = run_shared(2, 4, 3, SharingMode::BestEffort, 8192, 200, 0.0, 7);
    assert_eq!(read_only.stats.dram_writes, 0);
}

/// A read-only workload never produces write-backs or DRAM writes, and
/// every eviction resolves within the triggering slot (entries freed by
/// the multi-slot protocol only exist for dirty lines).
#[test]
fn read_only_workloads_have_no_writeback_traffic() {
    for (_, _, n, _, _, _, seed) in sample_cases(12) {
        let report = run_shared(1, 2, n, SharingMode::BestEffort, 4096, 200, 0.0, seed);
        let ctx = format!("n={n} seed={seed:#x}");
        assert_eq!(report.stats.dram_writes, 0, "{ctx}");
        for i in 0..n {
            assert_eq!(
                report.stats.core(CoreId::new(i)).writebacks_sent,
                0,
                "{ctx}: c{i}"
            );
        }
        // All frees happened inline: the freed-lines counter only counts
        // multi-slot protocol completions plus instant frees; with no
        // dirty lines, evictions equal instant frees.
        assert_eq!(
            report.stats.lines_freed, report.stats.evictions_triggered,
            "{ctx}"
        );
    }
}

/// The sequencer can reorder *who* waits, but both sharing modes
/// complete the same workload with the same total LLC traffic profile
/// when there is no contention (disjoint sets).
#[test]
fn modes_agree_when_uncontended() {
    for (_, _, _, _, _, writes, seed) in sample_cases(8) {
        // 32-set partition, tiny ranges: every core misses into plenty
        // of free space, no set ever fills up.
        let a = run_shared(
            32,
            16,
            2,
            SharingMode::SetSequencer,
            1024,
            100,
            writes,
            seed,
        );
        let b = run_shared(32, 16, 2, SharingMode::BestEffort, 1024, 100, writes, seed);
        let ctx = format!("writes={writes} seed={seed:#x}");
        assert_eq!(a.stats.evictions_triggered, 0, "{ctx}");
        assert_eq!(b.stats.evictions_triggered, 0, "{ctx}");
        assert_eq!(a.execution_time(), b.execution_time(), "{ctx}");
    }
}

/// Private partitions are perfectly isolated: per-core statistics do not
/// depend on what the other cores run. One simulator instance serves all
/// the runs.
#[test]
fn private_partitions_isolate_latency() {
    let mut rng = Rng64::new(0x150_1A7E);
    let cfg = SystemConfig::private_partitions(4, 2, 2).unwrap();
    let sim = Simulator::new(cfg).unwrap();
    for _ in 0..8 {
        let seed = rng.next_u64();
        let other_ops = 1 + rng.below(400) as usize;
        let mine = UniformGen::new(2048, 100)
            .with_seed(seed)
            .core_trace(CoreId::new(0));
        let quiet = vec![];
        let noisy = UniformGen::new(2048, other_ops)
            .with_write_fraction(0.5)
            .with_seed(!seed)
            .core_trace(CoreId::new(1));
        let a = sim.run(vec![mine.clone(), quiet]).unwrap();
        let b = sim.run(vec![mine, noisy]).unwrap();
        // The neighbour's workload must not change core 0's cache
        // behaviour at all (bus slots are TDM-fixed; LLC is private).
        let sa = a.stats.core(CoreId::new(0));
        let sb = b.stats.core(CoreId::new(0));
        let ctx = format!("seed={seed:#x} other_ops={other_ops}");
        assert_eq!(sa.l1_hits, sb.l1_hits, "{ctx}");
        assert_eq!(sa.l2_hits, sb.l2_hits, "{ctx}");
        assert_eq!(sa.llc_hits, sb.llc_hits, "{ctx}");
        assert_eq!(sa.llc_fills, sb.llc_fills, "{ctx}");
        assert_eq!(sa.max_request_latency, sb.max_request_latency, "{ctx}");
        assert_eq!(sa.finished_at, sb.finished_at, "{ctx}");
    }
}
