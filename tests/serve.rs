//! End-to-end tests of the experiment service: served results must be
//! byte-identical to in-process runs at any thread count, duplicate
//! submissions — sequential or concurrent — must coalesce onto exactly
//! one execution, and the HTTP surface must fail cleanly.

use std::sync::{Arc, Barrier};
use std::time::Duration;

use predllc::explore::report::{render_csv, render_json};
use predllc::explore::{run_spec, Executor};
use predllc::serve::{
    Client, ClientError, Format, JobStatus, Limits, Server, ServerConfig, ServerHandle,
};
use predllc::ExperimentSpec;

/// A small but non-trivial spec: two platforms (one banked), two
/// workload families, 4 grid points.
const SPEC: &str = r#"{
    "name": "serve-e2e",
    "cores": 2,
    "configs": [
        {"label": "SS(1,4)", "partition": {"kind": "shared", "sets": 1, "ways": 4, "mode": "SS"}},
        {"partition": {"kind": "private", "sets": 4, "ways": 2},
         "memory": {"kind": "banked", "banks": 8, "mapping": "bank-private"}}
    ],
    "workloads": [
        {"kind": "uniform", "range_bytes": 4096, "ops": 300, "seed": 11, "write_fraction": 0.2},
        {"kind": "stride", "range_bytes": 4096, "stride": 64, "ops": 300}
    ]
}"#;

fn start(config: ServerConfig) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind an ephemeral port");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (handle, join)
}

fn stop(handle: &ServerHandle, join: std::thread::JoinHandle<()>) {
    handle.shutdown();
    join.join().expect("server thread");
}

/// Opens a result stream and collapses it — the common test shape.
fn fetch(client: &mut Client, id: &str, format: Format) -> Result<String, ClientError> {
    client.results(id, format)?.text()
}

/// Every non-2xx JSON answer must be `{"error": <non-empty>, "kind":
/// <taxonomy>}` (extra fields allowed, e.g. 409's `"status"`).
fn assert_error_shape(body: &str, kind: &str) {
    use predllc::explore::json::{self, Json};
    let doc = json::parse(body).unwrap_or_else(|e| panic!("error body is not JSON ({e}): {body}"));
    let message = doc.get("error").and_then(Json::as_str).unwrap_or_default();
    assert!(!message.is_empty(), "missing or empty 'error' in {body}");
    assert_eq!(
        doc.get("kind").and_then(Json::as_str),
        Some(kind),
        "wrong 'kind' in {body}"
    );
}

/// One raw HTTP/1.1 exchange for request shapes the typed client
/// cannot produce (wrong methods, bogus paths, malformed syntax).
/// Sends `connection: close` so reading to EOF terminates.
fn raw_request(addr: std::net::SocketAddr, request: &str) -> (u16, String) {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    let mut reply = String::new();
    stream.read_to_string(&mut reply).unwrap();
    let status = reply
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable status line in {reply:?}"));
    let body = reply.split_once("\r\n\r\n").map_or("", |(_, b)| b);
    (status, body.to_string())
}

#[test]
fn served_results_are_byte_identical_to_in_process_runs_at_any_thread_count() {
    // The in-process reference (thread count is irrelevant to the
    // bytes: the executor is deterministic — also asserted below).
    let spec = ExperimentSpec::parse(SPEC).unwrap();
    let reference_csv = render_csv(&run_spec(&spec, &Executor::new(1)).unwrap().grid);

    let mut served = Vec::new();
    for threads in [1, 2, 4] {
        let (handle, join) = start(ServerConfig {
            threads,
            ..ServerConfig::default()
        });
        let mut client = Client::new(handle.addr());
        let submitted = client.submit(SPEC).unwrap();
        assert!(!submitted.cached);
        assert_eq!(submitted.name, "serve-e2e");
        let done = client
            .wait_done(&submitted.id, Duration::from_secs(120))
            .unwrap();
        assert_eq!(done.status, "done");
        assert_eq!(done.points_done, done.points_total);

        let csv = fetch(&mut client, &submitted.id, Format::Csv).unwrap();
        assert_eq!(
            csv, reference_csv,
            "served CSV diverged at {threads} thread(s)"
        );
        // The JSON document matches an in-process render of the same
        // report at the server's thread count (no wall time recorded).
        let report = run_spec(&spec, &Executor::new(threads)).unwrap();
        let reference_json = render_json(
            &spec.name,
            Executor::new(threads).threads(),
            None,
            &report.grid,
            report.search.as_ref(),
        );
        assert_eq!(
            fetch(&mut client, &submitted.id, Format::Json).unwrap(),
            reference_json
        );
        served.push(csv);
        stop(&handle, join);
    }
    assert!(served.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn attribution_endpoint_serves_the_artifact_only_when_on() {
    use predllc::explore::{json, json::Json, PointAttribution};

    let (handle, join) = start(ServerConfig::default());
    let mut client = Client::new(handle.addr());

    // An attribution-off job answers 404 on the attribution endpoint,
    // so callers can tell "off" apart from "not ready" (409).
    let off = client.submit(SPEC).unwrap();
    client.wait_done(&off.id, Duration::from_secs(120)).unwrap();
    let off_csv = fetch(&mut client, &off.id, Format::Csv).unwrap();
    let off_json = fetch(&mut client, &off.id, Format::Json).unwrap();
    match client.results(&off.id, Format::Attribution) {
        Err(ClientError::Status { status: 404, body }) => {
            assert!(body.contains("attribution"), "{body}");
            assert_error_shape(&body, "not_found");
        }
        other => panic!(
            "expected 404 for an attribution-off job, got {:?}",
            other.map(|_| "a body stream")
        ),
    }
    assert!(
        !client
            .metrics()
            .unwrap()
            .contains("predllc_latency_component_cycles"),
        "an attribution-off job must not touch the component family"
    );

    // The same experiment with attribution on is a distinct job (its
    // own cache slot), serves byte-identical classic results, and the
    // attribution artifact parses back losslessly with the component
    // sums intact.
    let attributed = SPEC.replacen(
        "\"name\": \"serve-e2e\",",
        "\"name\": \"serve-e2e\",\n    \"attribution\": true,",
        1,
    );
    let on = client.submit(&attributed).unwrap();
    assert!(!on.cached, "attribution must not coalesce with the off job");
    assert_ne!(on.id, off.id);
    client.wait_done(&on.id, Duration::from_secs(120)).unwrap();
    assert_eq!(fetch(&mut client, &on.id, Format::Csv).unwrap(), off_csv);
    assert_eq!(fetch(&mut client, &on.id, Format::Json).unwrap(), off_json);

    // The attributed run also populated the per-component scrape
    // family (the off job, which ran first, must not have).
    let scrape = client.metrics().unwrap();
    assert!(
        scrape.contains("predllc_latency_component_cycles{component=\"bus\"}"),
        "no component family in:\n{scrape}"
    );

    let doc = json::parse(&fetch(&mut client, &on.id, Format::Attribution).unwrap()).unwrap();
    assert_eq!(doc.get("name").and_then(Json::as_str), Some("serve-e2e"));
    let Some(Json::Array(points)) = doc.get("points") else {
        panic!("attribution artifact has no points array");
    };
    assert_eq!(points.len(), 4, "one attribution per grid point");
    for p in points {
        let attr = PointAttribution::from_json(p.get("attribution").unwrap()).unwrap();
        assert!(attr.components.total().as_u64() > 0);
        let w = attr.witness.expect("every served point has a witness");
        assert_eq!(w.components.total(), w.latency, "witness sum broke");
    }

    stop(&handle, join);
}

#[test]
fn sequential_resubmission_is_a_cache_hit_with_one_execution() {
    let (handle, join) = start(ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    });
    let mut client = Client::new(handle.addr());
    let first = client.submit(SPEC).unwrap();
    client
        .wait_done(&first.id, Duration::from_secs(120))
        .unwrap();
    let first_body = fetch(&mut client, &first.id, Format::Csv).unwrap();

    // Same experiment, cosmetically different document: reordered keys,
    // different whitespace.
    let spec = ExperimentSpec::parse(SPEC).unwrap();
    let reordered = r#"{
        "cores": 2,
        "workloads": [
            {"seed": 11, "write_fraction": 0.2, "kind": "uniform", "ops": 300, "range_bytes": 4096},
            {"stride": 64, "ops": 300, "kind": "stride", "range_bytes": 4096}
        ],
        "configs": [
            {"partition": {"mode": "SS", "ways": 4, "sets": 1, "kind": "shared"}, "label": "SS(1,4)"},
            {"memory": {"mapping": "bank-private", "banks": 8, "kind": "banked"},
             "partition": {"ways": 2, "sets": 4, "kind": "private"}}
        ],
        "name": "serve-e2e"
    }"#;
    // Sanity: the reordered document really is the same experiment.
    assert_eq!(ExperimentSpec::parse(reordered).unwrap(), spec);

    let second = client.submit(reordered).unwrap();
    assert!(second.cached, "reordered duplicate was not coalesced");
    assert_eq!(second.id, first.id);
    assert_eq!(second.status, "done");
    assert_eq!(
        fetch(&mut client, &second.id, Format::Csv).unwrap(),
        first_body
    );

    assert_eq!(client.metric("predllc_cache_misses").unwrap(), 1);
    assert_eq!(client.metric("predllc_cache_hits").unwrap(), 1);
    assert_eq!(client.metric("predllc_jobs_done").unwrap(), 1);
    // Exactly one execution of the 4 unique points.
    assert_eq!(client.metric("predllc_points_simulated").unwrap(), 4);
    stop(&handle, join);
}

#[test]
fn concurrent_identical_submissions_coalesce_onto_one_execution() {
    const CLIENTS: usize = 8;
    let (handle, join) = start(ServerConfig {
        threads: 2,
        runners: 2,
        ..ServerConfig::default()
    });
    let addr = handle.addr();
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let workers: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = Client::new(addr);
                // Line every thread up so the submissions genuinely race.
                barrier.wait();
                let submitted = client.submit(SPEC).unwrap();
                client
                    .wait_done(&submitted.id, Duration::from_secs(120))
                    .unwrap();
                let body = fetch(&mut client, &submitted.id, Format::Csv).unwrap();
                (submitted.id, submitted.cached, body)
            })
        })
        .collect();
    let outcomes: Vec<(String, bool, String)> =
        workers.into_iter().map(|w| w.join().unwrap()).collect();

    // Every client got the same id and byte-identical result bodies.
    let (id0, _, body0) = &outcomes[0];
    assert!(outcomes.iter().all(|(id, _, _)| id == id0));
    assert!(outcomes.iter().all(|(_, _, body)| body == body0));
    // Exactly one submission created the job; the other N-1 coalesced.
    assert_eq!(
        outcomes.iter().filter(|(_, cached, _)| !cached).count(),
        1,
        "exactly one submission should be the cache miss"
    );

    let mut client = Client::new(addr);
    assert_eq!(client.metric("predllc_cache_misses").unwrap(), 1);
    assert_eq!(
        client.metric("predllc_cache_hits").unwrap(),
        (CLIENTS - 1) as u64
    );
    assert_eq!(client.metric("predllc_jobs_done").unwrap(), 1);
    assert_eq!(client.metric("predllc_points_simulated").unwrap(), 4);
    stop(&handle, join);
}

#[test]
fn point_dedup_counts_unique_work_through_the_service() {
    // Two physically identical configuration columns: 2x1 declared grid,
    // 1 unique point.
    let duplicated = r#"{
        "name": "serve-dedup", "cores": 2,
        "configs": [
            {"label": "A", "partition": {"kind": "shared", "sets": 1, "ways": 4, "mode": "SS"}},
            {"label": "B", "partition": {"kind": "shared", "sets": 1, "ways": 4, "mode": "SS"}}
        ],
        "workloads": [{"kind": "uniform", "range_bytes": 1024, "ops": 80, "seed": 3}]
    }"#;
    let (handle, join) = start(ServerConfig::default());
    let mut client = Client::new(handle.addr());
    let submitted = client.submit(duplicated).unwrap();
    assert_eq!(
        submitted.points_total, 1,
        "progress denominator is unique points"
    );
    client
        .wait_done(&submitted.id, Duration::from_secs(120))
        .unwrap();
    assert_eq!(client.metric("predllc_points_simulated").unwrap(), 1);
    // Both declared rows are served, with their own labels.
    let csv = fetch(&mut client, &submitted.id, Format::Csv).unwrap();
    assert_eq!(csv.lines().count(), 3);
    assert!(csv.contains("\nA,") && csv.contains("\nB,"));
    stop(&handle, join);
}

#[test]
fn http_error_paths_answer_cleanly() {
    let (handle, join) = start(ServerConfig {
        limits: Limits {
            max_body: 2048,
            ..Limits::default()
        },
        ..ServerConfig::default()
    });
    let mut client = Client::new(handle.addr());

    // Invalid JSON and schema violations → 400 with the parser's story,
    // in the `{"error", "kind"}` shape.
    for bad in [
        "{",
        r#"{"name": "x"}"#,
        r#"{"name":"x","cores":2,"configz":[]}"#,
    ] {
        match client.submit(bad) {
            Err(ClientError::Status { status: 400, body }) => {
                assert_error_shape(&body, "spec");
            }
            other => panic!("expected 400 for {bad:?}, got {other:?}"),
        }
    }
    // Unknown ids → 404, for status and results alike.
    for call in [
        client
            .status("00000000000000000000000000000000")
            .unwrap_err(),
        fetch(&mut client, "00000000000000000000000000000000", Format::Csv).unwrap_err(),
        client.status("not-even-hex").unwrap_err(),
    ] {
        match call {
            ClientError::Status { status, body } => {
                assert_eq!(status, 404);
                assert_error_shape(&body, "not_found");
            }
            other => panic!("expected 404, got {other:?}"),
        }
    }
    // An over-limit body → 413.
    let huge = format!(
        r#"{{"name": "{}", "cores": 2, "configs": [], "workloads": []}}"#,
        "x".repeat(4096)
    );
    match client.submit(&huge) {
        Err(ClientError::Status { status: 413, body }) => {
            assert_error_shape(&body, "limits");
        }
        // The server may also slam the connection after refusing; both
        // are clean refusals.
        Err(ClientError::Io(_) | ClientError::Protocol(_)) => {}
        other => panic!("expected 413 or a closed connection, got {other:?}"),
    }
    // The service is still healthy afterwards.
    let mut fresh = Client::new(handle.addr());
    assert_eq!(fresh.healthz().unwrap(), "ok\n");
    assert_eq!(fresh.metric("predllc_jobs_failed").unwrap(), 0);
    stop(&handle, join);
}

#[test]
fn deeply_nested_body_is_a_400_not_a_stack_overflow() {
    // An adversarial body of half a million brackets used to overflow
    // the 2 MiB connection-thread stack inside the recursive JSON
    // parser; the parser's depth limit turns it into a positioned parse
    // error, which the service maps to a plain 400.
    let (handle, join) = start(ServerConfig {
        limits: Limits {
            max_body: 2 << 20,
            ..Limits::default()
        },
        ..ServerConfig::default()
    });
    let mut client = Client::new(handle.addr());
    let depth = 500_000;
    let bomb = "[".repeat(depth) + &"]".repeat(depth);
    match client.submit(&bomb) {
        Err(ClientError::Status { status: 400, body }) => {
            assert!(
                body.contains("depth"),
                "error should name the limit: {body}"
            );
            assert_error_shape(&body, "spec");
        }
        other => panic!("expected 400 for the bracket bomb, got {other:?}"),
    }
    // A body just inside the limit parses (and then fails schema
    // validation, still a clean 400 — not a crash).
    let deep_ok = "[".repeat(100) + &"]".repeat(100);
    match client.submit(&deep_ok) {
        Err(ClientError::Status { status: 400, body }) => {
            assert!(!body.contains("depth"), "{body}");
            assert_error_shape(&body, "spec");
        }
        other => panic!("expected a schema 400, got {other:?}"),
    }
    // The connection thread survived; the service is still healthy.
    let mut fresh = Client::new(handle.addr());
    assert_eq!(fresh.healthz().unwrap(), "ok\n");
    stop(&handle, join);
}

#[test]
fn metrics_render_exactly_including_fleet_counters() {
    // Every pre-exposition counter line survives verbatim (same name,
    // same `name value` shape), now wrapped in HELP/TYPE metadata plus
    // per-endpoint latency histograms. The fetch counts itself, so
    // after one healthz this is request number two. The whole body must
    // pass the in-tree Prometheus exposition validator.
    let (handle, join) = start(ServerConfig::default());
    let mut client = Client::new(handle.addr());
    client.healthz().unwrap();
    let body = client.metrics().unwrap();
    for line in [
        "predllc_jobs_queued 0",
        "predllc_jobs_running 0",
        "predllc_jobs_done 0",
        "predllc_jobs_failed 0",
        "predllc_cache_hits 0",
        "predllc_cache_misses 0",
        "predllc_points_simulated 0",
        "predllc_http_requests 2",
        "predllc_workers_alive 0",
        "predllc_workers_lost 0",
        "predllc_points_assigned 0",
        "predllc_points_retried 0",
        "predllc_points_cache_shared 0",
    ] {
        assert!(
            body.lines().any(|l| l == line),
            "compat counter line '{line}' missing from:\n{body}"
        );
    }
    // The healthz request landed in the per-endpoint latency histogram.
    assert!(
        body.contains("predllc_http_request_duration_ns_bucket{endpoint=\"healthz\""),
        "no healthz latency series in:\n{body}"
    );
    assert!(body.ends_with('\n'), "exposition must end with a newline");
    let summary = predllc::obs::expo::validate(&body).expect("/metrics must validate");
    assert!(summary.families >= 14, "families: {}", summary.families);
    stop(&handle, join);
}

#[test]
fn point_endpoint_computes_caches_and_positions_errors() {
    use predllc::explore::{measure, PointMeasurement, PointRequest};

    let spec = ExperimentSpec::parse(SPEC).unwrap();
    let point = PointRequest {
        cores: spec.cores,
        config: spec.configs[0].clone(),
        workload: spec.workloads[0].clone(),
        attribution: false,
    };
    let wire = point.render().unwrap();
    let fingerprint = point.fingerprint().to_hex();

    let (handle, join) = start(ServerConfig::default());
    let mut client = Client::new(handle.addr());

    // First POST simulates; the measurement round-trips to exactly what
    // an in-process measure() of the same point produces.
    let reply = client.point(&wire).unwrap();
    assert!(!reply.cached);
    assert_eq!(reply.fingerprint, fingerprint);
    let shipped = PointMeasurement::from_json(&reply.measurement).unwrap();
    let config = spec.configs[0].build(spec.cores).unwrap();
    let workload = spec.workloads[0].spec.build(spec.cores);
    assert_eq!(shipped, measure(&config, &workload).unwrap());

    // The re-POST and the GET are shared-cache answers, not re-runs.
    let again = client.point(&wire).unwrap();
    assert!(again.cached);
    assert_eq!(again.measurement, reply.measurement);
    let fetched = client.cached_point(&fingerprint).unwrap();
    assert!(fetched.cached);
    assert_eq!(fetched.measurement, reply.measurement);
    assert_eq!(client.metric("predllc_points_simulated").unwrap(), 1);
    assert_eq!(client.metric("predllc_points_cache_shared").unwrap(), 2);

    // An unbuildable platform is a positioned 422, not a generic 500.
    let bad = ExperimentSpec::parse(
        r#"{
        "name": "bad", "cores": 2,
        "configs": [{"partition": {"kind": "private", "sets": 32, "ways": 16}}],
        "workloads": [{"kind": "uniform", "range_bytes": 1024, "ops": 10}]
    }"#,
    )
    .unwrap();
    let bad_wire = PointRequest {
        cores: bad.cores,
        config: bad.configs[0].clone(),
        workload: bad.workloads[0].clone(),
        attribution: false,
    }
    .render()
    .unwrap();
    match client.point(&bad_wire) {
        Err(ClientError::Status { status: 422, body }) => {
            assert_error_shape(&body, "config");
        }
        other => panic!("expected 422, got {other:?}"),
    }

    // Unknown or malformed fingerprints → 404.
    for fp in ["00000000000000000000000000000000", "not-hex"] {
        match client.cached_point(fp) {
            Err(ClientError::Status { status: 404, body }) => {
                assert_error_shape(&body, "not_found");
            }
            other => panic!("expected 404 for {fp:?}, got {other:?}"),
        }
    }
    stop(&handle, join);
}

#[test]
fn every_error_answer_carries_error_and_kind() {
    use predllc::serve::MonitorConfig;

    // Monitoring on, so the history endpoint exists and its query
    // validation is reachable.
    let (handle, join) = start(ServerConfig {
        monitor: Some(MonitorConfig::default()),
        ..ServerConfig::default()
    });
    let addr = handle.addr();
    let mut client = Client::new(addr);

    // Routing errors: unknown endpoint → 404, wrong method → 405.
    let (status, body) = raw_request(addr, "GET /nope HTTP/1.1\r\nconnection: close\r\n\r\n");
    assert_eq!(status, 404);
    assert_error_shape(&body, "not_found");
    let (status, body) = raw_request(
        addr,
        "DELETE /healthz HTTP/1.1\r\nconnection: close\r\n\r\n",
    );
    assert_eq!(status, 405);
    assert_error_shape(&body, "method_not_allowed");

    // Malformed HTTP syntax → 400 "http".
    let (status, body) = raw_request(addr, "NOT-EVEN-HTTP\r\n\r\n");
    assert_eq!(status, 400);
    assert_error_shape(&body, "http");

    // Bad query parameter on a real endpoint → 400 "query".
    let (status, body) = raw_request(
        addr,
        "GET /v1/metrics/history?window=banana HTTP/1.1\r\nconnection: close\r\n\r\n",
    );
    assert_eq!(status, 400);
    assert_error_shape(&body, "query");

    // Malformed point request body → 400 "point".
    match client.point("{") {
        Err(ClientError::Status { status: 400, body }) => assert_error_shape(&body, "point"),
        other => panic!("expected 400 for a bad point body, got {other:?}"),
    }

    // Not-ready results → 409 "not_ready" (plus the job's status). A
    // slow job occupies the single runner, so the one submitted behind
    // it is reliably still queued when we ask for its results.
    let slow = SPEC.replace("\"ops\": 300", "\"ops\": 20000");
    let slow_id = client.submit(&slow).unwrap().id;
    let queued = client.submit(SPEC).unwrap();
    match client.results(&queued.id, Format::Csv) {
        Err(ClientError::Status { status: 409, body }) => {
            assert_error_shape(&body, "not_ready");
            assert!(body.contains("\"status\""), "{body}");
        }
        other => panic!(
            "expected 409 while queued, got {:?}",
            other.map(|_| "a body stream")
        ),
    }
    client
        .wait_done(&slow_id, Duration::from_secs(300))
        .unwrap();
    client
        .wait_done(&queued.id, Duration::from_secs(300))
        .unwrap();

    // A job that fails during the run → 500 "job" on its results.
    let unbuildable = r#"{
        "name": "will-fail", "cores": 2,
        "configs": [{"partition": {"kind": "private", "sets": 32, "ways": 16}}],
        "workloads": [{"kind": "uniform", "range_bytes": 1024, "ops": 10}]
    }"#;
    let failing = client.submit(unbuildable).unwrap();
    match client.wait_done(&failing.id, Duration::from_secs(300)) {
        Err(ClientError::Status { status: 500, .. }) => {}
        other => panic!("expected the job to fail, got {other:?}"),
    }
    match client.results(&failing.id, Format::Csv) {
        Err(ClientError::Status { status: 500, body }) => assert_error_shape(&body, "job"),
        other => panic!(
            "expected 500 for a failed job, got {:?}",
            other.map(|_| "a body stream")
        ),
    }

    // Unknown results format on a finished job → 400 "format" (the
    // done/ready ladder answers first, so this needs a real done job).
    let (status, body) = raw_request(
        addr,
        &format!(
            "GET /v1/experiments/{}/results?format=xml HTTP/1.1\r\nconnection: close\r\n\r\n",
            queued.id
        ),
    );
    assert_eq!(status, 400);
    assert_error_shape(&body, "format");
    stop(&handle, join);

    // Monitoring off → the monitor endpoints 404 with the same shape.
    let (handle, join) = start(ServerConfig::default());
    let mut client = Client::new(handle.addr());
    for call in [
        client.metrics_history(None, None).unwrap_err(),
        client.alerts().unwrap_err(),
    ] {
        match call {
            ClientError::Status { status: 404, body } => assert_error_shape(&body, "not_found"),
            other => panic!("expected 404 with monitoring off, got {other:?}"),
        }
    }
    stop(&handle, join);
}

/// The pre-0.11 result accessors still work (one release of grace) and
/// serve bytes identical to the streamed API they now wrap.
#[test]
#[allow(deprecated)]
fn deprecated_result_wrappers_still_serve_identical_bytes() {
    let (handle, join) = start(ServerConfig::default());
    let mut client = Client::new(handle.addr());
    let attributed = SPEC.replacen(
        "\"name\": \"serve-e2e\",",
        "\"name\": \"serve-e2e\",\n    \"attribution\": true,",
        1,
    );
    let submitted = client.submit(&attributed).unwrap();
    client
        .wait_done(&submitted.id, Duration::from_secs(120))
        .unwrap();
    let id = &submitted.id;
    assert_eq!(
        client.results_csv(id).unwrap(),
        fetch(&mut client, id, Format::Csv).unwrap()
    );
    assert_eq!(
        client.results_json(id).unwrap(),
        fetch(&mut client, id, Format::Json).unwrap()
    );
    assert_eq!(
        client.attribution(id).unwrap(),
        fetch(&mut client, id, Format::Attribution).unwrap()
    );
    stop(&handle, join);
}

#[test]
fn shutdown_drains_every_accepted_job() {
    let (handle, join) = start(ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    });
    let mut client = Client::new(handle.addr());
    let mut ids = Vec::new();
    for seed in 0..3 {
        let spec = SPEC.replace("\"seed\": 11", &format!("\"seed\": {seed}"));
        ids.push(client.submit(&spec).unwrap().id);
    }
    // Shut down immediately: accepted jobs must finish anyway.
    handle.shutdown();
    join.join().unwrap();
    for id in &ids {
        let job = handle.job(id).expect("job stays registered");
        assert_eq!(job.status(), JobStatus::Done, "job {id} was dropped");
        assert!(job.result().is_some());
    }
    let metrics = handle.metrics();
    assert_eq!(metrics.jobs_done, 3);
    assert_eq!(metrics.jobs_queued, 0);
    assert_eq!(metrics.jobs_running, 0);
}
