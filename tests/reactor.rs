//! Adversarial-client tests against the event-driven reactor: peers
//! that trickle bytes, stop reading mid-stream, or vanish mid-request
//! must never wedge the service or leak per-connection state, and the
//! reactor must shed load past its dispatch queue instead of queueing
//! without bound.
//!
//! The reactor exists only on Linux (epoll); elsewhere `ServeMode`
//! resolves to the blocking fallback and these scenarios don't apply.
#![cfg(target_os = "linux")]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use predllc::serve::{Client, ClientError, Format, ServeMode, Server, ServerConfig, ServerHandle};

const SPEC: &str = r#"{
    "name": "reactor-e2e",
    "cores": 2,
    "configs": [
        {"partition": {"kind": "shared", "sets": 1, "ways": 4, "mode": "SS"}},
        {"partition": {"kind": "private", "sets": 4, "ways": 2}}
    ],
    "workloads": [
        {"kind": "uniform", "range_bytes": 4096, "ops": 300, "seed": 11},
        {"kind": "stride", "range_bytes": 4096, "stride": 64, "ops": 300}
    ]
}"#;

fn start(config: ServerConfig) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind an ephemeral port");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (handle, join)
}

fn stop(handle: &ServerHandle, join: std::thread::JoinHandle<()>) {
    handle.shutdown();
    join.join().expect("server thread");
}

fn fetch(client: &mut Client, id: &str, format: Format) -> String {
    client.results(id, format).unwrap().text().unwrap()
}

/// Polls the open-connections gauge until it drops to `want` (the
/// poller's own connection counts, so `want` is usually 1).
fn wait_connections_open(client: &mut Client, want: u64, deadline: Duration) {
    let t0 = Instant::now();
    loop {
        let open = client.metric("predllc_connections_open").unwrap();
        if open <= want {
            return;
        }
        assert!(
            t0.elapsed() < deadline,
            "connections_open stuck at {open} (want <= {want})"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn slow_loris_trickles_are_reaped_without_stalling_service() {
    let (handle, join) = start(ServerConfig {
        idle_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    // Eight connections each trickle one byte of a (long but valid)
    // request every 50 ms — at that rate the request would take ~15 s
    // to arrive. Reads must NOT reset the idle clock, so the reactor
    // reaps them at ~300 ms despite the steady byte drip.
    let request = format!("GET /healthz?pad={} HTTP/1.1\r\n\r\n", "a".repeat(256));
    let cut_off = Arc::new(AtomicBool::new(false));
    let tricklers: Vec<_> = (0..8)
        .map(|_| {
            let request = request.clone();
            let cut_off = Arc::clone(&cut_off);
            let mut stream = TcpStream::connect(addr).unwrap();
            std::thread::spawn(move || {
                let t0 = Instant::now();
                for byte in request.as_bytes() {
                    if stream.write_all(std::slice::from_ref(byte)).is_err() {
                        cut_off.store(true, Ordering::Relaxed);
                        return (t0.elapsed(), stream);
                    }
                    std::thread::sleep(Duration::from_millis(50));
                }
                (t0.elapsed(), stream)
            })
        })
        .collect();

    // The service keeps answering promptly while the loris dangle.
    let mut client = Client::new(addr);
    let t0 = Instant::now();
    assert_eq!(client.healthz().unwrap(), "ok\n");
    assert!(
        t0.elapsed() < Duration::from_secs(2),
        "healthz took {:?} behind slow-loris load",
        t0.elapsed()
    );

    for trickler in tricklers {
        let (elapsed, mut stream) = trickler.join().unwrap();
        // Either the write died (reset seen) or the trickle "finished"
        // against a closed socket — in both cases well before the
        // request could have been delivered at trickle pace.
        assert!(
            elapsed < Duration::from_secs(10),
            "trickler survived {elapsed:?}"
        );
        // The server must have terminated the connection: no 200 ever
        // comes back.
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut reply = Vec::new();
        let _ = stream.read_to_end(&mut reply);
        assert!(
            !reply.starts_with(b"HTTP/1.1 200"),
            "a slow-loris request must never be answered"
        );
    }

    // No leaked per-connection state: only the poller's own connection
    // stays open.
    wait_connections_open(&mut client, 1, Duration::from_secs(10));
    stop(&handle, join);
}

#[test]
fn mid_request_disconnects_leak_no_connection_state() {
    let (handle, join) = start(ServerConfig {
        idle_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    // Fifty clients vanish mid-request: some after the request line,
    // some mid-header, some mid-body.
    for i in 0..50 {
        let mut stream = TcpStream::connect(addr).unwrap();
        let partial: &[u8] = match i % 3 {
            0 => b"GET /healthz HT",
            1 => b"POST /v1/experiments HTTP/1.1\r\ncontent-le",
            _ => b"POST /v1/experiments HTTP/1.1\r\ncontent-length: 64\r\n\r\n{\"name\"",
        };
        stream.write_all(partial).unwrap();
        drop(stream);
    }

    // The service answers promptly and every dropped connection's
    // state is reclaimed.
    let mut client = Client::new(addr);
    assert_eq!(client.healthz().unwrap(), "ok\n");
    wait_connections_open(&mut client, 1, Duration::from_secs(10));
    assert_eq!(client.metric("predllc_jobs_failed").unwrap(), 0);
    stop(&handle, join);
}

#[test]
fn stopped_reader_mid_chunked_response_neither_stalls_nor_corrupts() {
    let (handle, join) = start(ServerConfig {
        idle_timeout: Duration::from_millis(500),
        ..ServerConfig::default()
    });
    let addr = handle.addr();
    let mut client = Client::new(addr);
    let submitted = client.submit(SPEC).unwrap();
    client
        .wait_done(&submitted.id, Duration::from_secs(120))
        .unwrap();
    let reference = fetch(&mut client, &submitted.id, Format::Csv);

    // A raw peer requests the streamed CSV and then stops reading.
    let mut stalled = TcpStream::connect(addr).unwrap();
    stalled
        .write_all(
            format!(
                "GET /v1/experiments/{}/results?format=csv HTTP/1.1\r\n\r\n",
                submitted.id
            )
            .as_bytes(),
        )
        .unwrap();
    std::thread::sleep(Duration::from_millis(100)); // response in flight

    // While the reader sits on its full socket, everyone else is
    // served at full speed with identical bytes.
    let t0 = Instant::now();
    assert_eq!(client.healthz().unwrap(), "ok\n");
    assert_eq!(fetch(&mut client, &submitted.id, Format::Csv), reference);
    assert!(
        t0.elapsed() < Duration::from_secs(2),
        "a stalled reader slowed other clients: {:?}",
        t0.elapsed()
    );

    // Resume reading late: every byte the server sent is intact (the
    // kernel buffered the finished response; the idle reaper then
    // closed the connection, so read_to_end terminates).
    std::thread::sleep(Duration::from_millis(700));
    stalled
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut raw = Vec::new();
    stalled.read_to_end(&mut raw).unwrap();
    let raw = String::from_utf8(raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 200"), "got {raw:?}");
    assert!(
        raw.contains("transfer-encoding: chunked"),
        "results must stream chunked on HTTP/1.1: {raw:?}"
    );
    assert!(
        raw.ends_with("0\r\n\r\n"),
        "chunked terminator missing: {raw:?}"
    );

    wait_connections_open(&mut client, 1, Duration::from_secs(10));
    stop(&handle, join);
}

#[test]
fn dispatch_queue_overflow_sheds_429_with_retry_after() {
    use predllc::explore::{ExperimentSpec, PointRequest};

    let (handle, join) = start(ServerConfig {
        mode: ServeMode::Reactor,
        dispatchers: 1,
        max_dispatch_queue: 1,
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    // A point heavy enough to hold the single dispatcher for a while —
    // release builds simulate orders of magnitude faster than debug, so
    // the op count scales with the profile to keep the dispatcher busy
    // past both stagger sleeps in either build.
    let ops = if cfg!(debug_assertions) {
        300_000
    } else {
        20_000_000
    };
    let slow_spec = ExperimentSpec::parse(&format!(
        r#"{{
        "name": "slow-point", "cores": 2,
        "configs": [{{"partition": {{"kind": "shared", "sets": 1, "ways": 4, "mode": "SS"}}}}],
        "workloads": [{{"kind": "uniform", "range_bytes": 65536, "ops": {ops}, "seed": 5}}]
    }}"#
    ))
    .unwrap();
    let wire = PointRequest {
        cores: slow_spec.cores,
        config: slow_spec.configs[0].clone(),
        workload: slow_spec.workloads[0].clone(),
        attribution: false,
    }
    .render()
    .unwrap();

    // Occupy the dispatcher, then fill the 1-deep queue. (The second
    // point must be physically distinct or it would be a cache hit.)
    let wire2 = wire.replace("\"seed\":5", "\"seed\":6");
    let spawn_post = |wire: String| {
        std::thread::spawn(move || {
            Client::new(addr)
                .with_timeout(Duration::from_secs(300))
                .point(&wire)
                .map(|_| ())
        })
    };
    let busy = spawn_post(wire.clone());
    std::thread::sleep(Duration::from_millis(150));
    let queued = spawn_post(wire2);
    std::thread::sleep(Duration::from_millis(150));

    // The third heavy request is shed: 429, Retry-After, and the
    // `{"error", "kind"}` shape — not queued behind the others.
    let mut shed = TcpStream::connect(addr).unwrap();
    shed.write_all(
        format!(
            "POST /v1/points HTTP/1.1\r\ncontent-type: application/json\r\n\
             content-length: {}\r\nconnection: close\r\n\r\n{}",
            wire.len(),
            wire
        )
        .as_bytes(),
    )
    .unwrap();
    shed.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let t0 = Instant::now();
    let mut reply = String::new();
    shed.read_to_string(&mut reply).unwrap();
    assert!(
        reply.starts_with("HTTP/1.1 429"),
        "expected a 429 shed, got {reply:?}"
    );
    assert!(
        t0.elapsed() < Duration::from_secs(2),
        "the shed answer must be immediate, took {:?}",
        t0.elapsed()
    );
    assert!(
        reply.contains("retry-after:"),
        "no Retry-After in {reply:?}"
    );
    assert!(
        reply.contains("\"kind\":\"backpressure\""),
        "wrong error shape: {reply:?}"
    );

    // The occupying requests finish normally; the shed one is counted.
    busy.join().unwrap().expect("first point should succeed");
    queued.join().unwrap().expect("queued point should succeed");
    let mut client = Client::new(addr);
    assert!(client.metric("predllc_requests_shed").unwrap() >= 1);
    stop(&handle, join);
}

#[test]
fn reactor_and_blocking_fallback_serve_identical_bytes() {
    let mut served = Vec::new();
    for mode in [ServeMode::Reactor, ServeMode::Blocking] {
        let (handle, join) = start(ServerConfig {
            mode,
            ..ServerConfig::default()
        });
        let addr = handle.addr();
        let mut client = Client::new(addr);
        let attributed = SPEC.replacen(
            "\"name\": \"reactor-e2e\",",
            "\"name\": \"reactor-e2e\",\n    \"attribution\": true,",
            1,
        );
        let submitted = client.submit(&attributed).unwrap();
        client
            .wait_done(&submitted.id, Duration::from_secs(120))
            .unwrap();
        let csv = fetch(&mut client, &submitted.id, Format::Csv);
        let json = fetch(&mut client, &submitted.id, Format::Json);
        let attribution = fetch(&mut client, &submitted.id, Format::Attribution);
        let health = client.healthz().unwrap();
        let not_found = match client.results("00000000000000000000000000000000", Format::Csv) {
            Err(ClientError::Status { status: 404, body }) => body,
            other => panic!("expected 404, got {:?}", other.map(|_| "a body stream")),
        };
        // An HTTP/1.0 peer gets the same payload with content-length
        // framing (chunked encoding is 1.1-only).
        let mut ancient = TcpStream::connect(addr).unwrap();
        ancient
            .write_all(
                format!(
                    "GET /v1/experiments/{}/results?format=csv HTTP/1.0\r\n\r\n",
                    submitted.id
                )
                .as_bytes(),
            )
            .unwrap();
        let mut raw = String::new();
        ancient
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        ancient.read_to_string(&mut raw).unwrap();
        assert!(raw.contains("content-length:"), "{mode:?}: {raw:?}");
        assert!(!raw.contains("transfer-encoding"), "{mode:?}: {raw:?}");
        let (_, http10_body) = raw.split_once("\r\n\r\n").unwrap();
        assert_eq!(http10_body, csv, "{mode:?}: HTTP/1.0 body diverged");

        served.push((csv, json, attribution, health, not_found));
        stop(&handle, join);
    }
    assert_eq!(
        served[0], served[1],
        "reactor and blocking modes must serve byte-identical answers"
    );
}
