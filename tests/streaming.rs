//! API-equivalence tests for the streaming workload redesign.
//!
//! The contract: running a streaming [`Workload`] and running its
//! materialized `Vec<Vec<MemOp>>` twin produce **byte-identical**
//! [`RunReport`] statistics, for every paper configuration family
//! (SS / NSS / P), and one `Simulator` instance serves any number of
//! successive runs without reconstruction.

use predllc::workload::rng::Rng64;
use predllc::workload_gen::{HotColdGen, PointerChaseGen, StrideGen, UniformGen};
use predllc::{
    MultiCore, RunReport, SharingMode, SimError, Simulator, SystemConfig, TraceSet, Workload,
};

/// The paper's three configuration families at one (sets, ways, n).
fn families(sets: u32, ways: u32, n: u16) -> Vec<(&'static str, SystemConfig)> {
    vec![
        (
            "SS",
            SystemConfig::shared_partition(sets, ways, n, SharingMode::SetSequencer).unwrap(),
        ),
        (
            "NSS",
            SystemConfig::shared_partition(sets, ways, n, SharingMode::BestEffort).unwrap(),
        ),
        (
            "P",
            SystemConfig::private_partitions(sets, ways, n).unwrap(),
        ),
    ]
}

fn assert_reports_identical(a: &RunReport, b: &RunReport, ctx: &str) {
    assert_eq!(a.stats, b.stats, "{ctx}: stats differ");
    assert_eq!(a.cycles, b.cycles, "{ctx}: cycle counts differ");
    assert_eq!(a.timed_out, b.timed_out, "{ctx}: timeout flags differ");
}

/// Property-style sweep: across pseudo-random parameters and all three
/// config families, a streamed `UniformGen` run and its materialized
/// twin (both as `Vec<Vec<MemOp>>` and as `TraceSet`) are identical.
#[test]
fn streaming_equals_materialized_across_families() {
    let mut rng = Rng64::new(0x57_BEA4);
    for case in 0..8 {
        let sets = 1 + rng.below(4) as u32;
        let ways = 1u32 << rng.below(3);
        let n = 2 + rng.below(3) as u16;
        let range = 1u64 << (10 + rng.below(4));
        let writes = rng.below(50) as f64 / 100.0;
        let seed = rng.next_u64();
        let gen = UniformGen::new(range, 300)
            .with_seed(seed)
            .with_write_fraction(writes)
            .with_cores(n);
        for (family, cfg) in families(sets, ways, n) {
            let ctx =
                format!("case {case}: {family}({sets},{ways},{n}) range={range} seed={seed:#x}");
            let sim = Simulator::new(cfg).unwrap();
            let streamed = sim.run(&gen).unwrap();
            let vec_twin = sim.run(gen.materialize()).unwrap();
            let set_twin = sim.run(TraceSet::new("twin", gen.traces(n))).unwrap();
            assert_reports_identical(&streamed, &vec_twin, &ctx);
            assert_reports_identical(&streamed, &set_twin, &ctx);
        }
    }
}

/// Heterogeneous per-core streams compose with [`MultiCore`] and match
/// their materialized twins too.
#[test]
fn multicore_composition_equals_materialized() {
    let base = |i: u64| i * 16_384;
    let w = MultiCore::new()
        .core(StrideGen::new(base(0), 4096, 400))
        .core(PointerChaseGen::new(base(1), 4096, 400).with_seed(3))
        .core(HotColdGen::new(base(2), 8192, 400).with_seed(4))
        .core(UniformGen::new(4096, 400).with_seed(5));
    for (family, cfg) in families(4, 4, 4) {
        let sim = Simulator::new(cfg).unwrap();
        let streamed = sim.run(&w).unwrap();
        let twin = sim.run(w.materialize()).unwrap();
        assert_reports_identical(&streamed, &twin, family);
    }
}

/// Acceptance criterion: a single `Simulator` runs ≥ 3 successive
/// workloads without reconstruction, and repeated runs of the same
/// workload are identical (no state leaks between runs).
#[test]
fn one_simulator_many_workloads() {
    let cfg = SystemConfig::shared_partition(8, 4, 4, SharingMode::SetSequencer).unwrap();
    let sim = Simulator::new(cfg).unwrap();
    let workloads: Vec<UniformGen> = (0..4)
        .map(|i| {
            UniformGen::new(2048 << i, 250)
                .with_seed(0xAB + i)
                .with_write_fraction(0.2)
                .with_cores(4)
        })
        .collect();
    let first_pass: Vec<RunReport> = workloads.iter().map(|w| sim.run(w).unwrap()).collect();
    let second_pass: Vec<RunReport> = workloads.iter().map(|w| sim.run(w).unwrap()).collect();
    for (i, (a, b)) in first_pass.iter().zip(&second_pass).enumerate() {
        assert_reports_identical(a, b, &format!("workload {i} replay"));
    }
    // The runs really were distinct workloads (different ranges change
    // the miss profile).
    assert!(first_pass.windows(2).any(|w| w[0].stats != w[1].stats));
}

/// Acceptance criterion: a streaming 1M-op-per-core run completes with
/// memory independent of trace length (no `Vec<MemOp>` materialization
/// on the hot path) and identical stats to the materialized equivalent.
///
/// The workload's working set fits the private hierarchy, so the run is
/// dominated by the generator stream, not by bus traffic — this is the
/// trace-length-scaling path the streaming API exists for.
#[test]
fn million_op_stream_matches_materialized_twin() {
    const OPS: usize = 1_000_000;
    let cfg = SystemConfig::private_partitions(8, 4, 1).unwrap();
    let sim = Simulator::new(cfg).unwrap();
    let gen = UniformGen::new(2048, OPS).with_seed(0x1717).with_cores(1);
    let streamed = sim.run(&gen).unwrap();
    assert_eq!(
        streamed.stats.core(predllc::CoreId::new(0)).ops_completed,
        OPS as u64
    );
    let twin = sim.run(gen.materialize()).unwrap();
    assert_reports_identical(&streamed, &twin, "1M-op uniform");
}

/// The redesigned run API reports workload/system shape mismatches as a
/// typed error instead of panicking.
#[test]
fn mismatched_workload_is_a_typed_error() {
    let cfg = SystemConfig::shared_partition(1, 4, 4, SharingMode::SetSequencer).unwrap();
    let sim = Simulator::new(cfg).unwrap();
    let narrow = UniformGen::new(1024, 10).with_cores(2);
    assert_eq!(
        sim.run(&narrow).unwrap_err(),
        SimError::CoreCountMismatch {
            workload_cores: 2,
            system_cores: 4
        }
    );
    // The simulator survives the error and keeps running valid work.
    let ok = sim.run(narrow.with_cores(4)).unwrap();
    assert!(!ok.timed_out);
}
