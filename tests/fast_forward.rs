//! Differential property suite: the fast-forward engine must be
//! bit-identical to the slot-by-slot reference engine.
//!
//! Every test runs the same (configuration, workload) pair through both
//! [`EngineMode::Reference`] and [`EngineMode::FastForward`] and asserts
//! the full [`predllc::sim::SimStats`] — which includes every per-core
//! counter *and* the per-core latency histograms — plus the report's
//! `timed_out` flag and cycle count are equal. The grids are randomized
//! but deterministic (splitmix-style RNG, fixed seeds), the same pattern
//! as the other property loops in this repo's offline build.

use predllc::model::{Address, CacheGeometry, CoreId, Cycles, MemOp, SlotWidth};
use predllc::workload::rng::Rng64;
use predllc::workload_gen::{HotColdGen, PointerChaseGen, StrideGen, UniformGen};
use predllc::{
    ArbiterPolicy, EngineMode, MemoryConfig, MultiCore, PartitionSpec, ReplacementKind, RunReport,
    SharingMode, Simulator, SystemConfig, SystemConfigBuilder, TdmSchedule, Workload,
};

/// Runs one workload under both engines and asserts report equality.
/// Returns the (identical) report for additional scenario assertions.
fn assert_engines_agree(
    build: impl Fn(EngineMode) -> SystemConfig,
    workload: &dyn Workload,
    what: &str,
) -> RunReport {
    let reference = Simulator::new(build(EngineMode::Reference))
        .expect("valid config")
        .run(workload)
        .unwrap_or_else(|e| panic!("{what}: reference run failed: {e}"));
    let fast_cfg = build(EngineMode::FastForward);
    assert_eq!(
        fast_cfg.effective_engine(),
        EngineMode::FastForward,
        "{what}: fast-forward did not engage"
    );
    let fast = Simulator::new(fast_cfg)
        .expect("valid config")
        .run(workload)
        .unwrap_or_else(|e| panic!("{what}: fast run failed: {e}"));
    assert_eq!(reference.stats, fast.stats, "{what}: stats diverged");
    assert_eq!(
        reference.timed_out, fast.timed_out,
        "{what}: timeout flag diverged"
    );
    assert_eq!(
        reference.cycles, fast.cycles,
        "{what}: cycle count diverged"
    );
    // The histogram equality is implied by SimStats, but assert the
    // derived views too — they are what reports consume.
    assert_eq!(
        reference.latency_histogram(),
        fast.latency_histogram(),
        "{what}: merged histograms diverged"
    );
    assert!(
        fast.events.events().is_empty(),
        "{what}: fast logged events"
    );
    fast
}

/// A deterministic "random" multi-core workload mixing all generator
/// families, empty streams and tiny materialized traces.
fn random_workload(rng: &mut Rng64, cores: u16, ops: usize) -> MultiCore {
    let mut wl = MultiCore::new();
    for c in 0..cores {
        let base = u64::from(c) << 22;
        let seed = rng.next_u64();
        match rng.below(6) {
            0 => {
                wl = wl.core(
                    UniformGen::new(64 * (8 + rng.below(64)), ops)
                        .with_seed(seed)
                        .with_write_fraction(0.25),
                );
            }
            1 => {
                wl = wl.core(
                    StrideGen::new(base, 64 * (4 + rng.below(96)), ops)
                        .with_stride(64 * (1 + rng.below(3))),
                );
            }
            2 => {
                wl = wl.core(PointerChaseGen::new(base, 64 * (2 + rng.below(40)), ops));
            }
            3 => {
                let mut g = HotColdGen::new(base, 64 * (16 + rng.below(128)), ops).with_seed(seed);
                g.hot_probability = 0.85;
                wl = wl.core(g);
            }
            4 => {
                // A tiny materialized trace with writes and repeats.
                let trace: Vec<MemOp> = (0..ops.min(40))
                    .map(|i| {
                        let line = rng.below(24) * 64;
                        if i % 3 == 0 {
                            MemOp::write(Address::new(base + line))
                        } else {
                            MemOp::read(Address::new(base + line))
                        }
                    })
                    .collect();
                wl = wl.core(vec![trace]);
            }
            _ => {
                wl = wl.core(vec![Vec::<MemOp>::new()]); // finished at cycle 0
            }
        }
    }
    wl
}

fn random_replacement(rng: &mut Rng64) -> ReplacementKind {
    match rng.below(4) {
        0 => ReplacementKind::Lru,
        1 => ReplacementKind::Fifo,
        2 => ReplacementKind::RoundRobin,
        _ => ReplacementKind::Random {
            seed: rng.next_u64(),
        },
    }
}

fn random_arbiter(rng: &mut Rng64) -> ArbiterPolicy {
    match rng.below(3) {
        0 => ArbiterPolicy::WritebackFirst,
        1 => ArbiterPolicy::RequestFirst,
        _ => ArbiterPolicy::RoundRobin,
    }
}

#[test]
fn private_partition_grids_agree() {
    let mut rng = Rng64::new(0xFA57_F0D1);
    for round in 0..12 {
        let cores = 1 + (rng.below(4) as u16);
        let sets = 1 + rng.below(8) as u32;
        let ways = 1 + rng.below(4) as u32;
        let ops = 200 + rng.below(1200) as usize;
        let wl = random_workload(&mut rng, cores, ops);
        let replacement = random_replacement(&mut rng);
        let arbiter = random_arbiter(&mut rng);
        assert_engines_agree(
            |mode| {
                SystemConfigBuilder::new(cores)
                    .partitions(
                        CoreId::first(cores)
                            .map(|c| PartitionSpec::private(sets, ways, c))
                            .collect(),
                    )
                    .llc_replacement(replacement)
                    .private_replacement(replacement)
                    .arbiter(arbiter)
                    .engine(mode)
                    .build()
                    .expect("valid grid point")
            },
            &wl,
            &format!("private grid round {round}"),
        );
    }
}

#[test]
fn shared_partition_grids_agree() {
    let mut rng = Rng64::new(0x5EA_57A7E);
    for round in 0..10 {
        let cores = 2 + (rng.below(3) as u16);
        let sets = 1 + rng.below(4) as u32;
        let ways = 1 + rng.below(8) as u32;
        let mode_kind = if rng.below(2) == 0 {
            SharingMode::BestEffort
        } else {
            SharingMode::SetSequencer
        };
        let ops = 100 + rng.below(600) as usize;
        let wl = random_workload(&mut rng, cores, ops);
        let arbiter = random_arbiter(&mut rng);
        assert_engines_agree(
            |mode| {
                SystemConfigBuilder::new(cores)
                    .partitions(vec![PartitionSpec::shared(
                        sets,
                        ways,
                        CoreId::first(cores).collect(),
                        mode_kind,
                    )])
                    .arbiter(arbiter)
                    .engine(mode)
                    .build()
                    .expect("valid grid point")
            },
            &wl,
            &format!("shared({mode_kind:?}) grid round {round}"),
        );
    }
}

#[test]
fn mixed_private_and_shared_partitions_agree() {
    // Two solo cores + two cores sharing a contended partition: the fast
    // engine must interleave bulk-advanced solo runs with the stepped
    // slots the shared pair forces.
    let mut rng = Rng64::new(0x00D1_F00D);
    for round in 0..6 {
        let ops = 150 + rng.below(500) as usize;
        let wl = random_workload(&mut rng, 4, ops);
        assert_engines_agree(
            |mode| {
                SystemConfigBuilder::new(4)
                    .partitions(vec![
                        PartitionSpec::private(4, 2, CoreId::new(0)),
                        PartitionSpec::shared(
                            1,
                            2,
                            vec![CoreId::new(1), CoreId::new(2)],
                            SharingMode::BestEffort,
                        ),
                        PartitionSpec::private(2, 2, CoreId::new(3)),
                    ])
                    .engine(mode)
                    .build()
                    .expect("valid mixed config")
            },
            &wl,
            &format!("mixed grid round {round}"),
        );
    }
}

#[test]
fn banked_and_worst_case_backends_agree() {
    let mut rng = Rng64::new(0xBA_4CED);
    let memories = [
        MemoryConfig::fixed(Cycles::new(30)),
        MemoryConfig::fixed(Cycles::new(17)),
        MemoryConfig::banked(),
        MemoryConfig::bank_private(),
        MemoryConfig::banked().worst_case(),
        MemoryConfig::bank_private().worst_case(),
    ];
    for (k, memory) in memories.iter().enumerate() {
        // bank_private needs the bank count divisible by cores: use 4.
        let cores = 4u16;
        let ops = 150 + rng.below(500) as usize;
        let wl = random_workload(&mut rng, cores, ops);
        let report = assert_engines_agree(
            |mode| {
                SystemConfigBuilder::new(cores)
                    .partitions(
                        CoreId::first(cores)
                            .map(|c| PartitionSpec::private(2, 4, c))
                            .collect(),
                    )
                    .memory(memory.clone())
                    .engine(mode)
                    .build()
                    .expect("valid backend config")
            },
            &wl,
            &format!("backend {}", memory.label()),
        );
        if k >= 2 {
            assert!(
                report.stats.dram_row_hits
                    + report.stats.dram_row_empties
                    + report.stats.dram_row_conflicts
                    > 0,
                "banked backend saw no banked accesses"
            );
        }
    }
}

#[test]
fn weighted_schedules_and_timeouts_agree() {
    // The Fig. 2 flavour: an unbalanced schedule, a thrashing shared
    // set, and a max_cycles cap — the timed-out report must match to the
    // slot, including the bulk-accounted idle spans.
    let schedule = TdmSchedule::new(vec![CoreId::new(0), CoreId::new(1), CoreId::new(1)]).unwrap();
    let t0 = vec![MemOp::read(Address::new(0))];
    let t1: Vec<MemOp> = (0..6_000)
        .map(|i| MemOp::write(Address::new(64 + 64 * (i % 2))))
        .collect();
    let wl = vec![t0, t1];
    let report = assert_engines_agree(
        |mode| {
            SystemConfigBuilder::new(2)
                .schedule(schedule.clone())
                .partitions(vec![PartitionSpec::shared(
                    1,
                    1,
                    vec![CoreId::new(0), CoreId::new(1)],
                    SharingMode::BestEffort,
                )])
                .max_cycles(30_000)
                .engine(mode)
                .build()
                .expect("valid fig2 config")
        },
        &wl,
        "fig2 timeout",
    );
    assert!(report.timed_out);

    // A cap that lands mid-run on a private-partition system exercises
    // the bulk-advance horizon clamp.
    let mut rng = Rng64::new(0x7133_0CA9);
    for round in 0..6 {
        let cores = 1 + (rng.below(3) as u16);
        let ops = 500 + rng.below(2000) as usize;
        let cap = 40 + rng.next_u64() % 20_000;
        let wl = random_workload(&mut rng, cores, ops);
        assert_engines_agree(
            |mode| {
                SystemConfigBuilder::new(cores)
                    .partitions(
                        CoreId::first(cores)
                            .map(|c| PartitionSpec::private(2, 2, c))
                            .collect(),
                    )
                    .max_cycles(cap)
                    .engine(mode)
                    .build()
                    .expect("valid capped config")
            },
            &wl,
            &format!("capped round {round} (cap {cap})"),
        );
    }
}

#[test]
fn odd_slot_widths_and_latencies_agree() {
    let mut rng = Rng64::new(0x0DD_51075);
    for round in 0..8 {
        let cores = 1 + (rng.below(3) as u16);
        let sw = 37 + rng.below(90);
        let l1 = 1 + rng.below(4);
        let l2 = l1 + 1 + rng.below(12);
        let dram = 1 + rng.below(sw.saturating_sub(l2).max(2) - 1);
        let ops = 200 + rng.below(800) as usize;
        let wl = random_workload(&mut rng, cores, ops);
        assert_engines_agree(
            |mode| {
                SystemConfigBuilder::new(cores)
                    .slot_width(SlotWidth::new(sw).expect("nonzero"))
                    .l1_latency(Cycles::new(l1))
                    .l2_latency(Cycles::new(l2))
                    .dram_latency(Cycles::new(dram))
                    .partitions(
                        CoreId::first(cores)
                            .map(|c| PartitionSpec::private(3, 2, c))
                            .collect(),
                    )
                    .engine(mode)
                    .build()
                    .expect("valid odd-width config")
            },
            &wl,
            &format!("odd widths round {round} (sw {sw}, l1 {l1}, l2 {l2})"),
        );
    }
}

#[test]
fn many_tenant_llc_hit_grid_agrees() {
    // A scaled-down version of the engine_perf headline workload: every
    // op misses private and hits the LLC, across enough tenants that the
    // fast engine's calendar heap actually matters.
    let tenants = 24u16;
    let mut wl = MultiCore::new();
    for i in 0..tenants {
        wl = wl.core(StrideGen::new(u64::from(i) << 20, 64 * 96, 400));
    }
    let report = assert_engines_agree(
        |mode| {
            SystemConfigBuilder::new(tenants)
                .physical_llc(CacheGeometry::new(8 * u32::from(tenants), 16, 64).expect("valid"))
                .partitions(
                    CoreId::first(tenants)
                        .map(|c| PartitionSpec::private(6, 16, c))
                        .collect(),
                )
                .engine(mode)
                .build()
                .expect("valid tenant config")
        },
        &wl,
        "many-tenant llc-hit grid",
    );
    let hits: u64 = report.stats.cores.iter().map(|c| c.llc_hits).sum();
    assert!(hits > 0, "scenario must exercise the LLC-hit fast path");
}

#[test]
fn long_private_op_with_busy_bus_does_not_false_deadlock() {
    // Regression: a shared-partition core mid-way through one enormous
    // private-hit op (longer than the deadlock guard's slot budget)
    // keeps the fast engine in stepped mode; the bus transactions of the
    // other core must keep resetting the deadlock guard there, exactly
    // as they do in the reference loop.
    let l1 = 6_000_000u64; // > DEADLOCK_GUARD_SLOTS (100_000) x 50-cycle slots
    let t0 = vec![
        MemOp::read(Address::new(0)),
        MemOp::read(Address::new(0)), // L1 hit: one op spanning ~6M cycles
    ];
    // The other core streams private misses long past the guard window.
    let t1 = StrideGen::new(1 << 20, 64 * 4096, 70_000).trace();
    let wl = vec![t0, t1];
    let report = assert_engines_agree(
        |mode| {
            SystemConfigBuilder::new(2)
                .l1_latency(Cycles::new(l1))
                .partitions(vec![PartitionSpec::shared(
                    8,
                    8,
                    CoreId::first(2).collect(),
                    SharingMode::BestEffort,
                )])
                .engine(mode)
                .build()
                .expect("valid long-op config")
        },
        &wl,
        "long private op under busy bus",
    );
    assert!(!report.timed_out);
    assert_eq!(report.stats.core(CoreId::new(0)).ops_completed, 2);
}

#[test]
fn event_recording_falls_back_and_logs_identically() {
    // With an event sink attached, FastForward resolves to the reference
    // path — the logs (and everything else) must be identical to an
    // explicit reference run.
    let mut rng = Rng64::new(0xE7E9_0001);
    let wl = random_workload(&mut rng, 2, 300);
    let build = |mode: EngineMode| {
        SystemConfigBuilder::new(2)
            .partitions(vec![PartitionSpec::shared(
                1,
                2,
                CoreId::first(2).collect(),
                SharingMode::SetSequencer,
            )])
            .record_events(true)
            .engine(mode)
            .build()
            .expect("valid config")
    };
    let fast_cfg = build(EngineMode::FastForward);
    assert_eq!(fast_cfg.effective_engine(), EngineMode::Reference);
    let reference = Simulator::new(build(EngineMode::Reference))
        .unwrap()
        .run(&wl)
        .unwrap();
    let fast = Simulator::new(fast_cfg).unwrap().run(&wl).unwrap();
    assert_eq!(reference.stats, fast.stats);
    assert_eq!(reference.events.events(), fast.events.events());
    assert!(!fast.events.events().is_empty());
}
