//! End-to-end design-space exploration: spec → grid → histogram
//! percentiles → schedulability-driven search, with the determinism
//! guarantees the subsystem promises.

use predllc::analysis::TaskParams;
use predllc::explore::spec::{Arrangement, SearchSpec};
use predllc::explore::{run_grid, run_spec, search_partitions};
use predllc::workload_gen::UniformGen;
use predllc::{
    CacheGeometry, CoreId, Cycles, Executor, ExperimentSpec, MemoryConfig, SharingMode, Simulator,
    SystemConfig,
};

const SPEC: &str = r#"{
    "name": "e2e",
    "cores": 4,
    "configs": [
        {"label": "SS(1,16,4)",
         "partition": {"kind": "shared", "sets": 1, "ways": 16, "mode": "SS"}},
        {"label": "NSS(1,16,4)",
         "partition": {"kind": "shared", "sets": 1, "ways": 16, "mode": "NSS"}},
        {"label": "P(8,4)",
         "partition": {"kind": "private", "sets": 8, "ways": 4}},
        {"label": "P(8,4)/banked",
         "partition": {"kind": "private", "sets": 8, "ways": 4},
         "memory": {"kind": "banked", "banks": 8, "mapping": "bank-private"}}
    ],
    "workloads": [
        {"kind": "uniform", "range_bytes": 4096, "ops": 300, "seed": 7,
         "write_fraction": 0.2},
        {"kind": "stride", "range_bytes": 4096, "stride": 64, "ops": 300},
        {"kind": "chase", "range_bytes": 4096, "ops": 300, "seed": 9},
        {"kind": "hotcold", "range_bytes": 4096, "ops": 300, "seed": 5}
    ],
    "tasks": [
        {"name": "control", "core": 0, "period": 1000000,
         "compute": 100000, "llc_requests": 900},
        {"name": "vision", "core": 1, "period": 2000000,
         "compute": 300000, "llc_requests": 1500},
        {"name": "logging", "core": 2, "period": 4000000,
         "compute": 200000, "llc_requests": 2000},
        {"name": "comms", "core": 3, "period": 2000000,
         "compute": 150000, "llc_requests": 1200}
    ],
    "search": {"arrangements": ["SS", "NSS", "private"],
               "max_sets": 16, "max_ways": 16}
}"#;

#[test]
fn grid_percentiles_are_consistent_with_the_scalar_max_everywhere() {
    let spec = ExperimentSpec::parse(SPEC).unwrap();
    let rows = run_grid(&spec, &Executor::new(4)).unwrap();
    assert_eq!(rows.len(), 16);
    for r in &rows {
        assert!(
            r.requests > 0,
            "{} x {} measured nothing",
            r.config,
            r.workload
        );
        // The acceptance criterion: the histogram's percentiles agree
        // with RunReport::max_request_latency on every grid point.
        assert_eq!(r.p100, r.observed_wcl, "{} x {}", r.config, r.workload);
        assert!(r.p50 <= r.p90 && r.p90 <= r.p99 && r.p99 <= r.p100);
        if let Some(bound) = r.analytical_wcl {
            assert!(
                r.observed_wcl <= bound,
                "{} x {} broke its bound",
                r.config,
                r.workload
            );
        }
    }
}

#[test]
fn grids_are_bit_identical_across_thread_counts() {
    let spec = ExperimentSpec::parse(SPEC).unwrap();
    let reference = run_grid(&spec, &Executor::new(1)).unwrap();
    for threads in [2, 3, 8] {
        let rows = run_grid(&spec, &Executor::new(threads)).unwrap();
        // PartialEq covers every field, including the f64 means.
        assert_eq!(
            rows, reference,
            "{threads} threads diverged from single-threaded run"
        );
    }
}

#[test]
fn run_spec_searches_and_finds_a_minimal_schedulable_carve() {
    let spec = ExperimentSpec::parse(SPEC).unwrap();
    let report = run_spec(&spec, &Executor::new(4)).unwrap();
    let outcome = report.search.expect("spec declares a search block");
    let winner = outcome
        .winner
        .expect("the taskset is schedulable somewhere");

    // The winner really is schedulable: rebuild it and re-run the RTA.
    let config = winner
        .candidate
        .build(spec.search.as_ref().unwrap(), spec.cores)
        .unwrap();
    let verdicts = predllc::analysis::TaskSetAnalysis::new(&config, spec.tasks.clone())
        .analyze()
        .unwrap();
    assert!(verdicts.iter().all(|v| v.schedulable));

    // Minimality: every strictly cheaper candidate was evaluated and
    // rejected.
    for v in &outcome.evaluated {
        if v.lines_used < winner.lines_used {
            assert!(!v.schedulable, "{} is cheaper yet schedulable", v.label);
        }
    }
}

#[test]
fn histogram_invariants_hold_on_real_simulations() {
    let config = SystemConfig::shared_partition(1, 16, 4, SharingMode::SetSequencer).unwrap();
    let sim = Simulator::new(config).unwrap();
    let report = sim
        .run(
            UniformGen::new(8192, 500)
                .with_seed(3)
                .with_write_fraction(0.3)
                .with_cores(4),
        )
        .unwrap();
    let merged = report.latency_histogram();

    // p100 equals max_request_latency, exactly.
    assert_eq!(merged.percentile(100.0), report.max_request_latency());
    assert_eq!(
        report.latency_percentile(100.0),
        report.max_request_latency()
    );

    // Bucket counts sum to the total request count, per core and
    // merged.
    let total_requests: u64 = report.stats.cores.iter().map(|c| c.requests).sum();
    assert_eq!(merged.count(), total_requests);
    assert_eq!(
        merged.nonzero_buckets().iter().map(|b| b.2).sum::<u64>(),
        total_requests
    );
    for core in &report.stats.cores {
        assert_eq!(core.latencies.count(), core.requests);
        assert_eq!(core.latencies.max(), core.max_request_latency);
        assert_eq!(core.latencies.total(), core.total_request_latency);
    }

    // Merging per-core histograms is order-independent: fold them in
    // reverse and compare.
    let mut reversed = predllc::LatencyHistogram::new();
    for core in report.stats.cores.iter().rev() {
        reversed.merge(&core.latencies);
    }
    assert_eq!(reversed, merged);

    // The summary is internally consistent.
    let s = report.latency_summary();
    assert_eq!(s.count, total_requests);
    assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.p100);
}

#[test]
fn search_agrees_with_hand_built_analysis() {
    // A 2-core taskset tight enough that SS sharing fails but private
    // partitions pass — the paper's isolate-or-share decision, found
    // automatically.
    let tasks: Vec<TaskParams> = (0..2)
        .map(|c| TaskParams {
            name: format!("t{c}"),
            core: CoreId::new(c),
            period: Cycles::new(2_000_000),
            deadline: Cycles::new(2_000_000),
            compute: Cycles::new(200_000),
            llc_requests: 3_000,
        })
        .collect();
    let spec = SearchSpec {
        arrangements: vec![
            Arrangement::Shared(SharingMode::SetSequencer),
            Arrangement::Private,
        ],
        max_sets: 8,
        max_ways: 8,
        memory: MemoryConfig::default(),
        physical: CacheGeometry::PAPER_L3,
    };
    let outcome = search_partitions(&spec, 2, &tasks, &Executor::new(2)).unwrap();
    let winner = outcome.winner.expect("private carves are schedulable");
    // SS(·,·,2) WCL = (2·1·2+1)·2·50 = 500; 3000 requests -> 1.5M, plus
    // 200k compute: 1.7M <= 2M. So the *shared* 1x1 partition wins at
    // cost 1 — cheaper than any private pair.
    assert_eq!(winner.lines_used, 1);
    assert!(matches!(
        winner.candidate.arrangement,
        Arrangement::Shared(_)
    ));

    // Tighten the period so SS fails and the search must fall back to
    // private isolation.
    let tight: Vec<TaskParams> = tasks
        .iter()
        .cloned()
        .map(|mut t| {
            t.period = Cycles::new(1_000_000);
            t.deadline = Cycles::new(1_000_000);
            t
        })
        .collect();
    let outcome = search_partitions(&spec, 2, &tight, &Executor::new(2)).unwrap();
    let winner = outcome
        .winner
        .expect("private still schedulable: 200k + 3000*250 = 950k");
    assert!(matches!(winner.candidate.arrangement, Arrangement::Private));
}

#[test]
fn spec_round_trips_identically_through_reparse() {
    let a = ExperimentSpec::parse(SPEC).unwrap();
    let b = ExperimentSpec::parse(SPEC).unwrap();
    assert_eq!(a, b);
    assert_eq!(a.grid_len(), 16);
}
