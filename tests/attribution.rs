//! Differential property suite for latency attribution: across
//! randomized configurations, workloads, both engines and every memory
//! backend, (a) the per-component cycle totals sum **exactly** to the
//! recorded request latencies (system-wide and per core), (b) turning
//! attribution on changes no observable output — stats, cycles, events,
//! timeout flag — in either engine, (c) both engines produce the same
//! attribution report (the fast engine's run-length batching included),
//! and (d) the worst-case witness replays through the reference engine
//! to the exact observed WCL.

use predllc::model::{Address, CoreId, Cycles, MemOp};
use predllc::workload::rng::Rng64;
use predllc::workload_gen::{HotColdGen, PointerChaseGen, StrideGen, UniformGen};
use predllc::{
    analysis::WclGapReport, ArbiterPolicy, Component, EngineMode, MemoryConfig, MultiCore,
    PartitionSpec, ReplacementKind, SharingMode, Simulator, SystemConfig, SystemConfigBuilder,
};

/// A deterministic "random" multi-core workload mixing the generator
/// families, tiny materialized traces and empty streams — the same
/// shape the engine-equivalence suite uses.
fn random_workload(rng: &mut Rng64, cores: u16, ops: usize) -> MultiCore {
    let mut wl = MultiCore::new();
    for c in 0..cores {
        let base = u64::from(c) << 22;
        let seed = rng.next_u64();
        match rng.below(6) {
            0 => {
                wl = wl.core(
                    UniformGen::new(64 * (8 + rng.below(64)), ops)
                        .with_seed(seed)
                        .with_write_fraction(0.25),
                );
            }
            1 => {
                wl = wl.core(
                    StrideGen::new(base, 64 * (4 + rng.below(96)), ops)
                        .with_stride(64 * (1 + rng.below(3))),
                );
            }
            2 => {
                wl = wl.core(PointerChaseGen::new(base, 64 * (2 + rng.below(40)), ops));
            }
            3 => {
                let mut g = HotColdGen::new(base, 64 * (16 + rng.below(128)), ops).with_seed(seed);
                g.hot_probability = 0.85;
                wl = wl.core(g);
            }
            4 => {
                let trace: Vec<MemOp> = (0..ops.min(40))
                    .map(|i| {
                        let line = rng.below(24) * 64;
                        if i % 3 == 0 {
                            MemOp::write(Address::new(base + line))
                        } else {
                            MemOp::read(Address::new(base + line))
                        }
                    })
                    .collect();
                wl = wl.core(vec![trace]);
            }
            _ => {
                wl = wl.core(vec![Vec::<MemOp>::new()]);
            }
        }
    }
    wl
}

fn random_replacement(rng: &mut Rng64) -> ReplacementKind {
    match rng.below(4) {
        0 => ReplacementKind::Lru,
        1 => ReplacementKind::Fifo,
        2 => ReplacementKind::RoundRobin,
        _ => ReplacementKind::Random {
            seed: rng.next_u64(),
        },
    }
}

fn random_arbiter(rng: &mut Rng64) -> ArbiterPolicy {
    match rng.below(3) {
        0 => ArbiterPolicy::WritebackFirst,
        1 => ArbiterPolicy::RequestFirst,
        _ => ArbiterPolicy::RoundRobin,
    }
}

/// Runs `build`'s platform four ways — {reference, fast-forward} ×
/// {attribution off, on} — and checks the full attribution contract.
fn assert_attribution_contract(
    build: impl Fn(EngineMode) -> SystemConfig,
    wl: &MultiCore,
    what: &str,
) {
    let run = |mode: EngineMode, attribution: bool| {
        let config = build(mode).with_attribution(attribution);
        let report = Simulator::new(config.clone())
            .expect("valid config")
            .run(wl)
            .unwrap_or_else(|e| panic!("{what}: run failed: {e}"));
        (config, report)
    };
    let (_, off_ref) = run(EngineMode::Reference, false);
    let (_, off_fast) = run(EngineMode::FastForward, false);
    let (on_ref_cfg, on_ref) = run(EngineMode::Reference, true);
    let (_, on_fast) = run(EngineMode::FastForward, true);

    // (b) Attribution only reads: with it on, every observable output
    // is identical to the off run — in both engines.
    for (on, off, engine) in [
        (&on_ref, &off_ref, "reference"),
        (&on_fast, &off_fast, "fast-forward"),
    ] {
        assert_eq!(on.stats, off.stats, "{what}/{engine}: stats changed");
        assert_eq!(on.cycles, off.cycles, "{what}/{engine}: cycles changed");
        assert_eq!(
            on.timed_out, off.timed_out,
            "{what}/{engine}: timeout flag changed"
        );
        assert_eq!(
            on.events.events(),
            off.events.events(),
            "{what}/{engine}: events changed"
        );
    }
    assert_eq!(off_ref.stats, off_fast.stats, "{what}: engines diverged");
    assert!(
        off_ref.attribution().is_none(),
        "{what}: attribution-off run produced a report"
    );

    // (c) Both engines attribute identically — per-core totals,
    // per-component histograms and the witness (the fast engine's
    // run-length batching must be invisible here).
    let attr = on_ref.attribution().expect("attribution was on");
    assert_eq!(
        Some(attr),
        on_fast.attribution(),
        "{what}: attribution diverged across engines"
    );

    // (a) Exact sums: system-wide and per core, the component totals
    // equal the recorded request latencies to the cycle.
    assert_eq!(
        attr.total_components().total(),
        on_ref.latency_histogram().total(),
        "{what}: system component sum broke"
    );
    for (i, set) in attr.per_core().iter().enumerate() {
        assert_eq!(
            set.total(),
            on_ref.stats.cores[i].total_request_latency,
            "{what}: core {i} component sum broke"
        );
    }
    // Every completed request records into every component histogram.
    let requests: u64 = on_ref.stats.cores.iter().map(|c| c.requests).sum();
    for c in Component::ALL {
        let h = attr.histogram(c);
        assert_eq!(
            h.count(),
            requests,
            "{what}: {} histogram miscounted",
            c.label()
        );
        assert_eq!(
            h.total(),
            attr.total_components().get(c),
            "{what}: {} histogram total broke",
            c.label()
        );
    }

    // (d) The witness is the observed WCL and replays to it exactly.
    match attr.witness() {
        Some(w) => {
            assert_eq!(
                w.latency,
                on_ref.max_request_latency(),
                "{what}: witness is not the WCL"
            );
            assert_eq!(
                w.components.total(),
                w.latency,
                "{what}: witness component sum broke"
            );
            assert!(
                w.verify(&on_ref_cfg, wl)
                    .unwrap_or_else(|e| panic!("{what}: replay failed: {e}")),
                "{what}: witness replay missed the observed WCL"
            );
        }
        None => assert_eq!(requests, 0, "{what}: completed requests but no witness"),
    }

    // The analytical gap, when a bound applies, splits both sides fully:
    // the per-component budgets sum back to the bound and the witness.
    if let Some(gap) = WclGapReport::from_run(&on_ref_cfg, &on_ref).expect("valid config") {
        let analytical: u64 = gap.entries().iter().map(|e| e.analytical.as_u64()).sum();
        let observed: u64 = gap.entries().iter().map(|e| e.observed.as_u64()).sum();
        assert_eq!(
            analytical,
            gap.analytical_wcl.as_u64(),
            "{what}: gap split broke"
        );
        assert_eq!(
            observed,
            gap.observed_wcl.as_u64(),
            "{what}: gap split broke"
        );
    }
}

#[test]
fn randomized_private_and_shared_grids_attribute_exactly() {
    let mut rng = Rng64::new(0xA77_4B07E);
    for round in 0..10 {
        let cores = 1 + (rng.below(4) as u16);
        let sets = 1 + rng.below(6) as u32;
        let ways = 1 + rng.below(4) as u32;
        let ops = 100 + rng.below(600) as usize;
        let wl = random_workload(&mut rng, cores, ops);
        let replacement = random_replacement(&mut rng);
        let arbiter = random_arbiter(&mut rng);
        let shared = cores >= 2 && rng.below(2) == 0;
        let mode_kind = if rng.below(2) == 0 {
            SharingMode::BestEffort
        } else {
            SharingMode::SetSequencer
        };
        assert_attribution_contract(
            |mode| {
                let partitions = if shared {
                    vec![PartitionSpec::shared(
                        sets,
                        ways,
                        CoreId::first(cores).collect(),
                        mode_kind,
                    )]
                } else {
                    CoreId::first(cores)
                        .map(|c| PartitionSpec::private(sets, ways, c))
                        .collect()
                };
                SystemConfigBuilder::new(cores)
                    .partitions(partitions)
                    .llc_replacement(replacement)
                    .private_replacement(replacement)
                    .arbiter(arbiter)
                    .engine(mode)
                    .build()
                    .expect("valid grid point")
            },
            &wl,
            &format!("random grid round {round} (shared={shared})"),
        );
    }
}

#[test]
fn every_memory_backend_attributes_exactly() {
    let mut rng = Rng64::new(0xD4A_4817);
    let memories = [
        MemoryConfig::fixed(Cycles::new(30)),
        MemoryConfig::fixed(Cycles::new(17)),
        MemoryConfig::banked(),
        MemoryConfig::bank_private(),
        MemoryConfig::banked().worst_case(),
        MemoryConfig::bank_private().worst_case(),
    ];
    for memory in &memories {
        // bank_private needs the bank count divisible by cores: use 4.
        let cores = 4u16;
        let ops = 100 + rng.below(400) as usize;
        let wl = random_workload(&mut rng, cores, ops);
        assert_attribution_contract(
            |mode| {
                SystemConfigBuilder::new(cores)
                    .partitions(
                        CoreId::first(cores)
                            .map(|c| PartitionSpec::private(2, 4, c))
                            .collect(),
                    )
                    .memory(memory.clone())
                    .engine(mode)
                    .build()
                    .expect("valid backend config")
            },
            &wl,
            &format!("backend {}", memory.label()),
        );
    }
}

#[test]
fn timed_out_and_empty_runs_attribute_exactly() {
    // A cap landing mid-run: the witness (if any) completed before the
    // cap, so the contract — including replay — must hold unchanged.
    let mut rng = Rng64::new(0x7183_0CA7);
    for round in 0..4 {
        let cores = 1 + (rng.below(3) as u16);
        let ops = 400 + rng.below(1200) as usize;
        let cap = 500 + rng.next_u64() % 15_000;
        let wl = random_workload(&mut rng, cores, ops);
        assert_attribution_contract(
            |mode| {
                SystemConfigBuilder::new(cores)
                    .partitions(
                        CoreId::first(cores)
                            .map(|c| PartitionSpec::private(2, 2, c))
                            .collect(),
                    )
                    .max_cycles(cap)
                    .engine(mode)
                    .build()
                    .expect("valid capped config")
            },
            &wl,
            &format!("capped round {round} (cap {cap})"),
        );
    }

    // No requests at all: no witness, all-zero components.
    let empty = MultiCore::new().core(vec![Vec::<MemOp>::new()]);
    assert_attribution_contract(
        |mode| {
            SystemConfigBuilder::new(1)
                .partitions(vec![PartitionSpec::private(2, 2, CoreId::new(0))])
                .engine(mode)
                .build()
                .expect("valid empty config")
        },
        &empty,
        "empty workload",
    );
}
