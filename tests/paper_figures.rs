//! Event-level replays of the paper's worked examples (Figures 2–4).
//!
//! These tests reconstruct the *mechanisms* each figure illustrates —
//! not the exact slot numbering, which depends on trace alignment — and
//! assert the causal event sequences on the simulator's event log.

use predllc::analysis::{classify_schedule, critical, WclBound, WclParams};
use predllc::{
    Address, CoreId, Cycles, EventKind, MemOp, PartitionSpec, SharingMode, Simulator, SystemConfig,
    TdmSchedule,
};

fn c(i: u16) -> CoreId {
    CoreId::new(i)
}

fn read(line: u64) -> MemOp {
    MemOp::read(Address::new(line * 64))
}

fn write(line: u64) -> MemOp {
    MemOp::write(Address::new(line * 64))
}

/// Fig. 2: with a non-1S-TDM schedule `{cua, ci, ci}`, the interferer
/// frees an entry with a write-back in its first slot and re-occupies it
/// with a request in its second slot, starving `cua` forever.
#[test]
fn fig2_unbounded_starvation_under_two_slot_interferer() {
    // A 1-way set is the minimal instance: the interferer's fill fully
    // re-saturates the set every period. (With more ways the same loop
    // needs the set pre-saturated before cua's request arrives.)
    let schedule = TdmSchedule::new(vec![c(0), c(1), c(1)]).unwrap();
    let cfg = SystemConfig::builder(2)
        .schedule(schedule)
        .partitions(vec![PartitionSpec::shared(
            1,
            1,
            vec![c(0), c(1)],
            SharingMode::BestEffort,
        )])
        .max_cycles(500_000)
        .record_events(true)
        .build()
        .unwrap();
    let spec = cfg.partitions().spec_of(c(0)).clone();
    let (cua_trace, intf_trace) = critical::fig2_traces(&spec, 100_000);

    // The analysis flags the schedule as unbounded before simulating.
    let bound = classify_schedule(&cfg, c(0)).unwrap();
    assert!(matches!(bound, WclBound::Unbounded { interferer, .. } if interferer == c(1)));

    let report = Simulator::new(cfg)
        .unwrap()
        .run(vec![cua_trace, intf_trace])
        .unwrap();
    assert!(report.timed_out, "the run must hit the cycle cap");
    assert_eq!(
        report.stats.core(c(0)).ops_completed,
        0,
        "cua never completes its single request"
    );
    // The starvation loop really is free-then-reoccupy: cua triggered
    // many evictions, and the interferer kept filling.
    let cua_evictions = report
        .events
        .filter(|k| matches!(k, EventKind::EvictionTriggered { by, .. } if *by == c(0)))
        .count();
    let intf_fills = report
        .events
        .filter(|k| matches!(k, EventKind::Fill { core, .. } if *core == c(1)))
        .count();
    assert!(
        cua_evictions > 10,
        "cua re-triggers forever: {cua_evictions}"
    );
    assert!(
        intf_fills > 10,
        "the interferer keeps re-occupying: {intf_fills}"
    );
}

/// Fig. 2's fix: the identical workload under 1S-TDM completes within
/// the Theorem 4.7 / 4.8 bounds.
#[test]
fn fig2_same_workload_bounded_under_one_slot_tdm() {
    for mode in [SharingMode::BestEffort, SharingMode::SetSequencer] {
        let cfg = SystemConfig::builder(2)
            .partitions(vec![PartitionSpec::shared(1, 2, vec![c(0), c(1)], mode)])
            .max_cycles(5_000_000)
            .build()
            .unwrap();
        let bound = classify_schedule(&cfg, c(0)).unwrap();
        let spec = cfg.partitions().spec_of(c(0)).clone();
        let (cua_trace, intf_trace) = critical::fig2_traces(&spec, 2_000);
        let report = Simulator::new(cfg)
            .unwrap()
            .run(vec![cua_trace, intf_trace])
            .unwrap();
        assert_eq!(report.stats.core(c(0)).ops_completed, 1, "mode {mode:?}");
        let observed = report.stats.core(c(0)).max_request_latency;
        let bound = bound.cycles().expect("1S-TDM is bounded");
        assert!(
            observed <= bound,
            "mode {mode:?}: observed {observed} exceeds bound {bound}"
        );
    }
}

/// Fig. 3's mechanism: under best effort, a freed entry is intercepted
/// by a core whose slot comes earlier, forcing `cua` to trigger another
/// eviction — yet `cua`'s request still eventually completes
/// (Observations 1 and 2).
#[test]
fn fig3_interception_forces_retrigger_but_completes() {
    // 4 cores, shared 1-set x 2-way partition. c2 (the paper's c3) owns
    // both lines dirty; cua (c0) wants X; c3 (the paper's c4) keeps
    // requesting fresh lines of the set and steals freed entries because
    // its slot precedes cua's next one.
    let cfg = SystemConfig::builder(4)
        .partitions(vec![PartitionSpec::shared(
            1,
            2,
            (0..4).map(c).collect(),
            SharingMode::BestEffort,
        )])
        .record_events(true)
        .max_cycles(10_000_000)
        .build()
        .unwrap();
    // Disjoint lines, all in the single set: cua uses line 0; c2
    // pre-warms lines 10, 11 (dirty); c3 churns lines 20..26 (writes so
    // its copies stay dirty and keep the set contested).
    let t0 = vec![read(0)];
    let t1 = vec![];
    let t2 = vec![write(10), write(11)];
    let t3: Vec<MemOp> = (0..40).map(|i| write(20 + (i % 6))).collect();
    let report = Simulator::new(cfg)
        .unwrap()
        .run(vec![t0, t1, t2, t3])
        .unwrap();
    assert!(!report.timed_out);
    assert_eq!(report.stats.core(c(0)).ops_completed, 1, "Observation 2");

    // cua's fill must exist, and before it, cua must have triggered at
    // least two evictions (the first freed entry was stolen).
    let events = report.events.events();
    let cua_fill_at = events
        .iter()
        .position(|e| matches!(e.kind, EventKind::Fill { core, .. } if core == c(0)))
        .expect("cua fills eventually");
    let cua_triggers_before = events[..cua_fill_at]
        .iter()
        .filter(|e| matches!(e.kind, EventKind::EvictionTriggered { by, .. } if by == c(0)))
        .count();
    assert!(
        cua_triggers_before >= 2,
        "a steal must have forced a re-trigger; saw {cua_triggers_before}"
    );
    // And some other core filled into the set between cua's broadcast
    // and cua's fill — the interception itself.
    let cua_broadcast_at = events
        .iter()
        .position(|e| matches!(e.kind, EventKind::RequestBroadcast { core, .. } if core == c(0)))
        .expect("cua broadcasts");
    let steals = events[cua_broadcast_at..cua_fill_at]
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Fill { core, .. } if core != c(0)))
        .count();
    assert!(
        steals >= 1,
        "no interception happened — not the Fig. 3 scenario"
    );
}

/// Fig. 3 under the set sequencer: the same contention pattern cannot
/// intercept `cua` once its request is at the head of the queue — no
/// other core fills into the set between the entry freeing for cua and
/// cua's fill.
#[test]
fn fig3_sequencer_prevents_interception() {
    let cfg = SystemConfig::builder(4)
        .partitions(vec![PartitionSpec::shared(
            1,
            2,
            (0..4).map(c).collect(),
            SharingMode::SetSequencer,
        )])
        .record_events(true)
        .max_cycles(10_000_000)
        .build()
        .unwrap();
    let t0 = vec![read(0)];
    let t1 = vec![];
    let t2 = vec![write(10), write(11)];
    let t3: Vec<MemOp> = (0..40).map(|i| write(20 + (i % 6))).collect();
    let report = Simulator::new(cfg)
        .unwrap()
        .run(vec![t0, t1, t2, t3])
        .unwrap();
    assert!(!report.timed_out);
    assert_eq!(report.stats.core(c(0)).ops_completed, 1);

    let events = report.events.events();
    let cua_broadcast_at = events
        .iter()
        .position(|e| matches!(e.kind, EventKind::RequestBroadcast { core, .. } if core == c(0)))
        .unwrap();
    let cua_fill_at = events
        .iter()
        .position(|e| matches!(e.kind, EventKind::Fill { core, .. } if core == c(0)))
        .unwrap();
    // Broadcast order: cua's single read misses privately at cycle 10,
    // before any later request of c3 (whose first miss resolves at the
    // same time but whose slot comes later). So cua is at the head for
    // this set and nobody may fill ahead of it.
    let fills_ahead = events[cua_broadcast_at..cua_fill_at]
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Fill { core, .. } if core != c(0)))
        .count();
    assert_eq!(
        fills_ahead, 0,
        "the sequencer must deliver the first freed entry to the head"
    );
    // With one interception impossible, exactly one eviction trigger by
    // cua suffices.
    let cua_triggers = events[..cua_fill_at]
        .iter()
        .filter(|e| matches!(e.kind, EventKind::EvictionTriggered { by, .. } if by == c(0)))
        .count();
    assert_eq!(cua_triggers, 1);
}

/// Fig. 4's mechanism (Observation 3): a waiting core can be forced to
/// spend one of its slots on a write-back of its own dirty line
/// (victimized by somebody else's request), pushing its own response
/// out. Under a dirty churn workload the event log must exhibit this
/// pattern: a core's write-back strictly inside one of its own
/// request-broadcast → fill windows.
#[test]
fn fig4_own_writeback_delays_response() {
    // Random replacement + random write-heavy traces break the lockstep
    // symmetry under which LRU always victimizes the requester's own
    // line (which would evict inline and defeat the purpose).
    let cfg = SystemConfig::builder(4)
        .partitions(vec![PartitionSpec::shared(
            1,
            2,
            (0..4).map(c).collect(),
            SharingMode::BestEffort,
        )])
        .llc_replacement(predllc::ReplacementKind::Random { seed: 3 })
        .record_events(true)
        .max_cycles(50_000_000)
        .build()
        .unwrap();
    let traces = predllc::workload_gen::UniformGen::new(1024, 300)
        .with_write_fraction(0.5)
        .with_seed(7)
        .traces(4);
    let report = Simulator::new(cfg).unwrap().run(traces).unwrap();
    assert!(!report.timed_out);

    // Scan every (broadcast → fill) window for an intervening write-back
    // by the same core.
    let events = report.events.events();
    let mut occurrences = 0usize;
    for (i, e) in events.iter().enumerate() {
        let EventKind::RequestBroadcast { core, line } = e.kind else {
            continue;
        };
        let mut interleaved_wb = false;
        for later in &events[i + 1..] {
            match later.kind {
                EventKind::WritebackTransmitted { core: wc, .. } if wc == core => {
                    interleaved_wb = true;
                }
                EventKind::Fill { core: fc, line: fl } | EventKind::Hit { core: fc, line: fl }
                    if fc == core && fl == line =>
                {
                    if interleaved_wb {
                        occurrences += 1;
                    }
                    break;
                }
                _ => {}
            }
        }
    }
    assert!(
        occurrences >= 1,
        "dirty churn must exhibit the Observation-3 pattern at least once"
    );
}

/// The Fig. 5 structure behind Theorem 4.7: even under maximal stress
/// the observed WCL stays within the analytical bound, for both sharing
/// modes, and the sequencer's bound is the smaller one.
#[test]
fn wcl_stress_respects_both_theorems() {
    for (mode, pick_bound) in [
        (
            SharingMode::BestEffort,
            Box::new(|p: &WclParams| p.wcl_one_slot_tdm()) as Box<dyn Fn(&WclParams) -> Cycles>,
        ),
        (
            SharingMode::SetSequencer,
            Box::new(|p: &WclParams| p.wcl_set_sequencer()),
        ),
    ] {
        let cfg = SystemConfig::shared_partition(1, 4, 4, mode).unwrap();
        let params = WclParams::from_config(&cfg).unwrap();
        let bound = pick_bound(&params);
        let spec = cfg.partitions().spec_of(c(0)).clone();
        let traces = critical::wcl_stress_traces(&spec, 500);
        let report = Simulator::new(cfg).unwrap().run(traces).unwrap();
        assert!(!report.timed_out);
        let observed = report.max_request_latency();
        assert!(
            observed <= bound,
            "mode {mode:?}: observed {observed} > bound {bound}"
        );
    }
    // Theorem 4.8's key property: the SS bound is far below the NSS one.
    let ss = WclParams::from_config(
        &SystemConfig::shared_partition(1, 16, 4, SharingMode::SetSequencer).unwrap(),
    )
    .unwrap();
    assert!(ss.wcl_set_sequencer() < ss.wcl_one_slot_tdm());
}
