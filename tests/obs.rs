//! End-to-end tests of the observability layer: the Prometheus text
//! exposition round-trips through the in-tree validator (registry
//! output and a live server's `/metrics` alike), trace JSONL parses
//! back to the events that produced it with any JSON parser, a
//! concurrent `MetricsSnapshot` never observes a torn counter pair,
//! and one trace id spans coordinator- and worker-side events of the
//! same fleet run.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use predllc::explore::json;
use predllc::fleet::{Coordinator, CoordinatorConfig};
use predllc::obs::trace::{render_jsonl, EventKind, FieldValue, TraceEvent};
use predllc::obs::{expo, Registry, TraceCtx, TraceId, Tracer};
use predllc::serve::{Client, Metrics, Server, ServerConfig, ServerHandle};
use predllc::ExperimentSpec;

/// A small two-platform grid, 4 unique points.
const SPEC: &str = r#"{
    "name": "obs-e2e",
    "cores": 2,
    "configs": [
        {"label": "SS(1,4)", "partition": {"kind": "shared", "sets": 1, "ways": 4, "mode": "SS"}},
        {"partition": {"kind": "private", "sets": 4, "ways": 2}}
    ],
    "workloads": [
        {"kind": "uniform", "range_bytes": 4096, "ops": 200, "seed": 11},
        {"kind": "stride", "range_bytes": 4096, "stride": 64, "ops": 200}
    ]
}"#;

fn start(config: ServerConfig) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind an ephemeral port");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (handle, join)
}

fn stop(handle: &ServerHandle, join: std::thread::JoinHandle<()>) {
    handle.shutdown();
    join.join().expect("server thread");
}

#[test]
fn live_metrics_exposition_validates_after_real_work() {
    // Drive the service through a full job (miss, run, hit) and a
    // worker point request, then require the scrape to pass the
    // in-tree exposition validator with every expected family present
    // and the latency histograms actually populated.
    let (handle, join) = start(ServerConfig::default());
    let mut client = Client::new(handle.addr());

    let submitted = client.submit(SPEC).unwrap();
    client
        .wait_done(&submitted.id, Duration::from_secs(60))
        .unwrap();
    assert!(
        client.submit(SPEC).unwrap().cached,
        "second submit must hit"
    );
    client.healthz().unwrap();

    let body = client.metrics().unwrap();
    let summary = expo::validate(&body).expect("live /metrics must validate");
    assert!(summary.families >= 14, "families: {}", summary.families);
    assert!(summary.samples >= 20, "samples: {}", summary.samples);
    for family in [
        "predllc_http_request_duration_ns",
        "predllc_job_queue_wait_ns",
        "predllc_cache_hits 1",
        "predllc_cache_misses 1",
        "predllc_jobs_done 1",
        "predllc_points_simulated 4",
    ] {
        assert!(body.contains(family), "missing '{family}' in:\n{body}");
    }
    stop(&handle, join);
}

#[test]
fn registry_render_validates_whatever_gets_registered() {
    // The registry cannot emit an exposition the validator rejects,
    // including empty histograms, labelled series, and awkward label
    // values that need escaping.
    let reg = Registry::new();
    reg.counter("predllc_a_total", "A counter.").add(7);
    reg.gauge("predllc_b", "A gauge.").set(3);
    reg.histogram("predllc_c_ns", "Recorded.").record_ns(1234);
    reg.histogram("predllc_d_ns", "Never recorded.");
    let awkward = reg.histogram_with(
        "predllc_e_ns",
        "Labelled.",
        "path",
        "say \"hi\"\\back\nline",
    );
    for ns in [1u64, 100, 10_000, 1_000_000, u64::MAX] {
        awkward.record_ns(ns);
    }
    reg.counter_with("predllc_f_total", "Labelled counter.", "kind", "x")
        .inc();

    let text = reg.render();
    let summary = expo::validate(&text).expect("registry output must validate");
    assert_eq!(summary.families, 6);
    assert!(text.ends_with('\n'));
}

/// The bits a `TraceEvent` carries, as recovered from one JSONL line.
type ParsedEvent = (
    TraceId,
    String,
    EventKind,
    u64,
    Option<u64>,
    Vec<(String, FieldValue)>,
);

/// Parses one JSONL line back into the bits a `TraceEvent` carries.
fn parse_event(line: &str) -> ParsedEvent {
    let v = json::parse(line).expect("trace line must be valid JSON");
    let trace = TraceId::parse_hex(v.get("trace").unwrap().as_str().unwrap()).unwrap();
    let name = v.get("name").unwrap().as_str().unwrap().to_string();
    let kind = EventKind::parse(v.get("kind").unwrap().as_str().unwrap()).unwrap();
    let ts_ns = v.get("ts_ns").unwrap().as_u64().unwrap();
    let dur_ns = v.get("dur_ns").map(|d| d.as_u64().unwrap());
    let fields = v
        .get("fields")
        .map(|f| {
            f.as_object()
                .unwrap()
                .iter()
                .map(|(k, val)| {
                    let fv = match val.as_u64() {
                        Some(n) => FieldValue::U64(n),
                        None => FieldValue::Str(val.as_str().unwrap().to_string()),
                    };
                    (k.clone(), fv)
                })
                .collect()
        })
        .unwrap_or_default();
    (trace, name, kind, ts_ns, dur_ns, fields)
}

#[test]
fn trace_jsonl_round_trips_through_a_real_json_parser() {
    // Property: render_jsonl -> parse recovers every event exactly,
    // for adversarial names and field values (quotes, backslashes,
    // newlines, control bytes, unicode, u64::MAX). The parser is the
    // workspace's own spec-grade JSON parser, not a string matcher.
    let mut state = 0x1234_5678_9abc_def0u64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let nasty = [
        "plain",
        "with \"quotes\"",
        "back\\slash",
        "new\nline and \t tab",
        "control\u{1}\u{1f}",
        "unicode: ключ 鍵 🔑",
        "",
    ];
    let mut events = Vec::new();
    for i in 0..200u64 {
        let kind = match rng() % 3 {
            0 => EventKind::Begin,
            1 => EventKind::End,
            _ => EventKind::Instant,
        };
        let mut fs: Vec<(String, FieldValue)> = Vec::new();
        for f in 0..(rng() % 4) {
            // Suffix with the field index: JSON objects (and the
            // workspace parser) require unique keys.
            let k = format!("{}#{f}", nasty[(rng() % nasty.len() as u64) as usize]);
            if rng() % 2 == 0 {
                fs.push((k, FieldValue::U64(rng())));
            } else {
                fs.push((
                    k,
                    FieldValue::Str(nasty[(rng() % nasty.len() as u64) as usize].to_string()),
                ));
            }
        }
        events.push(TraceEvent {
            trace: TraceId(((rng() as u128) << 64) | rng() as u128),
            name: nasty[(rng() % nasty.len() as u64) as usize].to_string(),
            kind,
            ts_ns: if i % 7 == 0 { u64::MAX } else { rng() },
            dur_ns: (kind == EventKind::End).then(&mut rng),
            fields: fs,
        });
    }

    let text = render_jsonl(&events);
    assert!(text.ends_with('\n'));
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), events.len());
    for (line, event) in lines.iter().zip(&events) {
        let (trace, name, kind, ts_ns, dur_ns, fs) = parse_event(line);
        assert_eq!(trace, event.trace);
        assert_eq!(name, event.name);
        assert_eq!(kind, event.kind);
        assert_eq!(ts_ns, event.ts_ns);
        assert_eq!(dur_ns, event.dur_ns);
        assert_eq!(fs, event.fields);
    }
}

#[test]
fn concurrent_snapshots_never_observe_a_torn_job_state() {
    // Writers follow the source-before-derived discipline the serve
    // layer uses (cache_misses before jobs_queued; dec a state gauge
    // before inc'ing its successor). A racing reader must never see
    // more jobs in flight than submissions, whatever the interleaving.
    let metrics = Arc::new(Metrics::default());
    let stop = Arc::new(AtomicBool::new(false));

    let reader = {
        let metrics = Arc::clone(&metrics);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut checked = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let s = metrics.snapshot();
                let states = s.jobs_queued + s.jobs_running + s.jobs_done + s.jobs_failed;
                assert!(
                    states <= s.cache_misses,
                    "torn snapshot: {states} job states > {} submissions",
                    s.cache_misses
                );
                checked += 1;
            }
            checked
        })
    };

    let writers: Vec<_> = (0..4)
        .map(|_| {
            let metrics = Arc::clone(&metrics);
            std::thread::spawn(move || {
                for _ in 0..20_000 {
                    // One job's life, exactly as the serve layer runs it.
                    metrics.cache_misses.inc();
                    metrics.jobs_queued.inc();
                    metrics.jobs_queued.dec();
                    metrics.jobs_running.inc();
                    metrics.jobs_running.dec();
                    metrics.jobs_done.inc();
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let checked = reader.join().unwrap();
    assert!(checked > 0, "the reader never ran");

    let s = metrics.snapshot();
    assert_eq!(s.cache_misses, 80_000);
    assert_eq!(s.jobs_done, 80_000);
    assert_eq!(s.jobs_queued + s.jobs_running, 0);
}

#[test]
fn one_trace_id_spans_coordinator_and_worker_events() {
    // The trace id minted by the coordinator must surface in the
    // worker's own tracer (propagated via the X-Predllc-Trace header),
    // so a fleet point's life is reconstructable from both sides.
    let spec = ExperimentSpec::parse(SPEC).unwrap();
    let (worker, join) = start(ServerConfig::default());

    let metrics = Arc::new(Metrics::default());
    let coordinator = Coordinator::new(
        [worker.addr()],
        CoordinatorConfig {
            heartbeat_interval: Duration::from_millis(50),
            ..CoordinatorConfig::default()
        },
        metrics,
    );

    let tracer = Tracer::new();
    let trace = TraceId::fresh();
    let ctx = TraceCtx::new(&tracer, trace);
    let report = coordinator
        .run_traced(&spec, &|_, _| {}, Some(ctx))
        .unwrap();
    assert_eq!(report.unique_points, 4);

    // Coordinator side: dispatch spans and the merge tail, all under
    // the one trace id, with durations on the span ends.
    let local = tracer.snapshot_trace(trace);
    assert!(!local.is_empty());
    let names: Vec<&str> = local.iter().map(|e| e.name.as_str()).collect();
    assert!(names.contains(&"fleet.dispatch"), "{names:?}");
    assert!(names.contains(&"fleet.merge"), "{names:?}");
    assert!(local
        .iter()
        .filter(|e| e.kind == EventKind::End)
        .all(|e| e.dur_ns.is_some()));

    // Worker side: the same id, now wrapping worker.point spans — one
    // begin/end pair per unique point.
    let remote = worker.tracer().snapshot_trace(trace);
    let points = remote
        .iter()
        .filter(|e| e.name == "worker.point" && e.kind == EventKind::End)
        .count();
    assert_eq!(points, 4, "worker-side events: {remote:?}");
    assert!(remote.iter().all(|e| e.trace == trace));

    // And the combined JSONL timeline is one trace, render-parseable.
    let mut all = local;
    all.extend(remote);
    for line in render_jsonl(&all).lines() {
        let (t, ..) = parse_event(line);
        assert_eq!(t, trace);
    }

    // An untraced run records nothing new on either side.
    let before = worker.tracer().snapshot().len();
    coordinator.run(&spec, &|_, _| {}).unwrap();
    assert_eq!(worker.tracer().snapshot().len(), before);

    stop(&worker, join);
}
