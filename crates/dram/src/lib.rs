//! `predllc-dram` — pluggable memory backends behind the shared LLC.
//!
//! The paper's system model lets the LLC "interface with a DRAM
//! directly" and requires every miss fill to complete *within the
//! requester's TDM slot* (§3), which is why the seed simulator modelled
//! DRAM as one fixed 30-cycle charge. This crate keeps that model as the
//! default while opening the memory system up as a subsystem:
//!
//! * [`MemoryBackend`] — the narrow latency interface the LLC
//!   controller drives: one [`MemRequest`] in, one [`MemAccess`]
//!   (latency + bank + row outcome) out, plus the analytical
//!   [`worst_case_latency`](MemoryBackend::worst_case_latency) the
//!   slot-budget check and WCL analysis fold in.
//! * [`FixedLatency`] — bit-identical to the seed's `Dram`: every
//!   access costs the same, the worst case *is* the latency.
//! * [`BankedDram`] — channels × banks with open-row policy, the
//!   [`DramTiming`] parameter table (`tRCD/tRP/tCAS/tWR/tBUS`), per-bank
//!   state machines and write-recovery turnaround, under either an
//!   [interleaved](BankMapping::Interleaved) or a
//!   [bank-privatized per-core](BankMapping::BankPrivate) mapping.
//! * [`WorstCase`] — an adapter that answers every request with the
//!   wrapped backend's analytical worst case, for sound WCL experiments.
//! * [`MemoryConfig`] — the plain-data selection a system configuration
//!   carries; builds a fresh backend per run.
//!
//! # The slot-budget invariant
//!
//! Backends are only admissible when their worst-case access latency
//! fits inside the TDM slot (the configuration builder enforces this).
//! [`DramTiming::worst_case`] is constructed so that satisfying the
//! invariant also guarantees banks recover between slots, making the
//! bound sound for every access the slot-stepped engine can generate.
//!
//! # Examples
//!
//! ```
//! use predllc_dram::{BankedDram, BankMapping, DramTiming, MemRequest, MemoryBackend};
//! use predllc_model::{CoreId, Cycles, DramGeometry, LineAddr};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut dram = BankedDram::new(
//!     DramTiming::PAPER,
//!     DramGeometry::PAPER,
//!     BankMapping::BankPrivate,
//!     4,
//! )?;
//! let a = dram.access(MemRequest::fetch(LineAddr::new(0), CoreId::new(2), Cycles::ZERO));
//! assert!(a.latency <= dram.worst_case_latency());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod banked;
pub mod config;
pub mod error;
pub mod fixed;
pub mod mapping;
pub mod timing;
pub mod worst_case;

pub use backend::{MemAccess, MemRequest, MemStats, MemoryBackend, RowOutcome};
pub use banked::BankedDram;
pub use config::MemoryConfig;
pub use error::DramError;
pub use fixed::{DramStats, FixedLatency};
pub use mapping::BankMapping;
pub use timing::DramTiming;
pub use worst_case::WorstCase;
