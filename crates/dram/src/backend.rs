//! The [`MemoryBackend`] trait: the narrow latency interface the LLC
//! controller drives, and the request/response/statistics vocabulary all
//! backends share.

use std::fmt;

use predllc_model::{BankId, CoreId, Cycles, LineAddr};

/// One memory transaction presented to a backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// The cache line being fetched or written back.
    pub line: LineAddr,
    /// The core whose bus transaction carries the access (used by the
    /// bank-privatized address mapping).
    pub core: CoreId,
    /// The cycle at which the access starts (the slot boundary).
    pub at: Cycles,
    /// `true` for a write-back, `false` for a miss fill fetch.
    pub write: bool,
}

impl MemRequest {
    /// A miss-fill fetch by `core` at cycle `at`.
    pub const fn fetch(line: LineAddr, core: CoreId, at: Cycles) -> Self {
        MemRequest {
            line,
            core,
            at,
            write: false,
        }
    }

    /// A write-back by `core` at cycle `at`.
    pub const fn write_back(line: LineAddr, core: CoreId, at: Cycles) -> Self {
        MemRequest {
            line,
            core,
            at,
            write: true,
        }
    }
}

/// How an access interacted with the targeted bank's row buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowOutcome {
    /// The open row matched: column access only.
    Hit,
    /// The bank had no open row: activate + column access.
    Empty,
    /// A different row was open: precharge + activate + column access.
    Conflict,
}

impl fmt::Display for RowOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RowOutcome::Hit => f.write_str("row hit"),
            RowOutcome::Empty => f.write_str("row empty"),
            RowOutcome::Conflict => f.write_str("row conflict"),
        }
    }
}

/// The backend's answer to one [`MemRequest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Total access latency, including any wait on a busy bank.
    pub latency: Cycles,
    /// The bank the access was routed to (always `bank0` for flat
    /// backends).
    pub bank: BankId,
    /// Row-buffer interaction, or `None` for backends without banks
    /// (the fixed-latency model) — per-access DRAM events are only
    /// emitted when this is `Some`, which keeps fixed-latency event logs
    /// identical to the seed's.
    pub row: Option<RowOutcome>,
    /// Portion of `latency` spent waiting for the bank to become ready.
    pub waited: Cycles,
}

/// Traffic and row-buffer counters accumulated by a backend.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct MemStats {
    /// Line fetches (LLC miss fills).
    pub reads: u64,
    /// Line write-backs (dirty LLC evictions).
    pub writes: u64,
    /// Accesses that hit the open row.
    pub row_hits: u64,
    /// Accesses to a bank with no open row.
    pub row_empties: u64,
    /// Accesses that conflicted with a different open row.
    pub row_conflicts: u64,
    /// Accesses that had to wait on a busy bank.
    pub busy_waits: u64,
    /// Worst single-access latency observed.
    pub max_latency: Cycles,
    /// Row conflicts per bank (empty for flat backends).
    pub per_bank_conflicts: Vec<u64>,
}

impl MemStats {
    /// Total accesses counted.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Fraction of banked accesses that hit the open row (0 when no
    /// banked access was recorded).
    pub fn row_hit_rate(&self) -> f64 {
        row_hit_rate(self.row_hits, self.row_empties, self.row_conflicts)
    }

    /// Records one banked access outcome.
    pub fn record(&mut self, access: &MemAccess, write: bool) {
        if write {
            self.writes += 1;
        } else {
            self.reads += 1;
        }
        if access.latency > self.max_latency {
            self.max_latency = access.latency;
        }
        if access.waited > Cycles::ZERO {
            self.busy_waits += 1;
        }
        match access.row {
            Some(RowOutcome::Hit) => self.row_hits += 1,
            Some(RowOutcome::Empty) => self.row_empties += 1,
            Some(RowOutcome::Conflict) => {
                self.row_conflicts += 1;
                let b = access.bank.as_usize();
                if self.per_bank_conflicts.len() <= b {
                    self.per_bank_conflicts.resize(b + 1, 0);
                }
                self.per_bank_conflicts[b] += 1;
            }
            None => {}
        }
    }
}

/// The row-hit rate over a hits/empties/conflicts breakdown: `hits`
/// over the total, or 0 when no banked access was recorded. The single
/// definition shared by [`MemStats`] and the simulator's report stats.
pub fn row_hit_rate(hits: u64, empties: u64, conflicts: u64) -> f64 {
    let banked = hits + empties + conflicts;
    if banked == 0 {
        0.0
    } else {
        hits as f64 / banked as f64
    }
}

/// A pluggable memory model behind the LLC.
///
/// The simulation engine owns the clock; a backend performs no timing of
/// its own beyond tracking per-bank readiness against the request
/// timestamps it is handed. Implementations must be deterministic: the
/// same request sequence yields the same latencies and statistics.
///
/// The contract with the paper's system model: every access must
/// complete within the requester's TDM slot, so
/// [`MemoryBackend::worst_case_latency`] is validated against the slot
/// width when a [`SystemConfig`] is built, and every latency returned by
/// [`MemoryBackend::access`] must be `≤ worst_case_latency()`.
///
/// [`SystemConfig`]: https://docs.rs/predllc-core
pub trait MemoryBackend: fmt::Debug + Send {
    /// Performs one access, returning its latency and routing details.
    fn access(&mut self, req: MemRequest) -> MemAccess;

    /// The analytical worst-case latency of any single access — the
    /// sound bound the WCL analysis and the slot-budget check fold in.
    fn worst_case_latency(&self) -> Cycles;

    /// Counters accumulated so far.
    fn mem_stats(&self) -> &MemStats;

    /// Resets all counters (and any transient bank state).
    fn reset(&mut self);

    /// A short human-readable label for reports (e.g. `fixed(30)`).
    fn label(&self) -> String;

    /// The latest cycle at which any internal resource (a DRAM bank, a
    /// write-recovery window) is still busy from past accesses —
    /// [`Cycles::ZERO`] for stateless backends.
    ///
    /// Because all backend state is keyed by the request timestamps the
    /// engine hands in, a fast-forward engine may jump the clock across
    /// idle bus slots without stepping the backend; this accessor lets it
    /// (and tests) verify that such a jump never lands in front of
    /// residual bank busyness it would otherwise have simulated through.
    fn next_busy_until(&self) -> Cycles {
        Cycles::ZERO
    }

    /// The rows currently open across the backend's banks, as
    /// `(bank, row)` pairs — empty for backends without row buffers.
    /// A read-only diagnostic snapshot (the engine's WCL witness records
    /// it as the bank state a worst-case request ran into).
    fn open_rows(&self) -> Vec<(BankId, u64)> {
        Vec::new()
    }
}

impl<B: MemoryBackend + ?Sized> MemoryBackend for Box<B> {
    fn access(&mut self, req: MemRequest) -> MemAccess {
        (**self).access(req)
    }

    fn worst_case_latency(&self) -> Cycles {
        (**self).worst_case_latency()
    }

    fn mem_stats(&self) -> &MemStats {
        (**self).mem_stats()
    }

    fn reset(&mut self) {
        (**self).reset()
    }

    fn label(&self) -> String {
        (**self).label()
    }

    fn next_busy_until(&self) -> Cycles {
        (**self).next_busy_until()
    }

    fn open_rows(&self) -> Vec<(BankId, u64)> {
        (**self).open_rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_constructors_set_direction() {
        let f = MemRequest::fetch(LineAddr::new(1), CoreId::new(0), Cycles::new(50));
        assert!(!f.write);
        let w = MemRequest::write_back(LineAddr::new(1), CoreId::new(0), Cycles::new(50));
        assert!(w.write);
        assert_eq!(w.at, Cycles::new(50));
    }

    #[test]
    fn stats_record_outcomes_and_per_bank_conflicts() {
        let mut s = MemStats::default();
        let hit = MemAccess {
            latency: Cycles::new(4),
            bank: BankId::new(0),
            row: Some(RowOutcome::Hit),
            waited: Cycles::ZERO,
        };
        let conflict = MemAccess {
            latency: Cycles::new(20),
            bank: BankId::new(3),
            row: Some(RowOutcome::Conflict),
            waited: Cycles::new(9),
        };
        s.record(&hit, false);
        s.record(&conflict, true);
        assert_eq!((s.reads, s.writes), (1, 1));
        assert_eq!(s.row_hits, 1);
        assert_eq!(s.row_conflicts, 1);
        assert_eq!(s.busy_waits, 1);
        assert_eq!(s.max_latency, Cycles::new(20));
        assert_eq!(s.per_bank_conflicts, vec![0, 0, 0, 1]);
        assert_eq!(s.accesses(), 2);
        assert!((s.row_hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn flat_accesses_do_not_touch_row_counters() {
        let mut s = MemStats::default();
        let flat = MemAccess {
            latency: Cycles::new(30),
            bank: BankId::new(0),
            row: None,
            waited: Cycles::ZERO,
        };
        s.record(&flat, false);
        assert_eq!(s.reads, 1);
        assert_eq!(s.row_hits + s.row_empties + s.row_conflicts, 0);
        assert_eq!(s.row_hit_rate(), 0.0);
        assert!(s.per_bank_conflicts.is_empty());
    }

    #[test]
    fn row_outcome_displays() {
        assert_eq!(RowOutcome::Hit.to_string(), "row hit");
        assert_eq!(RowOutcome::Empty.to_string(), "row empty");
        assert_eq!(RowOutcome::Conflict.to_string(), "row conflict");
    }
}
