//! The fixed-latency memory backend — the seed simulator's DRAM model.

use predllc_model::{BankId, Cycles, LineAddr};

use crate::backend::{MemAccess, MemRequest, MemStats, MemoryBackend};

/// Traffic counters in the seed simulator's original shape, kept for the
/// deprecated `predllc_cache::Dram` compatibility surface.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DramStats {
    /// Number of line fetches (LLC miss fills).
    pub reads: u64,
    /// Number of line write-backs (dirty LLC evictions).
    pub writes: u64,
}

/// A fixed-latency DRAM: every access costs the same number of cycles.
///
/// This is bit-identical to the seed's `predllc_cache::Dram` — the
/// paper's system model collapses the memory system into one constant
/// charge provisioned to cover the worst case — and is the **default**
/// memory backend of every configuration. Its
/// [`worst_case_latency`](MemoryBackend::worst_case_latency) is the
/// fixed latency itself.
///
/// # Examples
///
/// ```
/// use predllc_dram::{FixedLatency, MemRequest, MemoryBackend};
/// use predllc_model::{CoreId, Cycles, LineAddr};
///
/// let mut dram = FixedLatency::new(Cycles::new(30));
/// let a = dram.access(MemRequest::fetch(LineAddr::new(4), CoreId::new(0), Cycles::ZERO));
/// assert_eq!(a.latency, Cycles::new(30));
/// assert_eq!(dram.mem_stats().reads, 1);
/// assert_eq!(dram.worst_case_latency(), Cycles::new(30));
/// ```
#[derive(Debug, Clone)]
pub struct FixedLatency {
    latency: Cycles,
    stats: MemStats,
}

impl FixedLatency {
    /// The paper-calibrated default access latency: 30 cycles, comfortably
    /// inside the 50-cycle slot together with the LLC tag lookup.
    pub const DEFAULT_LATENCY: Cycles = Cycles::new(30);

    /// Creates a fixed-latency DRAM.
    pub fn new(latency: Cycles) -> Self {
        FixedLatency {
            latency,
            stats: MemStats::default(),
        }
    }

    /// The fixed access latency.
    pub fn latency(&self) -> Cycles {
        self.latency
    }

    /// Fetches a line (an LLC miss fill), returning the access latency.
    ///
    /// Seed-era convenience kept for the deprecated `Dram` alias; new
    /// code drives the [`MemoryBackend::access`] interface.
    pub fn fetch(&mut self, _line: LineAddr) -> Cycles {
        self.stats.reads += 1;
        self.latency
    }

    /// Writes back a dirty line evicted from the LLC, returning the
    /// access latency (seed-era convenience, like [`FixedLatency::fetch`]).
    pub fn write_back(&mut self, _line: LineAddr) -> Cycles {
        self.stats.writes += 1;
        self.latency
    }

    /// Traffic counters in the seed's original shape.
    pub fn stats(&self) -> DramStats {
        DramStats {
            reads: self.stats.reads,
            writes: self.stats.writes,
        }
    }

    /// Resets the traffic counters (seed-era name for
    /// [`MemoryBackend::reset`]).
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::default();
    }
}

impl Default for FixedLatency {
    fn default() -> Self {
        FixedLatency::new(FixedLatency::DEFAULT_LATENCY)
    }
}

impl MemoryBackend for FixedLatency {
    fn access(&mut self, req: MemRequest) -> MemAccess {
        let access = MemAccess {
            latency: self.latency,
            bank: BankId::new(0),
            row: None,
            waited: Cycles::ZERO,
        };
        self.stats.record(&access, req.write);
        access
    }

    fn worst_case_latency(&self) -> Cycles {
        self.latency
    }

    fn mem_stats(&self) -> &MemStats {
        &self.stats
    }

    fn reset(&mut self) {
        self.reset_stats();
    }

    fn label(&self) -> String {
        format!("fixed({})", self.latency.as_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predllc_model::CoreId;

    #[test]
    fn counts_traffic_like_the_seed() {
        let mut d = FixedLatency::default();
        assert_eq!(d.latency(), Cycles::new(30));
        for i in 0..3 {
            assert_eq!(d.fetch(LineAddr::new(i)), Cycles::new(30));
        }
        d.write_back(LineAddr::new(0));
        assert_eq!(
            d.stats(),
            DramStats {
                reads: 3,
                writes: 1
            }
        );
        d.reset_stats();
        assert_eq!(d.stats(), DramStats::default());
    }

    #[test]
    fn backend_interface_matches_seed_semantics() {
        let mut d = FixedLatency::new(Cycles::new(12));
        let r = d.access(MemRequest::fetch(
            LineAddr::new(7),
            CoreId::new(1),
            Cycles::new(100),
        ));
        assert_eq!(r.latency, Cycles::new(12));
        assert_eq!(r.row, None, "flat backend reports no row outcome");
        let w = d.access(MemRequest::write_back(
            LineAddr::new(7),
            CoreId::new(1),
            Cycles::new(150),
        ));
        assert_eq!(w.latency, Cycles::new(12));
        assert_eq!((d.mem_stats().reads, d.mem_stats().writes), (1, 1));
        assert_eq!(d.mem_stats().max_latency, Cycles::new(12));
        assert_eq!(d.label(), "fixed(12)");
        d.reset();
        assert_eq!(d.mem_stats().accesses(), 0);
    }
}
