//! Validation errors of the memory-backend configurations.

use std::error::Error;
use std::fmt;

/// Errors raised while building a memory backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DramError {
    /// A bank-privatized mapping needs equal, non-empty per-core bank
    /// slices: the total bank count must be a positive multiple of the
    /// core count.
    BanksNotDivisibleByCores {
        /// Total banks in the geometry.
        banks: u32,
        /// Cores in the system.
        cores: u16,
    },
}

impl fmt::Display for DramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramError::BanksNotDivisibleByCores { banks, cores } => write!(
                f,
                "bank-private mapping needs banks divisible by cores, got {banks} banks for \
                 {cores} cores"
            ),
        }
    }
}

impl Error for DramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_without_trailing_punctuation() {
        let e = DramError::BanksNotDivisibleByCores { banks: 8, cores: 3 };
        let msg = e.to_string();
        assert!(msg.contains("8 banks") && msg.contains("3 cores"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_good<E: Error + Send + Sync + 'static>() {}
        assert_good::<DramError>();
    }
}
