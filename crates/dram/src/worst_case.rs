//! The worst-case adapter: sound WCL experiments on any backend.

use predllc_model::Cycles;

use crate::backend::{MemAccess, MemRequest, MemStats, MemoryBackend};

/// Wraps a backend and answers **every** request with the wrapped
/// backend's analytical worst-case latency.
///
/// The inner backend still sees every access (its bank state machines
/// advance and decide the row outcome), but the latency reported upward
/// is pinned to [`MemoryBackend::worst_case_latency`], and the adapter
/// keeps its own statistics so `mem_stats()` describes what the engine
/// actually observed (in particular `max_latency` equals the bound).
/// This makes WCL experiments sound by construction: a run against
/// `WorstCase<B>` charges each miss fill and write-back what the
/// analysis assumes, so observed request latencies upper-bound any run
/// against `B` itself.
///
/// # Examples
///
/// ```
/// use predllc_dram::{FixedLatency, MemRequest, MemoryBackend, WorstCase};
/// use predllc_model::{CoreId, Cycles, LineAddr};
///
/// let mut wc = WorstCase::new(FixedLatency::new(Cycles::new(20)));
/// let a = wc.access(MemRequest::fetch(LineAddr::new(0), CoreId::new(0), Cycles::ZERO));
/// assert_eq!(a.latency, Cycles::new(20));
/// ```
#[derive(Debug, Clone)]
pub struct WorstCase<B> {
    inner: B,
    stats: MemStats,
}

impl<B: MemoryBackend> WorstCase<B> {
    /// Wraps a backend.
    pub fn new(inner: B) -> Self {
        WorstCase {
            inner,
            stats: MemStats::default(),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }
}

impl<B: MemoryBackend> MemoryBackend for WorstCase<B> {
    fn access(&mut self, req: MemRequest) -> MemAccess {
        let real = self.inner.access(req);
        let pinned = MemAccess {
            latency: self.inner.worst_case_latency(),
            ..real
        };
        self.stats.record(&pinned, req.write);
        pinned
    }

    fn worst_case_latency(&self) -> Cycles {
        self.inner.worst_case_latency()
    }

    fn mem_stats(&self) -> &MemStats {
        &self.stats
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.stats = MemStats::default();
    }

    fn label(&self) -> String {
        format!("wc({})", self.inner.label())
    }

    fn next_busy_until(&self) -> Cycles {
        self.inner.next_busy_until()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::banked::BankedDram;
    use crate::mapping::BankMapping;
    use crate::timing::DramTiming;
    use predllc_model::{CoreId, DramGeometry, LineAddr};

    #[test]
    fn every_answer_is_the_analytical_worst_case() {
        let inner = BankedDram::new(
            DramTiming::PAPER,
            DramGeometry::PAPER,
            BankMapping::Interleaved,
            2,
        )
        .unwrap();
        let wc_latency = inner.worst_case_latency();
        let mut wc = WorstCase::new(inner);
        for (i, at) in [(0u64, 0u64), (1, 50), (512, 100), (513, 150)] {
            let a = wc.access(MemRequest::fetch(
                LineAddr::new(i),
                CoreId::new(0),
                Cycles::new(at),
            ));
            assert_eq!(a.latency, wc_latency);
        }
        // The inner model still decided row outcomes underneath, and the
        // adapter's own stats report the pinned latencies.
        assert_eq!(wc.mem_stats().row_hits, 2);
        assert_eq!(wc.inner().mem_stats().row_hits, 2);
        assert_eq!(wc.mem_stats().max_latency, wc_latency);
        assert!(wc.label().starts_with("wc(banked("));
        wc.reset();
        assert_eq!(wc.mem_stats().accesses(), 0);
        assert_eq!(wc.inner().mem_stats().accesses(), 0);
    }
}
