//! The DRAM timing-parameter table.

use std::fmt;

use predllc_model::Cycles;

/// The per-command timing parameters of the banked DRAM model, in cycles.
///
/// The model charges the classic open-row cost structure:
///
/// | situation | cost |
/// |---|---|
/// | row hit (open row matches) | `tCAS + tBUS` |
/// | row empty (bank precharged, no open row) | `tRCD + tCAS + tBUS` |
/// | row conflict (different row open) | `tRP + tRCD + tCAS + tBUS` |
///
/// A write additionally keeps the bank busy for `tWR` (write recovery)
/// after its data transfer, which a subsequent access to the same bank
/// must wait out.
///
/// # Calibration
///
/// [`DramTiming::PAPER`] is chosen so that the analytical worst case of
/// one access ([`DramTiming::worst_case`]) equals **30 cycles** — exactly
/// the fixed charge the paper's system model provisions for a miss fill,
/// so a `BankedDram` with default timing drops into any configuration
/// the seed's fixed-latency DRAM was valid for.
///
/// # Examples
///
/// ```
/// use predllc_dram::DramTiming;
///
/// let t = DramTiming::PAPER;
/// assert_eq!(t.row_hit().as_u64(), 4);
/// assert_eq!(t.row_empty().as_u64(), 8);
/// assert_eq!(t.row_conflict().as_u64(), 11);
/// assert_eq!(t.worst_case().as_u64(), 30);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramTiming {
    /// `tRCD`: activate (row open) to column command.
    pub t_rcd: u64,
    /// `tRP`: precharge (row close).
    pub t_rp: u64,
    /// `tCAS`: column access strobe.
    pub t_cas: u64,
    /// `tWR`: write recovery — extra bank-busy time after a write.
    pub t_wr: u64,
    /// `tBUS`: burst transfer of one cache line on the memory bus.
    pub t_bus: u64,
}

impl DramTiming {
    /// Paper-calibrated defaults: `tRCD=4, tRP=3, tCAS=2, tWR=4, tBUS=2`,
    /// giving a 30-cycle analytical worst case — the seed's fixed DRAM
    /// charge.
    pub const PAPER: DramTiming = DramTiming {
        t_rcd: 4,
        t_rp: 3,
        t_cas: 2,
        t_wr: 4,
        t_bus: 2,
    };

    /// Cost of an access that hits the open row: `tCAS + tBUS`.
    pub const fn row_hit(&self) -> Cycles {
        Cycles::new(self.t_cas + self.t_bus)
    }

    /// Cost of an access to a precharged bank (no row open):
    /// `tRCD + tCAS + tBUS`.
    pub const fn row_empty(&self) -> Cycles {
        Cycles::new(self.t_rcd + self.t_cas + self.t_bus)
    }

    /// Cost of an access that conflicts with a different open row:
    /// `tRP + tRCD + tCAS + tBUS`.
    pub const fn row_conflict(&self) -> Cycles {
        Cycles::new(self.t_rp + self.t_rcd + self.t_cas + self.t_bus)
    }

    /// The analytical worst case of a single access:
    /// `2·(tRP + tRCD + tCAS + tBUS) + 2·tWR`.
    ///
    /// One TDM slot carries at most **two** DRAM accesses (a dirty-victim
    /// write-back plus the fill that re-uses the freed entry), so the
    /// worst wait an access can see from within its own slot is a full
    /// row-conflict access plus its write recovery; its own cost is
    /// another row conflict. The second `tWR` term covers this access's
    /// own write recovery, which makes the bound *self-stabilizing*:
    /// whenever `worst_case() ≤ slot width` (the slot-budget invariant
    /// the configuration builder enforces), a bank touched in one slot is
    /// always ready again by the next slot boundary, so cross-slot waits
    /// are provably zero and every observed latency is `≤ worst_case()`.
    pub const fn worst_case(&self) -> Cycles {
        Cycles::new(2 * (self.t_rp + self.t_rcd + self.t_cas + self.t_bus) + 2 * self.t_wr)
    }
}

impl Default for DramTiming {
    fn default() -> Self {
        DramTiming::PAPER
    }
}

impl fmt::Display for DramTiming {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tRCD={} tRP={} tCAS={} tWR={} tBUS={}",
            self.t_rcd, self.t_rp, self.t_cas, self.t_wr, self.t_bus
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_ladder_is_ordered() {
        let t = DramTiming::PAPER;
        assert!(t.row_hit() < t.row_empty());
        assert!(t.row_empty() < t.row_conflict());
        assert!(t.row_conflict() < t.worst_case());
    }

    #[test]
    fn paper_worst_case_matches_seed_fixed_charge() {
        // 2 * (3 + 4 + 2 + 2) + 2 * 4 = 30: the seed's Dram::DEFAULT_LATENCY.
        assert_eq!(DramTiming::PAPER.worst_case(), Cycles::new(30));
    }

    #[test]
    fn default_is_paper_and_displays() {
        assert_eq!(DramTiming::default(), DramTiming::PAPER);
        assert_eq!(
            DramTiming::PAPER.to_string(),
            "tRCD=4 tRP=3 tCAS=2 tWR=4 tBUS=2"
        );
    }
}
