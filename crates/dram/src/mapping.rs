//! Line-address → (bank, row) mappings.

use std::fmt;

use predllc_model::{BankId, CoreId, DramGeometry, LineAddr, RowAddr};

/// How cache-line addresses are spread across DRAM banks.
///
/// Both mappings keep a whole row's worth of consecutive lines in one
/// bank (so streaming access enjoys row-buffer locality) and differ in
/// which banks a core's traffic can land in:
///
/// * [`BankMapping::Interleaved`] rotates rows across **all** banks —
///   maximal parallelism, but cores contend for row buffers.
/// * [`BankMapping::BankPrivate`] gives every core an equal, disjoint
///   slice of the banks and routes each access to its **issuing**
///   core's slice — the bank-privatization scheme of predictable
///   memory controllers. Traffic of different cores can never contend
///   for a row buffer, so for data that is not shared between cores
///   (private LLC partitions, disjoint address ranges) there is no
///   inter-core row-buffer interference by construction. For lines
///   genuinely shared across cores the guarantee weakens, as on real
///   privatized controllers: a shared line is routed per requester, so
///   its traffic lands in whichever sharer's slice carried the bus
///   transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BankMapping {
    /// Rows rotate over all banks, shared by every core.
    #[default]
    Interleaved,
    /// Banks are sliced per core; an access uses its core's slice only.
    BankPrivate,
}

impl fmt::Display for BankMapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BankMapping::Interleaved => f.write_str("interleaved"),
            BankMapping::BankPrivate => f.write_str("bank-private"),
        }
    }
}

impl BankMapping {
    /// Decodes a line address to the bank and row it lives in.
    ///
    /// For [`BankMapping::BankPrivate`] the result depends on the
    /// issuing core: the line is placed within that core's bank slice.
    /// The caller guarantees `geometry.total_banks()` is divisible by
    /// `num_cores` (validated when the memory configuration is built).
    pub fn decode(
        &self,
        line: LineAddr,
        core: CoreId,
        geometry: DramGeometry,
        num_cores: u16,
    ) -> (BankId, RowAddr) {
        let row_lines = u64::from(geometry.row_lines());
        let banks = u64::from(geometry.total_banks());
        let row_of = line.as_u64() / row_lines;
        match self {
            BankMapping::Interleaved => {
                let bank = row_of % banks;
                let row = row_of / banks;
                (BankId::new(bank as u32), RowAddr::new(row))
            }
            BankMapping::BankPrivate => {
                let per_core = banks / u64::from(num_cores.max(1));
                let base = u64::from(core.index()) * per_core;
                let bank = base + row_of % per_core;
                let row = row_of / per_core;
                (BankId::new(bank as u32), RowAddr::new(row))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const G: DramGeometry = DramGeometry::PAPER; // 8 banks, 64 lines/row

    #[test]
    fn interleaved_keeps_rows_together_and_rotates_banks() {
        let m = BankMapping::Interleaved;
        // Lines 0..63 are one row in one bank.
        let (b0, r0) = m.decode(LineAddr::new(0), CoreId::new(0), G, 4);
        let (b1, r1) = m.decode(LineAddr::new(63), CoreId::new(0), G, 4);
        assert_eq!((b0, r0), (b1, r1));
        // The next row lands in the next bank.
        let (b2, _) = m.decode(LineAddr::new(64), CoreId::new(0), G, 4);
        assert_eq!(b2, BankId::new(1));
        // After all 8 banks, the row index advances.
        let (b3, r3) = m.decode(LineAddr::new(64 * 8), CoreId::new(3), G, 4);
        assert_eq!(b3, BankId::new(0));
        assert_eq!(r3, RowAddr::new(1));
        // The issuing core is irrelevant under interleaving.
        let (b4, _) = m.decode(LineAddr::new(64), CoreId::new(3), G, 4);
        assert_eq!(b4, b2);
    }

    #[test]
    fn bank_private_slices_are_disjoint_per_core() {
        let m = BankMapping::BankPrivate;
        // 8 banks / 4 cores = 2 banks per core.
        for core in 0..4u16 {
            for line in [0u64, 64, 128, 9999] {
                let (b, _) = m.decode(LineAddr::new(line), CoreId::new(core), G, 4);
                let slice = b.index() / 2;
                assert_eq!(slice, u32::from(core), "core {core} escaped its slice");
            }
        }
    }

    #[test]
    fn bank_private_rotates_within_the_slice() {
        let m = BankMapping::BankPrivate;
        let (b0, r0) = m.decode(LineAddr::new(0), CoreId::new(1), G, 4);
        let (b1, _) = m.decode(LineAddr::new(64), CoreId::new(1), G, 4);
        assert_eq!(b0, BankId::new(2));
        assert_eq!(b1, BankId::new(3));
        assert_eq!(r0, RowAddr::new(0));
        // Two rows later we are back in the first bank of the slice, one
        // row deeper.
        let (b2, r2) = m.decode(LineAddr::new(128), CoreId::new(1), G, 4);
        assert_eq!(b2, BankId::new(2));
        assert_eq!(r2, RowAddr::new(1));
    }

    #[test]
    fn mapping_displays() {
        assert_eq!(BankMapping::Interleaved.to_string(), "interleaved");
        assert_eq!(BankMapping::BankPrivate.to_string(), "bank-private");
        assert_eq!(BankMapping::default(), BankMapping::Interleaved);
    }
}
