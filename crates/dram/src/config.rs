//! Declarative backend selection: the [`MemoryConfig`] value a
//! `SystemConfig` carries and builds fresh backends from.

use std::fmt;

use predllc_model::{Cycles, DramGeometry};

use crate::backend::MemoryBackend;
use crate::banked::BankedDram;
use crate::error::DramError;
use crate::fixed::FixedLatency;
use crate::mapping::BankMapping;
use crate::timing::DramTiming;
use crate::worst_case::WorstCase;

/// Which memory backend a simulation runs against.
///
/// This is plain data — cloneable, comparable, thread-safe — so a
/// validated system configuration can [`build`](MemoryConfig::build) a
/// fresh, stateless-started backend for every run.
///
/// # Examples
///
/// ```
/// use predllc_dram::MemoryConfig;
/// use predllc_model::Cycles;
///
/// // The default matches the seed simulator: a fixed 30-cycle DRAM.
/// assert_eq!(MemoryConfig::default(), MemoryConfig::fixed(Cycles::new(30)));
///
/// // A banked model with paper-calibrated timing has the same 30-cycle
/// // analytical worst case.
/// let banked = MemoryConfig::banked();
/// assert_eq!(banked.worst_case_latency(), Cycles::new(30));
///
/// // Any configuration can be pinned to its worst case for sound WCL
/// // experiments.
/// let wc = banked.worst_case();
/// assert_eq!(wc.worst_case_latency(), Cycles::new(30));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MemoryConfig {
    /// Every access costs the same `latency` — the seed's model.
    FixedLatency {
        /// The fixed access latency.
        latency: Cycles,
    },
    /// The bank/row-buffer-aware model.
    Banked {
        /// The timing-parameter table.
        timing: DramTiming,
        /// The device geometry.
        geometry: DramGeometry,
        /// The line → bank mapping.
        mapping: BankMapping,
    },
    /// Answer every request with the inner backend's analytical worst
    /// case (the [`WorstCase`] adapter).
    WorstCaseOf(Box<MemoryConfig>),
}

impl MemoryConfig {
    /// A fixed-latency backend.
    pub fn fixed(latency: Cycles) -> Self {
        MemoryConfig::FixedLatency { latency }
    }

    /// The banked model with paper-calibrated timing, the default
    /// geometry and interleaved mapping.
    pub fn banked() -> Self {
        MemoryConfig::Banked {
            timing: DramTiming::PAPER,
            geometry: DramGeometry::PAPER,
            mapping: BankMapping::Interleaved,
        }
    }

    /// The banked model with bank-privatized per-core mapping (and
    /// otherwise paper-calibrated parameters).
    pub fn bank_private() -> Self {
        MemoryConfig::Banked {
            timing: DramTiming::PAPER,
            geometry: DramGeometry::PAPER,
            mapping: BankMapping::BankPrivate,
        }
    }

    /// Wraps this configuration in the worst-case adapter.
    pub fn worst_case(self) -> Self {
        MemoryConfig::WorstCaseOf(Box::new(self))
    }

    /// The analytical worst-case latency of a single access under this
    /// configuration — the quantity checked against the TDM slot budget.
    pub fn worst_case_latency(&self) -> Cycles {
        match self {
            MemoryConfig::FixedLatency { latency } => *latency,
            MemoryConfig::Banked { timing, .. } => timing.worst_case(),
            MemoryConfig::WorstCaseOf(inner) => inner.worst_case_latency(),
        }
    }

    /// Validates the configuration for a system of `num_cores` cores
    /// without building a backend.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::BanksNotDivisibleByCores`] for a
    /// bank-privatized mapping that cannot slice its banks evenly.
    pub fn validate(&self, num_cores: u16) -> Result<(), DramError> {
        match self {
            MemoryConfig::FixedLatency { .. } => Ok(()),
            MemoryConfig::Banked {
                timing,
                geometry,
                mapping,
            } => BankedDram::new(*timing, *geometry, *mapping, num_cores).map(|_| ()),
            MemoryConfig::WorstCaseOf(inner) => inner.validate(num_cores),
        }
    }

    /// Builds a fresh backend (zeroed state and counters).
    ///
    /// # Errors
    ///
    /// Propagates [`MemoryConfig::validate`] failures.
    pub fn build(&self, num_cores: u16) -> Result<Box<dyn MemoryBackend>, DramError> {
        Ok(match self {
            MemoryConfig::FixedLatency { latency } => Box::new(FixedLatency::new(*latency)),
            MemoryConfig::Banked {
                timing,
                geometry,
                mapping,
            } => Box::new(BankedDram::new(*timing, *geometry, *mapping, num_cores)?),
            MemoryConfig::WorstCaseOf(inner) => Box::new(WorstCase::new(inner.build(num_cores)?)),
        })
    }

    /// A short report label, identical to the built backend's
    /// [`MemoryBackend::label`].
    pub fn label(&self) -> String {
        match self {
            MemoryConfig::FixedLatency { latency } => format!("fixed({})", latency.as_u64()),
            MemoryConfig::Banked {
                geometry, mapping, ..
            } => format!(
                "banked({}x{},{})",
                geometry.channels(),
                geometry.banks_per_channel(),
                mapping
            ),
            MemoryConfig::WorstCaseOf(inner) => format!("wc({})", inner.label()),
        }
    }
}

impl Default for MemoryConfig {
    /// The seed simulator's DRAM: fixed 30-cycle accesses.
    fn default() -> Self {
        MemoryConfig::fixed(FixedLatency::DEFAULT_LATENCY)
    }
}

impl fmt::Display for MemoryConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn built_backends_carry_the_config_label() {
        for cfg in [
            MemoryConfig::default(),
            MemoryConfig::banked(),
            MemoryConfig::bank_private(),
            MemoryConfig::banked().worst_case(),
        ] {
            let backend = cfg.build(4).unwrap();
            assert_eq!(backend.label(), cfg.label());
            assert_eq!(backend.worst_case_latency(), cfg.worst_case_latency());
        }
    }

    #[test]
    fn validate_rejects_uneven_bank_slices() {
        assert_eq!(
            MemoryConfig::bank_private().validate(3),
            Err(DramError::BanksNotDivisibleByCores { banks: 8, cores: 3 })
        );
        assert!(MemoryConfig::bank_private().validate(4).is_ok());
        // The worst-case wrapper validates its inner config.
        assert!(MemoryConfig::bank_private()
            .worst_case()
            .validate(5)
            .is_err());
    }

    #[test]
    fn labels_and_display() {
        assert_eq!(MemoryConfig::default().label(), "fixed(30)");
        assert_eq!(MemoryConfig::banked().label(), "banked(1x8,interleaved)");
        assert_eq!(
            MemoryConfig::bank_private().worst_case().to_string(),
            "wc(banked(1x8,bank-private))"
        );
    }
}
