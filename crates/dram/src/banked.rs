//! The bank/row-buffer-aware DRAM model.

use predllc_model::{Cycles, DramGeometry, RowAddr};

use crate::backend::{MemAccess, MemRequest, MemStats, MemoryBackend, RowOutcome};
use crate::error::DramError;
use crate::mapping::BankMapping;
use crate::timing::DramTiming;

/// Per-bank state: the open row and when the bank is next ready.
#[derive(Debug, Default, Clone, Copy)]
struct BankState {
    open_row: Option<RowAddr>,
    ready_at: Cycles,
}

/// A channels × banks DRAM with open-row policy and per-bank state
/// machines.
///
/// Every access is decoded to a `(bank, row)` pair by the configured
/// [`BankMapping`], waits for that bank's readiness, then pays the
/// [`DramTiming`] cost of its row-buffer outcome (hit / empty /
/// conflict). Writes additionally hold the bank busy for `tWR` (write
/// recovery) after their transfer — the read/write turnaround a
/// subsequent access to the same bank must wait out. Banks are fully
/// independent; channel-level bus contention is not modelled (the TDM
/// bus in front of the LLC already serializes transactions).
///
/// # Examples
///
/// ```
/// use predllc_dram::{BankMapping, BankedDram, DramTiming, MemRequest, MemoryBackend};
/// use predllc_model::{CoreId, Cycles, DramGeometry, LineAddr};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut dram = BankedDram::new(
///     DramTiming::PAPER,
///     DramGeometry::PAPER,
///     BankMapping::Interleaved,
///     4,
/// )?;
/// // First touch of a row: the bank is empty.
/// let a = dram.access(MemRequest::fetch(LineAddr::new(0), CoreId::new(0), Cycles::ZERO));
/// assert_eq!(a.latency, DramTiming::PAPER.row_empty());
/// // The next line of the same row hits the open row.
/// let b = dram.access(MemRequest::fetch(LineAddr::new(1), CoreId::new(0), Cycles::new(50)));
/// assert_eq!(b.latency, DramTiming::PAPER.row_hit());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BankedDram {
    timing: DramTiming,
    geometry: DramGeometry,
    mapping: BankMapping,
    num_cores: u16,
    banks: Vec<BankState>,
    stats: MemStats,
}

impl BankedDram {
    /// Creates a banked DRAM for a system of `num_cores` cores.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::BanksNotDivisibleByCores`] for a
    /// [`BankMapping::BankPrivate`] mapping whose total bank count is not
    /// an exact positive multiple of the core count (the per-core slices
    /// must be equal and non-empty).
    pub fn new(
        timing: DramTiming,
        geometry: DramGeometry,
        mapping: BankMapping,
        num_cores: u16,
    ) -> Result<Self, DramError> {
        if mapping == BankMapping::BankPrivate {
            let banks = geometry.total_banks();
            if num_cores == 0 || !banks.is_multiple_of(u32::from(num_cores)) {
                return Err(DramError::BanksNotDivisibleByCores {
                    banks,
                    cores: num_cores,
                });
            }
        }
        Ok(BankedDram {
            timing,
            geometry,
            mapping,
            num_cores,
            banks: vec![BankState::default(); geometry.total_banks() as usize],
            stats: MemStats::default(),
        })
    }

    /// The timing table in force.
    pub fn timing(&self) -> DramTiming {
        self.timing
    }

    /// The device geometry.
    pub fn geometry(&self) -> DramGeometry {
        self.geometry
    }

    /// The address mapping in force.
    pub fn mapping(&self) -> BankMapping {
        self.mapping
    }

    /// The row currently open in `bank`, if any (test/inspection helper).
    pub fn open_row(&self, bank: predllc_model::BankId) -> Option<RowAddr> {
        self.banks[bank.as_usize()].open_row
    }
}

impl MemoryBackend for BankedDram {
    fn access(&mut self, req: MemRequest) -> MemAccess {
        let (bank_id, row) = self
            .mapping
            .decode(req.line, req.core, self.geometry, self.num_cores);
        let bank = &mut self.banks[bank_id.as_usize()];
        let waited = bank.ready_at.saturating_sub(req.at);
        let outcome = match bank.open_row {
            Some(open) if open == row => RowOutcome::Hit,
            Some(_) => RowOutcome::Conflict,
            None => RowOutcome::Empty,
        };
        let cost = match outcome {
            RowOutcome::Hit => self.timing.row_hit(),
            RowOutcome::Empty => self.timing.row_empty(),
            RowOutcome::Conflict => self.timing.row_conflict(),
        };
        let latency = waited + cost;
        bank.open_row = Some(row);
        bank.ready_at = req.at + latency;
        if req.write {
            bank.ready_at += Cycles::new(self.timing.t_wr);
        }
        let access = MemAccess {
            latency,
            bank: bank_id,
            row: Some(outcome),
            waited,
        };
        self.stats.record(&access, req.write);
        access
    }

    fn worst_case_latency(&self) -> Cycles {
        self.timing.worst_case()
    }

    fn mem_stats(&self) -> &MemStats {
        &self.stats
    }

    fn reset(&mut self) {
        self.banks = vec![BankState::default(); self.geometry.total_banks() as usize];
        self.stats = MemStats::default();
    }

    fn label(&self) -> String {
        format!(
            "banked({}x{},{})",
            self.geometry.channels(),
            self.geometry.banks_per_channel(),
            self.mapping
        )
    }

    fn next_busy_until(&self) -> Cycles {
        self.banks
            .iter()
            .map(|b| b.ready_at)
            .max()
            .unwrap_or(Cycles::ZERO)
    }

    fn open_rows(&self) -> Vec<(predllc_model::BankId, u64)> {
        self.banks
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                b.open_row
                    .map(|r| (predllc_model::BankId::new(i as u32), r.as_u64()))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predllc_model::{BankId, CoreId, LineAddr};

    const T: DramTiming = DramTiming::PAPER;

    fn dram(mapping: BankMapping) -> BankedDram {
        BankedDram::new(T, DramGeometry::PAPER, mapping, 4).unwrap()
    }

    fn fetch(d: &mut BankedDram, line: u64, core: u16, at: u64) -> MemAccess {
        d.access(MemRequest::fetch(
            LineAddr::new(line),
            CoreId::new(core),
            Cycles::new(at),
        ))
    }

    fn write(d: &mut BankedDram, line: u64, core: u16, at: u64) -> MemAccess {
        d.access(MemRequest::write_back(
            LineAddr::new(line),
            CoreId::new(core),
            Cycles::new(at),
        ))
    }

    #[test]
    fn row_hit_miss_conflict_cycle_counts() {
        let mut d = dram(BankMapping::Interleaved);
        // Cold bank: empty → tRCD + tCAS + tBUS.
        let a = fetch(&mut d, 0, 0, 0);
        assert_eq!(a.row, Some(RowOutcome::Empty));
        assert_eq!(a.latency, T.row_empty());
        // Same row, next slot: hit → tCAS + tBUS.
        let b = fetch(&mut d, 1, 0, 50);
        assert_eq!(b.row, Some(RowOutcome::Hit));
        assert_eq!(b.latency, T.row_hit());
        // Different row, same bank (8 banks × 64-line rows → +512 lines
        // revisits bank 0): conflict → tRP + tRCD + tCAS + tBUS.
        let c = fetch(&mut d, 512, 0, 100);
        assert_eq!(c.bank, a.bank);
        assert_eq!(c.row, Some(RowOutcome::Conflict));
        assert_eq!(c.latency, T.row_conflict());
        assert_eq!(d.mem_stats().row_hits, 1);
        assert_eq!(d.mem_stats().row_empties, 1);
        assert_eq!(d.mem_stats().row_conflicts, 1);
    }

    #[test]
    fn same_slot_second_access_waits_for_the_bank() {
        let mut d = dram(BankMapping::Interleaved);
        // A write-back and a fetch to the same bank in one slot: the
        // fetch waits out the write's latency plus write recovery.
        let w = write(&mut d, 0, 0, 0);
        assert_eq!(w.waited, Cycles::ZERO);
        let f = fetch(&mut d, 512, 0, 0); // same bank, different row
        assert_eq!(f.waited, w.latency + Cycles::new(T.t_wr));
        assert_eq!(f.latency, f.waited + T.row_conflict());
        assert!(f.latency <= T.worst_case(), "within the analytical bound");
        assert_eq!(d.mem_stats().busy_waits, 1);
    }

    #[test]
    fn banks_are_independent() {
        let mut d = dram(BankMapping::Interleaved);
        write(&mut d, 0, 0, 0); // bank 0 busy
        let f = fetch(&mut d, 64, 0, 0); // bank 1: no wait
        assert_eq!(f.bank, BankId::new(1));
        assert_eq!(f.waited, Cycles::ZERO);
    }

    #[test]
    fn bank_ready_again_by_the_next_slot() {
        // The self-stabilizing property behind the worst-case bound: with
        // worst_case() = 30 < 50-cycle slots, any two same-slot accesses
        // leave the bank ready before the next boundary.
        let mut d = dram(BankMapping::Interleaved);
        write(&mut d, 0, 0, 0);
        write(&mut d, 512, 0, 0); // worst same-slot chain, both writes
        let f = fetch(&mut d, 1024, 0, 50);
        assert_eq!(f.waited, Cycles::ZERO, "cross-slot wait must be zero");
    }

    #[test]
    fn bank_private_isolates_row_buffers_between_cores() {
        let mut shared = dram(BankMapping::Interleaved);
        // Core 0 streams a row; core 1 interleaves a different row of the
        // same (shared) bank → core 0 keeps conflicting.
        fetch(&mut shared, 0, 0, 0);
        fetch(&mut shared, 512, 1, 50);
        let a = fetch(&mut shared, 2, 0, 100);
        assert_eq!(a.row, Some(RowOutcome::Conflict));

        let mut private = dram(BankMapping::BankPrivate);
        // Same traffic under bank privatization: the cores' rows live in
        // disjoint banks, so core 0's second access still row-hits.
        fetch(&mut private, 0, 0, 0);
        fetch(&mut private, 512, 1, 50);
        let b = fetch(&mut private, 2, 0, 100);
        assert_eq!(b.row, Some(RowOutcome::Hit));
    }

    #[test]
    fn bank_private_requires_divisible_banks() {
        let err = BankedDram::new(T, DramGeometry::PAPER, BankMapping::BankPrivate, 3).unwrap_err();
        assert_eq!(
            err,
            DramError::BanksNotDivisibleByCores { banks: 8, cores: 3 }
        );
        // Interleaving has no such constraint.
        assert!(BankedDram::new(T, DramGeometry::PAPER, BankMapping::Interleaved, 3).is_ok());
    }

    #[test]
    fn reset_clears_rows_and_stats() {
        let mut d = dram(BankMapping::Interleaved);
        fetch(&mut d, 0, 0, 0);
        assert!(d.open_row(BankId::new(0)).is_some());
        d.reset();
        assert!(d.open_row(BankId::new(0)).is_none());
        assert_eq!(d.mem_stats().accesses(), 0);
    }

    #[test]
    fn label_names_geometry_and_mapping() {
        assert_eq!(
            dram(BankMapping::BankPrivate).label(),
            "banked(1x8,bank-private)"
        );
    }

    #[test]
    fn next_busy_until_tracks_the_latest_bank() {
        let mut d = dram(BankMapping::Interleaved);
        assert_eq!(d.next_busy_until(), Cycles::ZERO);
        let a = fetch(&mut d, 0, 0, 100);
        assert_eq!(d.next_busy_until(), Cycles::new(100) + a.latency);
        // A later access to another bank extends the horizon; the
        // earlier bank's window is subsumed by the max.
        let b = fetch(&mut d, 1, 0, 200);
        assert_eq!(d.next_busy_until(), Cycles::new(200) + b.latency);
        // A write adds the write-recovery window on top.
        let w = d.access(MemRequest::write_back(
            LineAddr::new(2),
            CoreId::new(0),
            Cycles::new(300),
        ));
        assert_eq!(
            d.next_busy_until(),
            Cycles::new(300) + w.latency + Cycles::new(T.t_wr)
        );
        d.reset();
        assert_eq!(d.next_busy_until(), Cycles::ZERO);
    }
}
