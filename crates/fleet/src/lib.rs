//! `predllc-fleet` — the distributed experiment fleet: a coordinator
//! that shards an [`ExperimentSpec`]'s grid points across worker
//! processes over the in-tree HTTP stack, with a shared point-level
//! result cache and heartbeat-based worker-loss recovery.
//!
//! The service layer (`predllc-serve`) made experiments shared; this
//! crate makes them **distributed** without making them approximate:
//!
//! * the unit of work is one *unique* grid point (the same
//!   [`plan_grid`](predllc_explore::plan_grid) dedup the in-process
//!   grid uses), shipped as a
//!   [`PointRequest`](predllc_explore::PointRequest) to any server's
//!   `POST /v1/points` endpoint;
//! * workers answer with **exact integers only** — histogram parts and
//!   raw DRAM counters — and every derived float is recomputed on the
//!   coordinator with the in-process arithmetic, so a fleet run is
//!   **bit-identical** to `predllc_explore::run_spec` for every fleet
//!   shape: 1 worker, 4 workers, or none (in-process);
//! * a worker that stops answering (reset, refused, failed heartbeat)
//!   is marked lost, its in-flight point is requeued, and the
//!   surviving workers absorb the work — determinism is unaffected
//!   because point measurements are pure functions of the point;
//! * point results are cached at both ends (worker-side and
//!   coordinator-side, content-addressed by
//!   [`point_fingerprint`](predllc_explore::point_fingerprint)), so
//!   overlapping experiments and re-runs after a crash never
//!   re-simulate a point the fleet has already measured.
//!
//! The [`Coordinator`] implements
//! [`SpecRunner`](predllc_serve::SpecRunner), so a coordinator can
//! itself serve the full experiment API (`Server::bind_with`): clients
//! submit specs to one front door and the fleet fans each one out.
//!
//! The coordinator is also the fleet's metrics aggregator:
//! [`Coordinator::start_metric_scrape`] periodically fetches each
//! worker's `/metrics`, parses it with
//! [`expo::parse`](predllc_obs::expo::parse) and re-exports every
//! counter and gauge series on the coordinator registry with a
//! `worker` label — so one scrape of the coordinator shows the whole
//! fleet, and a lost worker shows up as a frozen
//! `predllc_fleet_scrape_ok_ms{worker=..}` gauge (a visible gap, not
//! silence). [`default_fleet_rules`] adds a `worker-loss` SLO rule on
//! top of the serve defaults.
//!
//! # Examples
//!
//! ```
//! use predllc_fleet::{Coordinator, CoordinatorConfig};
//! use predllc_serve::{Metrics, Server, ServerConfig};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Two in-process "workers" (normally separate machines).
//! let mut workers = Vec::new();
//! for _ in 0..2 {
//!     let server = Server::bind("127.0.0.1:0", ServerConfig::default())?;
//!     workers.push(server.local_addr());
//!     let handle = server.handle();
//!     std::thread::spawn(move || server.run());
//!     # drop(handle);
//! }
//!
//! let spec = predllc_explore::ExperimentSpec::parse(r#"{
//!     "name": "fleet-doc", "cores": 2,
//!     "configs": [{"partition": {"kind": "shared", "sets": 1, "ways": 4, "mode": "SS"}}],
//!     "workloads": [{"kind": "uniform", "range_bytes": 1024, "ops": 50, "seed": 7}]
//! }"#)?;
//!
//! let coordinator = Coordinator::new(
//!     workers,
//!     CoordinatorConfig::default(),
//!     Arc::new(Metrics::default()),
//! );
//! let fleet = coordinator.run(&spec, &|_, _| {})?;
//!
//! // Bit-identical to running the spec in-process.
//! let local = predllc_explore::run_spec(&spec, &predllc_explore::Executor::new(1))?;
//! assert_eq!(fleet.grid, local.grid);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coordinator;

pub use coordinator::{
    default_fleet_rules, Coordinator, CoordinatorConfig, FleetError, ScrapeHandle,
};

// Re-exported so fleet users can build specs and read reports without
// naming the underlying crates separately.
pub use predllc_explore::{ExperimentSpec, ExploreReport};
