//! The coordinator: shard a spec's unique grid points across worker
//! services, survive worker loss, merge results bit-identically.
//!
//! Dispatch is a shared work queue over unique grid points (the
//! [`plan_grid`] dedup, same as the in-process path) drained by one
//! dispatcher thread per worker. A worker that stops answering —
//! connection refused, reset mid-request, failed heartbeat — is marked
//! **lost**: its in-flight point goes back on the queue (front, so
//! recovery does not starve) and the surviving workers absorb the
//! work. Losing every worker with work still pending fails the run
//! with [`FleetError::NoWorkers`] instead of hanging.
//!
//! Merging cannot introduce drift because nothing numeric is merged:
//! workers ship exact integers ([`PointMeasurement`]), the coordinator
//! derives each row with the same arithmetic the in-process grid uses
//! ([`PointMeasurement::to_grid_result`]) and assembles declaration
//! order with [`assemble_rows`]. Which worker computed a point, and in
//! what order, is unobservable in the output.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use predllc_explore::json::{self, Json};
use predllc_explore::{
    assemble_rows, build_platforms, plan_grid, point_fingerprint, search_partitions, Executor,
    ExperimentSpec, ExploreError, ExploreReport, Fingerprint, GridResult, PointMeasurement,
    PointRequest,
};
use predllc_obs::expo::{self, ExpoValue};
use predllc_obs::{fields, Compare, Rule, TraceCtx};
use predllc_serve::{Client, ClientError, Metrics, RunOutcome, SpecRunner};

/// Why a fleet run failed.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetError {
    /// A failure detected on the coordinator itself: spec validation,
    /// platform building, or the (always-local) partition search.
    Local(ExploreError),
    /// A worker rejected one grid point as unrunnable (`422`) — the
    /// positioned equivalent of the in-process simulation failure.
    Point {
        /// The failing configuration's label.
        config: String,
        /// The failing workload's label.
        workload: String,
        /// `"config"` or `"sim"` (which stage refused).
        kind: String,
        /// The worker's error message.
        message: String,
    },
    /// Every worker was lost while grid points were still unresolved.
    NoWorkers {
        /// Unique grid points left unmeasured.
        pending: usize,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Local(e) => write!(f, "{e}"),
            // Mirror the in-process error wording so a job fails with
            // the same message whether it ran locally or on a fleet.
            FleetError::Point {
                config,
                workload,
                kind,
                message,
            } => match kind.as_str() {
                "config" => write!(f, "configuration '{config}' is invalid: {message}"),
                _ => write!(f, "grid point '{config}' x '{workload}' failed: {message}"),
            },
            FleetError::NoWorkers { pending } => write!(
                f,
                "fleet has no live workers ({pending} grid points unresolved)"
            ),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Local(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ExploreError> for FleetError {
    fn from(e: ExploreError) -> Self {
        FleetError::Local(e)
    }
}

/// Coordinator tunables.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Per-point request read timeout on worker connections.
    pub request_timeout: Duration,
    /// Transport retries per request before a worker counts as lost
    /// (see [`Client::with_retries`]).
    pub retries: u32,
    /// How often the heartbeat thread probes each worker's `/healthz`.
    pub heartbeat_interval: Duration,
    /// Threads of the coordinator-local [`Executor`] that runs the
    /// partition-search phase (`0` = one per core). The search is
    /// analytical — no simulation — so it stays local.
    pub search_threads: usize,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            request_timeout: Duration::from_secs(120),
            retries: 4,
            heartbeat_interval: Duration::from_millis(250),
            search_threads: 0,
        }
    }
}

/// One worker endpoint and whether the coordinator still believes in
/// it. Loss is permanent for the coordinator's lifetime — a recovered
/// worker rejoins as a new coordinator entry, not silently.
struct Worker {
    addr: SocketAddr,
    alive: AtomicBool,
}

/// Interior of the dispatch lock: the work queue plus completion
/// bookkeeping. Invariant: `completed + outstanding + queue.len() ==
/// total` until a permanent failure is recorded.
struct DispatchState {
    /// Indices into the unique-point list, awaiting a worker.
    queue: VecDeque<usize>,
    /// Points currently in flight on some worker.
    outstanding: usize,
    /// Points measured (or answered from the coordinator cache).
    completed: usize,
    /// Unique points overall.
    total: usize,
    /// Measurements, indexed like the unique-point list.
    results: Vec<Option<PointMeasurement>>,
    /// The first permanent failure, lowest unique index winning — the
    /// same "first failing point" a local run would report.
    failed: Option<(usize, FleetError)>,
}

/// The fleet coordinator: owns the worker list, the shared point cache
/// and the dispatch loop. One coordinator serves many runs; its point
/// cache carries measurements across them.
pub struct Coordinator {
    workers: Vec<Worker>,
    config: CoordinatorConfig,
    /// Local executor for the partition-search phase.
    exec: Executor,
    metrics: Arc<Metrics>,
    /// Coordinator-side point cache: fingerprints resolved by any
    /// earlier run (whichever worker computed them).
    cache: Mutex<HashMap<Fingerprint, PointMeasurement>>,
    /// Epoch for the per-worker scrape-freshness gauge: scrape
    /// timestamps are milliseconds since coordinator construction, so
    /// they stay monotonic and wall-clock-free.
    scrape_epoch: Instant,
}

impl Coordinator {
    /// A coordinator over `workers`, reporting into `metrics` (share
    /// the instance with a [`predllc_serve::Server`] via
    /// `Server::bind_with` so `/metrics` shows fleet counters).
    pub fn new(
        workers: impl IntoIterator<Item = SocketAddr>,
        config: CoordinatorConfig,
        metrics: Arc<Metrics>,
    ) -> Coordinator {
        let workers: Vec<Worker> = workers
            .into_iter()
            .map(|addr| Worker {
                addr,
                alive: AtomicBool::new(true),
            })
            .collect();
        metrics.workers_alive.set(workers.len() as u64);
        Coordinator {
            workers,
            exec: Executor::new(config.search_threads),
            config,
            metrics,
            cache: Mutex::new(HashMap::new()),
            scrape_epoch: Instant::now(),
        }
    }

    /// Workers the coordinator was built with.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Workers not yet declared lost.
    pub fn live_workers(&self) -> usize {
        self.workers
            .iter()
            .filter(|w| w.alive.load(Ordering::SeqCst))
            .count()
    }

    /// Runs `spec` across the fleet: unique grid points are sharded
    /// over live workers, measurements merge on the coordinator, the
    /// partition search (when declared) runs locally. The report is
    /// **bit-identical** to `predllc_explore::run_spec` — same rows,
    /// same floats, same order — whatever the fleet shape and whichever
    /// workers died along the way.
    ///
    /// `observe(done, unique_total)` fires as unique points resolve,
    /// like the in-process grid's progress hook.
    ///
    /// # Errors
    ///
    /// [`FleetError::Local`] for coordinator-side failures,
    /// [`FleetError::Point`] when a worker positions one grid point as
    /// unrunnable, [`FleetError::NoWorkers`] when every worker is lost
    /// with work pending.
    pub fn run(
        &self,
        spec: &ExperimentSpec,
        observe: &(dyn Fn(usize, usize) + Sync),
    ) -> Result<ExploreReport, FleetError> {
        self.run_traced(spec, observe, None)
    }

    /// Like [`Coordinator::run`], recording dispatch/merge spans under
    /// `ctx` when one is given. Tracing reads wall-clock time only; the
    /// report stays bit-identical to an untraced run.
    ///
    /// # Errors
    ///
    /// As [`Coordinator::run`].
    pub fn run_traced(
        &self,
        spec: &ExperimentSpec,
        observe: &(dyn Fn(usize, usize) + Sync),
        ctx: Option<TraceCtx<'_>>,
    ) -> Result<ExploreReport, FleetError> {
        let platforms = build_platforms(spec)?;
        let plan = plan_grid(spec);
        let results = self.dispatch(spec, &plan.unique, observe, ctx)?;

        // The merge tail: exact-integer measurements become grid rows
        // with the same arithmetic the in-process path uses.
        let _merge = ctx.map(|c| {
            c.span(
                "fleet.merge",
                fields(&[("unique_points", (plan.unique.len() as u64).into())]),
            )
        });
        let measured: Vec<GridResult> = plan
            .unique
            .iter()
            .zip(results)
            .map(|(&(ci, wi), m)| {
                m.expect("dispatch resolved every point").to_grid_result(
                    &spec.configs[ci].label,
                    &spec.workloads[wi].label,
                    &platforms[ci].0.memory().label(),
                    spec.workloads[wi].x,
                    platforms[ci].1,
                )
            })
            .collect();
        let search = match &spec.search {
            Some(s) => Some(search_partitions(s, spec.cores, &spec.tasks, &self.exec)?),
            None => None,
        };
        Ok(ExploreReport {
            grid: assemble_rows(spec, &plan, &measured),
            search,
            unique_points: plan.unique.len(),
            total_points: plan.points.len(),
        })
    }

    /// Resolves every unique point: coordinator cache first, then the
    /// worker fleet.
    fn dispatch(
        &self,
        spec: &ExperimentSpec,
        unique: &[(usize, usize)],
        observe: &(dyn Fn(usize, usize) + Sync),
        ctx: Option<TraceCtx<'_>>,
    ) -> Result<Vec<Option<PointMeasurement>>, FleetError> {
        let mut results: Vec<Option<PointMeasurement>> = vec![None; unique.len()];
        let mut queue = VecDeque::new();
        {
            let cache = self.cache.lock().unwrap();
            for (i, &(ci, wi)) in unique.iter().enumerate() {
                let fp = point_fingerprint(
                    spec.cores,
                    &spec.configs[ci],
                    &spec.workloads[wi],
                    spec.attribution,
                );
                match cache.get(&fp) {
                    Some(m) => {
                        results[i] = Some(m.clone());
                        self.metrics.points_cache_shared.inc();
                    }
                    None => queue.push_back(i),
                }
            }
        }
        let completed = unique.len() - queue.len();
        if completed > 0 {
            observe(completed, unique.len());
        }
        if queue.is_empty() {
            return Ok(results);
        }
        if self.live_workers() == 0 {
            return Err(FleetError::NoWorkers {
                pending: queue.len(),
            });
        }

        let state = Mutex::new(DispatchState {
            queue,
            outstanding: 0,
            completed,
            total: unique.len(),
            results,
            failed: None,
        });
        let cond = Condvar::new();
        let done = AtomicBool::new(false);

        std::thread::scope(|s| {
            // Shadow with references so the `move` closures copy these
            // instead of consuming the locals.
            let state = &state;
            let cond = &cond;
            for worker in &self.workers {
                if worker.alive.load(Ordering::SeqCst) {
                    s.spawn(move || {
                        self.dispatch_worker(worker, spec, unique, state, cond, observe, ctx)
                    });
                }
            }
            s.spawn(|| self.heartbeat(&done, cond));

            let mut st = state.lock().unwrap();
            while st.failed.is_none() && st.completed < st.total {
                st = cond.wait(st).unwrap();
            }
            drop(st);
            done.store(true, Ordering::SeqCst);
            cond.notify_all();
        });

        let mut st = state.into_inner().unwrap();
        match st.failed.take() {
            Some((_, e)) => Err(e),
            None => Ok(std::mem::take(&mut st.results)),
        }
    }

    /// One worker's dispatcher: claim a point, ship it, record the
    /// answer; on transport failure requeue the point, mark the worker
    /// lost and exit.
    #[allow(clippy::too_many_arguments)] // the dispatch loop's full context
    fn dispatch_worker(
        &self,
        worker: &Worker,
        spec: &ExperimentSpec,
        unique: &[(usize, usize)],
        state: &Mutex<DispatchState>,
        cond: &Condvar,
        observe: &(dyn Fn(usize, usize) + Sync),
        ctx: Option<TraceCtx<'_>>,
    ) {
        let worker_label = worker.addr.to_string();
        let mut client = Client::new(worker.addr)
            .with_timeout(self.config.request_timeout)
            .with_retries(self.config.retries);
        // Worker-side spans record under the same trace id as ours.
        client.set_trace(ctx.map(|c| c.trace));
        loop {
            let claim = {
                let mut st = state.lock().unwrap();
                loop {
                    if st.failed.is_some()
                        || st.completed == st.total
                        || !worker.alive.load(Ordering::SeqCst)
                    {
                        break None;
                    }
                    if let Some(i) = st.queue.pop_front() {
                        st.outstanding += 1;
                        break Some(i);
                    }
                    // Queue empty but siblings are in flight: one of
                    // them may requeue its point by dying.
                    st = cond.wait(st).unwrap();
                }
            };
            let Some(i) = claim else { break };
            let (ci, wi) = unique[i];
            let point = PointRequest {
                cores: spec.cores,
                config: spec.configs[ci].clone(),
                workload: spec.workloads[wi].clone(),
                attribution: spec.attribution,
            };
            let wire = match point.render() {
                Ok(w) => w,
                Err(message) => {
                    // Spec-parsed points always render; this is a
                    // programmatic config with no wire form.
                    self.fail_point(
                        state,
                        cond,
                        i,
                        FleetError::Point {
                            config: spec.configs[ci].label.clone(),
                            workload: spec.workloads[wi].label.clone(),
                            kind: "render".into(),
                            message,
                        },
                    );
                    break;
                }
            };
            self.metrics.points_assigned.inc();
            let dispatch_span = ctx.map(|c| {
                c.span(
                    "fleet.dispatch",
                    fields(&[
                        ("point", (i as u64).into()),
                        ("worker", worker_label.clone().into()),
                    ]),
                )
            });
            let shipped = Instant::now();
            let answer = client.point(&wire);
            let rtt = shipped.elapsed();
            drop(dispatch_span);
            match answer {
                Ok(reply) => match PointMeasurement::from_json(&reply.measurement) {
                    Ok(m) => {
                        self.metrics.worker_rtt(&worker_label).record(rtt);
                        if reply.cached {
                            self.metrics.points_cache_shared.inc();
                        }
                        self.cache
                            .lock()
                            .unwrap()
                            .insert(point.fingerprint(), m.clone());
                        let (done, total) = {
                            let mut st = state.lock().unwrap();
                            st.results[i] = Some(m);
                            st.outstanding -= 1;
                            st.completed += 1;
                            cond.notify_all();
                            (st.completed, st.total)
                        };
                        if let Some(c) = ctx {
                            c.instant(
                                "fleet.point.resolved",
                                fields(&[
                                    ("point", (i as u64).into()),
                                    ("worker", worker_label.clone().into()),
                                    ("cached", u64::from(reply.cached).into()),
                                ]),
                            );
                        }
                        observe(done, total);
                    }
                    // A worker answering garbage is a lost worker, not
                    // a lost experiment.
                    Err(_) => {
                        self.metrics.worker_requeue(&worker_label).record(rtt);
                        self.abandon_point(worker, state, cond, i, ctx);
                        break;
                    }
                },
                Err(ClientError::Status { status: 422, body }) => {
                    let (kind, message) = parse_point_error(&body);
                    self.fail_point(
                        state,
                        cond,
                        i,
                        FleetError::Point {
                            config: spec.configs[ci].label.clone(),
                            workload: spec.workloads[wi].label.clone(),
                            kind,
                            message,
                        },
                    );
                    break;
                }
                // Everything else — refused, reset, timeout, 5xx — is
                // the worker's fault: requeue and fail the worker over.
                Err(_) => {
                    self.metrics.worker_requeue(&worker_label).record(rtt);
                    self.abandon_point(worker, state, cond, i, ctx);
                    break;
                }
            }
        }
        // If this exit stranded the run with no live workers, say so
        // rather than letting the waiter hang.
        self.check_no_workers(state, cond);
    }

    /// Marks a worker lost exactly once, settling the gauge pair.
    fn mark_lost(&self, worker: &Worker) {
        if worker.alive.swap(false, Ordering::SeqCst) {
            self.metrics.workers_lost.inc();
            self.metrics.workers_alive.dec();
        }
    }

    /// A transient point failure: the worker is lost, the point goes
    /// back on the queue (front — recovery work first).
    fn abandon_point(
        &self,
        worker: &Worker,
        state: &Mutex<DispatchState>,
        cond: &Condvar,
        i: usize,
        ctx: Option<TraceCtx<'_>>,
    ) {
        self.mark_lost(worker);
        self.metrics.points_retried.inc();
        if let Some(c) = ctx {
            c.instant(
                "fleet.point.requeued",
                fields(&[
                    ("point", (i as u64).into()),
                    ("worker", worker.addr.to_string().into()),
                ]),
            );
        }
        let mut st = state.lock().unwrap();
        st.queue.push_front(i);
        st.outstanding -= 1;
        cond.notify_all();
    }

    /// A permanent point failure; the lowest unique index wins so the
    /// reported error matches what a local run would say first.
    fn fail_point(&self, state: &Mutex<DispatchState>, cond: &Condvar, i: usize, err: FleetError) {
        let mut st = state.lock().unwrap();
        st.outstanding -= 1;
        if st.failed.as_ref().is_none_or(|(j, _)| i < *j) {
            st.failed = Some((i, err));
        }
        cond.notify_all();
    }

    /// Fails the run when every worker is gone with work pending.
    fn check_no_workers(&self, state: &Mutex<DispatchState>, cond: &Condvar) {
        if self.live_workers() > 0 {
            return;
        }
        let mut st = state.lock().unwrap();
        if st.failed.is_none() && st.completed < st.total && st.outstanding == 0 {
            let pending = st.total - st.completed;
            st.failed = Some((usize::MAX, FleetError::NoWorkers { pending }));
        }
        cond.notify_all();
    }

    /// The heartbeat loop: probe every live worker's `/healthz` each
    /// interval; a worker that fails one probe is lost. Dispatchers
    /// notice via the `alive` flag at their next claim.
    fn heartbeat(&self, done: &AtomicBool, cond: &Condvar) {
        let probe_timeout = self
            .config
            .heartbeat_interval
            .max(Duration::from_millis(100));
        while !done.load(Ordering::SeqCst) {
            for worker in &self.workers {
                if !worker.alive.load(Ordering::SeqCst) {
                    continue;
                }
                let mut probe = Client::new(worker.addr)
                    .with_timeout(probe_timeout)
                    .with_retries(0);
                let started = Instant::now();
                let answer = probe.healthz();
                self.metrics
                    .worker_heartbeat(&worker.addr.to_string())
                    .record(started.elapsed());
                if answer.is_err() {
                    self.mark_lost(worker);
                    cond.notify_all();
                }
            }
            std::thread::sleep(self.config.heartbeat_interval);
        }
    }

    /// Scrapes every live worker's `/metrics` once and mirrors the
    /// fleet's counter and gauge series onto the coordinator registry,
    /// each with a `worker` label added — one scrape of the coordinator
    /// then shows the whole fleet. Returns how many workers answered
    /// with a parsable exposition.
    ///
    /// Per worker, success also updates the
    /// `predllc_fleet_scrape_ok_ms{worker=..}` gauge (milliseconds
    /// since coordinator construction — a frozen value is a stale
    /// worker, visible as a flat line rather than silence), and any
    /// failure — refused, timeout, unparsable text — bumps
    /// `predllc_fleet_scrape_errors{worker=..}`.
    ///
    /// Histogram families are deliberately **not** mirrored: their
    /// `_bucket`/`_sum`/`_count` parts cannot be replayed through the
    /// registry's counter/gauge cells without forging a histogram, and
    /// per-worker latency already has a first-class home in
    /// `predllc_fleet_worker_rtt_ns`. Dead workers are skipped — their
    /// mirrored series simply stop advancing.
    pub fn scrape_metrics_once(&self) -> usize {
        let timeout = self
            .config
            .heartbeat_interval
            .max(Duration::from_millis(100));
        let mut scraped = 0;
        for worker in &self.workers {
            if !worker.alive.load(Ordering::SeqCst) {
                continue;
            }
            let label = worker.addr.to_string();
            let mut client = Client::new(worker.addr)
                .with_timeout(timeout)
                .with_retries(0);
            let exposition = client
                .metrics()
                .ok()
                .and_then(|text| expo::parse(&text).ok());
            match exposition {
                Some(exposition) => {
                    self.mirror_exposition(&label, &exposition);
                    self.metrics
                        .registry
                        .gauge_labeled(
                            "predllc_fleet_scrape_ok_ms",
                            "Coordinator-relative time (ms) of the last successful metrics scrape per worker.",
                            &[("worker", &label)],
                        )
                        .set(self.scrape_epoch.elapsed().as_millis() as u64);
                    scraped += 1;
                }
                None => {
                    self.metrics
                        .registry
                        .counter_labeled(
                            "predllc_fleet_scrape_errors",
                            "Failed or unparsable per-worker metrics scrapes.",
                            &[("worker", &label)],
                        )
                        .inc();
                }
            }
        }
        scraped
    }

    /// Mirrors one worker's parsed exposition onto the coordinator
    /// registry: counter and gauge families only, original labels
    /// preserved, `worker` appended.
    fn mirror_exposition(&self, worker: &str, exposition: &expo::Exposition) {
        for family in &exposition.families {
            let kind = match family.kind.as_deref() {
                Some(k @ ("counter" | "gauge")) => k,
                // Histograms (see `scrape_metrics_once`) and untyped
                // families are not mirrored.
                _ => continue,
            };
            if self
                .metrics
                .registry
                .family_kind(&family.name)
                .is_some_and(|local| local != kind)
            {
                // A local family of another kind owns this name;
                // mirroring it would trip the kind-conflict panic.
                continue;
            }
            let help = family
                .help
                .as_deref()
                .unwrap_or("Mirrored from a fleet worker.");
            for sample in &family.samples {
                if sample.name != family.name {
                    continue;
                }
                if sample.labels.iter().any(|(k, _)| k == "worker") {
                    // Already fleet-aggregated (a chained coordinator);
                    // re-labelling would duplicate the label name.
                    continue;
                }
                let value = match sample.value {
                    ExpoValue::UInt(v) => v,
                    // Registry cells are u64; a non-integral scraped
                    // value cannot come from one of our workers.
                    ExpoValue::Float(_) => continue,
                };
                let mut labels: Vec<(&str, &str)> = sample
                    .labels
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.as_str()))
                    .collect();
                labels.push(("worker", worker));
                match kind {
                    "counter" => self
                        .metrics
                        .registry
                        .counter_labeled(&sample.name, help, &labels)
                        .set(value),
                    _ => self
                        .metrics
                        .registry
                        .gauge_labeled(&sample.name, help, &labels)
                        .set(value),
                }
            }
        }
    }

    /// Starts the background scrape loop: [`Coordinator::scrape_metrics_once`]
    /// immediately, then every `interval` until the returned handle is
    /// stopped or dropped. Pair it with a serve
    /// [`Collector`](predllc_obs::Collector) over the shared registry
    /// to get fleet-wide time-series and alerts from one process.
    pub fn start_metric_scrape(self: &Arc<Self>, interval: Duration) -> ScrapeHandle {
        let coordinator = Arc::clone(self);
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let signal = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("fleet-scrape".to_string())
            .spawn(move || {
                let (lock, cvar) = &*signal;
                loop {
                    coordinator.scrape_metrics_once();
                    let stopped = lock.lock().unwrap();
                    let (stopped, _) = cvar
                        .wait_timeout_while(stopped, interval, |stopped| !*stopped)
                        .unwrap();
                    if *stopped {
                        break;
                    }
                }
            })
            .expect("spawn fleet-scrape thread");
        ScrapeHandle {
            stop,
            thread: Some(thread),
        }
    }
}

/// Handle for the background metric-scrape loop started by
/// [`Coordinator::start_metric_scrape`]. Stopping (or dropping) joins
/// the thread; mirrored series stay on the registry, frozen at their
/// last scraped values.
pub struct ScrapeHandle {
    stop: Arc<(Mutex<bool>, Condvar)>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ScrapeHandle {
    /// Stops the scrape loop and joins the thread. Idempotent.
    pub fn stop(&mut self) {
        let (lock, cvar) = &*self.stop;
        *lock.lock().unwrap() = true;
        cvar.notify_all();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ScrapeHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The default SLO rule set for a fleet front door: the serve defaults
/// ([`predllc_serve::default_rules`]) plus worker-loss detection — any
/// lost worker fires `worker-loss` immediately (no grace period: loss
/// is permanent for a coordinator's lifetime, so waiting cannot clear
/// it).
pub fn default_fleet_rules() -> Vec<Rule> {
    let mut rules = predllc_serve::default_rules();
    rules.push(Rule::threshold(
        "worker-loss",
        "predllc_workers_lost",
        Compare::Above,
        0.0,
    ));
    rules
}

impl SpecRunner for Coordinator {
    fn run_spec(
        &self,
        spec: &ExperimentSpec,
        observe: &(dyn Fn(usize, usize) + Sync),
    ) -> Result<RunOutcome, String> {
        self.run_spec_traced(spec, observe, None)
    }

    fn run_spec_traced(
        &self,
        spec: &ExperimentSpec,
        observe: &(dyn Fn(usize, usize) + Sync),
        ctx: Option<TraceCtx<'_>>,
    ) -> Result<RunOutcome, String> {
        let report = self
            .run_traced(spec, observe, ctx)
            .map_err(|e| e.to_string())?;
        Ok(RunOutcome {
            grid: report.grid,
            search: report.search,
            unique_points: report.unique_points,
        })
    }

    /// Always `1`: rendered reports must not depend on the fleet shape.
    fn threads_label(&self) -> usize {
        1
    }
}

/// Decodes a worker's `422` body (`{"error": ..., "kind": ...}`),
/// degrading gracefully on garbage.
fn parse_point_error(body: &str) -> (String, String) {
    let doc = json::parse(body).ok();
    let get = |key: &str| {
        doc.as_ref()
            .and_then(|d| d.get(key))
            .and_then(Json::as_str)
            .map(str::to_string)
    };
    (
        get("kind").unwrap_or_else(|| "unknown".into()),
        get("error").unwrap_or_else(|| body.to_string()),
    )
}
