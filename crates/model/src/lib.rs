//! Shared vocabulary types for the `predllc` simulator and analysis crates.
//!
//! This crate defines the small, dependency-free types that every other
//! crate in the workspace speaks: core identifiers, cycle counts, byte and
//! cache-line addresses, cache geometry, memory operations, and the common
//! configuration error type.
//!
//! The types follow the system model of Wu & Patel, *"Predictable Sharing
//! of Last-level Cache Partitions for Multi-core Safety-critical Systems"*
//! (DAC 2022): a multicore with private L1/L2 caches per core, one shared
//! inclusive last-level cache, and a TDM-arbitrated bus between the private
//! L2s and the LLC.
//!
//! # Examples
//!
//! ```
//! use predllc_model::{Address, CacheGeometry, CoreId, Cycles};
//!
//! # fn main() -> Result<(), predllc_model::ModelError> {
//! let llc = CacheGeometry::new(32, 16, 64)?; // the paper's L3: 32 sets, 16 ways, 64 B lines
//! assert_eq!(llc.capacity_bytes(), 32 * 16 * 64);
//!
//! let addr = Address::new(0x1040);
//! assert_eq!(llc.set_index(addr.line()), 1); // line 0x41 maps to set 1 of 32
//!
//! let cua = CoreId::new(0);
//! let lat = Cycles::new(450);
//! assert_eq!(format!("{cua} waits {lat}"), "c0 waits 450 cycles");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod dram_geom;
mod error;
mod geometry;
mod ids;
mod mem;
mod time;

pub use addr::{Address, LineAddr};
pub use dram_geom::{BankId, DramGeometry, RowAddr};
pub use error::ModelError;
pub use geometry::CacheGeometry;
pub use ids::{CoreId, PartitionId, SetIdx, WayIdx};
pub use mem::{AccessKind, MemOp};
pub use time::{Cycles, SlotWidth};
