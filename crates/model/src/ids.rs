//! Identifier newtypes for cores, partitions, cache sets and ways.

use std::fmt;

/// Identifier of a processor core.
///
/// Cores are numbered densely from zero. The paper writes the core under
/// analysis as `c_ua` and other cores as `c_2 … c_N`; here every core is a
/// plain index and "the core under analysis" is whichever [`CoreId`] an
/// analysis routine is pointed at.
///
/// # Examples
///
/// ```
/// use predllc_model::CoreId;
///
/// let c = CoreId::new(2);
/// assert_eq!(c.index(), 2);
/// assert_eq!(c.to_string(), "c2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(u16);

impl CoreId {
    /// Creates a core identifier from a dense index.
    pub const fn new(index: u16) -> Self {
        CoreId(index)
    }

    /// Returns the dense index of this core.
    pub const fn index(self) -> u16 {
        self.0
    }

    /// Returns the index widened to `usize` for container indexing.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// Enumerates the first `n` core identifiers, `c0 … c(n-1)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use predllc_model::CoreId;
    ///
    /// let cores: Vec<_> = CoreId::first(3).collect();
    /// assert_eq!(cores, [CoreId::new(0), CoreId::new(1), CoreId::new(2)]);
    /// ```
    pub fn first(n: u16) -> impl Iterator<Item = CoreId> + Clone {
        (0..n).map(CoreId)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl From<u16> for CoreId {
    fn from(index: u16) -> Self {
        CoreId(index)
    }
}

/// Identifier of an LLC partition.
///
/// A partition is a rectangular `sets × ways` region of the physical LLC
/// assigned either privately to one core or shared by several cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PartitionId(u16);

impl PartitionId {
    /// Creates a partition identifier from a dense index.
    pub const fn new(index: u16) -> Self {
        PartitionId(index)
    }

    /// Returns the dense index of this partition.
    pub const fn index(self) -> u16 {
        self.0
    }

    /// Returns the index widened to `usize` for container indexing.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<u16> for PartitionId {
    fn from(index: u16) -> Self {
        PartitionId(index)
    }
}

/// Index of a cache set within one cache (or one partition's view of one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SetIdx(pub u32);

impl SetIdx {
    /// Returns the index widened to `usize` for container indexing.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SetIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "set{}", self.0)
    }
}

/// Index of a way within a cache set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WayIdx(pub u32);

impl WayIdx {
    /// Returns the index widened to `usize` for container indexing.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for WayIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "way{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_id_roundtrip_and_display() {
        let c = CoreId::new(7);
        assert_eq!(c.index(), 7);
        assert_eq!(c.as_usize(), 7);
        assert_eq!(c.to_string(), "c7");
        assert_eq!(CoreId::from(7u16), c);
    }

    #[test]
    fn core_id_first_enumerates_densely() {
        assert_eq!(CoreId::first(0).count(), 0);
        let v: Vec<_> = CoreId::first(4).map(CoreId::index).collect();
        assert_eq!(v, [0, 1, 2, 3]);
    }

    #[test]
    fn core_id_ordering_follows_index() {
        assert!(CoreId::new(1) < CoreId::new(2));
        assert!(CoreId::new(2) <= CoreId::new(2));
    }

    #[test]
    fn partition_id_roundtrip_and_display() {
        let p = PartitionId::new(3);
        assert_eq!(p.index(), 3);
        assert_eq!(p.to_string(), "P3");
        assert_eq!(PartitionId::from(3u16), p);
    }

    #[test]
    fn set_and_way_display() {
        assert_eq!(SetIdx(5).to_string(), "set5");
        assert_eq!(WayIdx(2).to_string(), "way2");
        assert_eq!(SetIdx(5).as_usize(), 5);
        assert_eq!(WayIdx(2).as_usize(), 2);
    }

    #[test]
    fn ids_index_roundtrip_is_transparent() {
        let c = CoreId::new(3);
        assert_eq!(CoreId::new(c.index()), c);
        let p = PartitionId::new(9);
        assert_eq!(PartitionId::new(p.index()), p);
    }
}
