//! DRAM organization vocabulary: bank/row identifiers and the
//! channels × banks × rows geometry the memory backends are built from.

use std::fmt;

use crate::ModelError;

/// Identifier of one DRAM bank, numbered densely across channels
/// (`channel * banks_per_channel + bank_in_channel`).
///
/// # Examples
///
/// ```
/// use predllc_model::BankId;
///
/// let b = BankId::new(3);
/// assert_eq!(b.index(), 3);
/// assert_eq!(b.to_string(), "bank3");
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BankId(u32);

impl BankId {
    /// Creates a bank identifier from a dense global index.
    pub const fn new(index: u32) -> Self {
        BankId(index)
    }

    /// Returns the dense global index of this bank.
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Returns the index widened to `usize` for container indexing.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BankId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bank{}", self.0)
    }
}

impl From<u32> for BankId {
    fn from(index: u32) -> Self {
        BankId(index)
    }
}

/// Address of a DRAM row within one bank.
///
/// A row is the unit the bank's row buffer holds: accesses to the open
/// row are fast (row hits), a different row forces precharge + activate
/// (a row conflict).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowAddr(u64);

impl RowAddr {
    /// Creates a row address from a raw row number.
    pub const fn new(row: u64) -> Self {
        RowAddr(row)
    }

    /// Returns the raw row number.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for RowAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "row 0x{:x}", self.0)
    }
}

impl From<u64> for RowAddr {
    fn from(row: u64) -> Self {
        RowAddr(row)
    }
}

/// The organization of the DRAM device: channels, banks per channel, and
/// the row-buffer size expressed in cache lines.
///
/// # Examples
///
/// ```
/// use predllc_model::DramGeometry;
///
/// # fn main() -> Result<(), predllc_model::ModelError> {
/// let g = DramGeometry::new(1, 8, 64)?; // 8 banks, 4 KiB rows at 64 B lines
/// assert_eq!(g.total_banks(), 8);
/// assert_eq!(g.row_bytes(64), 4096);
/// assert_eq!(g, DramGeometry::PAPER);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramGeometry {
    channels: u32,
    banks_per_channel: u32,
    row_lines: u32,
}

impl DramGeometry {
    /// The calibration default used next to the paper's platform
    /// constants: a single channel of 8 banks with 4 KiB rows (64 cache
    /// lines of 64 bytes per row).
    pub const PAPER: DramGeometry = DramGeometry {
        channels: 1,
        banks_per_channel: 8,
        row_lines: 64,
    };

    /// Creates a DRAM geometry.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ZeroDramGeometry`] if any dimension is zero.
    pub const fn new(
        channels: u32,
        banks_per_channel: u32,
        row_lines: u32,
    ) -> Result<Self, ModelError> {
        if channels == 0 || banks_per_channel == 0 || row_lines == 0 {
            Err(ModelError::ZeroDramGeometry)
        } else {
            Ok(DramGeometry {
                channels,
                banks_per_channel,
                row_lines,
            })
        }
    }

    /// Number of channels.
    pub const fn channels(self) -> u32 {
        self.channels
    }

    /// Banks per channel.
    pub const fn banks_per_channel(self) -> u32 {
        self.banks_per_channel
    }

    /// Row-buffer size in cache lines.
    pub const fn row_lines(self) -> u32 {
        self.row_lines
    }

    /// Total banks across all channels.
    pub const fn total_banks(self) -> u32 {
        self.channels * self.banks_per_channel
    }

    /// Row-buffer size in bytes for a given cache-line size.
    pub const fn row_bytes(self, line_size: u64) -> u64 {
        self.row_lines as u64 * line_size
    }
}

impl fmt::Display for DramGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}ch x {}banks x {}lines/row",
            self.channels, self.banks_per_channel, self.row_lines
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_and_row_ids_roundtrip_and_display() {
        let b = BankId::new(5);
        assert_eq!(b.index(), 5);
        assert_eq!(b.as_usize(), 5);
        assert_eq!(b.to_string(), "bank5");
        assert_eq!(BankId::from(5u32), b);
        let r = RowAddr::new(0x41);
        assert_eq!(r.as_u64(), 0x41);
        assert_eq!(r.to_string(), "row 0x41");
        assert_eq!(RowAddr::from(0x41u64), r);
    }

    #[test]
    fn geometry_rejects_zero_dimensions() {
        assert_eq!(
            DramGeometry::new(0, 8, 64),
            Err(ModelError::ZeroDramGeometry)
        );
        assert_eq!(
            DramGeometry::new(1, 0, 64),
            Err(ModelError::ZeroDramGeometry)
        );
        assert_eq!(
            DramGeometry::new(1, 8, 0),
            Err(ModelError::ZeroDramGeometry)
        );
    }

    #[test]
    fn geometry_derived_quantities() {
        let g = DramGeometry::new(2, 4, 32).unwrap();
        assert_eq!(g.channels(), 2);
        assert_eq!(g.banks_per_channel(), 4);
        assert_eq!(g.row_lines(), 32);
        assert_eq!(g.total_banks(), 8);
        assert_eq!(g.row_bytes(64), 2048);
        assert_eq!(g.to_string(), "2ch x 4banks x 32lines/row");
    }

    #[test]
    fn paper_constant_is_one_channel_eight_banks() {
        assert_eq!(DramGeometry::PAPER.total_banks(), 8);
        assert_eq!(DramGeometry::PAPER.row_lines(), 64);
    }
}
