//! Byte addresses and cache-line addresses.

use std::fmt;
use std::ops::Add;

/// A byte address in the simulated physical address space.
///
/// Addresses are plain 64-bit values; the memory system only ever inspects
/// the cache-line number derived from them via [`Address::line_with`] (or
/// [`Address::line`] for the paper's fixed 64-byte lines).
///
/// # Examples
///
/// ```
/// use predllc_model::Address;
///
/// let a = Address::new(0x1040);
/// assert_eq!(a.line().as_u64(), 0x41);
/// assert_eq!(a.line_with(128).as_u64(), 0x20);
/// assert_eq!(format!("{a}"), "0x0000000000001040");
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Address(u64);

/// The paper's cache-line size: 64 bytes at every level of the hierarchy.
pub(crate) const PAPER_LINE_SIZE: u64 = 64;

impl Address {
    /// Creates an address from a raw byte value.
    pub const fn new(addr: u64) -> Self {
        Address(addr)
    }

    /// Returns the raw byte address.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the cache-line address assuming the paper's 64-byte lines.
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 / PAPER_LINE_SIZE)
    }

    /// Returns the cache-line address for an arbitrary power-of-two line
    /// size.
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is zero.
    pub const fn line_with(self, line_size: u64) -> LineAddr {
        LineAddr(self.0 / line_size)
    }

    /// Returns the byte offset within the line for the paper's 64-byte
    /// lines.
    pub const fn offset(self) -> u64 {
        self.0 % PAPER_LINE_SIZE
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:016x}", self.0)
    }
}

impl fmt::LowerHex for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Address {
    fn from(addr: u64) -> Self {
        Address(addr)
    }
}

impl Add<u64> for Address {
    type Output = Address;
    fn add(self, rhs: u64) -> Address {
        Address(self.0 + rhs)
    }
}

/// A cache-line address: the byte address divided by the line size.
///
/// Every cache in the hierarchy is indexed and tagged by line address; the
/// byte offset never matters to hit/miss behaviour.
///
/// # Examples
///
/// ```
/// use predllc_model::{Address, LineAddr};
///
/// let l = Address::new(0x80).line();
/// assert_eq!(l, LineAddr::new(2));
/// assert_eq!(l.first_byte(64), Address::new(0x80));
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a raw line number.
    pub const fn new(line: u64) -> Self {
        LineAddr(line)
    }

    /// Returns the raw line number.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the first byte address of this line for a given line size.
    pub const fn first_byte(self, line_size: u64) -> Address {
        Address(self.0 * line_size)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line 0x{:x}", self.0)
    }
}

impl From<u64> for LineAddr {
    fn from(line: u64) -> Self {
        LineAddr(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_extraction_uses_64_byte_lines() {
        assert_eq!(Address::new(0).line(), LineAddr::new(0));
        assert_eq!(Address::new(63).line(), LineAddr::new(0));
        assert_eq!(Address::new(64).line(), LineAddr::new(1));
        assert_eq!(Address::new(0x1040).line(), LineAddr::new(0x41));
    }

    #[test]
    fn custom_line_size() {
        assert_eq!(Address::new(255).line_with(128), LineAddr::new(1));
        assert_eq!(Address::new(256).line_with(128), LineAddr::new(2));
    }

    #[test]
    fn offset_within_line() {
        assert_eq!(Address::new(0x1043).offset(), 3);
        assert_eq!(Address::new(0x1040).offset(), 0);
    }

    #[test]
    fn line_first_byte_roundtrip() {
        let a = Address::new(0x1fc0);
        assert_eq!(a.line().first_byte(64), a);
    }

    #[test]
    fn address_arithmetic_and_formatting() {
        let a = Address::new(0x40) + 0x40;
        assert_eq!(a, Address::new(0x80));
        assert_eq!(format!("{a:x}"), "80");
        assert_eq!(a.to_string(), "0x0000000000000080");
        assert_eq!(LineAddr::new(0x41).to_string(), "line 0x41");
    }
}
