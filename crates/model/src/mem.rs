//! Memory operations issued by cores.

use std::fmt;

use crate::Address;

/// The kind of a memory access.
///
/// Instruction fetches go to the private L1I, data reads and writes to the
/// private L1D; everything below L1 is unified. Writes make lines dirty,
/// which is what later forces write-backs onto the TDM bus — the central
/// mechanism behind the paper's WCL observations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A data load.
    Read,
    /// A data store (marks the line dirty in the private hierarchy).
    Write,
    /// An instruction fetch (serviced by the L1I, never dirty).
    InstrFetch,
}

impl AccessKind {
    /// Whether this access dirties the cache line it touches.
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }

    /// Whether this access is an instruction fetch.
    pub const fn is_instr(self) -> bool {
        matches!(self, AccessKind::InstrFetch)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessKind::Read => "R",
            AccessKind::Write => "W",
            AccessKind::InstrFetch => "I",
        };
        f.write_str(s)
    }
}

/// One memory operation in a core's trace.
///
/// # Examples
///
/// ```
/// use predllc_model::{AccessKind, Address, MemOp};
///
/// let op = MemOp::write(Address::new(0x1000));
/// assert!(op.kind.is_write());
/// assert_eq!(op.to_string(), "W 0x0000000000001000");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemOp {
    /// What kind of access this is.
    pub kind: AccessKind,
    /// The byte address accessed.
    pub addr: Address,
}

impl MemOp {
    /// Creates a data read.
    pub const fn read(addr: Address) -> Self {
        MemOp {
            kind: AccessKind::Read,
            addr,
        }
    }

    /// Creates a data write.
    pub const fn write(addr: Address) -> Self {
        MemOp {
            kind: AccessKind::Write,
            addr,
        }
    }

    /// Creates an instruction fetch.
    pub const fn fetch(addr: Address) -> Self {
        MemOp {
            kind: AccessKind::InstrFetch,
            addr,
        }
    }
}

impl fmt::Display for MemOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.kind, self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        let a = Address::new(64);
        assert_eq!(MemOp::read(a).kind, AccessKind::Read);
        assert_eq!(MemOp::write(a).kind, AccessKind::Write);
        assert_eq!(MemOp::fetch(a).kind, AccessKind::InstrFetch);
    }

    #[test]
    fn kind_predicates() {
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Read.is_write());
        assert!(!AccessKind::InstrFetch.is_write());
        assert!(AccessKind::InstrFetch.is_instr());
        assert!(!AccessKind::Read.is_instr());
    }

    #[test]
    fn display_forms() {
        assert_eq!(AccessKind::Read.to_string(), "R");
        assert_eq!(AccessKind::Write.to_string(), "W");
        assert_eq!(AccessKind::InstrFetch.to_string(), "I");
        assert_eq!(
            MemOp::read(Address::new(0x40)).to_string(),
            "R 0x0000000000000040"
        );
    }

    #[test]
    fn ops_are_copy_and_hashable() {
        use std::collections::HashSet;
        let op = MemOp::write(Address::new(0x1234));
        let copy = op;
        assert_eq!(copy, op);
        let set: HashSet<MemOp> = [op, MemOp::read(Address::new(0x1234))].into();
        assert_eq!(set.len(), 2);
    }
}
