//! Cycle-accurate time keeping.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use crate::ModelError;

/// A duration or instant measured in processor clock cycles.
///
/// `Cycles` is the single unit of time in the simulator: slot widths,
/// latencies, deadlines and timestamps are all cycle counts. Arithmetic is
/// checked in debug builds (the underlying `u64` panics on overflow there)
/// and the explicit [`Cycles::saturating_sub`] is provided for latency
/// computations that may legitimately clamp at zero.
///
/// # Examples
///
/// ```
/// use predllc_model::Cycles;
///
/// let slot = Cycles::new(50);
/// let period = slot * 4;
/// assert_eq!(period, Cycles::new(200));
/// assert_eq!(period - slot, Cycles::new(150));
/// assert_eq!(period.as_u64(), 200);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a cycle count.
    pub const fn new(cycles: u64) -> Self {
        Cycles(cycles)
    }

    /// Returns the raw cycle count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Subtracts, clamping at zero instead of underflowing.
    ///
    /// # Examples
    ///
    /// ```
    /// use predllc_model::Cycles;
    /// assert_eq!(Cycles::new(3).saturating_sub(Cycles::new(5)), Cycles::ZERO);
    /// ```
    pub const fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Checked multiplication by a scalar, for analysis formulas whose
    /// intermediate products can overflow on adversarial parameters.
    pub const fn checked_mul(self, rhs: u64) -> Option<Cycles> {
        match self.0.checked_mul(rhs) {
            Some(v) => Some(Cycles(v)),
            None => None,
        }
    }

    /// Checked addition.
    pub const fn checked_add(self, rhs: Cycles) -> Option<Cycles> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Cycles(v)),
            None => None,
        }
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

impl From<u64> for Cycles {
    fn from(cycles: u64) -> Self {
        Cycles(cycles)
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Div<u64> for Cycles {
    type Output = Cycles;
    fn div(self, rhs: u64) -> Cycles {
        Cycles(self.0 / rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, Add::add)
    }
}

/// The width of one TDM bus slot, in cycles.
///
/// The paper's evaluation platform uses a 50-cycle slot (recovered from the
/// analytical WCLs quoted in Figure 7, which all divide exactly by 50);
/// [`SlotWidth::PAPER`] captures that constant. A slot must be wide enough
/// to cover a tag lookup plus a DRAM fetch, because the system model
/// requires a miss fill to complete within the requester's slot.
///
/// # Examples
///
/// ```
/// use predllc_model::{Cycles, SlotWidth};
///
/// # fn main() -> Result<(), predllc_model::ModelError> {
/// let sw = SlotWidth::new(50)?;
/// assert_eq!(sw.cycles(), Cycles::new(50));
/// assert_eq!(sw, SlotWidth::PAPER);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotWidth(u64);

impl SlotWidth {
    /// The paper's evaluation slot width: 50 cycles.
    pub const PAPER: SlotWidth = SlotWidth(50);

    /// Creates a slot width.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ZeroSlotWidth`] if `cycles` is zero.
    pub const fn new(cycles: u64) -> Result<Self, ModelError> {
        if cycles == 0 {
            Err(ModelError::ZeroSlotWidth)
        } else {
            Ok(SlotWidth(cycles))
        }
    }

    /// Returns the slot width as a duration.
    pub const fn cycles(self) -> Cycles {
        Cycles(self.0)
    }

    /// Returns the raw cycle count of one slot.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns which slot (global index since cycle 0) `now` falls in.
    ///
    /// # Examples
    ///
    /// ```
    /// use predllc_model::{Cycles, SlotWidth};
    /// let sw = SlotWidth::PAPER;
    /// assert_eq!(sw.slot_of(Cycles::new(0)), 0);
    /// assert_eq!(sw.slot_of(Cycles::new(49)), 0);
    /// assert_eq!(sw.slot_of(Cycles::new(50)), 1);
    /// ```
    pub const fn slot_of(self, now: Cycles) -> u64 {
        now.as_u64() / self.0
    }

    /// Returns the first cycle of global slot `slot`.
    pub const fn slot_start(self, slot: u64) -> Cycles {
        Cycles(slot * self.0)
    }

    /// Returns the last cycle belonging to global slot `slot`.
    pub const fn slot_end(self, slot: u64) -> Cycles {
        Cycles(slot * self.0 + self.0 - 1)
    }
}

impl fmt::Display for SlotWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-cycle slot", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_arithmetic() {
        let a = Cycles::new(10);
        let b = Cycles::new(4);
        assert_eq!(a + b, Cycles::new(14));
        assert_eq!(a - b, Cycles::new(6));
        assert_eq!(a * 3, Cycles::new(30));
        assert_eq!(a / 2, Cycles::new(5));
        let mut c = a;
        c += b;
        assert_eq!(c, Cycles::new(14));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn cycles_saturating_and_checked() {
        assert_eq!(Cycles::new(1).saturating_sub(Cycles::new(9)), Cycles::ZERO);
        assert_eq!(
            Cycles::new(9).saturating_sub(Cycles::new(1)),
            Cycles::new(8)
        );
        assert_eq!(Cycles::new(u64::MAX).checked_mul(2), None);
        assert_eq!(Cycles::new(3).checked_mul(4), Some(Cycles::new(12)));
        assert_eq!(Cycles::new(u64::MAX).checked_add(Cycles::new(1)), None);
        assert_eq!(
            Cycles::new(3).checked_add(Cycles::new(4)),
            Some(Cycles::new(7))
        );
    }

    #[test]
    fn cycles_sum_and_display() {
        let total: Cycles = [1u64, 2, 3].into_iter().map(Cycles::new).sum();
        assert_eq!(total, Cycles::new(6));
        assert_eq!(total.to_string(), "6 cycles");
    }

    #[test]
    fn slot_width_rejects_zero() {
        assert_eq!(SlotWidth::new(0), Err(ModelError::ZeroSlotWidth));
    }

    #[test]
    fn slot_boundaries() {
        let sw = SlotWidth::new(50).unwrap();
        assert_eq!(sw.slot_start(0), Cycles::new(0));
        assert_eq!(sw.slot_end(0), Cycles::new(49));
        assert_eq!(sw.slot_start(3), Cycles::new(150));
        assert_eq!(sw.slot_end(3), Cycles::new(199));
        assert_eq!(sw.slot_of(Cycles::new(199)), 3);
        assert_eq!(sw.slot_of(Cycles::new(200)), 4);
    }

    #[test]
    fn paper_constant_is_fifty() {
        assert_eq!(SlotWidth::PAPER.as_u64(), 50);
        assert_eq!(SlotWidth::PAPER.to_string(), "50-cycle slot");
    }
}
