//! Cache geometry: sets × ways × line size, and the derived index/tag math.

use std::fmt;

use crate::{LineAddr, ModelError, SetIdx};

/// The shape of one set-associative cache (or one partition's view of the
/// LLC): number of sets, associativity, and line size in bytes.
///
/// Set indexing is modulo, as in the paper's simulator: line `l` maps to
/// set `l mod sets`. The paper's analysis is deliberately agnostic of the
/// address mapping, so modulo indexing is a free choice; it is also what
/// makes the "single-set partition" worst-case experiments of Figure 7
/// work (every address in the range collides in the one set).
///
/// # Examples
///
/// ```
/// use predllc_model::{Address, CacheGeometry};
///
/// # fn main() -> Result<(), predllc_model::ModelError> {
/// let l2 = CacheGeometry::new(16, 4, 64)?; // the paper's private L2
/// assert_eq!(l2.lines(), 64);
/// assert_eq!(l2.capacity_bytes(), 4096);
/// assert_eq!(l2.set_index(Address::new(0x1040).line()), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    sets: u32,
    ways: u32,
    line_size: u32,
}

impl CacheGeometry {
    /// The paper's private L2: 4-way, 16 sets, 64-byte lines.
    pub const PAPER_L2: CacheGeometry = CacheGeometry {
        sets: 16,
        ways: 4,
        line_size: 64,
    };

    /// The paper's shared L3/LLC: 16-way, 32 sets, 64-byte lines.
    pub const PAPER_L3: CacheGeometry = CacheGeometry {
        sets: 32,
        ways: 16,
        line_size: 64,
    };

    /// A small L1 used as the default private first level (the paper gives
    /// no L1 parameters): 2-way, 8 sets, 64-byte lines.
    pub const DEFAULT_L1: CacheGeometry = CacheGeometry {
        sets: 8,
        ways: 2,
        line_size: 64,
    };

    /// Creates a geometry.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ZeroGeometry`] if any dimension is zero, and
    /// [`ModelError::LineSizeNotPowerOfTwo`] if `line_size` is not a power
    /// of two (real caches index by bit slicing; keeping the restriction
    /// here keeps byte↔line conversions exact).
    pub const fn new(sets: u32, ways: u32, line_size: u32) -> Result<Self, ModelError> {
        if sets == 0 || ways == 0 || line_size == 0 {
            return Err(ModelError::ZeroGeometry);
        }
        if !line_size.is_power_of_two() {
            return Err(ModelError::LineSizeNotPowerOfTwo { line_size });
        }
        Ok(CacheGeometry {
            sets,
            ways,
            line_size,
        })
    }

    /// Number of sets.
    pub const fn sets(self) -> u32 {
        self.sets
    }

    /// Associativity (ways per set).
    pub const fn ways(self) -> u32 {
        self.ways
    }

    /// Line size in bytes.
    pub const fn line_size(self) -> u32 {
        self.line_size
    }

    /// Total number of cache lines (`sets × ways`).
    pub const fn lines(self) -> u64 {
        self.sets as u64 * self.ways as u64
    }

    /// Total capacity in bytes (`sets × ways × line_size`).
    pub const fn capacity_bytes(self) -> u64 {
        self.lines() * self.line_size as u64
    }

    /// Maps a line address to its set index (`line mod sets`).
    pub const fn set_index(self, line: LineAddr) -> u32 {
        (line.as_u64() % self.sets as u64) as u32
    }

    /// Maps a line address to its set index as a typed [`SetIdx`].
    pub const fn set_of(self, line: LineAddr) -> SetIdx {
        SetIdx(self.set_index(line))
    }

    /// Returns a geometry identical to this one but with `sets` sets.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ZeroGeometry`] if `sets` is zero.
    pub const fn with_sets(self, sets: u32) -> Result<Self, ModelError> {
        CacheGeometry::new(sets, self.ways, self.line_size)
    }

    /// Returns a geometry identical to this one but with `ways` ways.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ZeroGeometry`] if `ways` is zero.
    pub const fn with_ways(self, ways: u32) -> Result<Self, ModelError> {
        CacheGeometry::new(self.sets, ways, self.line_size)
    }
}

impl fmt::Display for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} sets x {} ways x {} B ({} B total)",
            self.sets,
            self.ways,
            self.line_size,
            self.capacity_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Address;

    #[test]
    fn paper_geometries() {
        assert_eq!(CacheGeometry::PAPER_L2.lines(), 64);
        assert_eq!(CacheGeometry::PAPER_L2.capacity_bytes(), 4096);
        assert_eq!(CacheGeometry::PAPER_L3.lines(), 512);
        assert_eq!(CacheGeometry::PAPER_L3.capacity_bytes(), 32768);
    }

    #[test]
    fn rejects_zero_dimensions() {
        assert_eq!(CacheGeometry::new(0, 4, 64), Err(ModelError::ZeroGeometry));
        assert_eq!(CacheGeometry::new(4, 0, 64), Err(ModelError::ZeroGeometry));
        assert_eq!(CacheGeometry::new(4, 4, 0), Err(ModelError::ZeroGeometry));
    }

    #[test]
    fn rejects_non_power_of_two_line() {
        assert_eq!(
            CacheGeometry::new(4, 4, 48),
            Err(ModelError::LineSizeNotPowerOfTwo { line_size: 48 })
        );
    }

    #[test]
    fn modulo_set_indexing() {
        let g = CacheGeometry::new(32, 16, 64).unwrap();
        assert_eq!(g.set_index(LineAddr::new(0)), 0);
        assert_eq!(g.set_index(LineAddr::new(31)), 31);
        assert_eq!(g.set_index(LineAddr::new(32)), 0);
        assert_eq!(g.set_index(LineAddr::new(33)), 1);
        assert_eq!(g.set_of(LineAddr::new(33)), SetIdx(1));
    }

    #[test]
    fn single_set_partition_collides_everything() {
        let g = CacheGeometry::new(1, 16, 64).unwrap();
        for a in (0..4096u64).step_by(64) {
            assert_eq!(g.set_index(Address::new(a).line()), 0);
        }
    }

    #[test]
    fn with_sets_and_ways() {
        let g = CacheGeometry::PAPER_L3;
        assert_eq!(g.with_sets(1).unwrap().sets(), 1);
        assert_eq!(g.with_ways(2).unwrap().ways(), 2);
        assert_eq!(g.with_sets(0), Err(ModelError::ZeroGeometry));
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(
            CacheGeometry::PAPER_L2.to_string(),
            "16 sets x 4 ways x 64 B (4096 B total)"
        );
    }
}
