//! The common configuration error type for model-level validation.

use std::error::Error;
use std::fmt;

/// Errors raised while constructing model-level values.
///
/// Higher layers (bus schedules, partitions, the simulator configuration)
/// define their own richer error types and convert from this one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A slot width of zero cycles was requested.
    ZeroSlotWidth,
    /// A cache geometry with a zero dimension was requested.
    ZeroGeometry,
    /// A cache line size that is not a power of two was requested.
    LineSizeNotPowerOfTwo {
        /// The offending line size in bytes.
        line_size: u32,
    },
    /// A DRAM geometry with a zero dimension was requested.
    ZeroDramGeometry,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::ZeroSlotWidth => write!(f, "slot width must be at least one cycle"),
            ModelError::ZeroGeometry => {
                write!(f, "cache geometry dimensions must all be non-zero")
            }
            ModelError::LineSizeNotPowerOfTwo { line_size } => {
                write!(f, "cache line size {line_size} is not a power of two")
            }
            ModelError::ZeroDramGeometry => {
                write!(f, "dram geometry dimensions must all be non-zero")
            }
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_without_trailing_punctuation() {
        for e in [
            ModelError::ZeroSlotWidth,
            ModelError::ZeroGeometry,
            ModelError::LineSizeNotPowerOfTwo { line_size: 48 },
            ModelError::ZeroDramGeometry,
        ] {
            let msg = e.to_string();
            assert!(msg.chars().next().unwrap().is_lowercase() || msg.starts_with("cache"));
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_good<E: Error + Send + Sync + 'static>() {}
        assert_good::<ModelError>();
    }
}
