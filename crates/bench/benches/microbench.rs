//! Self-contained microbenchmarks for the predllc components and the
//! end-to-end simulator (no external bench framework: the build runs in
//! network-isolated environments).
//!
//! Each benchmark runs a warm-up pass, then a measured batch, and prints
//! mean wall time per iteration. Groups:
//!
//! * `cache` — set-associative fill/lookup and replacement-policy victim
//!   selection;
//! * `sequencer` — QLT/SQ operations;
//! * `llc` — hit and fill service paths of the shared-LLC controller;
//! * `engine` — end-to-end runs for the three partitioning families,
//!   streamed vs. materialized workloads;
//! * `analysis` — the closed-form WCL evaluations.
//!
//! Usage: `cargo bench -p predllc-bench` (add `-- quick` for a fast
//! smoke pass, used by CI).

use std::hint::black_box;
use std::time::{Duration, Instant};

use predllc_bench::harness::{nss, p, ss};
use predllc_cache::{ReplacementKind, SetAssocCache};
use predllc_core::analysis::WclParams;
use predllc_core::llc::SharedLlc;
use predllc_core::{PartitionMap, PartitionSpec, SetSequencer, SharingMode, Simulator};
use predllc_dram::FixedLatency;
use predllc_model::{CacheGeometry, CoreId, Cycles, LineAddr, SetIdx, SlotWidth};
use predllc_workload::gen::UniformGen;
use predllc_workload::Workload;

/// Times `f` over `iters` iterations after `warmup` unmeasured ones and
/// prints ns/iteration. Every closure result is black-boxed so the work
/// cannot be optimized away.
fn bench<T>(name: &str, warmup: u32, iters: u32, mut f: impl FnMut() -> T) {
    for _ in 0..warmup {
        black_box(f());
    }
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let total = start.elapsed();
    let per = total / iters;
    println!(
        "{name:<44} {:>12}   ({iters} iters, total {:.3?})",
        format_per(per),
        total
    );
}

fn format_per(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 10_000_000 {
        format!("{:.2} ms/iter", ns as f64 / 1e6)
    } else if ns >= 10_000 {
        format!("{:.2} µs/iter", ns as f64 / 1e3)
    } else {
        format!("{ns} ns/iter")
    }
}

fn bench_cache(scale: u32) {
    println!("-- cache --");
    bench("fill_lookup_paper_l2", 2, 200 * scale, || {
        let mut cache = SetAssocCache::<()>::new(CacheGeometry::PAPER_L2, ReplacementKind::Lru);
        for i in 0..256u64 {
            let line = LineAddr::new(i % 96);
            if cache.lookup(line).is_none() {
                cache.fill(line, i % 3 == 0, ());
            }
        }
        cache.occupancy()
    });
    for kind in [
        ReplacementKind::Lru,
        ReplacementKind::Fifo,
        ReplacementKind::RoundRobin,
        ReplacementKind::Random { seed: 1 },
    ] {
        let mut policy = kind.build(CacheGeometry::PAPER_L3);
        let eligible = vec![true; 16];
        bench(&format!("victim_{kind}"), 16, 4_000 * scale, || {
            policy.choose_victim(black_box(SetIdx(3)), black_box(&eligible))
        });
    }
}

fn bench_sequencer(scale: u32) {
    println!("-- sequencer --");
    bench("enqueue_pop_16_cores", 2, 400 * scale, || {
        let mut sq = SetSequencer::new();
        for s in 0..8u32 {
            for core in 0..16u16 {
                sq.enqueue(SetIdx(s), CoreId::new(core));
            }
        }
        for s in 0..8u32 {
            while sq.pop(SetIdx(s)).is_some() {}
        }
        sq.tracked_sets()
    });
}

fn bench_llc(scale: u32) {
    println!("-- llc --");
    let build = || {
        let map = PartitionMap::new(
            vec![PartitionSpec::shared(
                8,
                4,
                CoreId::first(4).collect(),
                SharingMode::SetSequencer,
            )],
            4,
            CacheGeometry::PAPER_L3,
        )
        .expect("valid");
        SharedLlc::new(
            map,
            64,
            ReplacementKind::Lru,
            Box::new(FixedLatency::default()),
        )
    };
    let mut llc = build();
    llc.service(
        CoreId::new(0),
        LineAddr::new(1),
        Cycles::ZERO,
        &mut |_, _| false,
    );
    bench("service_hit_path", 16, 20_000 * scale, || {
        llc.service(
            black_box(CoreId::new(1)),
            black_box(LineAddr::new(1)),
            Cycles::ZERO,
            &mut |_, _| false,
        )
    });
    bench("service_fill_evict_cycle", 2, 200 * scale, || {
        let mut llc = build();
        // Fill past capacity so every later service victimizes.
        for i in 0..64u64 {
            llc.service(
                CoreId::new((i % 4) as u16),
                LineAddr::new(i),
                Cycles::ZERO,
                &mut |_, _| false,
            );
        }
        llc.memory_stats().reads
    });
}

fn bench_engine(scale: u32) {
    println!("-- engine --");
    let cases = [
        ("ss_32x4x4", ss(32, 4, 4)),
        ("nss_32x4x4", nss(32, 4, 4)),
        ("p_8x4_x4", p(8, 4, 4)),
    ];
    let gen = UniformGen::new(8_192, 500)
        .with_write_fraction(0.2)
        .with_seed(1)
        .with_cores(4);
    for (name, cfg) in cases {
        let sim = Simulator::new(cfg).expect("valid");
        // Streamed: the workload is generated on the fly each run.
        bench(&format!("{name}/streamed"), 1, 10 * scale, || {
            sim.run(&gen).expect("runs").execution_time()
        });
        // Materialized twin: same addresses, pre-collected traces.
        let traces = gen.materialize();
        bench(&format!("{name}/materialized"), 1, 10 * scale, || {
            sim.run(&traces).expect("runs").execution_time()
        });
    }
}

fn bench_analysis(scale: u32) {
    println!("-- analysis --");
    let params = WclParams {
        total_cores: 16,
        sharers: 16,
        ways: 16,
        partition_lines: 512,
        core_capacity_lines: 64,
        slot_width: SlotWidth::PAPER,
    };
    bench("wcl_theorem_4_7", 16, 100_000 * scale, || {
        black_box(params).wcl_one_slot_tdm_checked()
    });
    bench("wcl_theorem_4_8", 16, 100_000 * scale, || {
        black_box(params).wcl_set_sequencer()
    });
}

fn main() {
    // `cargo bench -- quick` (or `cargo test --benches`) runs a reduced
    // pass; CI uses it as a smoke test.
    let quick = std::env::args().any(|a| a == "quick" || a == "--quick");
    let scale = if quick { 1 } else { 10 };
    bench_cache(scale);
    bench_sequencer(scale);
    bench_llc(scale);
    bench_engine(scale);
    bench_analysis(scale);
}
