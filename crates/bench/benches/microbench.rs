//! Criterion microbenchmarks for the predllc components and the
//! end-to-end simulator.
//!
//! Groups:
//! * `cache` — set-associative fill/lookup and replacement-policy victim
//!   selection;
//! * `sequencer` — QLT/SQ operations;
//! * `llc` — hit and fill service paths of the shared-LLC controller;
//! * `engine` — end-to-end simulated-cycles-per-second for the three
//!   partitioning families (one bench per Fig. 7/Fig. 8 configuration
//!   family), plus the arbiter/replacement ablations' hot paths;
//! * `analysis` — the closed-form WCL evaluations.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use predllc_bench::harness::{nss, p, ss};
use predllc_cache::{Dram, ReplacementKind, SetAssocCache};
use predllc_core::analysis::WclParams;
use predllc_core::llc::SharedLlc;
use predllc_core::{PartitionMap, PartitionSpec, SetSequencer, SharingMode, Simulator};
use predllc_model::{CacheGeometry, CoreId, LineAddr, SetIdx, SlotWidth};
use predllc_workload::gen::UniformGen;

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.bench_function("fill_lookup_paper_l2", |b| {
        b.iter_batched(
            || SetAssocCache::<()>::new(CacheGeometry::PAPER_L2, ReplacementKind::Lru),
            |mut cache| {
                for i in 0..256u64 {
                    let line = LineAddr::new(i % 96);
                    if cache.lookup(line).is_none() {
                        cache.fill(line, i % 3 == 0, ());
                    }
                }
                cache.occupancy()
            },
            BatchSize::SmallInput,
        )
    });
    for kind in [
        ReplacementKind::Lru,
        ReplacementKind::Fifo,
        ReplacementKind::RoundRobin,
        ReplacementKind::Random { seed: 1 },
    ] {
        g.bench_function(format!("victim_{kind}"), |b| {
            let mut policy = kind.build(CacheGeometry::PAPER_L3);
            let eligible = vec![true; 16];
            b.iter(|| policy.choose_victim(black_box(SetIdx(3)), black_box(&eligible)))
        });
    }
    g.finish();
}

fn bench_sequencer(c: &mut Criterion) {
    let mut g = c.benchmark_group("sequencer");
    g.bench_function("enqueue_pop_16_cores", |b| {
        b.iter_batched(
            SetSequencer::new,
            |mut sq| {
                for s in 0..8u32 {
                    for core in 0..16u16 {
                        sq.enqueue(SetIdx(s), CoreId::new(core));
                    }
                }
                for s in 0..8u32 {
                    while sq.pop(SetIdx(s)).is_some() {}
                }
                sq.tracked_sets()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_llc(c: &mut Criterion) {
    let mut g = c.benchmark_group("llc");
    let build = || {
        let map = PartitionMap::new(
            vec![PartitionSpec::shared(
                8,
                4,
                CoreId::first(4).collect(),
                SharingMode::SetSequencer,
            )],
            4,
            CacheGeometry::PAPER_L3,
        )
        .expect("valid");
        SharedLlc::new(map, 64, ReplacementKind::Lru, Dram::default())
    };
    g.bench_function("service_hit_path", |b| {
        let mut llc = build();
        llc.service(CoreId::new(0), LineAddr::new(1), &mut |_, _| false);
        b.iter(|| {
            llc.service(
                black_box(CoreId::new(1)),
                black_box(LineAddr::new(1)),
                &mut |_, _| false,
            )
        })
    });
    g.bench_function("service_fill_evict_cycle", |b| {
        b.iter_batched(
            build,
            |mut llc| {
                // Fill past capacity so every later service victimizes.
                for i in 0..64u64 {
                    llc.service(CoreId::new((i % 4) as u16), LineAddr::new(i), &mut |_, _| {
                        false
                    });
                }
                llc.dram_stats().reads
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(20);
    let cases = [
        ("ss_32x4x4", ss(32, 4, 4)),
        ("nss_32x4x4", nss(32, 4, 4)),
        ("p_8x4_x4", p(8, 4, 4)),
    ];
    for (name, cfg) in cases {
        let traces = UniformGen::new(8_192, 500)
            .with_write_fraction(0.2)
            .with_seed(1)
            .traces(4);
        g.bench_function(name, |b| {
            b.iter_batched(
                || (cfg.clone(), traces.clone()),
                |(cfg, traces)| {
                    Simulator::new(cfg)
                        .expect("valid")
                        .run(traces)
                        .expect("runs")
                        .execution_time()
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let mut g = c.benchmark_group("analysis");
    let params = WclParams {
        total_cores: 16,
        sharers: 16,
        ways: 16,
        partition_lines: 512,
        core_capacity_lines: 64,
        slot_width: SlotWidth::PAPER,
    };
    g.bench_function("wcl_theorem_4_7", |b| {
        b.iter(|| black_box(params).wcl_one_slot_tdm_checked())
    });
    g.bench_function("wcl_theorem_4_8", |b| {
        b.iter(|| black_box(params).wcl_set_sequencer())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_cache,
    bench_sequencer,
    bench_llc,
    bench_engine,
    bench_analysis
);
criterion_main!(benches);
