//! Helpers shared by the `serve` and `fleet` bins for reading the
//! monitoring endpoints: counting samples in a `/v1/metrics/history`
//! reply and printing a `/v1/alerts` reply on the status channel.

use predllc_explore::json::Json;

use crate::status;

/// Sample count for `series` in a `/v1/metrics/history` reply.
///
/// # Errors
///
/// When the reply is not shaped like a history document or the series
/// is absent entirely (an empty-but-present series returns `Ok(0)`).
pub fn history_samples(history: &Json, series: &str) -> Result<usize, String> {
    let Some(Json::Array(all)) = history.get("series") else {
        return Err("history reply has no 'series' array".into());
    };
    for entry in all {
        if entry.get("name").and_then(Json::as_str) == Some(series) {
            let Some(Json::Array(samples)) = entry.get("samples") else {
                return Err(format!("series '{series}' has no 'samples' array"));
            };
            return Ok(samples.len());
        }
    }
    Err(format!("series '{series}' absent from history"))
}

/// The state of `rule` in a `/v1/alerts` reply, when the rule exists.
pub fn alert_state(alerts: &Json, rule: &str) -> Option<String> {
    let Some(Json::Array(all)) = alerts.get("alerts") else {
        return None;
    };
    all.iter()
        .find(|a| a.get("rule").and_then(Json::as_str) == Some(rule))
        .and_then(|a| a.get("state").and_then(Json::as_str))
        .map(str::to_string)
}

/// Prints a `/v1/alerts` reply as one status line per rule.
///
/// # Errors
///
/// When the reply is not shaped like an alerts document.
pub fn print_alerts(bin: &str, alerts: &Json) -> Result<(), String> {
    let firing = alerts.get("firing").and_then(Json::as_u64).unwrap_or(0);
    let Some(Json::Array(all)) = alerts.get("alerts") else {
        return Err("alerts reply has no 'alerts' array".into());
    };
    status!("{bin}: {} alert rule(s), {firing} firing", all.len());
    for alert in all {
        let rule = alert.get("rule").and_then(Json::as_str).unwrap_or("?");
        let state = alert.get("state").and_then(Json::as_str).unwrap_or("?");
        let series = alert.get("series").and_then(Json::as_str).unwrap_or("?");
        let since = alert.get("since_ms").and_then(Json::as_u64).unwrap_or(0);
        match alert.get("value").and_then(Json::as_f64) {
            Some(value) => {
                status!("{bin}:   {rule} [{state}] on {series} since {since}ms (value {value})");
            }
            None => status!("{bin}:   {rule} [{state}] on {series} since {since}ms"),
        }
    }
    Ok(())
}
