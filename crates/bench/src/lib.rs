//! Experiment harness for the `predllc` reproduction.
//!
//! The binaries regenerate the paper's figures:
//!
//! * `fig7` — observed vs. analytical WCL for SS/NSS/P one-set
//!   partitions (paper Fig. 7);
//! * `fig8` — execution time under fixed total capacity, shared vs.
//!   split (paper Fig. 8a-d);
//! * `headline` — the analytical WCL table and the "2048x" ratio claim;
//! * `ablation` — arbiter/replacement/sharer-count sweeps beyond the
//!   paper.
//!
//! `benches/microbench.rs` holds the criterion microbenchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
