//! Experiment harness for the `predllc` reproduction.
//!
//! The binaries regenerate the paper's figures:
//!
//! * `fig7` — observed vs. analytical WCL for SS/NSS/P one-set
//!   partitions (paper Fig. 7);
//! * `fig8` — execution time under fixed total capacity, shared vs.
//!   split (paper Fig. 8a-d);
//! * `headline` — the analytical WCL table and the "2048x" ratio claim;
//! * `ablation` — arbiter/replacement/sharer-count sweeps beyond the
//!   paper;
//! * `explore` — design-space exploration from a JSON spec: grids with
//!   full latency percentiles plus the schedulability-driven partition
//!   search (see `predllc-explore`).
//!
//! [`sweep::Sweep`] is the batch-run API: a named grid of configurations
//! × workloads, one reusable `Simulator` per configuration, individual
//! grid points scheduled on the work-stealing
//! [`Executor`](predllc_explore::Executor).
//!
//! `benches/microbench.rs` holds the (self-contained) microbenchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod log;
pub mod monitor;
pub mod sweep;

pub use harness::Measurement;
pub use sweep::Sweep;
