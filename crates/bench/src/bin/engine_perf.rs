//! Engine throughput benchmark and perf-regression gate.
//!
//! Runs a fixed set of hit-heavy workloads through **both** simulation
//! engines — the slot-by-slot reference loop and the fast-forward loop —
//! verifies their [`predllc_core::SimStats`] are byte-for-byte identical,
//! and reports ops/sec plus the fast/reference speedup. The headline
//! workload is the multi-tenant LLC-hit grid (`llc-hit-256t`): 256
//! tenants behind `predllc-serve` style consolidation, 1M operations
//! total, ~97% LLC hits — the regime in which the reference engine's
//! `O(cores)` work per bus slot dominates and fast-forward's
//! `O(log cores)` calendar pays off.
//!
//! ```text
//! engine_perf [--quick] [--out BENCH_engine.json]
//!             [--gate baseline.json] [--tolerance 0.20]
//! ```
//!
//! With `--gate`, each workload's fast-engine ops/sec and speedup are
//! compared against the checked-in baseline: a drop of more than
//! `tolerance` (default 20%) on a gated metric fails the run with a
//! non-zero exit, printing every per-workload delta either way — the
//! CI perf job runs exactly this against
//! `crates/bench/baselines/BENCH_engine_baseline.json`. The baseline
//! decides what gates: a `"gate_metrics": ["speedup"]` entry gates only
//! the same-machine fast/reference ratio (portable across runner
//! hardware) and keeps absolute ops/sec informational, while
//! `"gated": false` makes a whole workload informational.
//!
//! Two always-on overhead checks ride along under the same tolerance:
//! `obs_overhead` (a sampled [`EngineProfile`] must neither perturb nor
//! slow the fast engine) and `attribution_overhead` (running with
//! latency attribution on must keep the outputs bit-identical, sum its
//! components exactly, and stay within tolerance of the plain run).

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use predllc_bench::{data, error, status};
use predllc_core::config::EngineMode;
use predllc_core::EngineProfile;
use predllc_core::{PartitionSpec, Simulator, SystemConfig};
use predllc_explore::json::{parse, Json};
use predllc_model::{CacheGeometry, CoreId};
use predllc_workload::gen::{HotColdGen, StrideGen};
use predllc_workload::MultiCore;

/// One benchmarked workload: a name, a config family and a workload.
struct Scenario {
    name: &'static str,
    config: Box<dyn Fn(EngineMode) -> SystemConfig>,
    workload: MultiCore,
    /// Total operations across all cores (for ops/sec).
    total_ops: u64,
}

/// Measured result of one scenario.
struct Outcome {
    name: &'static str,
    total_ops: u64,
    ref_mops: f64,
    fast_mops: f64,
    speedup: f64,
}

/// The 4-core private-hit-heavy workload: 98% of accesses in a hot set
/// sized to the private L1/L2, so almost every op is a private hit.
fn private_hit_scenario(ops_per_core: usize) -> Scenario {
    let cores = 4u16;
    let mut wl = MultiCore::new();
    for i in 0..cores {
        let mut g = HotColdGen::new(u64::from(i) * (1 << 20), 64 * 160, ops_per_core)
            .with_seed(7 + u64::from(i));
        g.hot_probability = 0.98;
        wl = wl.core(g);
    }
    Scenario {
        name: "private-hit-4c",
        config: Box::new(move |mode| {
            SystemConfig::builder(cores)
                .partitions(
                    CoreId::first(cores)
                        .map(|c| PartitionSpec::private(16, 8, c))
                        .collect(),
                )
                .engine(mode)
                .build()
                .expect("valid benchmark configuration")
        }),
        workload: wl,
        total_ops: ops_per_core as u64 * u64::from(cores),
    }
}

/// The N-tenant LLC-hit-heavy workload: every op misses the private L2
/// (a stride over 128 lines against a 64-line L2) and, after the first
/// lap, hits the tenant's 128-line LLC partition — the steady state is
/// one LLC-hit slot per tenant per TDM period.
fn llc_hit_scenario(tenants: u16, total_ops: usize) -> Scenario {
    let per_core = total_ops / tenants as usize;
    let mut wl = MultiCore::new();
    for i in 0..tenants {
        wl = wl.core(StrideGen::new(u64::from(i) << 20, 64 * 128, per_core));
    }
    let name: &'static str = match tenants {
        64 => "llc-hit-64t",
        256 => "llc-hit-256t",
        _ => "llc-hit",
    };
    Scenario {
        name,
        config: Box::new(move |mode| {
            SystemConfig::builder(tenants)
                .physical_llc(
                    CacheGeometry::new(8 * u32::from(tenants), 16, 64)
                        .expect("valid benchmark LLC geometry"),
                )
                .partitions(
                    CoreId::first(tenants)
                        .map(|c| PartitionSpec::private(8, 16, c))
                        .collect(),
                )
                .engine(mode)
                .build()
                .expect("valid benchmark configuration")
        }),
        workload: wl,
        total_ops: per_core as u64 * u64::from(tenants),
    }
}

/// Runs one engine mode over a scenario, returning the best ops/sec of
/// `iters` timed runs (first run warms caches and the page allocator)
/// and the final report for the equality check.
fn time_mode(s: &Scenario, mode: EngineMode, iters: usize) -> (f64, predllc_core::RunReport) {
    let sim = Simulator::new((s.config)(mode)).expect("valid benchmark configuration");
    let mut best = 0.0f64;
    let mut report = None;
    for _ in 0..=iters {
        let t0 = Instant::now();
        let r = sim.run(&s.workload).expect("benchmark workload completes");
        let dt = t0.elapsed().as_secs_f64();
        if report.is_some() {
            // First run is the warm-up.
            best = best.max(s.total_ops as f64 / dt);
        }
        report = Some(r);
    }
    (best / 1e6, report.expect("at least one run"))
}

fn run_scenario(s: &Scenario, iters: usize) -> Outcome {
    let (ref_mops, ref_report) = time_mode(s, EngineMode::Reference, iters);
    let (fast_mops, fast_report) = time_mode(s, EngineMode::FastForward, iters);
    assert_eq!(
        ref_report.stats, fast_report.stats,
        "{}: fast-forward diverged from the reference engine",
        s.name
    );
    assert_eq!(ref_report.timed_out, fast_report.timed_out);
    assert_eq!(ref_report.cycles, fast_report.cycles);
    Outcome {
        name: s.name,
        total_ops: s.total_ops,
        ref_mops,
        fast_mops,
        speedup: fast_mops / ref_mops,
    }
}

fn render_json(outcomes: &[Outcome], headline: &str) -> String {
    let workloads = outcomes
        .iter()
        .map(|o| {
            Json::Object(vec![
                ("name".into(), Json::Str(o.name.into())),
                ("total_ops".into(), Json::UInt(o.total_ops)),
                ("ref_mops".into(), Json::Float(round3(o.ref_mops))),
                ("fast_mops".into(), Json::Float(round3(o.fast_mops))),
                ("speedup".into(), Json::Float(round3(o.speedup))),
            ])
        })
        .collect();
    Json::Object(vec![
        ("benchmark".into(), Json::Str("engine_perf".into())),
        ("headline".into(), Json::Str(headline.into())),
        ("workloads".into(), Json::Array(workloads)),
    ])
    .render_pretty()
}

fn round3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}

/// Compares measured outcomes against a baseline JSON; returns the gate
/// report and whether every workload passed.
fn gate(outcomes: &[Outcome], baseline: &Json, tolerance: f64) -> (String, bool) {
    let mut report = String::new();
    let mut ok = true;
    let Some(entries) = baseline.get("workloads").and_then(Json::as_array) else {
        return ("baseline has no 'workloads' array\n".into(), false);
    };
    for entry in entries {
        let name = entry.get("name").and_then(Json::as_str).unwrap_or("?");
        let Some(measured) = outcomes.iter().find(|o| o.name == name) else {
            let _ = writeln!(report, "{name}: missing from this run — FAIL");
            ok = false;
            continue;
        };
        // A baseline entry can opt out of gating (informational only):
        // the private-hit workload's speedup is ~1.0 by design (its cost
        // is per-op cache simulation both engines share), so its ratio
        // is noise-bound and not a meaningful regression signal.
        if entry.get("gated").and_then(Json::as_bool) == Some(false) {
            let _ = writeln!(
                report,
                "{name}: informational (gated: false) — fast {:.3} Mops/s, speedup {:.3}x",
                measured.fast_mops, measured.speedup
            );
            continue;
        }
        // An entry can also restrict which metrics gate: the checked-in
        // CI baseline gates only `speedup` (a same-machine ratio, so it
        // is portable across runner hardware) and keeps the absolute
        // ops/sec informational — a baseline recorded on one machine
        // says nothing about another machine's absolute throughput.
        let gate_metrics: Option<Vec<&str>> = entry
            .get("gate_metrics")
            .and_then(Json::as_array)
            .map(|m| m.iter().filter_map(Json::as_str).collect());
        for (metric, base, now) in [
            (
                "fast_mops",
                entry.get("fast_mops").and_then(Json::as_f64),
                measured.fast_mops,
            ),
            (
                "speedup",
                entry.get("speedup").and_then(Json::as_f64),
                measured.speedup,
            ),
        ] {
            let Some(base) = base else {
                let _ = writeln!(report, "{name}.{metric}: missing in baseline — FAIL");
                ok = false;
                continue;
            };
            let gated_metric = gate_metrics.as_ref().is_none_or(|m| m.contains(&metric));
            let delta = (now - base) / base;
            let verdict = if !gated_metric {
                "info (not gated)"
            } else if delta < -tolerance {
                ok = false;
                "FAIL (regression)"
            } else {
                "ok"
            };
            let _ = writeln!(
                report,
                "{name}.{metric}: baseline {base:.3}, measured {now:.3}, delta {:+.1}% — {verdict}",
                delta * 100.0
            );
        }
    }
    // The gate is two-directional: a measured workload the baseline does
    // not know about means the baseline is stale (renamed or newly added
    // scenario) and would otherwise escape gating entirely.
    for o in outcomes {
        let known = entries
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some(o.name));
        if !known {
            let _ = writeln!(
                report,
                "{}: not in the baseline — FAIL (add it to the baseline file)",
                o.name
            );
            ok = false;
        }
    }
    (report, ok)
}

/// The `obs_overhead` check: the same fast-forward workload timed
/// three ways — plain `run` (no profile: the single untaken branch),
/// and `run_profiled` with a sampled [`EngineProfile`] attached. The
/// profiled run must (a) produce bit-identical stats, (b) actually
/// record stage samples, and (c) stay within `tolerance` of the plain
/// run's throughput. Returns whether the check passed.
fn obs_overhead_check(total_ops: usize, iters: usize, tolerance: f64) -> bool {
    let s = llc_hit_scenario(64, total_ops);
    let sim =
        Simulator::new((s.config)(EngineMode::FastForward)).expect("valid benchmark configuration");
    let mut plain_best = 0.0f64;
    let mut profiled_best = 0.0f64;
    let mut plain_report = None;
    let mut profiled_report = None;
    let profile = EngineProfile::new(1024);
    // Interleave the two variants so frequency scaling and cache state
    // bias neither side; first pair is the warm-up.
    for warm in 0..=iters {
        let t0 = Instant::now();
        let r = sim.run(&s.workload).expect("benchmark workload completes");
        let plain_dt = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let rp = sim
            .run_profiled(&s.workload, Some(&profile))
            .expect("benchmark workload completes");
        let profiled_dt = t1.elapsed().as_secs_f64();
        if warm > 0 {
            plain_best = plain_best.max(s.total_ops as f64 / plain_dt);
            profiled_best = profiled_best.max(s.total_ops as f64 / profiled_dt);
        }
        plain_report = Some(r);
        profiled_report = Some(rp);
    }
    let plain = plain_report.expect("at least one run");
    let profiled = profiled_report.expect("at least one run");
    if plain.stats != profiled.stats || plain.cycles != profiled.cycles {
        error!("obs_overhead: a profiled run diverged from the plain run");
        return false;
    }
    if profile.samples() == 0 {
        error!("obs_overhead: the attached profile recorded no stage samples");
        return false;
    }
    let overhead = 1.0 - profiled_best / plain_best;
    data!(
        "obs_overhead: plain {:.2} Mops/s, profiled {:.2} Mops/s, overhead {:+.1}% \
         ({} stage samples, stats bit-identical)",
        plain_best / 1e6,
        profiled_best / 1e6,
        overhead * 100.0,
        profile.samples()
    );
    if overhead > tolerance {
        error!(
            "obs_overhead FAILED: sampled profiling costs {:.1}% (> {:.0}% tolerance)",
            overhead * 100.0,
            tolerance * 100.0
        );
        return false;
    }
    true
}

/// The `attribution_overhead` check: the same fast-forward workload
/// timed with latency attribution off and on. The attributed run must
/// (a) produce bit-identical stats and cycles (attribution only
/// reads), (b) actually attribute — the component totals sum exactly
/// to the recorded request latencies and a worst-case witness exists —
/// and (c) stay within `tolerance` of the plain run's throughput.
/// Returns whether the check passed.
fn attribution_overhead_check(total_ops: usize, iters: usize, tolerance: f64) -> bool {
    let s = llc_hit_scenario(64, total_ops);
    let off =
        Simulator::new((s.config)(EngineMode::FastForward)).expect("valid benchmark configuration");
    let on = Simulator::new((s.config)(EngineMode::FastForward).with_attribution(true))
        .expect("valid benchmark configuration");
    let mut off_best = 0.0f64;
    let mut on_best = 0.0f64;
    let mut off_report = None;
    let mut on_report = None;
    // Interleave the two variants so frequency scaling and cache state
    // bias neither side; first pair is the warm-up.
    for warm in 0..=iters {
        let t0 = Instant::now();
        let r = off.run(&s.workload).expect("benchmark workload completes");
        let off_dt = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let ra = on.run(&s.workload).expect("benchmark workload completes");
        let on_dt = t1.elapsed().as_secs_f64();
        if warm > 0 {
            off_best = off_best.max(s.total_ops as f64 / off_dt);
            on_best = on_best.max(s.total_ops as f64 / on_dt);
        }
        off_report = Some(r);
        on_report = Some(ra);
    }
    let plain = off_report.expect("at least one run");
    let attributed = on_report.expect("at least one run");
    if plain.stats != attributed.stats || plain.cycles != attributed.cycles {
        error!("attribution_overhead: an attributed run diverged from the plain run");
        return false;
    }
    let Some(attr) = attributed.attribution() else {
        error!("attribution_overhead: the attributed run produced no report");
        return false;
    };
    if attr.total_components().total() != attributed.latency_histogram().total() {
        error!("attribution_overhead: the component totals miss the recorded latencies");
        return false;
    }
    if attr.witness().is_none() {
        error!("attribution_overhead: the attributed run produced no worst-case witness");
        return false;
    }
    let overhead = 1.0 - on_best / off_best;
    data!(
        "attribution_overhead: off {:.2} Mops/s, on {:.2} Mops/s, overhead {:+.1}% \
         (stats bit-identical, component sums exact)",
        off_best / 1e6,
        on_best / 1e6,
        overhead * 100.0
    );
    if overhead > tolerance {
        error!(
            "attribution_overhead FAILED: attribution costs {:.1}% (> {:.0}% tolerance)",
            overhead * 100.0,
            tolerance * 100.0
        );
        return false;
    }
    true
}

fn main() -> ExitCode {
    let args: Vec<String> = predllc_bench::log::init(std::env::args().skip(1).collect());
    let mut quick = false;
    let mut out = String::from("BENCH_engine.json");
    let mut gate_path: Option<String> = None;
    let mut tolerance = 0.20f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = it.next().expect("--out needs a path").clone(),
            "--gate" => gate_path = Some(it.next().expect("--gate needs a path").clone()),
            "--tolerance" => {
                tolerance = it
                    .next()
                    .expect("--tolerance needs a value")
                    .parse()
                    .expect("tolerance is a fraction, e.g. 0.2")
            }
            other => {
                error!("unknown argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }

    let (hot_ops, llc_ops, iters) = if quick {
        (20_000, 64 * 500, 1)
    } else {
        (1_000_000, 1_000_000, 2)
    };
    let scenarios = vec![
        private_hit_scenario(hot_ops),
        llc_hit_scenario(64, llc_ops),
        llc_hit_scenario(256, llc_ops),
    ];

    let mut outcomes = Vec::new();
    for s in &scenarios {
        let o = run_scenario(s, iters);
        data!(
            "{}: reference {:.2} Mops/s, fast-forward {:.2} Mops/s, speedup {:.2}x \
             ({} ops, stats bit-identical)",
            o.name,
            o.ref_mops,
            o.fast_mops,
            o.speedup,
            o.total_ops
        );
        outcomes.push(o);
    }

    // The observability-overhead check: attaching a sampled profile to
    // the fast engine must neither change the simulation nor cost more
    // than the gate tolerance, and a run without one must stay on the
    // single-branch hot path.
    if !obs_overhead_check(if quick { 64 * 500 } else { 500_000 }, iters, tolerance) {
        return ExitCode::FAILURE;
    }

    // The attribution-overhead check: running with latency attribution
    // on must neither change the simulation nor cost more than the
    // gate tolerance.
    if !attribution_overhead_check(if quick { 64 * 500 } else { 500_000 }, iters, tolerance) {
        return ExitCode::FAILURE;
    }

    let json = render_json(&outcomes, "llc-hit-256t");
    if let Err(e) = std::fs::write(&out, &json) {
        error!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    status!("wrote {out}");

    if let Some(path) = gate_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                error!("cannot read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let baseline = match parse(&text) {
            Ok(j) => j,
            Err(e) => {
                error!("baseline {path} is not valid json: {e}");
                return ExitCode::FAILURE;
            }
        };
        let (report, ok) = gate(&outcomes, &baseline, tolerance);
        predllc_bench::log::write_data(&report);
        if !ok {
            error!(
                "perf gate FAILED: a metric regressed more than {:.0}% below \
                 the checked-in baseline",
                tolerance * 100.0
            );
            return ExitCode::FAILURE;
        }
        data!("perf gate passed (tolerance {:.0}%)", tolerance * 100.0);
    }
    ExitCode::SUCCESS
}
