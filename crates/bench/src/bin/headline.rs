//! Regenerates the paper's **analytical headline numbers**: the §5
//! analytical WCL table (5000 / 979250 / 450 cycles) and the §1/§6 claim
//! that the set sequencer lowers the WCL "2048 times" for a 4-core,
//! 16-way, 128-line partition.
//!
//! Usage: `cargo run --release -p predllc-bench --bin headline`

use predllc_bench::data;
use predllc_core::analysis::WclParams;
use predllc_model::SlotWidth;

fn params(ways: u32, partition_lines: u64, core_capacity: u64, n: u16) -> WclParams {
    WclParams {
        total_cores: n,
        sharers: n,
        ways,
        partition_lines,
        core_capacity_lines: core_capacity,
        slot_width: SlotWidth::PAPER,
    }
}

fn main() {
    let _ = predllc_bench::log::init(std::env::args().skip(1).collect());
    data!("== Paper §5 analytical WCLs (4 cores, 50-cycle slots) ==");
    data!(
        "{:<24} {:>12} {:>12} {:>12}",
        "configuration",
        "NSS",
        "SS",
        "P"
    );
    for (label, ways, m_lines) in [
        ("1 set x 16 ways (Fig 7)", 16u32, 16u64),
        ("1 set x 2 ways (Fig 7)", 2, 2),
    ] {
        let p = params(ways, m_lines, 64, 4);
        data!(
            "{:<24} {:>12} {:>12} {:>12}",
            label,
            p.wcl_one_slot_tdm().as_u64(),
            p.wcl_set_sequencer().as_u64(),
            p.wcl_private().as_u64(),
        );
    }
    data!();

    data!("== Headline claim: WCL reduction for 16-way, 128-line partition ==");
    let p = params(16, 128, 128, 4);
    data!(
        "  WCL without sequencer (Thm 4.7): {} cycles",
        p.wcl_one_slot_tdm().as_u64()
    );
    data!(
        "  WCL with sequencer    (Thm 4.8): {} cycles",
        p.wcl_set_sequencer().as_u64()
    );
    data!(
        "  reduction ratio:                 {:.0}x",
        p.improvement_ratio()
    );
    data!("  paper claims:                    2048x");
    data!(
        "  (exact arithmetic of Eq. (1)/(2) gives ~1486x; the shape —\n   three orders of magnitude, size-independence — holds; see EXPERIMENTS.md)"
    );
    data!();

    data!("== WCL scaling with sharer count (w=16, M=128, m_cua=128, N=n) ==");
    data!(
        "{:>4} {:>16} {:>12} {:>10}",
        "n",
        "NSS (cycles)",
        "SS (cycles)",
        "ratio"
    );
    for n in 2..=16u16 {
        let p = params(16, 128, 128, n);
        data!(
            "{:>4} {:>16} {:>12} {:>10.0}",
            n,
            p.wcl_one_slot_tdm().as_u64(),
            p.wcl_set_sequencer().as_u64(),
            p.improvement_ratio(),
        );
    }
    data!();

    data!("== SS WCL is independent of partition size (n=N=4) ==");
    data!(
        "{:>14} {:>16} {:>12}",
        "M (lines)",
        "NSS (cycles)",
        "SS (cycles)"
    );
    for m in [16u64, 32, 64, 128, 256, 512] {
        let p = params(16, m, u64::MAX, 4);
        data!(
            "{:>14} {:>16} {:>12}",
            m,
            p.wcl_one_slot_tdm().as_u64(),
            p.wcl_set_sequencer().as_u64(),
        );
    }
}
