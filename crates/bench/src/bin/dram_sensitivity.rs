//! DRAM sensitivity sweep: row-hit ratio × bank count × bank-sharing
//! mode, beyond the paper's fixed-latency memory model.
//!
//! Workload locality controls the row-hit ratio (a 64 B stride streams
//! whole rows; a row-sized stride forces a row miss per access; uniform
//! traffic is the random baseline), while the configuration axis sweeps
//! the banked backend's bank count under both the interleaved and the
//! bank-privatized per-core mapping, against the seed's fixed-latency
//! DRAM. Every grid point runs through [`predllc_bench::Sweep`], and the
//! output is the Measurement CSV with the backend label column.
//!
//! Usage: `cargo run --release -p predllc-bench --bin dram_sensitivity
//! [--quick] [--ops N]`

use predllc_bench::harness::render_csv_with_backend;
use predllc_bench::{error, status, Sweep};
use predllc_core::{MemoryConfig, PartitionSpec, SystemConfig};
use predllc_dram::{BankMapping, DramTiming};
use predllc_model::{CoreId, DramGeometry};
use predllc_workload::gen::{StrideGen, UniformGen};
use predllc_workload::MultiCore;
use std::process::ExitCode;

const CORES: u16 = 4;

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            error!("dram_sensitivity: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Runs the sweep; `Ok(false)` means the soundness check failed.
fn run() -> Result<bool, Box<dyn std::error::Error>> {
    let args: Vec<String> = predllc_bench::log::init(std::env::args().collect());
    let quick = args.iter().any(|a| a == "--quick");
    let default_ops = if quick { 200 } else { 2_000 };
    let ops = args
        .iter()
        .position(|a| a == "--ops")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_ops);

    // Configuration axis: fixed baseline, then bank counts × mappings.
    // Bank counts are multiples of the core count so the privatized
    // mapping always slices evenly.
    let bank_counts: &[u32] = if quick { &[8] } else { &[4, 8, 16] };
    let mut sweep = Sweep::new().config("fixed", platform(MemoryConfig::default())?);
    for &banks in bank_counts {
        for (tag, mapping) in [
            ("il", BankMapping::Interleaved),
            ("priv", BankMapping::BankPrivate),
        ] {
            let memory = MemoryConfig::Banked {
                timing: DramTiming::PAPER,
                geometry: DramGeometry::new(1, banks, 64)?,
                mapping,
            };
            sweep = sweep.config(format!("b{banks}/{tag}"), platform(memory)?);
        }
    }

    // Workload axis: stride length controls the row-hit ratio.
    let strides: &[u64] = if quick { &[64] } else { &[64, 256, 4096] };
    for &stride in strides {
        sweep = sweep.workload_at(format!("stride/{stride}B"), stride, striders(stride, ops));
    }
    sweep = sweep.workload_at(
        "uniform/64KiB",
        0,
        UniformGen::new(64 << 10, ops)
            .with_seed(0xD8A)
            .with_write_fraction(0.2)
            .with_cores(CORES),
    );

    let rows = sweep.run()?;
    predllc_bench::log::write_data(&render_csv_with_backend(&rows));

    // Soundness check: every observation stays within its row's
    // analytical WCL (the private-partition bound (2N+1)·SW here),
    // regardless of the memory backend.
    let violations = rows
        .iter()
        .filter(|m| m.observed_wcl > m.analytical_wcl.unwrap_or(u64::MAX))
        .count();
    if violations > 0 {
        error!("CHECK FAILED: {violations} observations exceed their analytical bound");
        return Ok(false);
    }
    status!(
        "CHECK ok: all {} observations within their analytical bounds",
        rows.len()
    );
    Ok(true)
}

/// The fixed platform under the swept memory backend: four cores with
/// private `P(4,2)` LLC partitions, so DRAM effects are isolated from
/// LLC interference.
fn platform(memory: MemoryConfig) -> Result<SystemConfig, predllc_core::ConfigError> {
    SystemConfig::builder(CORES)
        .partitions(
            CoreId::first(CORES)
                .map(|c| PartitionSpec::private(4, 2, c))
                .collect(),
        )
        .memory(memory)
        .build()
}

/// Per-core strided sweeps over disjoint 64 KiB windows (1 MiB apart, so
/// cores never share DRAM rows).
fn striders(stride: u64, ops: usize) -> MultiCore {
    let mut w = MultiCore::new();
    for core in 0..CORES {
        let start = u64::from(core) << 20;
        w = w.core(StrideGen::new(start, 64 << 10, ops).with_stride(stride));
    }
    w
}
