//! HTTP-layer throughput benchmark and perf-regression gate for the
//! experiment service.
//!
//! Two scenarios, both driving a real in-process [`Server`] over
//! loopback TCP with persistent keep-alive connections:
//!
//! * `keepalive-2000c` — the reactor sustaining thousands of
//!   **simultaneously open** keep-alive connections (the old
//!   thread-per-connection cap was 256). Every response must be a
//!   `200`; the run fails otherwise. Reports requests/sec and p99
//!   request latency — informational, since absolute numbers are
//!   machine-bound.
//! * `reactor-vs-blocking-128c` — the same request mix at 128
//!   connections against a reactor-mode server and against the
//!   preserved blocking fallback on the same machine. The
//!   reactor/blocking throughput **ratio** is the gated metric: it is
//!   a same-machine comparison, portable across runner hardware.
//!
//! ```text
//! serve_perf [--quick] [--out BENCH_serve.json]
//!            [--gate baseline.json] [--tolerance 0.20]
//! ```
//!
//! With `--gate`, metrics named by each baseline entry's
//! `"gate_metrics"` are compared against the checked-in baseline
//! (`crates/bench/baselines/BENCH_serve_baseline.json` in CI): a drop
//! of more than `tolerance` below baseline fails the run. The gate is
//! two-directional — a measured scenario missing from the baseline
//! fails too, so renamed scenarios cannot silently escape gating.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use predllc_bench::{data, error, status};
use predllc_explore::json::{parse, Json};
use predllc_serve::{Client, ServeMode, Server, ServerConfig, ServerHandle};

/// One measured scenario: a name plus its metric/value pairs (the JSON
/// and the gate both iterate this shape, so adding a metric is one
/// line).
struct Outcome {
    name: &'static str,
    metrics: Vec<(&'static str, f64)>,
}

fn start(config: ServerConfig) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind an ephemeral port");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (handle, join)
}

fn stop(handle: &ServerHandle, join: std::thread::JoinHandle<()>) {
    handle.shutdown();
    join.join().expect("server thread");
}

/// Opens `conns` keep-alive connections, rendezvouses once **all** of
/// them are established and held open (running `probe` at that
/// moment), then times `rounds` of `GET /healthz` over every
/// connection from a small thread pool, hard-asserting each answer.
/// Returns (requests/sec, p99 latency ms) or an error message; the
/// establishment phase is excluded from the timing.
fn drive(
    addr: std::net::SocketAddr,
    conns: usize,
    rounds: usize,
    threads: usize,
    probe: Option<&mut dyn FnMut() -> Result<(), String>>,
) -> Result<(f64, f64), String> {
    let failed = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(std::sync::Barrier::new(threads + 1));
    let chunk = conns.div_ceil(threads);
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let failed = Arc::clone(&failed);
            let barrier = Arc::clone(&barrier);
            let mine = chunk.min(conns.saturating_sub(t * chunk));
            std::thread::spawn(move || {
                let mut clients: Vec<Client> = (0..mine)
                    .map(|_| Client::new(addr).with_timeout(Duration::from_secs(60)))
                    .collect();
                let mut latencies = Vec::with_capacity(mine * rounds);
                let check = |client: &mut Client, latencies: &mut Vec<u64>, record: bool| {
                    let r0 = Instant::now();
                    match client.healthz() {
                        Ok(body) if body == "ok\n" => {
                            if record {
                                latencies.push(r0.elapsed().as_nanos() as u64);
                            }
                            true
                        }
                        Ok(body) => {
                            error!("healthz answered {body:?}");
                            failed.store(true, Ordering::Relaxed);
                            false
                        }
                        Err(e) => {
                            error!("healthz failed: {e}");
                            failed.store(true, Ordering::Relaxed);
                            false
                        }
                    }
                };
                // Establishment: one unrecorded request per connection
                // opens and proves every socket. All `mine` stay open
                // (keep-alive) until this thread returns.
                for client in &mut clients {
                    if !check(client, &mut latencies, false) {
                        barrier.wait(); // held rendezvous
                        barrier.wait(); // release
                        return latencies;
                    }
                }
                barrier.wait(); // every connection is now open, held
                barrier.wait(); // coordinator probed; start the clock
                for _ in 0..rounds {
                    for client in &mut clients {
                        if !check(client, &mut latencies, true) {
                            return latencies;
                        }
                    }
                }
                latencies
            })
        })
        .collect();

    // Rendezvous: every connection is established and held open.
    barrier.wait();
    let probed = match probe {
        Some(f) => f(),
        None => Ok(()),
    };
    barrier.wait();
    let t0 = Instant::now();
    let mut latencies: Vec<u64> = Vec::with_capacity(conns * rounds);
    for w in workers {
        latencies.extend(w.join().expect("driver thread"));
    }
    let wall = t0.elapsed().as_secs_f64();
    probed?;
    if failed.load(Ordering::Relaxed) {
        return Err("a request failed or answered non-200".into());
    }
    let expected = conns * rounds;
    if latencies.len() != expected {
        return Err(format!(
            "only {}/{expected} requests completed",
            latencies.len()
        ));
    }
    latencies.sort_unstable();
    let p99 = latencies[(latencies.len() * 99) / 100 - 1] as f64 / 1e6;
    Ok((expected as f64 / wall, p99))
}

/// The headline scenario: `conns` simultaneously open keep-alive
/// connections against a reactor server, with the open-connection
/// gauge asserted at full depth mid-run.
fn keepalive_scenario(conns: usize, rounds: usize, threads: usize) -> Result<Outcome, String> {
    let (handle, join) = start(ServerConfig {
        mode: ServeMode::Auto,
        max_connections: conns + 64,
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    // The probe runs at the establishment rendezvous, while every
    // driver connection is provably open and held — proving the
    // configured depth is genuinely concurrent, not conns sockets
    // opened and closed in sequence.
    let mut probe = move || -> Result<(), String> {
        let open = Client::new(addr)
            .metric("predllc_connections_open")
            .map_err(|e| format!("gauge probe failed: {e}"))?;
        // The probe's own connection is the +1.
        if (open as usize) < conns {
            return Err(format!(
                "only {open} connections were concurrently open (want {conns})"
            ));
        }
        Ok(())
    };
    let (rps, p99) = drive(addr, conns, rounds, threads, Some(&mut probe))?;
    stop(&handle, join);
    Ok(Outcome {
        name: "keepalive-2000c",
        metrics: vec![
            ("conns", conns as f64),
            ("rps", round3(rps)),
            ("p99_ms", round3(p99)),
        ],
    })
}

/// The gated scenario: identical load against the reactor and against
/// the blocking fallback; the throughput ratio is the same-machine,
/// hardware-portable regression signal.
fn ratio_scenario(conns: usize, rounds: usize, threads: usize) -> Result<Outcome, String> {
    let mut rps = Vec::new();
    for mode in [ServeMode::Reactor, ServeMode::Blocking] {
        let (handle, join) = start(ServerConfig {
            mode,
            max_connections: conns + 64,
            ..ServerConfig::default()
        });
        // The establishment round inside `drive` doubles as warm-up;
        // timing starts only after every connection is open.
        let (r, _p99) = drive(handle.addr(), conns, rounds, threads, None)?;
        rps.push(r);
        stop(&handle, join);
    }
    Ok(Outcome {
        name: "reactor-vs-blocking-128c",
        metrics: vec![
            ("reactor_rps", round3(rps[0])),
            ("blocking_rps", round3(rps[1])),
            ("ratio", round3(rps[0] / rps[1])),
        ],
    })
}

fn render_json(outcomes: &[Outcome]) -> String {
    let workloads = outcomes
        .iter()
        .map(|o| {
            let mut fields = vec![("name".into(), Json::Str(o.name.into()))];
            fields.extend(
                o.metrics
                    .iter()
                    .map(|(k, v)| ((*k).into(), Json::Float(*v))),
            );
            Json::Object(fields)
        })
        .collect();
    Json::Object(vec![
        ("benchmark".into(), Json::Str("serve_perf".into())),
        ("headline".into(), Json::Str("keepalive-2000c".into())),
        ("workloads".into(), Json::Array(workloads)),
    ])
    .render_pretty()
}

fn round3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}

/// Compares measured outcomes against a baseline JSON; returns the
/// gate report and whether everything passed. Only metrics listed in
/// an entry's `"gate_metrics"` gate; the rest print informationally.
fn gate(outcomes: &[Outcome], baseline: &Json, tolerance: f64) -> (String, bool) {
    use std::fmt::Write as _;
    let mut report = String::new();
    let mut ok = true;
    let Some(entries) = baseline.get("workloads").and_then(Json::as_array) else {
        return ("baseline has no 'workloads' array\n".into(), false);
    };
    for entry in entries {
        let name = entry.get("name").and_then(Json::as_str).unwrap_or("?");
        let Some(measured) = outcomes.iter().find(|o| o.name == name) else {
            let _ = writeln!(report, "{name}: missing from this run — FAIL");
            ok = false;
            continue;
        };
        let gate_metrics: Vec<&str> = entry
            .get("gate_metrics")
            .and_then(Json::as_array)
            .map(|m| m.iter().filter_map(Json::as_str).collect())
            .unwrap_or_default();
        for (metric, now) in &measured.metrics {
            let Some(base) = entry.get(metric).and_then(Json::as_f64) else {
                if gate_metrics.contains(metric) {
                    let _ = writeln!(report, "{name}.{metric}: missing in baseline — FAIL");
                    ok = false;
                }
                continue;
            };
            let delta = (now - base) / base;
            let verdict = if !gate_metrics.contains(metric) {
                "info (not gated)"
            } else if delta < -tolerance {
                ok = false;
                "FAIL (regression)"
            } else {
                "ok"
            };
            let _ = writeln!(
                report,
                "{name}.{metric}: baseline {base:.3}, measured {now:.3}, delta {:+.1}% — {verdict}",
                delta * 100.0
            );
        }
    }
    // Two-directional: a measured scenario the baseline does not know
    // about means the baseline is stale.
    for o in outcomes {
        let known = entries
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some(o.name));
        if !known {
            let _ = writeln!(
                report,
                "{}: not in the baseline — FAIL (add it to the baseline file)",
                o.name
            );
            ok = false;
        }
    }
    (report, ok)
}

fn main() -> ExitCode {
    let args: Vec<String> = predllc_bench::log::init(std::env::args().skip(1).collect());
    let mut quick = false;
    let mut out = String::from("BENCH_serve.json");
    let mut gate_path: Option<String> = None;
    let mut tolerance = 0.20f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = it.next().expect("--out needs a path").clone(),
            "--gate" => gate_path = Some(it.next().expect("--gate needs a path").clone()),
            "--tolerance" => {
                tolerance = it
                    .next()
                    .expect("--tolerance needs a value")
                    .parse()
                    .expect("tolerance is a fraction, e.g. 0.2")
            }
            other => {
                error!("unknown argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }

    // 2000 client + 2000 server sockets live in this one process; CI
    // runners default to a 1024 soft fd limit, so raise it first and
    // scale the scenario down if the hard limit refuses.
    let mut conns = if quick { 400 } else { 2000 };
    #[cfg(target_os = "linux")]
    {
        let want = (2 * conns + 256) as u64;
        match predllc_serve::sys::raise_nofile_limit(want) {
            Ok(limit) if limit < want => {
                let fit = ((limit as usize).saturating_sub(256)) / 2;
                error!("fd limit {limit} cannot hold {conns} connections; running {fit}");
                conns = fit.max(16);
            }
            Ok(_) => {}
            Err(e) => {
                error!("cannot raise the fd limit: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let (rounds, ratio_rounds, threads) = if quick { (2, 4, 8) } else { (5, 40, 8) };

    let mut outcomes = Vec::new();
    match keepalive_scenario(conns, rounds, threads) {
        Ok(o) => {
            data!(
                "keepalive-2000c: {} concurrent keep-alive conns, {:.0} req/s, p99 {:.2} ms \
                 (every answer 200)",
                conns,
                o.metrics[1].1,
                o.metrics[2].1
            );
            outcomes.push(o);
        }
        Err(e) => {
            error!("keepalive-2000c FAILED: {e}");
            return ExitCode::FAILURE;
        }
    }
    match ratio_scenario(128.min(conns), ratio_rounds, threads) {
        Ok(o) => {
            data!(
                "reactor-vs-blocking-128c: reactor {:.0} req/s, blocking {:.0} req/s, \
                 ratio {:.3}x",
                o.metrics[0].1,
                o.metrics[1].1,
                o.metrics[2].1
            );
            outcomes.push(o);
        }
        Err(e) => {
            error!("reactor-vs-blocking-128c FAILED: {e}");
            return ExitCode::FAILURE;
        }
    }

    let json = render_json(&outcomes);
    if let Err(e) = std::fs::write(&out, &json) {
        error!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    status!("wrote {out}");

    if let Some(path) = gate_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                error!("cannot read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let baseline = match parse(&text) {
            Ok(j) => j,
            Err(e) => {
                error!("baseline {path} is not valid json: {e}");
                return ExitCode::FAILURE;
            }
        };
        let (report, ok) = gate(&outcomes, &baseline, tolerance);
        predllc_bench::log::write_data(&report);
        if !ok {
            error!(
                "perf gate FAILED: a metric regressed more than {:.0}% below \
                 the checked-in baseline",
                tolerance * 100.0
            );
            return ExitCode::FAILURE;
        }
        data!("perf gate passed (tolerance {:.0}%)", tolerance * 100.0);
    }
    ExitCode::SUCCESS
}
