//! Regenerates **Figure 7** of the paper: observed worst-case latency of
//! SS/NSS/P one-set partition configurations across address ranges,
//! against the analytical WCLs (5000 cycles for SS, 979250 for NSS at 16
//! ways / 21650 at 2 ways, 450 for P).
//!
//! Usage: `cargo run --release -p predllc-bench --bin fig7 [--csv] [--ops N] [--seed S]`

use predllc_bench::harness::ss;
use predllc_bench::harness::{
    self, nss, p, paper_address_ranges, render_csv, render_table, uniform_workload, Measurement,
    Metric,
};
use predllc_bench::{data, error, Sweep};
use predllc_core::SimError;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            error!("fig7: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Runs the sweep; `Ok(false)` means a bound-violation check failed.
fn run() -> Result<bool, SimError> {
    let args: Vec<String> = predllc_bench::log::init(std::env::args().collect());
    let csv = args.iter().any(|a| a == "--csv");
    let ops = flag_value(&args, "--ops").unwrap_or(2_000);
    let seed = flag_value(&args, "--seed").unwrap_or(0xF167);
    let writes = fflag_value(&args, "--writes").unwrap_or(0.2);

    // The paper's Fig. 7 configurations: one-set partitions "to force as
    // many conflicts as possible".
    type ConfigBuilder = fn() -> predllc_core::SystemConfig;
    let configs: Vec<(&str, ConfigBuilder)> = vec![
        ("SS(1,2,4)", || ss(1, 2, 4)),
        ("SS(1,4,4)", || ss(1, 4, 4)),
        ("NSS(1,2,4)", || nss(1, 2, 4)),
        ("NSS(1,4,4)", || nss(1, 4, 4)),
        ("P(1,2)", || p(1, 2, 4)),
        ("P(1,4)", || p(1, 4, 4)),
    ];

    // One Sweep: each configuration's simulator is built once and reused
    // across all nine streamed address-range workloads.
    let mut sweep = Sweep::new();
    for &(label, build) in &configs {
        sweep = sweep.config(label, build());
    }
    for &range in &paper_address_ranges() {
        sweep = sweep.workload_at(
            format!("uniform/{range}B"),
            range,
            uniform_workload(range, ops as usize, seed, writes, 4),
        );
    }
    let mut rows: Vec<Measurement> = sweep.run()?;
    rows.sort_by(|a, b| (a.range, &a.label).cmp(&(b.range, &b.label)));

    if csv {
        predllc_bench::log::write_data(&render_csv(&rows));
        return Ok(true);
    }
    data!(
        "{}",
        render_table(
            "Figure 7: observed WCL (cycles) vs per-core address range",
            &rows,
            Metric::ObservedWcl,
        )
    );
    data!("Analytical WCLs (cycles):");
    for (label, build) in &configs {
        data!(
            "  {label:<12} {}",
            harness::analytical_wcl(&build()).map_or("-".to_string(), |v| v.to_string())
        );
    }
    data!();
    // The paper's criterion: every observation within its analytical WCL.
    let violations: Vec<&Measurement> = rows
        .iter()
        .filter(|m| m.analytical_wcl.is_some_and(|a| m.observed_wcl > a))
        .collect();
    if violations.is_empty() {
        data!("CHECK ok: all observed WCLs are within their analytical bounds");
        Ok(true)
    } else {
        data!(
            "CHECK FAILED: {} observations exceed their bound:",
            violations.len()
        );
        for v in violations {
            data!(
                "  {} @ {} B: observed {} > analytical {}",
                v.label,
                v.range,
                v.observed_wcl,
                v.analytical_wcl.unwrap_or(0)
            );
        }
        Ok(false)
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn fflag_value(args: &[String], flag: &str) -> Option<f64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}
