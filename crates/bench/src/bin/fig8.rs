//! Regenerates **Figure 8** of the paper: execution time of the
//! synthetic workload when a fixed LLC capacity is shared (SS/NSS) vs.
//! split into private partitions (P), for 2- and 4-core setups at 4096 B
//! and 8192 B total capacity.
//!
//! The paper's captions print `P(8,2)` / `P(8,4)` for both core counts.
//! For 4 cores that is the equal division of the fixed capacity; for 2
//! cores equal division would be `P(16,2)` / `P(16,4)`. Both readings are
//! reported (the printed one as `P`, the equal division as `P=`); see
//! `EXPERIMENTS.md`.
//!
//! Usage: `cargo run --release -p predllc-bench --bin fig8 [--csv] [--ops N] [--seed S]`

use predllc_bench::harness::{
    nss, p, paper_address_ranges, render_csv, render_table, ss, uniform_workload, Measurement,
    Metric,
};
use predllc_bench::{data, error, Sweep};
use predllc_core::{SimError, SystemConfig};
use std::process::ExitCode;

struct Panel {
    title: &'static str,
    configs: Vec<(String, SystemConfig)>,
}

fn panels() -> Vec<Panel> {
    vec![
        Panel {
            title: "Figure 8a: 2-core, 4096 B partition — execution time (cycles)",
            configs: vec![
                ("SS(32,2,2)".into(), ss(32, 2, 2)),
                ("NSS(32,2,2)".into(), nss(32, 2, 2)),
                ("P(8,2)".into(), p(8, 2, 2)),
                ("P=(16,2)".into(), p(16, 2, 2)),
            ],
        },
        Panel {
            title: "Figure 8b: 2-core, 8192 B partition — execution time (cycles)",
            configs: vec![
                ("SS(32,4,2)".into(), ss(32, 4, 2)),
                ("NSS(32,4,2)".into(), nss(32, 4, 2)),
                ("P(8,4)".into(), p(8, 4, 2)),
                ("P=(16,4)".into(), p(16, 4, 2)),
            ],
        },
        Panel {
            title: "Figure 8c: 4-core, 4096 B partition — execution time (cycles)",
            configs: vec![
                ("SS(32,2,4)".into(), ss(32, 2, 4)),
                ("NSS(32,2,4)".into(), nss(32, 2, 4)),
                ("P(8,2)".into(), p(8, 2, 4)),
            ],
        },
        Panel {
            title: "Figure 8d: 4-core, 8192 B partition — execution time (cycles)",
            configs: vec![
                ("SS(32,4,4)".into(), ss(32, 4, 4)),
                ("NSS(32,4,4)".into(), nss(32, 4, 4)),
                ("P(8,4)".into(), p(8, 4, 4)),
            ],
        },
    ]
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            error!("fig8: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), SimError> {
    let args: Vec<String> = predllc_bench::log::init(std::env::args().collect());
    let csv = args.iter().any(|a| a == "--csv");
    let ops = flag_value(&args, "--ops").unwrap_or(4_000) as usize;
    let seed = flag_value(&args, "--seed").unwrap_or(0xF168);
    let writes = fflag_value(&args, "--writes").unwrap_or(0.0);

    for panel in panels() {
        // Every configuration in a panel has the same core count, so one
        // streamed workload row serves the whole panel; each config's
        // simulator is reused across all nine ranges.
        let cores = panel.configs[0].1.num_cores();
        let mut sweep = Sweep::new();
        for (label, cfg) in &panel.configs {
            sweep = sweep.config(label.clone(), cfg.clone());
        }
        for &range in &paper_address_ranges() {
            sweep = sweep.workload_at(
                format!("uniform/{range}B"),
                range,
                uniform_workload(range, ops, seed, writes, cores),
            );
        }
        let mut rows: Vec<Measurement> = sweep.run()?;
        rows.sort_by(|a, b| (a.range, &a.label).cmp(&(b.range, &b.label)));

        if csv {
            predllc_bench::log::write_data(&render_csv(&rows));
        } else {
            data!(
                "{}",
                render_table(panel.title, &rows, Metric::ExecutionTime)
            );
            print_speedups(&panel, &rows);
        }
    }
    Ok(())
}

/// The paper reports SS's average speedup over NSS and P across the
/// ranges where the address range exceeds the partition share.
fn print_speedups(panel: &Panel, rows: &[Measurement]) {
    let ss_label = &panel.configs[0].0;
    for (label, _) in panel.configs.iter().skip(1) {
        let mut ratios = Vec::new();
        for r in rows.iter().filter(|r| &r.label == ss_label) {
            if let Some(other) = rows
                .iter()
                .find(|o| &o.label == label && o.range == r.range)
            {
                if r.execution_time > 0 {
                    ratios.push(other.execution_time as f64 / r.execution_time as f64);
                }
            }
        }
        if !ratios.is_empty() {
            let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
            data!("  average speedup of {ss_label} over {label}: {avg:.2}x");
        }
    }
    data!();
}

fn flag_value(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn fflag_value(args: &[String], flag: &str) -> Option<f64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}
