//! The design-space exploration CLI: run a JSON experiment spec —
//! a grid of partition geometries, sharing modes, TDM schedules, memory
//! backends and workloads — on the work-stealing executor, render
//! CSV/JSON reports with full latency percentiles, and (when the spec
//! declares a taskset and search block) print the minimal partition
//! configuration under which the taskset is schedulable.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p predllc-bench --bin explore -- <spec.json>
//!     [--threads N]          worker threads (default: all cores)
//!     [--format csv|json]    stdout format (default: csv)
//!     [--out PATH]           also write the report to PATH
//!     [--bench-out PATH]     write the JSON benchmark artifact
//!                            (grid + search + wall time) to PATH
//!     [--trace-out PATH]     write the run's structured trace (one
//!                            JSON event per line; explore.point spans
//!                            with queue-wait and compute timings)
//!     [--attribution]        run with latency attribution on (forces
//!                            the spec's "attribution" knob)
//!     [--attribution-out PATH] write the attribution JSON artifact
//!                            (per-point components, witnesses, gaps);
//!                            implies --attribution
//!     [--quiet | --verbose]  commentary level (stderr only)
//! ```
//!
//! Exit status is non-zero on any spec/simulation failure, on a
//! percentile-consistency violation (every grid point's p100 must equal
//! its observed WCL — the histogram's exactness contract), and — with
//! attribution on — on an attribution-consistency violation: every
//! point's witness components must sum exactly to the observed WCL, and
//! the analytical bound, when one applies, must not be exceeded
//! (gap >= 0).

use std::process::ExitCode;
use std::time::Instant;

use predllc_bench::{error, status};
use predllc_explore::report::{render_attribution_json, render_csv, render_json, render_search};
use predllc_explore::{run_spec_traced, Executor, ExperimentSpec};
use predllc_obs::{render_jsonl, TraceCtx, TraceId, Tracer};

fn main() -> ExitCode {
    match run(predllc_bench::log::init(std::env::args().skip(1).collect())) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            error!("explore: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: Vec<String>) -> Result<(), String> {
    let mut spec_path = None;
    let mut threads = 0usize;
    let mut format = "csv".to_string();
    let mut out_path: Option<String> = None;
    let mut bench_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut attribution = false;
    let mut attribution_out: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threads" => {
                threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--threads needs a number")?;
            }
            "--format" => {
                format = it.next().ok_or("--format needs csv or json")?;
                if format != "csv" && format != "json" {
                    return Err(format!("unknown format '{format}' (csv or json)"));
                }
            }
            "--out" => out_path = Some(it.next().ok_or("--out needs a path")?),
            "--bench-out" => bench_out = Some(it.next().ok_or("--bench-out needs a path")?),
            "--trace-out" => trace_out = Some(it.next().ok_or("--trace-out needs a path")?),
            "--attribution" => attribution = true,
            "--attribution-out" => {
                attribution_out = Some(it.next().ok_or("--attribution-out needs a path")?);
            }
            other if spec_path.is_none() && !other.starts_with("--") => {
                spec_path = Some(other.to_string());
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    let spec_path = spec_path.ok_or("usage: explore <spec.json> [--threads N] [--format csv|json] [--out PATH] [--bench-out PATH]")?;

    let text =
        std::fs::read_to_string(&spec_path).map_err(|e| format!("cannot read {spec_path}: {e}"))?;
    let mut spec = ExperimentSpec::parse(&text).map_err(|e| e.to_string())?;
    if attribution || attribution_out.is_some() {
        spec.attribution = true;
    }
    let exec = Executor::new(threads);
    status!(
        "explore: '{}' — {} grid point(s) on {} thread(s)",
        spec.name,
        spec.grid_len(),
        exec.threads()
    );

    // Tracing only reads the clock: the report is bit-identical with
    // or without --trace-out.
    let tracer = trace_out.as_ref().map(|_| Tracer::new());
    let trace = TraceId::fresh();
    let ctx = tracer.as_ref().map(|t| TraceCtx::new(t, trace));
    let started = Instant::now();
    let report = run_spec_traced(&spec, &exec, &|_, _| {}, ctx).map_err(|e| e.to_string())?;
    let wall_ms = started.elapsed().as_millis() as u64;

    // The histogram exactness contract: every grid point's 100th
    // percentile (from the histogram) equals its observed WCL (from the
    // scalar counters), bit for bit, and percentiles are ordered.
    let violations: Vec<String> = report
        .grid
        .iter()
        .filter(|r| r.p100 != r.observed_wcl || r.p50 > r.p90 || r.p90 > r.p99 || r.p99 > r.p100)
        .map(|r| format!("{} x {}", r.config, r.workload))
        .collect();
    if !violations.is_empty() {
        return Err(format!(
            "percentile consistency violated at: {}",
            violations.join(", ")
        ));
    }

    // The attribution exactness contract: every attributed point's
    // witness components sum to its latency, the witness IS the
    // observed WCL, and any applicable analytical bound holds
    // (gap >= 0 — a negative gap means the paper's bound was exceeded).
    if spec.attribution {
        let broken: Vec<String> = report
            .grid
            .iter()
            .filter_map(|r| {
                let at = format!("{} x {}", r.config, r.workload);
                let Some(attr) = &r.attribution else {
                    return Some(format!("{at}: attributed run carries no attribution"));
                };
                match &attr.witness {
                    Some(w) => {
                        if w.components.total() != w.latency {
                            return Some(format!("{at}: witness components miss its latency"));
                        }
                        if w.latency.as_u64() != r.observed_wcl {
                            return Some(format!("{at}: witness is not the observed WCL"));
                        }
                    }
                    None if r.requests > 0 => {
                        return Some(format!("{at}: completed requests but no witness"));
                    }
                    None => {}
                }
                match &attr.gap {
                    Some(gap) if gap.gap() < 0 => Some(format!(
                        "{at}: observed WCL {} exceeds the analytical bound {}",
                        gap.observed_wcl, gap.analytical_wcl
                    )),
                    _ => None,
                }
            })
            .collect();
        if !broken.is_empty() {
            return Err(format!(
                "attribution consistency violated: {}",
                broken.join("; ")
            ));
        }
    }

    // Render JSON once, whether it goes to stdout, --out or
    // --bench-out.
    let json = if format == "json" || bench_out.is_some() {
        Some(render_json(
            &spec.name,
            exec.threads(),
            Some(wall_ms),
            &report.grid,
            report.search.as_ref(),
        ))
    } else {
        None
    };
    let rendered = match format.as_str() {
        "json" => json.clone().expect("rendered above"),
        _ => render_csv(&report.grid),
    };
    predllc_bench::log::write_data(&rendered);
    if let Some(path) = &out_path {
        std::fs::write(path, &rendered).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if let Some(path) = &bench_out {
        let artifact = json.as_ref().expect("rendered above");
        std::fs::write(path, artifact).map_err(|e| format!("cannot write {path}: {e}"))?;
        status!("explore: benchmark artifact written to {path}");
    }
    if let Some(path) = &attribution_out {
        let artifact = render_attribution_json(&spec.name, &report.grid);
        std::fs::write(path, artifact).map_err(|e| format!("cannot write {path}: {e}"))?;
        status!("explore: attribution artifact written to {path}");
    }
    if let (Some(path), Some(t)) = (&trace_out, &tracer) {
        let events = t.drain();
        std::fs::write(path, render_jsonl(&events))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        status!(
            "explore: trace {} written to {path} ({} event(s))",
            trace.to_hex(),
            events.len()
        );
    }

    if let Some(outcome) = &report.search {
        if predllc_bench::log::enabled(predllc_bench::log::Level::Normal) {
            eprint!("{}", render_search(outcome));
        }
    }
    status!(
        "explore: {} point(s) in {wall_ms} ms, all percentiles consistent{}",
        report.grid.len(),
        if spec.attribution {
            ", every witness sums to its WCL"
        } else {
            ""
        }
    );
    Ok(())
}
