//! The experiment-service entry point: run `predllc-serve` as a
//! long-lived process, or drive the CI smoke check against an ephemeral
//! instance.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p predllc-bench --bin serve -- [--addr HOST:PORT]
//!     [--threads N]      executor worker threads (default: all cores)
//!     [--runners N]      concurrent jobs (default: 1)
//!
//! cargo run --release -p predllc-bench --bin serve -- --smoke <spec.json>
//!     [--expect <csv>]   diff the served CSV against this file
//!                        (default: run the spec in-process and diff)
//!     [--trace-out PATH] write the smoke job's structured trace
//!                        (JSONL, fetched from /v1/jobs/{id}/trace)
//!     [--dashboard-out PATH] write the /dashboard HTML snapshot
//!     [--alerts]         print the SLO alert table after the run
//!     [--attribution]    also run the attribution leg: re-submit the
//!                        spec with "attribution": true, require its
//!                        own job (no cache aliasing), an unchanged
//!                        classic CSV, and a witness on every point
//!     [--attribution-out PATH] write the attribution JSON artifact
//!                        fetched from /v1/experiments/{id}/attribution;
//!                        implies --attribution
//!     [--threads N]
//!     [--quiet | --verbose]
//! ```
//!
//! The smoke mode is the end-to-end determinism check CI runs: start
//! the server on an ephemeral port, submit the spec, poll to
//! completion, fetch the CSV, and require it byte-identical to the
//! `explore` CLI's direct output (via `--expect`) or to an in-process
//! `run_spec` (without). It also re-submits the spec to prove the
//! content-addressed cache answers without a second simulation, and —
//! with monitoring collecting at 100ms throughout — requires
//! `/v1/metrics/history` to show the collector ticking and
//! `/dashboard` to render, proving observation never perturbs the
//! served bytes.

use std::process::ExitCode;
use std::time::Duration;

use predllc_bench::monitor::{history_samples, print_alerts};
use predllc_bench::{error, status};
use predllc_explore::report::render_csv;
use predllc_explore::{run_spec, Executor, ExperimentSpec, PointAttribution};
use predllc_serve::{Client, ClientError, Format, MonitorConfig, Server, ServerConfig};

fn main() -> ExitCode {
    match run(predllc_bench::log::init(std::env::args().skip(1).collect())) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            error!("serve: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: Vec<String>) -> Result<(), String> {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut threads = 0usize;
    let mut runners = 1usize;
    let mut smoke: Option<String> = None;
    let mut expect: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut dashboard_out: Option<String> = None;
    let mut alerts = false;
    let mut attribution = false;
    let mut attribution_out: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().ok_or("--addr needs host:port")?,
            "--threads" => {
                threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--threads needs a number")?;
            }
            "--runners" => {
                runners = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--runners needs a number")?;
            }
            "--smoke" => smoke = Some(it.next().ok_or("--smoke needs a spec path")?),
            "--expect" => expect = Some(it.next().ok_or("--expect needs a csv path")?),
            "--trace-out" => trace_out = Some(it.next().ok_or("--trace-out needs a path")?),
            "--dashboard-out" => {
                dashboard_out = Some(it.next().ok_or("--dashboard-out needs a path")?);
            }
            "--alerts" => alerts = true,
            "--attribution" => attribution = true,
            "--attribution-out" => {
                attribution_out = Some(it.next().ok_or("--attribution-out needs a path")?);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    let config = ServerConfig {
        threads,
        runners,
        ..ServerConfig::default()
    };
    match smoke {
        Some(spec_path) => {
            let opts = SmokeOpts {
                expect,
                trace_out,
                dashboard_out,
                alerts,
                attribution: attribution || attribution_out.is_some(),
                attribution_out,
            };
            run_smoke(&spec_path, &opts, config)
        }
        None => run_forever(&addr, config),
    }
}

/// Optional smoke-mode outputs, bundled to keep the call site flat.
struct SmokeOpts {
    expect: Option<String>,
    trace_out: Option<String>,
    dashboard_out: Option<String>,
    alerts: bool,
    attribution: bool,
    attribution_out: Option<String>,
}

/// Returns `text` with `"attribution": true` set in the top-level spec
/// object (parsed and re-rendered, so the injection survives any
/// formatting).
fn inject_attribution(text: &str) -> Result<String, String> {
    match predllc_explore::json::parse(text).map_err(|e| format!("spec is not valid json: {e}"))? {
        predllc_explore::json::Json::Object(mut members) => {
            members.retain(|(k, _)| k != "attribution");
            members.push((
                "attribution".into(),
                predllc_explore::json::Json::Bool(true),
            ));
            Ok(predllc_explore::json::Json::Object(members).render_pretty())
        }
        _ => Err("spec is not a json object".into()),
    }
}

/// Parses an attribution artifact and checks its exactness contract —
/// every point carries a parseable attribution whose witness components
/// sum to the witness latency. Returns the number of witnesses.
fn check_attribution_artifact(artifact: &str) -> Result<usize, String> {
    let doc = predllc_explore::json::parse(artifact)
        .map_err(|e| format!("attribution artifact is not valid json: {e}"))?;
    let points = doc
        .get("points")
        .and_then(predllc_explore::json::Json::as_array)
        .ok_or("attribution artifact has no 'points' array")?;
    if points.is_empty() {
        return Err("attribution artifact has no points".into());
    }
    let mut witnesses = 0usize;
    for point in points {
        let attr = point
            .get("attribution")
            .ok_or("an artifact point has no 'attribution' member")?;
        let attr = PointAttribution::from_json(attr)?;
        let w = attr
            .witness
            .as_ref()
            .ok_or("an artifact point has no worst-case witness")?;
        if w.components.total() != w.latency {
            return Err("a shipped witness's components do not sum to its latency".into());
        }
        witnesses += 1;
    }
    Ok(witnesses)
}

/// The smoke's attribution leg: the off job must 404 on the
/// attribution endpoint, the same spec with `"attribution": true` must
/// run as its own job, leave the classic CSV byte-identical, and serve
/// an artifact with a verified witness on every point.
fn attribution_leg(
    client: &mut Client,
    off_id: &str,
    text: &str,
    reference: &str,
    opts: &SmokeOpts,
) -> Result<(), String> {
    match client.results(off_id, Format::Attribution) {
        Err(ClientError::Status { status: 404, .. }) => {}
        Ok(_) => return Err("attribution endpoint answered for an attribution-off job".into()),
        Err(e) => return Err(format!("attribution probe failed unexpectedly: {e}")),
    }
    let attributed = inject_attribution(text)?;
    let on = client.submit(&attributed).map_err(|e| e.to_string())?;
    if on.cached || on.id == off_id {
        return Err("the attributed spec aliased the attribution-off cache entry".into());
    }
    client
        .wait_done(&on.id, Duration::from_secs(600))
        .map_err(|e| e.to_string())?;
    let served = client
        .results(&on.id, Format::Csv)
        .and_then(|body| body.text())
        .map_err(|e| e.to_string())?;
    if served != reference {
        return Err("attribution changed the served CSV".into());
    }
    let artifact = client
        .results(&on.id, Format::Attribution)
        .and_then(|body| body.text())
        .map_err(|e| e.to_string())?;
    let witnesses = check_attribution_artifact(&artifact)?;
    status!(
        "serve: attribution leg ok — {witnesses} witness(es) served, classic CSV unchanged, \
         off job 404s"
    );
    if let Some(path) = opts.attribution_out.as_deref() {
        std::fs::write(path, &artifact).map_err(|e| format!("cannot write {path}: {e}"))?;
        status!("serve: attribution artifact written to {path}");
    }
    Ok(())
}

/// The long-lived mode: bind, print the address, serve until killed.
/// Monitoring is on at the default 1s interval, so `/dashboard` and
/// `/v1/alerts` work out of the box.
fn run_forever(addr: &str, config: ServerConfig) -> Result<(), String> {
    let threads = config.threads;
    let config = ServerConfig {
        monitor: Some(MonitorConfig::default()),
        ..config
    };
    let server = Server::bind(addr, config).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    status!(
        "serve: listening on http://{} ({} executor thread(s))",
        server.local_addr(),
        Executor::new(threads).threads(),
    );
    status!("serve: POST a spec to /v1/experiments; see /healthz, /metrics and /dashboard");
    server.run().map_err(|e| e.to_string())
}

/// The CI smoke: ephemeral port, one spec through the full HTTP path,
/// served bytes diffed against the reference, cache hit verified.
fn run_smoke(spec_path: &str, opts: &SmokeOpts, config: ServerConfig) -> Result<(), String> {
    let text =
        std::fs::read_to_string(spec_path).map_err(|e| format!("cannot read {spec_path}: {e}"))?;
    let threads = config.threads;

    // The reference bytes: a checked-in CSV (the explore CLI's direct
    // output) or an in-process run of the same spec.
    let reference = match opts.expect.as_deref() {
        Some(path) => {
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
        }
        None => {
            let spec = ExperimentSpec::parse(&text).map_err(|e| e.to_string())?;
            let report = run_spec(&spec, &Executor::new(threads)).map_err(|e| e.to_string())?;
            render_csv(&report.grid)
        }
    };

    // Collect aggressively (100ms) for the whole run: the CSV diff
    // below then doubles as proof that monitoring never touches the
    // served bytes.
    let config = ServerConfig {
        monitor: Some(MonitorConfig::with_interval(Duration::from_millis(100))),
        ..config
    };
    let server = Server::bind("127.0.0.1:0", config)
        .map_err(|e| format!("cannot bind an ephemeral port: {e}"))?;
    let handle = server.handle();
    status!("serve: smoke instance on http://{}", handle.addr());
    let join = std::thread::spawn(move || server.run());

    let outcome = (|| -> Result<(), String> {
        let mut client = Client::new(handle.addr()).with_timeout(Duration::from_secs(600));
        let submitted = client.submit(&text).map_err(|e| e.to_string())?;
        status!(
            "serve: submitted {} ({} unique point(s))",
            submitted.id,
            submitted.points_total
        );
        let status = client
            .wait_done(&submitted.id, Duration::from_secs(600))
            .map_err(|e| e.to_string())?;
        status!(
            "serve: job done ({}/{} points)",
            status.points_done,
            status.points_total
        );
        let served = client
            .results(&submitted.id, Format::Csv)
            .and_then(|body| body.text())
            .map_err(|e| e.to_string())?;
        if served != reference {
            return Err(format!(
                "served CSV differs from the reference ({} vs {} bytes):\n--- served\n{}\n--- reference\n{}",
                served.len(),
                reference.len(),
                served,
                reference
            ));
        }
        // A second submission must be answered by the cache, without a
        // second simulation.
        let again = client.submit(&text).map_err(|e| e.to_string())?;
        if !again.cached || again.id != submitted.id {
            return Err("resubmission was not served from the cache".into());
        }
        let hits = client
            .metric("predllc_cache_hits")
            .map_err(|e| e.to_string())?;
        let points = client
            .metric("predllc_points_simulated")
            .map_err(|e| e.to_string())?;
        if hits < 1 {
            return Err("cache hit counter did not move".into());
        }
        if points != status.points_total {
            return Err(format!(
                "expected exactly {} simulated point(s), metrics say {points}",
                status.points_total
            ));
        }
        if opts.attribution {
            attribution_leg(&mut client, &submitted.id, &text, &reference, opts)?;
        }
        // The live scrape must pass the in-tree exposition validator.
        let exposition = client.metrics().map_err(|e| e.to_string())?;
        let summary = predllc_obs::expo::validate(&exposition)
            .map_err(|e| format!("/metrics failed exposition validation: {e}"))?;
        status!(
            "serve: /metrics validated ({} families, {} samples)",
            summary.families,
            summary.samples
        );
        if let Some(path) = opts.trace_out.as_deref() {
            let jsonl = client.job_trace(&submitted.id).map_err(|e| e.to_string())?;
            let events = jsonl.lines().filter(|l| !l.trim().is_empty()).count();
            std::fs::write(path, jsonl).map_err(|e| format!("cannot write {path}: {e}"))?;
            status!("serve: job trace written to {path} ({events} event(s))");
        }
        // Give the 100ms collector time for a couple more ticks, then
        // require the history to actually show them.
        std::thread::sleep(Duration::from_millis(250));
        let history = client
            .metrics_history(None, None)
            .map_err(|e| e.to_string())?;
        let samples = history_samples(&history, "predllc_http_requests")?;
        if samples < 2 {
            return Err(format!(
                "/v1/metrics/history has {samples} sample(s) of predllc_http_requests; \
                 expected at least 2 (is the collector ticking?)"
            ));
        }
        status!("serve: /v1/metrics/history shows {samples} samples of predllc_http_requests");
        let dashboard = client.dashboard().map_err(|e| e.to_string())?;
        if dashboard.is_empty() || !dashboard.contains("<svg") {
            return Err("/dashboard did not render sparklines".into());
        }
        if let Some(path) = opts.dashboard_out.as_deref() {
            std::fs::write(path, &dashboard).map_err(|e| format!("cannot write {path}: {e}"))?;
            status!(
                "serve: dashboard snapshot written to {path} ({} bytes)",
                dashboard.len()
            );
        }
        if opts.alerts {
            print_alerts("serve", &client.alerts().map_err(|e| e.to_string())?)?;
        }
        status!(
            "serve: smoke ok — served CSV byte-identical to the reference, \
             cache hit on resubmission, {points} point(s) simulated once"
        );
        Ok(())
    })();

    handle.shutdown();
    join.join()
        .map_err(|_| "server thread panicked".to_string())?
        .map_err(|e| e.to_string())?;
    outcome
}
