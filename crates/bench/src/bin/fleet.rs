//! The fleet entry point: run a point worker or a fleet coordinator as
//! a long-lived process, or drive the CI fleet smoke check — spawn
//! worker processes on localhost, shard a spec across them (optionally
//! killing one mid-run), and require the merged CSV byte-identical to
//! the in-process reference.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p predllc-bench --bin fleet -- --worker
//!     [--addr HOST:PORT]         default 127.0.0.1:0 (ephemeral)
//!     [--threads N]              executor threads for full-spec jobs
//!     [--fail-after-points N]    fault injection: die mid-answer after
//!                                N successful point replies
//!
//! cargo run --release -p predllc-bench --bin fleet -- --coordinator
//!     --workers HOST:PORT,HOST:PORT,...
//!     [--addr HOST:PORT]         default 127.0.0.1:7979
//!
//! cargo run --release -p predllc-bench --bin fleet -- --smoke <spec.json>
//!     [--workers N]              worker processes to spawn (default 2)
//!     [--kill-one]               fault-inject one worker to die mid-run
//!     [--expect <csv>]           diff the fleet CSV against this file
//!                                (default: run the spec in-process)
//!     [--bench-out PATH]         write the JSON benchmark artifact
//!     [--trace-out PATH]         write the coordinator-side trace of
//!                                the sharded run (JSONL)
//!     [--dashboard-out PATH]     write the fleet /dashboard HTML
//!     [--alerts]                 print the SLO alert table after the run
//!     [--attribution]            also run the attribution leg: the
//!                                same spec with attribution on, sharded
//!                                across the (surviving) workers — the
//!                                classic CSV must be unchanged and
//!                                every point must ship a witness whose
//!                                components sum to its observed WCL
//!     [--attribution-out PATH]   write the fleet-side attribution JSON
//!                                artifact; implies --attribution
//!     [--threads N]
//!     [--quiet | --verbose]
//! ```
//!
//! A worker prints `fleet: worker listening on http://ADDR` on
//! **stdout** (the smoke parent parses it); everything else goes to
//! stderr. The smoke parent captures each worker's stderr and folds it
//! into any failure message, so a dying worker explains itself. The smoke check proves the fleet's determinism contract
//! end-to-end across processes: the coordinator's merged CSV must be
//! byte-identical to the reference whatever the fleet shape, and — with
//! `--kill-one` — even when a worker dies mid-run and its points are
//! reassigned. It then re-runs the spec to prove the coordinator's
//! shared point cache answers without touching the workers again.

use std::io::{BufRead, BufReader, Read as _, Write};
use std::net::{SocketAddr, ToSocketAddrs};
use std::process::{Child, Command, ExitCode, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use predllc_bench::monitor::{alert_state, history_samples, print_alerts};
use predllc_bench::{data, error, status};
use predllc_explore::report::{render_attribution_json, render_csv, render_json};
use predllc_explore::{run_spec, Executor, ExperimentSpec};
use predllc_fleet::{default_fleet_rules, Coordinator, CoordinatorConfig};
use predllc_obs::{render_jsonl, TraceCtx, TraceId, Tracer};
use predllc_serve::{Client, Metrics, MonitorConfig, Server, ServerConfig};

fn main() -> ExitCode {
    match run(predllc_bench::log::init(std::env::args().skip(1).collect())) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            error!("fleet: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: Vec<String>) -> Result<(), String> {
    let mut worker = false;
    let mut coordinator = false;
    let mut smoke: Option<String> = None;
    let mut addr: Option<String> = None;
    let mut workers: Option<String> = None;
    let mut threads = 0usize;
    let mut fail_after_points: Option<u64> = None;
    let mut kill_one = false;
    let mut expect: Option<String> = None;
    let mut bench_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut dashboard_out: Option<String> = None;
    let mut alerts = false;
    let mut attribution = false;
    let mut attribution_out: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--worker" => worker = true,
            "--coordinator" => coordinator = true,
            "--smoke" => smoke = Some(it.next().ok_or("--smoke needs a spec path")?),
            "--addr" => addr = Some(it.next().ok_or("--addr needs host:port")?),
            "--workers" => workers = Some(it.next().ok_or("--workers needs a value")?),
            "--threads" => {
                threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--threads needs a number")?;
            }
            "--fail-after-points" => {
                fail_after_points = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--fail-after-points needs a number")?,
                );
            }
            "--kill-one" => kill_one = true,
            "--expect" => expect = Some(it.next().ok_or("--expect needs a csv path")?),
            "--bench-out" => bench_out = Some(it.next().ok_or("--bench-out needs a path")?),
            "--trace-out" => trace_out = Some(it.next().ok_or("--trace-out needs a path")?),
            "--dashboard-out" => {
                dashboard_out = Some(it.next().ok_or("--dashboard-out needs a path")?);
            }
            "--alerts" => alerts = true,
            "--attribution" => attribution = true,
            "--attribution-out" => {
                attribution_out = Some(it.next().ok_or("--attribution-out needs a path")?);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    match (worker, coordinator, smoke) {
        (true, false, None) => run_worker(
            addr.as_deref().unwrap_or("127.0.0.1:0"),
            ServerConfig {
                threads,
                fail_after_points,
                ..ServerConfig::default()
            },
        ),
        (false, true, None) => run_coordinator(
            addr.as_deref().unwrap_or("127.0.0.1:7979"),
            &workers.ok_or("--coordinator needs --workers host:port,host:port,...")?,
        ),
        (false, false, Some(spec_path)) => {
            let count = match workers.as_deref() {
                Some(v) => v
                    .parse()
                    .map_err(|_| format!("--workers needs a count in smoke mode, got '{v}'"))?,
                None => 2,
            };
            let outputs = SmokeOutputs {
                bench_out,
                trace_out,
                dashboard_out,
                alerts,
                attribution: attribution || attribution_out.is_some(),
                attribution_out,
            };
            run_smoke(
                &spec_path,
                count,
                kill_one,
                expect.as_deref(),
                &outputs,
                threads,
            )
        }
        _ => Err("pick exactly one mode: --worker, --coordinator or --smoke <spec.json>".into()),
    }
}

/// Optional smoke-mode outputs, bundled to keep the call sites flat.
struct SmokeOutputs {
    bench_out: Option<String>,
    trace_out: Option<String>,
    dashboard_out: Option<String>,
    alerts: bool,
    attribution: bool,
    attribution_out: Option<String>,
}

/// The worker mode: a plain `predllc-serve` instance — its point
/// endpoint is what the coordinator dispatches to. The listening line
/// goes to stdout so a parent process can parse the ephemeral port.
fn run_worker(addr: &str, config: ServerConfig) -> Result<(), String> {
    let fault = config.fail_after_points;
    let server = Server::bind(addr, config).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    data!("fleet: worker listening on http://{}", server.local_addr());
    std::io::stdout()
        .flush()
        .map_err(|e| format!("cannot flush stdout: {e}"))?;
    if let Some(n) = fault {
        status!("fleet: worker will die after {n} point answer(s) (fault injection)");
    }
    server.run().map_err(|e| e.to_string())
}

/// The coordinator mode: serve the full experiment API
/// (`/v1/experiments`, `/metrics`, ...) with the fleet as the runner —
/// clients submit specs to one front door and the coordinator fans
/// each one out across the workers. Monitoring is on with the fleet
/// rule set, and a background scrape mirrors every worker's counters
/// and gauges onto the coordinator registry, so `/dashboard` shows the
/// whole fleet.
fn run_coordinator(addr: &str, workers: &str) -> Result<(), String> {
    let addrs = parse_worker_list(workers)?;
    let metrics = Arc::new(Metrics::default());
    let coordinator = Arc::new(Coordinator::new(
        addrs,
        CoordinatorConfig::default(),
        Arc::clone(&metrics),
    ));
    let worker_count = coordinator.worker_count();
    let _scrape = coordinator.start_metric_scrape(Duration::from_secs(1));
    let config = ServerConfig {
        monitor: Some(MonitorConfig {
            rules: default_fleet_rules(),
            ..MonitorConfig::default()
        }),
        ..ServerConfig::default()
    };
    let server = Server::bind_with(addr, config, coordinator, metrics)
        .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    status!(
        "fleet: coordinator listening on http://{} over {} worker(s)",
        server.local_addr(),
        worker_count,
    );
    status!("fleet: POST a spec to /v1/experiments; see /healthz, /metrics and /dashboard");
    server.run().map_err(|e| e.to_string())
}

/// Resolves a comma-separated worker list to socket addresses.
fn parse_worker_list(workers: &str) -> Result<Vec<SocketAddr>, String> {
    let mut addrs = Vec::new();
    for entry in workers.split(',').map(str::trim).filter(|e| !e.is_empty()) {
        let addr = entry
            .to_socket_addrs()
            .map_err(|e| format!("cannot resolve worker '{entry}': {e}"))?
            .next()
            .ok_or_else(|| format!("worker '{entry}' resolves to no address"))?;
        addrs.push(addr);
    }
    if addrs.is_empty() {
        return Err("--workers lists no workers".into());
    }
    Ok(addrs)
}

/// A spawned worker child: killed and reaped on shutdown whatever the
/// smoke outcome. Its stderr is drained continuously by a capture
/// thread (so the pipe can never fill and deadlock the child) and
/// folded into failure messages.
struct WorkerProcess {
    child: Child,
    addr: SocketAddr,
    /// Everything the worker wrote to stderr so far.
    stderr: Arc<Mutex<String>>,
    /// The capture thread; joined when the child is reaped.
    drain: Option<std::thread::JoinHandle<()>>,
}

impl WorkerProcess {
    /// Kills and reaps the child, returning its captured stderr.
    fn shutdown(&mut self) -> String {
        let _ = self.child.kill();
        let _ = self.child.wait();
        if let Some(handle) = self.drain.take() {
            let _ = handle.join();
        }
        self.stderr.lock().unwrap().clone()
    }
}

/// Spawns one worker child via the current executable and parses the
/// ephemeral address from its stdout listening line. The child's
/// stderr is piped and drained in the background from the start.
fn spawn_worker(threads: usize, fail_after_points: Option<u64>) -> Result<WorkerProcess, String> {
    let exe = std::env::current_exe().map_err(|e| format!("cannot find own executable: {e}"))?;
    let mut cmd = Command::new(exe);
    cmd.arg("--worker")
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--threads")
        .arg(threads.to_string())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    if let Some(n) = fail_after_points {
        cmd.arg("--fail-after-points").arg(n.to_string());
    }
    let mut child = cmd
        .spawn()
        .map_err(|e| format!("cannot spawn a worker process: {e}"))?;
    let captured = Arc::new(Mutex::new(String::new()));
    let drain = child.stderr.take().map(|mut pipe| {
        let sink = Arc::clone(&captured);
        std::thread::spawn(move || {
            let mut text = String::new();
            let _ = pipe.read_to_string(&mut text);
            sink.lock().unwrap().push_str(&text);
        })
    });
    let stdout = child.stdout.take().expect("stdout was piped");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .map_err(|e| format!("cannot read the worker's listening line: {e}"))?;
    let addr = match line.trim().split_once("http://") {
        Some((_, rest)) => rest
            .parse()
            .map_err(|e| format!("worker printed an unparseable address '{rest}': {e}")),
        None => Err(format!(
            "worker printed no listening line: '{}'",
            line.trim()
        )),
    };
    let mut worker = WorkerProcess {
        child,
        addr: "0.0.0.0:0".parse().expect("placeholder address parses"),
        stderr: captured,
        drain,
    };
    match addr {
        Ok(addr) => {
            worker.addr = addr;
            Ok(worker)
        }
        Err(message) => {
            // Include whatever the dying worker said on stderr.
            let said = worker.shutdown();
            if said.trim().is_empty() {
                Err(message)
            } else {
                Err(format!("{message}\nworker stderr:\n{said}"))
            }
        }
    }
}

/// The CI fleet smoke: worker processes on localhost, a spec sharded
/// across them, the merged CSV byte-diffed against the reference —
/// optionally with one worker fault-injected to die mid-run — then a
/// re-run answered entirely by the coordinator's shared point cache.
fn run_smoke(
    spec_path: &str,
    workers: usize,
    kill_one: bool,
    expect: Option<&str>,
    outputs: &SmokeOutputs,
    threads: usize,
) -> Result<(), String> {
    if workers == 0 {
        return Err("--workers must spawn at least 1 worker".into());
    }
    if kill_one && workers < 2 {
        return Err("--kill-one needs at least 2 workers (one must survive)".into());
    }
    let text =
        std::fs::read_to_string(spec_path).map_err(|e| format!("cannot read {spec_path}: {e}"))?;
    let spec = ExperimentSpec::parse(&text).map_err(|e| e.to_string())?;

    // The reference bytes: a checked-in CSV (the explore CLI's direct
    // output) or an in-process run of the same spec.
    let reference = match expect {
        Some(path) => {
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
        }
        None => {
            let report = run_spec(&spec, &Executor::new(threads)).map_err(|e| e.to_string())?;
            render_csv(&report.grid)
        }
    };

    // Spawn the fleet. With --kill-one the FIRST worker carries the
    // fault injector: it answers one point, then dies mid-answer on its
    // second — a real process exit, not a simulated error.
    let mut fleet = Vec::with_capacity(workers);
    for i in 0..workers {
        let fault = (kill_one && i == 0).then_some(1);
        match spawn_worker(threads, fault) {
            Ok(worker) => fleet.push(worker),
            Err(message) => {
                shutdown_fleet(&mut fleet);
                return Err(message);
            }
        }
    }
    status!(
        "fleet: smoke with {} worker process(es){} at {}",
        fleet.len(),
        if kill_one {
            " (one fault-injected to die mid-run)"
        } else {
            ""
        },
        fleet
            .iter()
            .map(|w| w.addr.to_string())
            .collect::<Vec<_>>()
            .join(", "),
    );

    let outcome = smoke_inner(&spec, &reference, &fleet, kill_one, outputs);
    let captured = shutdown_fleet(&mut fleet);
    // A failed smoke quotes what the (possibly dead) workers said on
    // stderr — the difference between "worker lost" and a diagnosis.
    outcome.map_err(|message| {
        if captured.trim().is_empty() {
            message
        } else {
            format!("{message}\n--- worker stderr ---\n{}", captured.trim_end())
        }
    })
}

/// Kills and reaps every worker child, returning their combined
/// captured stderr (each block labelled by worker index and address).
fn shutdown_fleet(fleet: &mut Vec<WorkerProcess>) -> String {
    let mut combined = String::new();
    for (i, worker) in fleet.iter_mut().enumerate() {
        let addr = worker.addr;
        let said = worker.shutdown();
        if !said.trim().is_empty() {
            combined.push_str(&format!("[worker {i} @ {addr}]\n{said}"));
            if !said.ends_with('\n') {
                combined.push('\n');
            }
        }
    }
    fleet.clear();
    combined
}

/// The smoke body, separated so the caller can always reap the fleet.
fn smoke_inner(
    spec: &ExperimentSpec,
    reference: &str,
    fleet: &[WorkerProcess],
    kill_one: bool,
    outputs: &SmokeOutputs,
) -> Result<(), String> {
    let metrics = Arc::new(Metrics::default());
    let coordinator = Arc::new(Coordinator::new(
        fleet.iter().map(|w| w.addr),
        CoordinatorConfig {
            heartbeat_interval: Duration::from_millis(100),
            ..CoordinatorConfig::default()
        },
        Arc::clone(&metrics),
    ));
    // Mirror every worker's counters and gauges onto the coordinator
    // registry throughout the run — the fleet-wide aggregation path the
    // monitoring checks below read back over HTTP.
    let _scrape = coordinator.start_metric_scrape(Duration::from_millis(100));

    // With --trace-out the sharded run records coordinator-side spans
    // (queue wait, dispatch RTT, requeues, the merge tail) under one
    // fresh trace ID; workers echo the same ID in their own sinks.
    let tracer = outputs.trace_out.as_deref().map(|_| Tracer::new());
    let trace = TraceId::fresh();
    let ctx = tracer.as_ref().map(|t| TraceCtx::new(t, trace));

    let started = Instant::now();
    let report = coordinator
        .run_traced(spec, &|_, _| {}, ctx)
        .map_err(|e| e.to_string())?;
    let wall_ms = started.elapsed().as_millis() as u64;
    let served = render_csv(&report.grid);
    if served != reference {
        return Err(format!(
            "fleet CSV differs from the reference ({} vs {} bytes):\n--- fleet\n{}\n--- reference\n{}",
            served.len(),
            reference.len(),
            served,
            reference
        ));
    }
    let snap = metrics.snapshot();
    status!(
        "fleet: {} unique point(s) in {wall_ms} ms — {} assigned, {} retried, {} worker(s) lost",
        report.unique_points,
        snap.points_assigned,
        snap.points_retried,
        snap.workers_lost
    );
    if kill_one {
        if snap.workers_lost != 1 {
            return Err(format!(
                "expected exactly 1 lost worker, metrics say {}",
                snap.workers_lost
            ));
        }
        if snap.points_retried < 1 {
            return Err("the lost worker's point was never reassigned".into());
        }
    } else if snap.workers_lost != 0 {
        return Err(format!(
            "{} worker(s) lost without fault injection",
            snap.workers_lost
        ));
    }

    // A re-run must be answered entirely by the coordinator's shared
    // point cache: same bytes, no new worker dispatches.
    let again = coordinator
        .run(spec, &|_, _| {})
        .map_err(|e| e.to_string())?;
    if render_csv(&again.grid) != reference {
        return Err("the cached re-run changed the CSV".into());
    }
    let after = metrics.snapshot();
    if after.points_assigned != snap.points_assigned {
        return Err(format!(
            "the re-run reached the workers ({} -> {} assignments) instead of the point cache",
            snap.points_assigned, after.points_assigned
        ));
    }
    if after.points_cache_shared < report.unique_points as u64 {
        return Err(format!(
            "expected >= {} shared-cache answers on the re-run, metrics say {}",
            report.unique_points, after.points_cache_shared
        ));
    }

    if outputs.attribution {
        attribution_leg(&coordinator, spec, reference, outputs)?;
    }

    if let Some(path) = outputs.bench_out.as_deref() {
        let artifact = render_json(
            &spec.name,
            1,
            Some(wall_ms),
            &report.grid,
            report.search.as_ref(),
        );
        std::fs::write(path, artifact).map_err(|e| format!("cannot write {path}: {e}"))?;
        status!("fleet: benchmark artifact written to {path}");
    }
    // Exposition validity, both sides: the coordinator's registry
    // render, and a live worker's /metrics over HTTP (a fleet worker
    // IS a serve instance, so this is the real scrape path).
    let rendered = metrics.render();
    let summary = predllc_obs::expo::validate(&rendered)
        .map_err(|e| format!("coordinator metrics failed exposition validation: {e}"))?;
    let worker_expo = Client::new(fleet.last().expect("fleet is non-empty").addr)
        .metrics()
        .map_err(|e| format!("cannot scrape a worker's /metrics: {e}"))?;
    let worker_summary = predllc_obs::expo::validate(&worker_expo)
        .map_err(|e| format!("worker /metrics failed exposition validation: {e}"))?;
    status!(
        "fleet: /metrics validated (coordinator: {} families, worker: {} families)",
        summary.families,
        worker_summary.families
    );
    if let (Some(path), Some(t)) = (outputs.trace_out.as_deref(), &tracer) {
        let events = t.drain();
        std::fs::write(path, render_jsonl(&events))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        status!(
            "fleet: trace {} written to {path} ({} event(s))",
            trace.to_hex(),
            events.len()
        );
    }
    monitor_checks(&coordinator, &metrics, fleet, kill_one, outputs)?;
    status!(
        "fleet: smoke ok — fleet CSV byte-identical to the reference{}, \
         re-run served from the shared point cache",
        if kill_one {
            ", with a worker killed mid-run and its work reassigned"
        } else {
            ""
        }
    );
    Ok(())
}

/// The smoke's attribution leg: the same spec with attribution on,
/// sharded across whatever workers survive. The classic CSV must stay
/// byte-identical to the reference, and every row must come back with
/// an attribution whose witness — serialized by a worker, shipped over
/// the point wire as exact integers, and reassembled here — sums to
/// that row's observed WCL to the cycle.
fn attribution_leg(
    coordinator: &Arc<Coordinator>,
    spec: &ExperimentSpec,
    reference: &str,
    outputs: &SmokeOutputs,
) -> Result<(), String> {
    let mut on = spec.clone();
    on.attribution = true;
    let report = coordinator
        .run(&on, &|_, _| {})
        .map_err(|e| e.to_string())?;
    if render_csv(&report.grid) != reference {
        return Err("attribution changed the fleet CSV".into());
    }
    let mut witnesses = 0usize;
    for row in &report.grid {
        let at = format!("{} x {}", row.config, row.workload);
        let attr = row
            .attribution
            .as_ref()
            .ok_or_else(|| format!("{at}: the fleet shipped no attribution"))?;
        let w = attr
            .witness
            .as_ref()
            .ok_or_else(|| format!("{at}: the fleet shipped no witness"))?;
        if w.components.total() != w.latency || w.latency.as_u64() != row.observed_wcl {
            return Err(format!(
                "{at}: the shipped witness does not sum to the observed WCL"
            ));
        }
        witnesses += 1;
    }
    status!(
        "fleet: attribution leg ok — {witnesses} witness(es) shipped losslessly over the wire, \
         fleet CSV unchanged"
    );
    if let Some(path) = outputs.attribution_out.as_deref() {
        std::fs::write(path, render_attribution_json(&on.name, &report.grid))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        status!("fleet: attribution artifact written to {path}");
    }
    Ok(())
}

/// The smoke's monitoring leg: put the coordinator behind a monitored
/// front server (100ms collection, fleet SLO rules) and read the whole
/// stack back over real HTTP — the history must show a *mirrored*
/// worker series ticking, the dashboard must render, and with
/// `--kill-one` the `worker-loss` rule must be firing.
fn monitor_checks(
    coordinator: &Arc<Coordinator>,
    metrics: &Arc<Metrics>,
    fleet: &[WorkerProcess],
    kill_one: bool,
    outputs: &SmokeOutputs,
) -> Result<(), String> {
    let config = ServerConfig {
        monitor: Some(MonitorConfig {
            rules: default_fleet_rules(),
            ..MonitorConfig::with_interval(Duration::from_millis(100))
        }),
        ..ServerConfig::default()
    };
    let front = Server::bind_with(
        "127.0.0.1:0",
        config,
        Arc::clone(coordinator) as Arc<dyn predllc_serve::SpecRunner>,
        Arc::clone(metrics),
    )
    .map_err(|e| format!("cannot bind the front server: {e}"))?;
    let handle = front.handle();
    let join = std::thread::spawn(move || front.run());

    let outcome = (|| -> Result<(), String> {
        // A few collector ticks (and scrape rounds) land first.
        std::thread::sleep(Duration::from_millis(450));
        let mut client = Client::new(handle.addr());
        let history = client
            .metrics_history(None, None)
            .map_err(|e| e.to_string())?;
        // The surviving worker's mirrored counter proves the full
        // aggregation path: worker registry -> /metrics text ->
        // expo::parse -> coordinator registry -> collector -> history.
        let live = fleet.last().expect("fleet is non-empty");
        let mirrored = format!("predllc_points_simulated{{worker=\"{}\"}}", live.addr);
        let samples = history_samples(&history, &mirrored)?;
        if samples < 2 {
            return Err(format!(
                "/v1/metrics/history has {samples} sample(s) of {mirrored}; \
                 expected at least 2 (is the collector ticking?)"
            ));
        }
        status!("fleet: /v1/metrics/history shows {samples} samples of {mirrored}");
        let alerts = client.alerts().map_err(|e| e.to_string())?;
        if kill_one {
            match alert_state(&alerts, "worker-loss").as_deref() {
                Some("firing") => status!("fleet: worker-loss alert is firing, as injected"),
                state => {
                    return Err(format!(
                        "expected the worker-loss alert to fire after --kill-one, state is {state:?}"
                    ));
                }
            }
        }
        if outputs.alerts {
            print_alerts("fleet", &alerts)?;
        }
        let dashboard = client.dashboard().map_err(|e| e.to_string())?;
        if dashboard.is_empty() || !dashboard.contains("<svg") {
            return Err("/dashboard did not render sparklines".into());
        }
        if let Some(path) = outputs.dashboard_out.as_deref() {
            std::fs::write(path, &dashboard).map_err(|e| format!("cannot write {path}: {e}"))?;
            status!(
                "fleet: dashboard snapshot written to {path} ({} bytes)",
                dashboard.len()
            );
        }
        Ok(())
    })();

    handle.shutdown();
    join.join()
        .map_err(|_| "front server thread panicked".to_string())?
        .map_err(|e| e.to_string())?;
    outcome
}
