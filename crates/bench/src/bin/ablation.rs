//! Ablation experiments beyond the paper's figures:
//!
//! 1. **Arbiter policy** — writeback-first (the worst-case-faithful
//!    default) vs. round-robin vs. request-first, on the Fig. 7 stress
//!    workload.
//! 2. **LLC replacement policy** — the analysis is policy-agnostic;
//!    check the observed WCL stays within bounds for LRU, FIFO,
//!    round-robin and pseudo-random.
//! 3. **Sharer-count sweep** — observed and analytical WCL as 2…8 cores
//!    share one partition (requires widening the bus schedule).
//!
//! Usage: `cargo run --release -p predllc-bench --bin ablation`

use predllc_bench::harness;
use predllc_bench::{data, error};
use predllc_bus::ArbiterPolicy;
use predllc_cache::ReplacementKind;
use predllc_core::analysis::{critical, WclParams};
use predllc_core::{ConfigError, PartitionSpec, SharingMode, SimError, SystemConfig};
use predllc_model::CoreId;
use std::process::ExitCode;

fn stress_run(cfg: SystemConfig, ops: usize) -> Result<(u64, u64), SimError> {
    let spec = cfg.partitions().spec_of(CoreId::new(0)).clone();
    let traces = critical::wcl_stress_traces(&spec, ops);
    let report = harness::run(cfg, traces)?;
    Ok((
        report.max_request_latency().as_u64(),
        report.execution_time().as_u64(),
    ))
}

fn shared(sets: u32, ways: u32, n: u16, mode: SharingMode) -> Result<SystemConfig, ConfigError> {
    SystemConfig::shared_partition(sets, ways, n, mode)
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            error!("ablation: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let _ = predllc_bench::log::init(std::env::args().skip(1).collect());
    let ops = 1_000;

    data!("== Ablation 1: PRB/PWB arbiter policy (SS(1,4,4) + NSS(1,4,4), stress workload) ==");
    data!(
        "{:<18} {:>14} {:>14} {:>14} {:>14}",
        "arbiter",
        "SS wcl",
        "SS exec",
        "NSS wcl",
        "NSS exec"
    );
    for policy in [
        ArbiterPolicy::WritebackFirst,
        ArbiterPolicy::RoundRobin,
        ArbiterPolicy::RequestFirst,
    ] {
        let mk = |mode| {
            SystemConfig::builder(4)
                .partitions(vec![PartitionSpec::shared(
                    1,
                    4,
                    CoreId::first(4).collect(),
                    mode,
                )])
                .arbiter(policy)
                .build()
        };
        let (ss_wcl, ss_exec) = stress_run(mk(SharingMode::SetSequencer)?, ops)?;
        let (nss_wcl, nss_exec) = stress_run(mk(SharingMode::BestEffort)?, ops)?;
        data!(
            "{:<18} {:>14} {:>14} {:>14} {:>14}",
            policy.to_string(),
            ss_wcl,
            ss_exec,
            nss_wcl,
            nss_exec
        );
    }
    data!();

    data!("== Ablation 2: LLC replacement policy (bounds are policy-agnostic) ==");
    data!(
        "{:<20} {:>12} {:>14} {:>12} {:>14}",
        "replacement",
        "SS wcl",
        "SS bound",
        "NSS wcl",
        "NSS bound"
    );
    for repl in [
        ReplacementKind::Lru,
        ReplacementKind::Fifo,
        ReplacementKind::RoundRobin,
        ReplacementKind::Random { seed: 7 },
    ] {
        let mk = |mode| {
            SystemConfig::builder(4)
                .partitions(vec![PartitionSpec::shared(
                    1,
                    4,
                    CoreId::first(4).collect(),
                    mode,
                )])
                .llc_replacement(repl)
                .build()
        };
        let ss_cfg = mk(SharingMode::SetSequencer)?;
        let nss_cfg = mk(SharingMode::BestEffort)?;
        let ss_bound = WclParams::from_config(&ss_cfg)?.wcl_set_sequencer();
        let nss_bound = WclParams::from_config(&nss_cfg)?.wcl_one_slot_tdm();
        let (ss_wcl, _) = stress_run(ss_cfg, ops)?;
        let (nss_wcl, _) = stress_run(nss_cfg, ops)?;
        let ok = ss_wcl <= ss_bound.as_u64() && nss_wcl <= nss_bound.as_u64();
        data!(
            "{:<20} {:>12} {:>14} {:>12} {:>14}  {}",
            repl.to_string(),
            ss_wcl,
            ss_bound.as_u64(),
            nss_wcl,
            nss_bound.as_u64(),
            if ok { "ok" } else { "VIOLATION" }
        );
        assert!(ok, "observed WCL exceeded the analytical bound");
    }
    data!();

    data!("== Ablation 3: sharer-count sweep (1-set x 4-way shared partition, n = N) ==");
    data!(
        "{:>4} {:>12} {:>12} {:>14} {:>16}",
        "n",
        "SS wcl",
        "SS bound",
        "NSS wcl",
        "NSS bound"
    );
    for n in 2..=8u16 {
        let ss_cfg = shared(1, 4, n, SharingMode::SetSequencer)?;
        let nss_cfg = shared(1, 4, n, SharingMode::BestEffort)?;
        let ss_bound = WclParams::from_config(&ss_cfg)?.wcl_set_sequencer();
        let nss_bound = WclParams::from_config(&nss_cfg)?.wcl_one_slot_tdm();
        let (ss_wcl, _) = stress_run(ss_cfg, ops)?;
        let (nss_wcl, _) = stress_run(nss_cfg, ops)?;
        assert!(
            ss_wcl <= ss_bound.as_u64() && nss_wcl <= nss_bound.as_u64(),
            "bound violated at n = {n}"
        );
        data!(
            "{:>4} {:>12} {:>12} {:>14} {:>16}",
            n,
            ss_wcl,
            ss_bound.as_u64(),
            nss_wcl,
            nss_bound.as_u64()
        );
    }
    data!("\nAll observed WCLs within analytical bounds.");
    Ok(())
}
