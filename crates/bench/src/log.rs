//! Level-aware logging shared by every bench binary.
//!
//! The bench CLIs produce two very different kinds of output:
//!
//! * **data** — CSV rows, report tables, check verdicts: the program's
//!   product. It goes to stdout, byte-identical regardless of
//!   verbosity ([`data!`] / [`write_data`]).
//! * **commentary** — progress, diagnostics, errors. It goes to
//!   stderr, level-tagged, and obeys `--quiet` / `--verbose`:
//!   [`status!`] (`[info]`, hidden by `--quiet`), [`verbose!`]
//!   (`[debug]`, shown only with `--verbose`) and [`error!`]
//!   (`[error]`, never hidden).
//!
//! [`init`] strips the two flags from an argument list and sets the
//! process-wide level, so every binary gets them for free:
//!
//! ```
//! let args = predllc_bench::log::init(vec!["--quiet".into(), "x".into()]);
//! assert_eq!(args, vec!["x".to_string()]);
//! assert_eq!(predllc_bench::log::level(), predllc_bench::log::Level::Quiet);
//! # predllc_bench::log::set_level(predllc_bench::log::Level::Normal);
//! ```
//!
//! [`data!`]: crate::data
//! [`status!`]: crate::status
//! [`verbose!`]: crate::verbose
//! [`error!`]: crate::error

use std::sync::atomic::{AtomicU8, Ordering};

/// How talkative the commentary channel is. Data output is unaffected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Only `[error]` lines.
    Quiet = 0,
    /// `[info]` and `[error]` lines (the default).
    Normal = 1,
    /// Everything, including `[debug]` lines.
    Verbose = 2,
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Normal as u8);

/// Consumes `--quiet` / `--verbose` from an argument list (either flag
/// may appear anywhere; the last one wins) and returns the remaining
/// arguments in order.
pub fn init(args: Vec<String>) -> Vec<String> {
    let mut rest = Vec::with_capacity(args.len());
    for arg in args {
        match arg.as_str() {
            "--quiet" | "-q" => set_level(Level::Quiet),
            "--verbose" | "-v" => set_level(Level::Verbose),
            _ => rest.push(arg),
        }
    }
    rest
}

/// The current commentary level.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Quiet,
        2 => Level::Verbose,
        _ => Level::Normal,
    }
}

/// Sets the commentary level directly (what [`init`] calls).
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Whether commentary at `at` is currently emitted.
pub fn enabled(at: Level) -> bool {
    // Quiet still shows errors; the gate is only for info/debug.
    level() >= at
}

/// Writes already-rendered data to stdout verbatim (no added newline)
/// — the `print!` twin of [`data!`](crate::data).
pub fn write_data(rendered: &str) {
    print!("{rendered}");
}

/// Data output: stdout, always, no tag. The program's product — CSV
/// rows, tables, check verdicts, machine-parsed lines.
#[macro_export]
macro_rules! data {
    ($($arg:tt)*) => {
        println!($($arg)*)
    };
}

/// Status commentary: stderr, tagged `[info]`, hidden by `--quiet`.
#[macro_export]
macro_rules! status {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Normal) {
            eprintln!("[info] {}", format_args!($($arg)*));
        }
    };
}

/// Debug commentary: stderr, tagged `[debug]`, shown only with
/// `--verbose`.
#[macro_export]
macro_rules! verbose {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Verbose) {
            eprintln!("[debug] {}", format_args!($($arg)*));
        }
    };
}

/// Errors: stderr, tagged `[error]`, never hidden.
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        eprintln!("[error] {}", format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_strips_flags_and_sets_the_level() {
        // Serialize against other tests touching the global level.
        let args = init(vec![
            "spec.json".into(),
            "--verbose".into(),
            "--threads".into(),
            "2".into(),
        ]);
        assert_eq!(args, vec!["spec.json", "--threads", "2"]);
        assert_eq!(level(), Level::Verbose);
        assert!(enabled(Level::Normal) && enabled(Level::Verbose));

        let args = init(vec!["--quiet".into()]);
        assert!(args.is_empty());
        assert_eq!(level(), Level::Quiet);
        assert!(!enabled(Level::Normal));
        assert!(enabled(Level::Quiet));

        set_level(Level::Normal);
        assert!(enabled(Level::Normal) && !enabled(Level::Verbose));
    }
}
