//! Shared experiment plumbing for the figure-regeneration binaries.

use predllc_core::analysis::MemoryAwareWcl;
use predllc_core::{RunReport, SharingMode, SimError, Simulator, SystemConfig};
use predllc_workload::gen::UniformGen;
use predllc_workload::Workload;

/// The address-range sweep of the paper's x-axes: 1 KiB … 256 KiB in
/// powers of two.
pub fn paper_address_ranges() -> Vec<u64> {
    (10..=18).map(|k| 1u64 << k).collect()
}

/// Builds the paper's `SS(s,w,n)` configuration.
///
/// # Panics
///
/// Panics on invalid dimensions — the harness only feeds paper values.
pub fn ss(sets: u32, ways: u32, n: u16) -> SystemConfig {
    SystemConfig::shared_partition(sets, ways, n, SharingMode::SetSequencer)
        .expect("valid paper configuration")
}

/// Builds the paper's `NSS(s,w,n)` configuration.
///
/// # Panics
///
/// Panics on invalid dimensions.
pub fn nss(sets: u32, ways: u32, n: u16) -> SystemConfig {
    SystemConfig::shared_partition(sets, ways, n, SharingMode::BestEffort)
        .expect("valid paper configuration")
}

/// Builds the paper's `P(s,w)` configuration for `n` cores (one private
/// partition each).
///
/// # Panics
///
/// Panics on invalid dimensions.
pub fn p(sets: u32, ways: u32, n: u16) -> SystemConfig {
    SystemConfig::private_partitions(sets, ways, n).expect("valid paper configuration")
}

/// One measured (configuration, workload) grid point.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Configuration label in the paper's notation.
    pub label: String,
    /// Workload label (e.g. `uniform/8192B`).
    pub workload: String,
    /// Memory-backend label of the configuration (e.g. `fixed(30)` or
    /// `banked(1x8,interleaved)`).
    pub backend: String,
    /// Numeric x-axis value of the workload (per-core address range in
    /// bytes for the paper's sweeps; 0 when not applicable).
    pub range: u64,
    /// Worst observed request latency, cycles — identical to the
    /// latency distribution's 100th percentile.
    pub observed_wcl: u64,
    /// Median request latency, cycles.
    pub p50: u64,
    /// 90th-percentile request latency, cycles.
    pub p90: u64,
    /// 99th-percentile request latency, cycles.
    pub p99: u64,
    /// Execution time (makespan), cycles.
    pub execution_time: u64,
    /// Analytical WCL for the configuration, cycles (None if the
    /// analysis does not apply).
    pub analytical_wcl: Option<u64>,
    /// DRAM row-buffer hit rate of the run (0 under the fixed-latency
    /// backend, which has no banks).
    pub row_hit_rate: f64,
}

/// The paper's uniform-random workload at one address range, sized for a
/// configuration's core count.
///
/// The same `(seed, ops)` yields the same addresses across
/// configurations, matching the paper's methodology ("a core issues the
/// same memory addresses across different partitioned configurations").
pub fn uniform_workload(
    range: u64,
    ops: usize,
    seed: u64,
    write_fraction: f64,
    cores: u16,
) -> UniformGen {
    UniformGen::new(range, ops)
        .with_seed(seed)
        .with_write_fraction(write_fraction)
        .with_cores(cores)
}

/// Runs one configuration against the paper's uniform-random workload,
/// streaming it (no traces are materialized).
///
/// # Errors
///
/// Propagates [`run`] failures ([`SimError::Config`] for an invalid
/// configuration, the simulation's own error otherwise).
pub fn measure(
    label: &str,
    config: SystemConfig,
    range: u64,
    ops: usize,
    seed: u64,
    write_fraction: f64,
) -> Result<Measurement, SimError> {
    let gen = uniform_workload(range, ops, seed, write_fraction, config.num_cores());
    let analytical = analytical_wcl(&config);
    let backend = config.memory().label();
    let report = run(config, &gen)?;
    let latencies = report.latency_histogram();
    Ok(Measurement {
        label: label.to_string(),
        workload: format!("uniform/{range}B"),
        backend,
        range,
        observed_wcl: report.max_request_latency().as_u64(),
        p50: latencies.percentile(50.0).as_u64(),
        p90: latencies.percentile(90.0).as_u64(),
        p99: latencies.percentile(99.0).as_u64(),
        execution_time: report.execution_time().as_u64(),
        analytical_wcl: analytical,
        row_hit_rate: report.stats.dram_row_hit_rate(),
    })
}

/// Runs a configuration on one workload (streamed; pass `&w` to keep
/// the workload for further runs).
///
/// # Errors
///
/// [`SimError::Config`] when the configuration fails validation, or the
/// simulation's own error (e.g. a workload whose core count mismatches
/// the configuration's).
pub fn run(config: SystemConfig, workload: impl Workload) -> Result<RunReport, SimError> {
    Simulator::new(config)?.run(workload)
}

/// The analytical WCL applicable to a configuration (per its sharing
/// mode), in cycles — guarded by the memory backend's slot-budget
/// invariant, so a published bound is sound by construction.
pub fn analytical_wcl(config: &SystemConfig) -> Option<u64> {
    let bound = MemoryAwareWcl::from_config(config).ok()?.bound()?;
    Some(bound.as_u64())
}

/// Which metric a table shows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Worst observed request latency (Fig. 7).
    ObservedWcl,
    /// Workload execution time (Fig. 8).
    ExecutionTime,
}

/// Renders measurements as an aligned text table grouped by range.
pub fn render_table(title: &str, rows: &[Measurement], metric: Metric) -> String {
    let mut labels: Vec<String> = Vec::new();
    for r in rows {
        if !labels.contains(&r.label) {
            labels.push(r.label.clone());
        }
    }
    let mut ranges: Vec<u64> = rows.iter().map(|r| r.range).collect();
    ranges.sort_unstable();
    ranges.dedup();

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&format!("{:>10}", "range(B)"));
    for l in &labels {
        out.push_str(&format!(" {l:>14}"));
    }
    out.push('\n');
    for range in ranges {
        out.push_str(&format!("{range:>10}"));
        for l in &labels {
            let v = rows
                .iter()
                .find(|r| r.range == range && &r.label == l)
                .map(|r| match metric {
                    Metric::ObservedWcl => r.observed_wcl,
                    Metric::ExecutionTime => r.execution_time,
                });
            match v {
                Some(v) => out.push_str(&format!(" {v:>14}")),
                None => out.push_str(&format!(" {:>14}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// Renders measurements as CSV (the seed's column set, byte-identical
/// for existing figure binaries; see [`render_csv_with_backend`] for the
/// backend-labelled variant).
pub fn render_csv(rows: &[Measurement]) -> String {
    let mut out =
        String::from("label,workload,range_bytes,observed_wcl,execution_time,analytical_wcl\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{},{}\n",
            r.label,
            r.workload,
            r.range,
            r.observed_wcl,
            r.execution_time,
            r.analytical_wcl.map_or(String::new(), |v| v.to_string()),
        ));
    }
    out
}

/// Renders measurements as CSV with the latency-percentile columns —
/// the full-distribution view the histogram recorder enables.
pub fn render_csv_with_percentiles(rows: &[Measurement]) -> String {
    let mut out = String::from(
        "label,workload,range_bytes,p50,p90,p99,observed_wcl,execution_time,analytical_wcl\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{}\n",
            r.label,
            r.workload,
            r.range,
            r.p50,
            r.p90,
            r.p99,
            r.observed_wcl,
            r.execution_time,
            r.analytical_wcl.map_or(String::new(), |v| v.to_string()),
        ));
    }
    out
}

/// Renders measurements as CSV with the memory-backend label column —
/// the format of backend-comparison sweeps like `dram_sensitivity`.
pub fn render_csv_with_backend(rows: &[Measurement]) -> String {
    let mut out = String::from(
        "label,workload,backend,range_bytes,observed_wcl,execution_time,analytical_wcl,\
         row_hit_rate\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{:.3}\n",
            r.label,
            r.workload,
            r.backend,
            r.range,
            r.observed_wcl,
            r.execution_time,
            r.analytical_wcl.map_or(String::new(), |v| v.to_string()),
            r.row_hit_rate,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_match_paper_axis() {
        let r = paper_address_ranges();
        assert_eq!(r.first(), Some(&1024));
        assert_eq!(r.last(), Some(&262_144));
        assert_eq!(r.len(), 9);
    }

    #[test]
    fn analytical_values_match_paper() {
        assert_eq!(analytical_wcl(&ss(1, 2, 4)), Some(5_000));
        assert_eq!(analytical_wcl(&ss(1, 4, 4)), Some(5_000));
        assert_eq!(analytical_wcl(&nss(1, 16, 4)), Some(979_250));
        assert_eq!(analytical_wcl(&p(1, 2, 4)), Some(450));
    }

    #[test]
    fn measurement_respects_analytical_bound_small() {
        let m = measure("SS(1,2,4)", ss(1, 2, 4), 2048, 50, 3, 0.2).unwrap();
        assert!(m.observed_wcl <= m.analytical_wcl.unwrap());
        assert!(m.execution_time > 0);
        // The percentile chain is ordered and capped by the max.
        assert!(m.p50 > 0 && m.p50 <= m.p90 && m.p90 <= m.p99 && m.p99 <= m.observed_wcl);
    }

    #[test]
    fn tables_render_all_cells() {
        let rows = vec![
            Measurement {
                label: "A".into(),
                workload: "uniform/1024B".into(),
                backend: "fixed(30)".into(),
                range: 1024,
                observed_wcl: 10,
                p50: 5,
                p90: 9,
                p99: 10,
                execution_time: 99,
                analytical_wcl: Some(100),
                row_hit_rate: 0.0,
            },
            Measurement {
                label: "B".into(),
                workload: "uniform/1024B".into(),
                backend: "banked(1x8,interleaved)".into(),
                range: 1024,
                observed_wcl: 20,
                p50: 12,
                p90: 18,
                p99: 20,
                execution_time: 88,
                analytical_wcl: None,
                row_hit_rate: 0.75,
            },
        ];
        let t = render_table("T", &rows, Metric::ObservedWcl);
        assert!(t.contains("1024") && t.contains("10") && t.contains("20"));
        // The seed CSV format is unchanged (no backend column)...
        let c = render_csv(&rows);
        assert!(c.lines().count() == 3);
        assert!(c.contains("A,uniform/1024B,1024,10,99,100"));
        assert!(!c.contains("fixed(30)"));
        // ...while the backend-labelled variant inserts the column.
        let cb = render_csv_with_backend(&rows);
        assert!(cb.starts_with("label,workload,backend,"));
        assert!(cb.contains("A,uniform/1024B,fixed(30),1024,10,99,100,0.000"));
        assert!(cb.contains("B,uniform/1024B,banked(1x8,interleaved),1024,20,88,,0.750"));
        // ...and the percentile variant reports the distribution.
        let cp = render_csv_with_percentiles(&rows);
        assert!(cp.starts_with("label,workload,range_bytes,p50,p90,p99,"));
        assert!(cp.contains("A,uniform/1024B,1024,5,9,10,10,99,100"));
    }

    #[test]
    fn measurements_carry_the_backend_label() {
        let m = measure("P(1,2)", p(1, 2, 2), 1024, 10, 1, 0.0).unwrap();
        assert_eq!(m.backend, "fixed(30)");
    }
}
