//! Batch experiment runs: a named grid of configurations × workloads.
//!
//! A [`Sweep`] is the batch-run surface of the redesigned API: declare
//! configurations and workloads once, call [`Sweep::run`], get one
//! [`Measurement`] per grid point. Each configuration's [`Simulator`] is
//! constructed **once** and reused for every workload (the borrowing
//! `run(&self, …)` API makes that free), and configurations execute in
//! parallel across threads — workloads are streamed, so even a
//! million-op grid point allocates no trace storage.
//!
//! # Examples
//!
//! ```
//! use predllc_bench::harness::uniform_workload;
//! use predllc_bench::sweep::Sweep;
//! use predllc_core::{SharingMode, SystemConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let rows = Sweep::new()
//!     .config("SS(1,2,4)", SystemConfig::shared_partition(1, 2, 4, SharingMode::SetSequencer)?)
//!     .config("P(1,2)", SystemConfig::private_partitions(1, 2, 4)?)
//!     .workload_at("uniform/1KiB", 1024, uniform_workload(1024, 50, 7, 0.2, 4))
//!     .workload_at("uniform/8KiB", 8192, uniform_workload(8192, 50, 7, 0.2, 4))
//!     .run()?;
//! assert_eq!(rows.len(), 4); // 2 configs x 2 workloads
//! # Ok(())
//! # }
//! ```

use std::thread;

use predllc_core::{SimError, Simulator, SystemConfig};
use predllc_workload::Workload;

use crate::harness::{analytical_wcl, Measurement};

/// One named workload of a sweep grid.
struct SweepWorkload {
    label: String,
    /// Numeric x-axis value carried into [`Measurement::range`].
    x: u64,
    workload: Box<dyn Workload>,
}

/// A named grid of configurations × workloads.
///
/// Build with [`Sweep::config`] / [`Sweep::workload`] (or
/// [`Sweep::workload_at`] to attach a numeric x-axis value), then
/// [`Sweep::run`].
#[derive(Default)]
pub struct Sweep {
    configs: Vec<(String, SystemConfig)>,
    workloads: Vec<SweepWorkload>,
}

impl Sweep {
    /// Creates an empty sweep.
    pub fn new() -> Self {
        Sweep::default()
    }

    /// Adds a named configuration column.
    pub fn config(mut self, label: impl Into<String>, config: SystemConfig) -> Self {
        self.configs.push((label.into(), config));
        self
    }

    /// Adds a named workload row (x-axis value 0).
    pub fn workload(self, label: impl Into<String>, workload: impl Workload + 'static) -> Self {
        self.workload_at(label, 0, workload)
    }

    /// Adds a named workload row with a numeric x-axis value (recorded
    /// as [`Measurement::range`], e.g. the per-core address range).
    pub fn workload_at(
        mut self,
        label: impl Into<String>,
        x: u64,
        workload: impl Workload + 'static,
    ) -> Self {
        self.workloads.push(SweepWorkload {
            label: label.into(),
            x,
            workload: Box::new(workload),
        });
        self
    }

    /// Number of grid points ([`Sweep::run`] returns this many rows).
    pub fn len(&self) -> usize {
        self.configs.len() * self.workloads.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs the whole grid and returns one [`Measurement`] per point, in
    /// `(config, workload)` declaration order.
    ///
    /// One `Simulator` is built per configuration and reused across all
    /// of that configuration's workloads; configurations run in
    /// parallel on scoped threads. The sweep is deterministic: workloads
    /// are replayable by contract, so every run of the same grid yields
    /// the same measurements.
    ///
    /// # Errors
    ///
    /// The first [`SimError`] encountered (e.g. a workload whose core
    /// count does not match a configuration), in grid order.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (propagated).
    pub fn run(&self) -> Result<Vec<Measurement>, SimError> {
        let mut per_config: Vec<Result<Vec<Measurement>, SimError>> = Vec::new();
        thread::scope(|scope| {
            let handles: Vec<_> = self
                .configs
                .iter()
                .map(|(label, config)| scope.spawn(move || self.run_config(label, config)))
                .collect();
            for h in handles {
                per_config.push(h.join().expect("sweep worker panicked"));
            }
        });
        let mut rows = Vec::with_capacity(self.len());
        for r in per_config {
            rows.extend(r?);
        }
        Ok(rows)
    }

    /// Runs every workload against one configuration, reusing a single
    /// simulator instance.
    fn run_config(&self, label: &str, config: &SystemConfig) -> Result<Vec<Measurement>, SimError> {
        let analytical = analytical_wcl(config);
        let backend = config.memory().label();
        let sim = Simulator::new(config.clone()).expect("validated configuration");
        self.workloads
            .iter()
            .map(|w| {
                let report = sim.run(&w.workload)?;
                Ok(Measurement {
                    label: label.to_string(),
                    workload: w.label.clone(),
                    backend: backend.clone(),
                    range: w.x,
                    observed_wcl: report.max_request_latency().as_u64(),
                    execution_time: report.execution_time().as_u64(),
                    analytical_wcl: analytical,
                    row_hit_rate: report.stats.dram_row_hit_rate(),
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{p, ss, uniform_workload};
    use predllc_workload::gen::UniformGen;

    #[test]
    fn grid_runs_every_point_in_declaration_order() {
        let rows = Sweep::new()
            .config("SS(1,2,2)", ss(1, 2, 2))
            .config("P(1,2)", p(1, 2, 2))
            .workload_at("u/1k", 1024, uniform_workload(1024, 40, 1, 0.2, 2))
            .workload_at("u/2k", 2048, uniform_workload(2048, 40, 1, 0.2, 2))
            .run()
            .unwrap();
        let got: Vec<(&str, &str)> = rows
            .iter()
            .map(|m| (m.label.as_str(), m.workload.as_str()))
            .collect();
        assert_eq!(
            got,
            [
                ("SS(1,2,2)", "u/1k"),
                ("SS(1,2,2)", "u/2k"),
                ("P(1,2)", "u/1k"),
                ("P(1,2)", "u/2k"),
            ]
        );
        assert!(rows.iter().all(|m| m.execution_time > 0));
        assert!(rows.iter().all(|m| m.analytical_wcl.is_some()));
    }

    #[test]
    fn sweeps_are_deterministic() {
        let build = || {
            Sweep::new()
                .config("SS", ss(2, 2, 2))
                .workload("u", uniform_workload(4096, 60, 9, 0.3, 2))
        };
        let a = build().run().unwrap();
        let b = build().run().unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                (x.observed_wcl, x.execution_time),
                (y.observed_wcl, y.execution_time)
            );
        }
    }

    #[test]
    fn core_count_mismatch_surfaces_as_error() {
        let err = Sweep::new()
            .config("SS", ss(1, 2, 4))
            .workload("too-narrow", UniformGen::new(1024, 10).with_cores(2))
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::CoreCountMismatch { .. }));
    }

    #[test]
    fn empty_sweep_is_empty() {
        let s = Sweep::new().config("SS", ss(1, 2, 2));
        assert!(s.is_empty());
        assert_eq!(s.run().unwrap().len(), 0);
    }
}
