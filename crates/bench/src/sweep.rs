//! Batch experiment runs: a named grid of configurations × workloads.
//!
//! A [`Sweep`] is the batch-run surface of the redesigned API: declare
//! configurations and workloads once, call [`Sweep::run`], get one
//! [`Measurement`] per grid point. Each configuration's [`Simulator`] is
//! constructed **once** and reused for every workload (the borrowing
//! `run(&self, …)` API makes that free), and individual **grid points**
//! are scheduled on the work-stealing
//! [`Executor`] — so one slow configuration
//! no longer serializes its whole row, and results are bit-identical
//! for every thread count.
//!
//! # Examples
//!
//! ```
//! use predllc_bench::harness::uniform_workload;
//! use predllc_bench::sweep::Sweep;
//! use predllc_core::{SharingMode, SystemConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let rows = Sweep::new()
//!     .config("SS(1,2,4)", SystemConfig::shared_partition(1, 2, 4, SharingMode::SetSequencer)?)
//!     .config("P(1,2)", SystemConfig::private_partitions(1, 2, 4)?)
//!     .workload_at("uniform/1KiB", 1024, uniform_workload(1024, 50, 7, 0.2, 4))
//!     .workload_at("uniform/8KiB", 8192, uniform_workload(8192, 50, 7, 0.2, 4))
//!     .run()?;
//! assert_eq!(rows.len(), 4); // 2 configs x 2 workloads
//! # Ok(())
//! # }
//! ```

use predllc_core::{SimError, Simulator, SystemConfig};
use predllc_explore::Executor;
use predllc_workload::Workload;

use crate::harness::{analytical_wcl, Measurement};

/// One named workload of a sweep grid.
struct SweepWorkload {
    label: String,
    /// Numeric x-axis value carried into [`Measurement::range`].
    x: u64,
    workload: Box<dyn Workload>,
}

/// A named grid of configurations × workloads.
///
/// Build with [`Sweep::config`] / [`Sweep::workload`] (or
/// [`Sweep::workload_at`] to attach a numeric x-axis value), then
/// [`Sweep::run`].
#[derive(Default)]
pub struct Sweep {
    configs: Vec<(String, SystemConfig)>,
    workloads: Vec<SweepWorkload>,
    threads: usize,
}

impl Sweep {
    /// Creates an empty sweep.
    pub fn new() -> Self {
        Sweep::default()
    }

    /// Adds a named configuration column.
    pub fn config(mut self, label: impl Into<String>, config: SystemConfig) -> Self {
        self.configs.push((label.into(), config));
        self
    }

    /// Adds a named workload row (x-axis value 0).
    pub fn workload(self, label: impl Into<String>, workload: impl Workload + 'static) -> Self {
        self.workload_at(label, 0, workload)
    }

    /// Adds a named workload row with a numeric x-axis value (recorded
    /// as [`Measurement::range`], e.g. the per-core address range).
    pub fn workload_at(
        mut self,
        label: impl Into<String>,
        x: u64,
        workload: impl Workload + 'static,
    ) -> Self {
        self.workloads.push(SweepWorkload {
            label: label.into(),
            x,
            workload: Box::new(workload),
        });
        self
    }

    /// Sets the worker-thread count (default `0`: one per available
    /// core). Results are identical whatever the count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Number of grid points ([`Sweep::run`] returns this many rows).
    pub fn len(&self) -> usize {
        self.configs.len() * self.workloads.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs the whole grid and returns one [`Measurement`] per point, in
    /// `(config, workload)` declaration order.
    ///
    /// One `Simulator` is built per configuration and shared (borrowed)
    /// by all of that configuration's grid points, which the
    /// work-stealing executor schedules **individually**: a slow point
    /// only occupies one worker, never a whole configuration row. The
    /// sweep is deterministic — workloads are replayable by contract and
    /// results assemble in declaration order — so every run of the same
    /// grid yields the same measurements, whatever the thread count.
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] for the first configuration (in declaration
    /// order) that fails validation — checked up front, before any grid
    /// point runs. Otherwise, the first failing grid point's error in
    /// grid order (e.g. a workload whose core count does not match a
    /// configuration).
    pub fn run(&self) -> Result<Vec<Measurement>, SimError> {
        // Validate every configuration up front; one simulator per
        // configuration, shared by its grid points.
        let mut sims: Vec<(Simulator, Option<u64>, String)> =
            Vec::with_capacity(self.configs.len());
        for (_, config) in &self.configs {
            let analytical = analytical_wcl(config);
            let backend = config.memory().label();
            sims.push((Simulator::new(config.clone())?, analytical, backend));
        }

        let points: Vec<(usize, usize)> = (0..self.configs.len())
            .flat_map(|ci| (0..self.workloads.len()).map(move |wi| (ci, wi)))
            .collect();
        Executor::new(self.threads).try_map(&points, |_, &(ci, wi)| {
            let (sim, analytical, backend) = &sims[ci];
            let w = &self.workloads[wi];
            let report = sim.run(&w.workload)?;
            let latencies = report.latency_histogram();
            Ok(Measurement {
                label: self.configs[ci].0.clone(),
                workload: w.label.clone(),
                backend: backend.clone(),
                range: w.x,
                observed_wcl: report.max_request_latency().as_u64(),
                p50: latencies.percentile(50.0).as_u64(),
                p90: latencies.percentile(90.0).as_u64(),
                p99: latencies.percentile(99.0).as_u64(),
                execution_time: report.execution_time().as_u64(),
                analytical_wcl: *analytical,
                row_hit_rate: report.stats.dram_row_hit_rate(),
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{p, ss, uniform_workload};
    use predllc_workload::gen::UniformGen;

    #[test]
    fn grid_runs_every_point_in_declaration_order() {
        let rows = Sweep::new()
            .config("SS(1,2,2)", ss(1, 2, 2))
            .config("P(1,2)", p(1, 2, 2))
            .workload_at("u/1k", 1024, uniform_workload(1024, 40, 1, 0.2, 2))
            .workload_at("u/2k", 2048, uniform_workload(2048, 40, 1, 0.2, 2))
            .run()
            .unwrap();
        let got: Vec<(&str, &str)> = rows
            .iter()
            .map(|m| (m.label.as_str(), m.workload.as_str()))
            .collect();
        assert_eq!(
            got,
            [
                ("SS(1,2,2)", "u/1k"),
                ("SS(1,2,2)", "u/2k"),
                ("P(1,2)", "u/1k"),
                ("P(1,2)", "u/2k"),
            ]
        );
        assert!(rows.iter().all(|m| m.execution_time > 0));
        assert!(rows.iter().all(|m| m.analytical_wcl.is_some()));
        // Percentiles are ordered and capped by the observed WCL.
        assert!(rows
            .iter()
            .all(|m| m.p50 <= m.p90 && m.p90 <= m.p99 && m.p99 <= m.observed_wcl));
    }

    #[test]
    fn sweeps_are_deterministic() {
        let build = || {
            Sweep::new()
                .config("SS", ss(2, 2, 2))
                .workload("u", uniform_workload(4096, 60, 9, 0.3, 2))
        };
        let a = build().run().unwrap();
        let b = build().run().unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                (x.observed_wcl, x.execution_time),
                (y.observed_wcl, y.execution_time)
            );
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let build = |threads: usize| {
            Sweep::new()
                .config("SS(1,2,2)", ss(1, 2, 2))
                .config("P(2,2)", p(2, 2, 2))
                .config("P(4,2)", p(4, 2, 2))
                .workload_at("u/1k", 1024, uniform_workload(1024, 60, 1, 0.2, 2))
                .workload_at("u/4k", 4096, uniform_workload(4096, 60, 2, 0.2, 2))
                .threads(threads)
                .run()
                .unwrap()
        };
        let reference = build(1);
        for threads in [2, 4, 8] {
            let rows = build(threads);
            assert_eq!(rows.len(), reference.len());
            for (a, b) in rows.iter().zip(&reference) {
                assert_eq!(
                    (
                        &a.label,
                        &a.workload,
                        a.observed_wcl,
                        a.p50,
                        a.p90,
                        a.p99,
                        a.execution_time
                    ),
                    (
                        &b.label,
                        &b.workload,
                        b.observed_wcl,
                        b.p50,
                        b.p90,
                        b.p99,
                        b.execution_time
                    ),
                    "thread count {threads} diverged"
                );
            }
        }
    }

    #[test]
    fn core_count_mismatch_surfaces_as_error() {
        let err = Sweep::new()
            .config("SS", ss(1, 2, 4))
            .workload("too-narrow", UniformGen::new(1024, 10).with_cores(2))
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::CoreCountMismatch { .. }));
    }

    #[test]
    fn invalid_configuration_surfaces_as_config_error() {
        // Simulator::new failures propagate as SimError::Config instead
        // of panicking mid-sweep; this conversion is what run relies on.
        let err = SimError::from(predllc_core::ConfigError::NoCores);
        assert!(matches!(err, SimError::Config(_)));
    }

    #[test]
    fn empty_sweep_is_empty() {
        let s = Sweep::new().config("SS", ss(1, 2, 2));
        assert!(s.is_empty());
        assert_eq!(s.run().unwrap().len(), 0);
    }
}
