//! Thin raw-syscall bindings for the event-driven reactor: `epoll`,
//! `eventfd`, `fcntl` and `setrlimit`, declared against the C library
//! the platform already links (no external crates — same offline
//! constraint as the in-tree JSON codec).
//!
//! This is the **only** module in the crate allowed to use `unsafe`
//! (`lib.rs` carries `#![deny(unsafe_code)]`; the module opts out with
//! a scoped `allow`). Every binding is wrapped in a safe RAII type
//! ([`Epoll`], [`EventFd`]) or a safe free function, so the reactor
//! itself stays entirely safe code.
//!
//! Linux-only: the module (and the reactor built on it) is compiled
//! behind `cfg(target_os = "linux")`; other platforms fall back to the
//! blocking serve mode.

#![allow(unsafe_code)]

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::os::raw::{c_int, c_uint, c_void};

// Event masks (bits of `epoll_event.events`).
/// The fd is readable.
pub const EPOLLIN: u32 = 0x001;
/// The fd is writable.
pub const EPOLLOUT: u32 = 0x004;
/// An error condition happened on the fd (always reported).
pub const EPOLLERR: u32 = 0x008;
/// Hang-up happened on the fd (always reported).
pub const EPOLLHUP: u32 = 0x010;
/// The peer shut down its writing half (half-close detection).
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

const F_GETFL: c_int = 3;
const F_SETFL: c_int = 4;
const O_NONBLOCK: c_int = 0o4000;

const RLIMIT_NOFILE: c_int = 7;

/// One ready event out of [`Epoll::wait`]: the interest mask bits that
/// fired plus the caller-chosen 64-bit token registered with the fd.
///
/// The kernel ABI packs this struct on x86-64; the attribute mirrors
/// the C definition exactly.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Debug, Clone, Copy)]
pub struct EpollEvent {
    /// Fired event bits ([`EPOLLIN`] | [`EPOLLOUT`] | ...).
    pub events: u32,
    /// The token the fd was registered under.
    pub data: u64,
}

impl EpollEvent {
    /// A zeroed event (for pre-sizing wait buffers).
    pub const fn zeroed() -> EpollEvent {
        EpollEvent { events: 0, data: 0 }
    }
}

#[repr(C)]
struct RLimit {
    rlim_cur: u64,
    rlim_max: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn fcntl(fd: c_int, cmd: c_int, ...) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
}

/// Converts a `-1`-on-error syscall return into `io::Result`.
fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An owned `epoll` instance; the fd closes on drop.
#[derive(Debug)]
pub struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    /// A fresh close-on-exec epoll instance.
    ///
    /// # Errors
    ///
    /// The raw `epoll_create1` failure.
    pub fn new() -> io::Result<Epoll> {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        // SAFETY: epoll_create1 returned a fresh fd we now own.
        Ok(Epoll {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        cvt(unsafe { epoll_ctl(self.fd.as_raw_fd(), op, fd, &mut ev) }).map(|_| ())
    }

    /// Registers `fd` with interest `events` under `token`.
    ///
    /// # Errors
    ///
    /// The raw `epoll_ctl` failure.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Changes an already registered fd's interest mask.
    ///
    /// # Errors
    ///
    /// The raw `epoll_ctl` failure.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Deregisters `fd`.
    ///
    /// # Errors
    ///
    /// The raw `epoll_ctl` failure.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits up to `timeout_ms` (`-1` = forever) for ready events,
    /// filling `events` from the front; returns how many fired.
    /// `EINTR` retries internally.
    ///
    /// # Errors
    ///
    /// The raw `epoll_wait` failure.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        let cap = c_int::try_from(events.len()).unwrap_or(c_int::MAX).max(1);
        loop {
            let n =
                unsafe { epoll_wait(self.fd.as_raw_fd(), events.as_mut_ptr(), cap, timeout_ms) };
            match cvt(n) {
                Ok(n) => return Ok(n as usize),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

/// A nonblocking `eventfd` used to wake an epoll loop from another
/// thread: [`EventFd::signal`] makes the fd readable, the woken loop
/// [`EventFd::drain`]s it back to quiescence. Closes on drop.
#[derive(Debug)]
pub struct EventFd {
    fd: OwnedFd,
}

impl EventFd {
    /// A fresh nonblocking close-on-exec eventfd.
    ///
    /// # Errors
    ///
    /// The raw `eventfd` failure.
    pub fn new() -> io::Result<EventFd> {
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        // SAFETY: eventfd returned a fresh fd we now own.
        Ok(EventFd {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    /// The raw fd, for epoll registration.
    pub fn raw(&self) -> RawFd {
        self.fd.as_raw_fd()
    }

    /// Makes the fd readable (wakes any epoll loop watching it).
    /// Saturation (`EAGAIN` on an already maximally signalled counter)
    /// is fine — the loop is awake either way.
    pub fn signal(&self) {
        let one: u64 = 1;
        // SAFETY: writing 8 bytes from a valid, live u64.
        let _ = unsafe {
            write(
                self.fd.as_raw_fd(),
                std::ptr::addr_of!(one).cast::<c_void>(),
                8,
            )
        };
    }

    /// Consumes pending signals so the fd goes quiet again.
    pub fn drain(&self) {
        let mut buf: u64 = 0;
        // SAFETY: reading 8 bytes into a valid, live u64.
        let _ = unsafe {
            read(
                self.fd.as_raw_fd(),
                std::ptr::addr_of_mut!(buf).cast::<c_void>(),
                8,
            )
        };
    }
}

/// Switches `fd` into nonblocking mode via `fcntl` (the accept path
/// uses this on fresh connections before handing them to a reactor).
///
/// # Errors
///
/// The raw `fcntl` failure.
pub fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    let flags = cvt(unsafe { fcntl(fd, F_GETFL) })?;
    cvt(unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) }).map(|_| ())
}

/// Raises the open-file soft limit to at least `want` fds (capped at
/// the hard limit). Serving thousands of concurrent connections needs
/// more than the common 1024-fd default; callers that fan out (the
/// `serve_perf` bench, production deployments) call this at startup.
/// Returns the resulting soft limit.
///
/// # Errors
///
/// The raw `getrlimit`/`setrlimit` failure.
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    let mut lim = RLimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    // SAFETY: passing a valid, live RLimit out-pointer.
    cvt(unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) })?;
    if lim.rlim_cur >= want {
        return Ok(lim.rlim_cur);
    }
    lim.rlim_cur = want.min(lim.rlim_max);
    // SAFETY: passing a valid, live RLimit in-pointer.
    cvt(unsafe { setrlimit(RLIMIT_NOFILE, &lim) })?;
    Ok(lim.rlim_cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn eventfd_signals_and_drains() {
        let efd = EventFd::new().unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(efd.raw(), EPOLLIN, 7).unwrap();
        let mut events = [EpollEvent::zeroed(); 4];
        // Quiet fd: a zero-timeout wait sees nothing.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
        efd.signal();
        efd.signal();
        assert_eq!(ep.wait(&mut events, 1000).unwrap(), 1);
        let (data, bits) = {
            let ev = events[0];
            (ev.data, ev.events)
        };
        assert_eq!(data, 7);
        assert_ne!(bits & EPOLLIN, 0);
        // Drained, the fd goes quiet again (level-triggered).
        efd.drain();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn epoll_sees_socket_readability_and_tokens() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (rx, _) = listener.accept().unwrap();
        set_nonblocking(rx.as_raw_fd()).unwrap();

        let ep = Epoll::new().unwrap();
        ep.add(rx.as_raw_fd(), EPOLLIN, 42).unwrap();
        let mut events = [EpollEvent::zeroed(); 4];
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0, "nothing sent yet");
        tx.write_all(b"ping").unwrap();
        assert_eq!(ep.wait(&mut events, 1000).unwrap(), 1);
        let (data, bits) = {
            let ev = events[0];
            (ev.data, ev.events)
        };
        assert_eq!(data, 42);
        assert_ne!(bits & EPOLLIN, 0);
        // Interest can be narrowed to write-only and back.
        ep.modify(rx.as_raw_fd(), EPOLLOUT, 42).unwrap();
        let n = ep.wait(&mut events, 100).unwrap();
        assert!(n >= 1, "a fresh socket is writable");
        let bits = {
            let ev = events[0];
            ev.events
        };
        assert_ne!(bits & EPOLLOUT, 0);
        ep.delete(rx.as_raw_fd()).unwrap();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn nofile_limit_is_monotone() {
        let now = raise_nofile_limit(0).unwrap();
        assert!(now > 0);
        // Asking for what we already have (or less) never lowers it.
        assert!(raise_nofile_limit(now.min(64)).unwrap() >= now.min(64));
    }
}
