//! `predllc-serve` — the multi-tenant experiment service: the
//! design-space exploration engine behind a long-running HTTP API with a
//! content-addressed result cache.
//!
//! The exploration layer (`predllc-explore`) made experiments
//! declarative (JSON [`ExperimentSpec`]s) and parallel (the
//! work-stealing `Executor`); this crate makes them **shared**. Any
//! number of clients submit specs to one service; because simulation is
//! a deterministic pure function of the spec, the service never runs
//! the same experiment twice:
//!
//! * [`http`] — a bounded HTTP/1.1 request/response layer (keep-alive,
//!   `Content-Length` and chunked framing, hard size limits; no
//!   external dependencies, same offline constraint as the in-tree
//!   JSON codec).
//! * [`handler`] — the dispatch API: a [`Router`] of path patterns to
//!   [`Handler`]s returning [`Response`]s whose bodies are either
//!   bytes or a pull-based [`BodyStream`] rendered incrementally.
//! * [`sys`] (Linux) — raw `epoll`/`eventfd` bindings that power the
//!   event-driven reactor serving thousands of keep-alive connections
//!   from a handful of threads; other platforms (and
//!   [`ServeMode::Blocking`]) use the preserved thread-per-connection
//!   fallback.
//! * [`registry`] — content-addressed jobs: a spec's identity is the
//!   canonical (key-order-insensitive) FNV-1a fingerprint of its parsed
//!   document, so duplicate submissions — including **concurrent**
//!   ones — coalesce onto one execution and later ones return the
//!   cached bytes instantly.
//! * [`server`] — the accept loop, the job runners feeding a pluggable
//!   [`SpecRunner`] (local executor or fleet coordinator) with per-job
//!   progress (grid points done / total), the point endpoints that make
//!   any server a fleet worker, and graceful shutdown that drains every
//!   accepted job.
//! * [`client`] — a small blocking client (submit / poll / fetch /
//!   point) with bounded transport retries, used by the integration
//!   tests, the CI smoke and the fleet coordinator.
//!
//! # Endpoints
//!
//! | Endpoint | Meaning |
//! |---|---|
//! | `POST /v1/experiments` | submit a spec; answers `202` with the id, or `200` on a cache hit |
//! | `GET /v1/experiments/{id}` | status + progress |
//! | `GET /v1/experiments/{id}/results?format=csv\|json` | the cached rendered result |
//! | `POST /v1/points` | simulate one grid point (fleet work unit); `422` positions build/sim failures |
//! | `GET /v1/points/{fingerprint}` | a point measurement already in this server's cache |
//! | `GET /healthz` | liveness |
//! | `GET /metrics` | plain-text counters (jobs, cache hits/misses, points, fleet workers) |
//! | `GET /v1/metrics/history?window=..&step=..` | collected time-series as JSON (needs [`ServerConfig::monitor`]) |
//! | `GET /v1/alerts` | SLO rule states with since-timestamps (needs [`ServerConfig::monitor`]) |
//! | `GET /dashboard` | self-contained HTML dashboard, inline-SVG sparklines (needs [`ServerConfig::monitor`]) |
//!
//! # Examples
//!
//! ```
//! use predllc_serve::{Client, Server, ServerConfig};
//! use std::time::Duration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let server = Server::bind("127.0.0.1:0", ServerConfig::default())?;
//! let handle = server.handle();
//! std::thread::spawn(move || server.run());
//!
//! let mut client = Client::new(handle.addr());
//! let submitted = client.submit(r#"{
//!     "name": "quick", "cores": 2,
//!     "configs": [{"partition": {"kind": "shared", "sets": 1, "ways": 4, "mode": "SS"}}],
//!     "workloads": [{"kind": "uniform", "range_bytes": 1024, "ops": 50, "seed": 7}]
//! }"#)?;
//! let status = client.wait_done(&submitted.id, Duration::from_secs(60))?;
//! assert_eq!(status.status, "done");
//! let csv = client.results(&submitted.id, predllc_serve::Format::Csv)?.text()?;
//! assert!(csv.starts_with("config,workload,backend,"));
//!
//! // Submitting the same experiment again — any formatting, any key
//! // order — is a cache hit: no second simulation.
//! assert!(client.submit(r#"{
//!     "cores": 2, "name": "quick",
//!     "workloads": [{"ops": 50, "seed": 7, "kind": "uniform", "range_bytes": 1024}],
//!     "configs": [{"partition": {"mode": "SS", "kind": "shared", "ways": 4, "sets": 1}}]
//! }"#)?.cached);
//!
//! handle.shutdown();
//! # Ok(())
//! # }
//! ```

// `sys` needs raw syscalls; everything else stays safe, enforced
// per-module (`deny` here, a scoped `allow` inside `sys`).
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod api;
pub mod client;
pub mod handler;
pub mod http;
#[cfg(target_os = "linux")]
mod reactor;
pub mod registry;
pub mod server;
#[cfg(target_os = "linux")]
pub mod sys;

pub use client::{Client, ClientError, Format, PointReply, ResultBody, Status, Submitted};
pub use handler::{Dispatch, Handler, Router};
pub use http::{Body, BodyStream, Limits, Request, Response};
pub use registry::{Job, JobResult, JobStatus, Metrics, MetricsSnapshot, Registry, SubmitError};
pub use server::{
    default_rules, LocalRunner, MonitorConfig, RunOutcome, ServeMode, Server, ServerConfig,
    ServerHandle, SpecRunner,
};

// Re-exported so service users can build specs and reports without
// naming the explore crate separately.
pub use predllc_explore::ExperimentSpec;
