//! The HTTP server: accept loop, connection driving, and the job
//! runners that feed the work-stealing experiment executor.
//!
//! Concurrency model (reactor mode, the default on Linux):
//!
//! * one **acceptor** (the caller of [`Server::run`]) hands each
//!   accepted connection to one of a few **reactor** event loops; each
//!   reactor multiplexes thousands of nonblocking connections over
//!   `epoll`, parsing requests and writing responses as sockets become
//!   ready;
//! * **light** endpoints (status lookups, streamed results, metrics)
//!   run inline on the reactor thread; **heavy** endpoints (submission
//!   parsing, point simulation, unbounded renders) are queued to a
//!   bounded **dispatch executor** — when that queue is full the
//!   reactor sheds the request with `429` + `Retry-After` instead of
//!   letting latency collapse;
//! * a small pool of **runner** threads drains the job queue; each job
//!   runs through the server's [`SpecRunner`] — the local one schedules
//!   grid points on a shared [`Executor`], a fleet coordinator shards
//!   them across workers — so grid points, not jobs, stay the unit of
//!   simulation parallelism;
//! * the **point endpoints** (`POST /v1/points`, `GET
//!   /v1/points/{fingerprint}`) make any server a fleet worker: one
//!   grid point in, exact-integer measurements out, answered from a
//!   bounded content-addressed point cache when possible;
//! * **graceful shutdown** ([`ServerHandle::shutdown`]) stops accepting
//!   connections and submissions, then drains: every job already
//!   accepted runs to completion (all its grid points) before
//!   [`Server::run`] returns. [`ServerHandle::kill`] is the opposite —
//!   an abrupt simulated crash for worker-loss testing.
//!
//! [`ServeMode::Blocking`] preserves the PR-9 model — one detached
//! thread per connection, every endpoint inline — as the portable
//! fallback. Both modes drive the same internal `api` router, so every
//! served byte is identical across them.

use std::collections::{HashMap, VecDeque};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use predllc_obs::series::registry_samples;
use predllc_obs::slo::Rule;
use predllc_obs::{
    fields, Collector, CollectorConfig, Compare, Counter, SeriesStore, SloRuntime, TraceCtx,
    TraceId, Tracer,
};

use predllc_explore::hash::Fingerprint;
use predllc_explore::report::render_attribution_json;
use predllc_explore::{
    run_spec_observed, run_spec_traced, Executor, ExperimentSpec, GridResult, SearchOutcome,
};

use predllc_core::ComponentSet;

use crate::api;
use crate::handler::{Dispatch, Router};
use crate::http::{read_request, write_response, HttpError, Limits};
use crate::registry::{Job, JobResult, Metrics, MetricsSnapshot, Registry};

/// Continuous-monitoring configuration: when set on
/// [`ServerConfig::monitor`], the server runs an in-process
/// [`Collector`] that snapshots `/metrics` into ring-buffered
/// time-series, evaluates SLO rules on every tick, and serves
/// `GET /v1/metrics/history`, `GET /v1/alerts` and `GET /dashboard`.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Collection interval.
    pub interval: Duration,
    /// Samples kept per series (drop-oldest past this).
    pub capacity: usize,
    /// Maximum distinct series collected.
    pub max_series: usize,
    /// SLO rules evaluated on every tick.
    pub rules: Vec<Rule>,
}

impl Default for MonitorConfig {
    /// One sample per second, ten minutes of history, and the stock
    /// serve rules ([`default_rules`]).
    fn default() -> Self {
        MonitorConfig {
            interval: Duration::from_secs(1),
            capacity: 600,
            max_series: 512,
            rules: default_rules(),
        }
    }
}

impl MonitorConfig {
    /// The default monitor at a different collection interval.
    pub fn with_interval(interval: Duration) -> MonitorConfig {
        MonitorConfig {
            interval,
            ..MonitorConfig::default()
        }
    }
}

/// The stock serve SLO rules: sustained queue depth and sustained p99
/// request latency.
pub fn default_rules() -> Vec<Rule> {
    vec![
        Rule::threshold("queue-depth", "predllc_jobs_queued", Compare::Above, 100.0)
            .for_duration(Duration::from_secs(5)),
        // The p99 series is derived per endpoint by the collector from
        // the request-latency histogram; the family selector covers
        // every endpoint label. 500ms in nanoseconds.
        Rule::threshold(
            "p99-request-latency",
            "predllc_http_request_duration_ns_p99",
            Compare::Above,
            500_000_000.0,
        )
        .for_duration(Duration::from_secs(5)),
    ]
}

/// How the server drives connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// The epoll reactor on Linux, the blocking fallback elsewhere.
    Auto,
    /// The event-driven reactor (Linux only; falls back to blocking on
    /// other platforms, where the `epoll` bindings don't exist).
    Reactor,
    /// One thread per connection, every endpoint inline — the portable
    /// fallback, and the baseline `serve_perf` compares the reactor
    /// against.
    Blocking,
}

impl ServeMode {
    /// Whether this mode resolves to the reactor on this platform.
    fn reactor_effective(self) -> bool {
        match self {
            ServeMode::Blocking => false,
            ServeMode::Reactor | ServeMode::Auto => cfg!(target_os = "linux"),
        }
    }
}

/// Tunables for a server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads of the shared experiment [`Executor`] (`0` = one
    /// per available core).
    pub threads: usize,
    /// Concurrent job runners (jobs beyond this queue up).
    pub runners: usize,
    /// HTTP parsing bounds.
    pub limits: Limits,
    /// Per-connection idle read timeout; an idle keep-alive connection
    /// is closed after this long. In reactor mode this also bounds how
    /// long a peer may take to deliver one complete request — a
    /// slow-loris trickle does not reset the clock.
    pub idle_timeout: Duration,
    /// Most jobs the registry caches at once; past this the oldest
    /// finished job is evicted per new submission (see
    /// [`Registry::with_capacity`]).
    pub max_jobs: usize,
    /// Most simultaneously open connections; excess connections are
    /// answered `503` and closed. Connections are cheap in reactor mode
    /// (no thread each), so the default is high.
    pub max_connections: usize,
    /// Most point measurements the shared point cache holds; past this
    /// the oldest entry is evicted (an evicted point simply
    /// re-simulates).
    pub max_points: usize,
    /// Fault injection for worker-loss tests: after this many point
    /// requests answered successfully, the next one crashes the server
    /// mid-response ([`ServerHandle::kill`] semantics — no response, no
    /// drain). `None` (the default) disables it.
    pub fail_after_points: Option<u64>,
    /// The tracer request/job spans record into. `None` (the default)
    /// gives the server its own; pass one to share it with a fleet
    /// coordinator or to drain it into a `--trace-out` file.
    pub tracer: Option<Arc<Tracer>>,
    /// Continuous monitoring: time-series collection, SLO alerts and
    /// the dashboard. `None` (the default) disables the collector
    /// thread and the three monitoring endpoints answer `404`.
    pub monitor: Option<MonitorConfig>,
    /// How connections are driven (see [`ServeMode`]).
    pub mode: ServeMode,
    /// Reactor event-loop threads in reactor mode (`0` = auto: one per
    /// four cores, at least one).
    pub reactors: usize,
    /// Dispatch-executor threads running heavy endpoints in reactor
    /// mode (`0` = auto: one per core, at least two).
    pub dispatchers: usize,
    /// Most requests waiting in the dispatch executor's queue; past
    /// this the reactor sheds new heavy requests with `429` +
    /// `Retry-After` instead of queueing them.
    pub max_dispatch_queue: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 0,
            runners: 1,
            limits: Limits::default(),
            idle_timeout: Duration::from_secs(30),
            max_jobs: 1024,
            max_connections: 4096,
            max_points: 4096,
            fail_after_points: None,
            tracer: None,
            monitor: None,
            mode: ServeMode::Auto,
            reactors: 0,
            dispatchers: 0,
            max_dispatch_queue: 1024,
        }
    }
}

/// The outcome of running one experiment spec, however it was executed.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// One result per declared grid point, declaration order.
    pub grid: Vec<GridResult>,
    /// The partition-search outcome, when the spec declared one.
    pub search: Option<SearchOutcome>,
    /// Physically distinct grid points resolved.
    pub unique_points: usize,
}

/// How a server executes a whole experiment spec: locally on an
/// [`Executor`], or sharded across fleet workers by a coordinator.
///
/// Implementations must be deterministic functions of the spec — the
/// registry serves a job's rendered result forever, and a fleet
/// coordinator's contract is bit-identity with the local runner.
pub trait SpecRunner: Send + Sync {
    /// Runs `spec` end to end, reporting grid progress through
    /// `observe(done, unique_total)` (possibly from many threads).
    ///
    /// # Errors
    ///
    /// The rendered failure message served by the job status endpoint —
    /// positioned (naming the failing configuration/workload) wherever
    /// the underlying error is.
    fn run_spec(
        &self,
        spec: &ExperimentSpec,
        observe: &(dyn Fn(usize, usize) + Sync),
    ) -> Result<RunOutcome, String>;

    /// Like [`SpecRunner::run_spec`], recording spans under `ctx`
    /// (when given) as the run progresses. The default forwards to
    /// `run_spec` and records nothing extra; runners with interesting
    /// internal stages — the local executor's queue-wait/compute
    /// split, the fleet coordinator's dispatch pipeline — override it.
    /// Tracing never alters what is computed.
    fn run_spec_traced(
        &self,
        spec: &ExperimentSpec,
        observe: &(dyn Fn(usize, usize) + Sync),
        ctx: Option<TraceCtx<'_>>,
    ) -> Result<RunOutcome, String> {
        let _ = ctx;
        self.run_spec(spec, observe)
    }

    /// The thread count stamped into rendered JSON reports. A fleet
    /// coordinator reports `1` so documents are byte-identical across
    /// fleet shapes.
    fn threads_label(&self) -> usize;
}

/// The in-process [`SpecRunner`]: every grid point runs on this
/// server's own work-stealing [`Executor`].
pub struct LocalRunner {
    exec: Executor,
}

impl LocalRunner {
    /// A runner over `threads` executor threads (`0` = one per core).
    pub fn new(threads: usize) -> LocalRunner {
        LocalRunner {
            exec: Executor::new(threads),
        }
    }
}

impl SpecRunner for LocalRunner {
    fn run_spec(
        &self,
        spec: &ExperimentSpec,
        observe: &(dyn Fn(usize, usize) + Sync),
    ) -> Result<RunOutcome, String> {
        let report = run_spec_observed(spec, &self.exec, observe).map_err(|e| e.to_string())?;
        Ok(RunOutcome {
            grid: report.grid,
            search: report.search,
            unique_points: report.unique_points,
        })
    }

    fn run_spec_traced(
        &self,
        spec: &ExperimentSpec,
        observe: &(dyn Fn(usize, usize) + Sync),
        ctx: Option<TraceCtx<'_>>,
    ) -> Result<RunOutcome, String> {
        let report = run_spec_traced(spec, &self.exec, observe, ctx).map_err(|e| e.to_string())?;
        Ok(RunOutcome {
            grid: report.grid,
            search: report.search,
            unique_points: report.unique_points,
        })
    }

    fn threads_label(&self) -> usize {
        self.exec.threads()
    }
}

/// The bounded content-addressed point cache shared by the point
/// endpoints: fingerprint → rendered measurement JSON (rendered once,
/// served byte-identically forever).
pub(crate) struct PointCache {
    by_fp: HashMap<Fingerprint, String>,
    /// Insertion order; eviction drops the oldest entry.
    order: VecDeque<Fingerprint>,
    capacity: usize,
}

impl PointCache {
    fn new(capacity: usize) -> PointCache {
        PointCache {
            by_fp: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    pub(crate) fn get(&self, fp: &Fingerprint) -> Option<&str> {
        self.by_fp.get(fp).map(String::as_str)
    }

    pub(crate) fn insert(&mut self, fp: Fingerprint, rendered: String) {
        if self.by_fp.contains_key(&fp) {
            return;
        }
        if self.by_fp.len() >= self.capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.by_fp.remove(&oldest);
            }
        }
        self.by_fp.insert(fp, rendered);
        self.order.push_back(fp);
    }
}

/// State shared by the acceptor, reactors, dispatch workers, connection
/// threads, runners and handles.
pub(crate) struct Shared {
    pub(crate) registry: Registry,
    pub(crate) runner: Arc<dyn SpecRunner>,
    pub(crate) shutdown: AtomicBool,
    /// Set by [`ServerHandle::kill`] or the fault injector: the server
    /// died abruptly — drop connections, drain nothing.
    pub(crate) killed: AtomicBool,
    /// Present while the service accepts work; dropped on shutdown so
    /// runner threads drain the queue and exit.
    pub(crate) queue: Mutex<Option<mpsc::Sender<Arc<Job>>>>,
    pub(crate) limits: Limits,
    pub(crate) idle_timeout: Duration,
    /// Simultaneously open connections, bounded by `max_connections`.
    pub(crate) connections: AtomicUsize,
    pub(crate) max_connections: usize,
    /// Point measurements shared across workers of a fleet.
    pub(crate) points: Mutex<PointCache>,
    /// See [`ServerConfig::fail_after_points`].
    pub(crate) fail_after_points: Option<u64>,
    /// Point requests answered successfully (the fault injector's
    /// odometer).
    pub(crate) points_answered: AtomicU64,
    /// Where request/job/point spans are recorded.
    pub(crate) tracer: Arc<Tracer>,
    /// Mirror of [`Tracer::dropped`] so ring overflow is visible on
    /// `/metrics`; refreshed before every render and collector tick.
    pub(crate) trace_dropped: Counter,
    /// The continuous-monitoring state, when configured.
    pub(crate) monitor: Option<MonitorState>,
    /// Our own bound address, to wake the accept loop on kill.
    pub(crate) addr: SocketAddr,
    /// Callbacks that nudge parked event loops (reactors blocked in
    /// `epoll_wait`, the acceptor) so they observe the shutdown/killed
    /// flags promptly.
    pub(crate) wakers: Mutex<Vec<Box<dyn Fn() + Send + Sync>>>,
}

/// The running monitor: the collector's store and SLO runtime (shared
/// with the endpoints) plus the collector handle itself, parked here
/// so [`Server::run`] can stop the thread on exit.
pub(crate) struct MonitorState {
    pub(crate) store: Arc<SeriesStore>,
    pub(crate) slo: Arc<SloRuntime>,
    pub(crate) collector: Mutex<Option<Collector>>,
    pub(crate) interval_ms: u64,
}

/// Refreshes the `predllc_trace_dropped_total` mirror from the tracer.
pub(crate) fn refresh_trace_dropped(shared: &Shared) {
    shared.trace_dropped.set(shared.tracer.dropped());
}

/// Registers a callback invoked on shutdown and kill, so event loops
/// parked in `epoll_wait` wake and observe the flags.
pub(crate) fn register_waker(shared: &Shared, waker: Box<dyn Fn() + Send + Sync>) {
    shared.wakers.lock().unwrap().push(waker);
}

/// Nudges every registered event loop.
pub(crate) fn wake_all(shared: &Shared) {
    for waker in shared.wakers.lock().unwrap().iter() {
        waker();
    }
}

/// Simulates an abrupt crash: stop accepting, close the job queue, wake
/// the accept loop and every reactor. Idempotent.
pub(crate) fn kill_shared(shared: &Shared) {
    if shared.killed.swap(true, Ordering::SeqCst) {
        return;
    }
    shared.queue.lock().unwrap().take();
    wake_all(shared);
    let _ = TcpStream::connect(shared.addr);
}

/// One open connection's claim against `max_connections`: counts
/// itself in on construction (connection counter and the
/// `predllc_connections_open` gauge), counts itself out on drop.
///
/// Constructed by the *acceptor* before the connection is handed to a
/// thread or reactor, so the count stays exact however the connection
/// ends — clean close, error, or handler panic.
pub(crate) struct ConnTicket {
    shared: Arc<Shared>,
}

impl ConnTicket {
    pub(crate) fn new(shared: &Arc<Shared>) -> ConnTicket {
        shared.connections.fetch_add(1, Ordering::SeqCst);
        shared.registry.metrics.connections_open.inc();
        ConnTicket {
            shared: Arc::clone(shared),
        }
    }

    /// Whether admitting this connection exceeded the configured cap
    /// (the acceptor answers `503` and drops the ticket).
    pub(crate) fn over_capacity(&self) -> bool {
        self.shared.connections.load(Ordering::SeqCst) > self.shared.max_connections
    }
}

impl Drop for ConnTicket {
    fn drop(&mut self) {
        self.shared.connections.fetch_sub(1, Ordering::SeqCst);
        self.shared.registry.metrics.connections_open.dec();
    }
}

/// Resolved reactor-mode tunables handed to the reactor.
#[derive(Debug, Clone)]
#[cfg_attr(not(target_os = "linux"), allow(dead_code))]
pub(crate) struct ReactorOptions {
    pub(crate) reactors: usize,
    pub(crate) dispatchers: usize,
    pub(crate) max_dispatch_queue: usize,
}

/// A running experiment service bound to a TCP address.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
    queue_rx: mpsc::Receiver<Arc<Job>>,
    runners: usize,
    mode: ServeMode,
    reactor: ReactorOptions,
}

/// A cloneable handle for talking to a running server from other
/// threads: trigger shutdown, read metrics, look jobs up.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
}

impl Server {
    /// Binds the service (pass port `0` for an ephemeral port, then read
    /// it back with [`Server::local_addr`]) with the in-process
    /// [`LocalRunner`].
    ///
    /// # Errors
    ///
    /// Any socket-level failure to bind.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> std::io::Result<Server> {
        let runner = Arc::new(LocalRunner::new(config.threads));
        Server::bind_with(addr, config, runner, Arc::new(Metrics::default()))
    }

    /// Like [`Server::bind`], with an explicit [`SpecRunner`] and an
    /// externally owned counter set — how a fleet coordinator serves
    /// the experiment API over its dispatch layer while `/metrics`
    /// reports both sides.
    ///
    /// # Errors
    ///
    /// Any socket-level failure to bind.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        runner: Arc<dyn SpecRunner>,
        metrics: Arc<Metrics>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let (tx, rx) = mpsc::channel();
        let tracer = config.tracer.unwrap_or_else(|| Arc::new(Tracer::new()));
        let trace_dropped = metrics.registry.counter(
            "predllc_trace_dropped_total",
            "Trace events dropped because a tracer ring buffer was full.",
        );
        let alerts_firing = metrics
            .registry
            .gauge("predllc_alerts_firing", "SLO rules currently firing.");
        let monitor = config.monitor.map(|mc| {
            let slo = Arc::new(
                SloRuntime::new(mc.rules)
                    .with_gauge(alerts_firing)
                    .with_tracer(Arc::clone(&tracer), TraceId::fresh()),
            );
            let sampler = {
                let metrics = Arc::clone(&metrics);
                let tracer = Arc::clone(&tracer);
                let trace_dropped = trace_dropped.clone();
                move || {
                    trace_dropped.set(tracer.dropped());
                    registry_samples(&metrics.registry)
                }
            };
            let collector = Collector::start(
                CollectorConfig {
                    interval: mc.interval,
                    capacity: mc.capacity,
                    max_series: mc.max_series,
                },
                sampler,
                Some(Arc::clone(&slo)),
            );
            MonitorState {
                store: collector.store(),
                slo,
                collector: Mutex::new(Some(collector)),
                interval_ms: u64::try_from(mc.interval.as_millis()).unwrap_or(u64::MAX),
            }
        });
        let shared = Arc::new(Shared {
            registry: Registry::with_metrics(config.max_jobs, metrics),
            runner,
            shutdown: AtomicBool::new(false),
            killed: AtomicBool::new(false),
            queue: Mutex::new(Some(tx)),
            limits: config.limits,
            idle_timeout: config.idle_timeout,
            connections: AtomicUsize::new(0),
            max_connections: config.max_connections.max(1),
            points: Mutex::new(PointCache::new(config.max_points)),
            fail_after_points: config.fail_after_points,
            points_answered: AtomicU64::new(0),
            tracer,
            trace_dropped,
            monitor,
            addr,
            wakers: Mutex::new(Vec::new()),
        });
        Ok(Server {
            listener,
            addr,
            shared,
            queue_rx: rx,
            runners: config.runners.max(1),
            mode: config.mode,
            reactor: ReactorOptions {
                reactors: config.reactors,
                dispatchers: config.dispatchers,
                max_dispatch_queue: config.max_dispatch_queue.max(1),
            },
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle usable from other threads while (and after) the server
    /// runs.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
            addr: self.addr,
        }
    }

    /// Serves until [`ServerHandle::shutdown`] is called, then drains:
    /// runner threads finish every accepted job (all in-flight grid
    /// points) before this returns.
    ///
    /// # Errors
    ///
    /// Fatal accept-loop failures only; per-connection errors are
    /// answered on the wire and logged to stderr.
    pub fn run(self) -> std::io::Result<()> {
        let mut runner_handles = Vec::with_capacity(self.runners);
        let queue_rx = Arc::new(Mutex::new(self.queue_rx));
        for _ in 0..self.runners {
            let shared = Arc::clone(&self.shared);
            let rx = Arc::clone(&queue_rx);
            runner_handles.push(std::thread::spawn(move || run_jobs(&shared, &rx)));
        }

        let router = Arc::new(api::build_router(&self.shared));
        let served = if self.mode.reactor_effective() {
            #[cfg(target_os = "linux")]
            {
                crate::reactor::serve(self.listener, &self.shared, router, &self.reactor)
            }
            #[cfg(not(target_os = "linux"))]
            {
                unreachable!("reactor mode never resolves off Linux")
            }
        } else {
            serve_blocking(&self.listener, &self.shared, &router);
            Ok(())
        };

        // Drain: joining the runners waits for every accepted job.
        for h in runner_handles {
            let _ = h.join();
        }
        // Stop the monitor collector last: its thread joins on drop.
        if let Some(monitor) = &self.shared.monitor {
            monitor.collector.lock().unwrap().take();
        }
        served
    }
}

/// The blocking accept loop: one detached thread per admitted
/// connection.
fn serve_blocking(listener: &TcpListener, shared: &Arc<Shared>, router: &Arc<Router>) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) || shared.killed.load(Ordering::SeqCst) {
            break;
        }
        match conn {
            Ok(mut stream) => {
                // The ticket is taken on the acceptor, not inside the
                // spawned thread, so the connection count stays exact
                // even when a handler panics the thread.
                let ticket = ConnTicket::new(shared);
                if ticket.over_capacity() {
                    let _ = write_response(
                        &mut stream,
                        api::error_response(503, "unavailable", "too many connections"),
                        false,
                    );
                    continue;
                }
                let shared = Arc::clone(shared);
                let router = Arc::clone(router);
                std::thread::spawn(move || serve_connection(&shared, &router, ticket, stream));
            }
            Err(e) => eprintln!("predllc-serve: accept failed: {e}"),
        }
    }
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates graceful shutdown: no new connections or submissions;
    /// accepted jobs drain. Idempotent.
    pub fn shutdown(&self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Closing the queue lets runner threads exit once drained.
        self.shared.queue.lock().unwrap().take();
        // Wake parked reactors, then the accept loop, so both observe
        // the flag.
        wake_all(&self.shared);
        let _ = TcpStream::connect(self.addr);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Simulates an abrupt crash for worker-loss testing: the server
    /// stops accepting, drops connections without responses and drains
    /// nothing — the opposite of [`ServerHandle::shutdown`]. Idempotent.
    pub fn kill(&self) {
        kill_shared(&self.shared);
    }

    /// Whether the server was killed (by [`ServerHandle::kill`] or the
    /// [`ServerConfig::fail_after_points`] fault injector).
    pub fn was_killed(&self) -> bool {
        self.shared.killed.load(Ordering::SeqCst)
    }

    /// A point-in-time copy of the service counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.registry.metrics.snapshot()
    }

    /// The server's tracer (the one passed via [`ServerConfig::tracer`]
    /// when supplied) — drain it into a `--trace-out` file, or inspect
    /// spans in tests.
    pub fn tracer(&self) -> Arc<Tracer> {
        Arc::clone(&self.shared.tracer)
    }

    /// Looks a job up by its hex id.
    pub fn job(&self, hex_id: &str) -> Option<Arc<Job>> {
        self.shared.registry.get(hex_id)
    }

    /// The monitor's time-series store, when monitoring is configured
    /// — lets tests and embedders read collected history directly.
    pub fn series_store(&self) -> Option<Arc<SeriesStore>> {
        self.shared.monitor.as_ref().map(|m| Arc::clone(&m.store))
    }

    /// Every SLO rule's current status, when monitoring is configured.
    pub fn alert_statuses(&self) -> Option<Vec<predllc_obs::AlertStatus>> {
        self.shared.monitor.as_ref().map(|m| m.slo.statuses())
    }
}

/// The runner loop: take jobs until the queue closes, run each through
/// the server's [`SpecRunner`], park the grid in the registry.
fn run_jobs(shared: &Shared, rx: &Mutex<mpsc::Receiver<Arc<Job>>>) {
    loop {
        // Hold the receiver lock only while waiting for the next job so
        // sibling runners can wait too.
        let job = match rx.lock().unwrap().recv() {
            Ok(job) => job,
            Err(_) => return, // queue closed and drained
        };
        if shared.killed.load(Ordering::SeqCst) {
            // A crashed server runs nothing; unregister the job.
            shared.registry.abandon(&job, "service was killed");
            continue;
        }
        let metrics = &shared.registry.metrics;
        job.start();
        // Gauge transitions run dec-before-inc (snapshot discipline).
        metrics.jobs_queued.dec();
        metrics.jobs_running.inc();
        let queue_wait = job.submitted.elapsed();
        metrics
            .registry
            .histogram(
                "predllc_job_queue_wait_ns",
                "Time a job waited between submission and a runner picking it up, nanoseconds.",
            )
            .record(queue_wait);
        let ctx = TraceCtx::new(&shared.tracer, job.trace);
        ctx.instant(
            "serve.job.dequeued",
            fields(&[
                ("job", job.id.to_hex().into()),
                ("queue_wait_ns", duration_ns(queue_wait).into()),
            ]),
        );
        let observe = |done: usize, _total: usize| job.record_progress(done);
        let outcome = {
            let _span = ctx.span("serve.job.run", fields(&[("job", job.id.to_hex().into())]));
            shared
                .runner
                .run_spec_traced(&job.spec, &observe, Some(ctx))
        };
        match outcome {
            Ok(outcome) => {
                // The grid rows themselves are what the registry caches;
                // result documents render lazily, chunk by chunk, when a
                // client asks — identical submissions still yield
                // identical documents (no wall time in the JSON).
                for row in &outcome.grid {
                    if let Some(attr) = &row.attribution {
                        record_component_cycles(metrics, &attr.components);
                    }
                }
                let attribution = job
                    .spec
                    .attribution
                    .then(|| Arc::new(render_attribution_json(&job.spec.name, &outcome.grid)));
                let result = JobResult {
                    name: job.spec.name.clone(),
                    threads_label: shared.runner.threads_label(),
                    grid: Arc::new(outcome.grid),
                    search: outcome.search,
                    attribution,
                    unique_points: outcome.unique_points,
                };
                metrics.points_simulated.add(result.unique_points as u64);
                metrics.jobs_running.dec();
                metrics.jobs_done.inc();
                job.finish(result);
            }
            Err(e) => {
                metrics.jobs_running.dec();
                metrics.jobs_failed.inc();
                job.fail(e);
            }
        }
    }
}

/// `Duration` → saturated nanoseconds.
fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Feeds an attributed measurement's exact per-component cycle totals
/// into the `predllc_latency_component_cycles{component="..."}` counter
/// family — the scrape/history/dashboard view of "where did my cycles
/// go". Attribution-off runs never touch the family, so the exposition
/// is unchanged for them.
pub(crate) fn record_component_cycles(metrics: &Metrics, components: &ComponentSet) {
    for (component, cycles) in components.iter() {
        metrics
            .registry
            .counter_with(
                "predllc_latency_component_cycles",
                "Exact simulated cycles attributed to each latency component.",
                "component",
                component.label(),
            )
            .add(cycles.as_u64());
    }
}

/// Serves one connection in blocking mode: a keep-alive loop of
/// request → dispatch → response, everything inline on this thread.
fn serve_connection(shared: &Shared, router: &Router, ticket: ConnTicket, stream: TcpStream) {
    let _ticket = ticket;
    let _ = stream.set_read_timeout(Some(shared.idle_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let request = match read_request(&mut reader, &shared.limits) {
            Ok(Some(req)) => req,
            Ok(None) => return,              // clean close between requests
            Err(HttpError::Io(_)) => return, // peer gone or idle timeout
            Err(e) => {
                if let Some(resp) = api::parse_error_response(&e) {
                    let _ = write_response(&mut writer, resp, false);
                }
                return;
            }
        };
        match api::dispatch(shared, router, &request) {
            Dispatch::Hangup => return, // killed, or the fault injector tripped
            Dispatch::Reply(response) => {
                let keep_alive = request.keep_alive && !shared.shutdown.load(Ordering::SeqCst);
                // HTTP/1.0 peers don't speak chunked framing; collapse
                // streams to content-length for them.
                let response = if request.http11 {
                    response
                } else {
                    response.materialized()
                };
                if write_response(&mut writer, response, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{Client, Format};
    use crate::registry::JobStatus;

    const SPEC: &str = r#"{
        "name": "server-test", "cores": 2,
        "configs": [{"partition": {"kind": "shared", "sets": 1, "ways": 4, "mode": "SS"}}],
        "workloads": [{"kind": "uniform", "range_bytes": 1024, "ops": 60, "seed": 5}]
    }"#;

    fn start(config: ServerConfig) -> (ServerHandle, std::thread::JoinHandle<()>) {
        let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral");
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run().expect("serve"));
        (handle, join)
    }

    #[test]
    fn serves_health_metrics_and_a_job_end_to_end() {
        let (handle, join) = start(ServerConfig {
            threads: 2,
            ..ServerConfig::default()
        });
        let mut client = Client::new(handle.addr());
        assert_eq!(client.healthz().unwrap(), "ok\n");

        let submitted = client.submit(SPEC).unwrap();
        assert!(!submitted.cached);
        let done = client
            .wait_done(&submitted.id, Duration::from_secs(120))
            .unwrap();
        assert_eq!(done.status, "done");
        assert_eq!(done.points_done, done.points_total);
        let csv = client
            .results(&submitted.id, Format::Csv)
            .unwrap()
            .text()
            .unwrap();
        assert!(csv.starts_with("config,workload,backend,"));
        let metrics = client.metrics().unwrap();
        assert!(metrics.contains("predllc_jobs_done 1"));

        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn shutdown_drains_accepted_jobs_in_blocking_mode() {
        // Blocking mode, so the preserved fallback keeps end-to-end
        // coverage (the rest of the suite runs the reactor default).
        let (handle, join) = start(ServerConfig {
            threads: 1,
            mode: ServeMode::Blocking,
            ..ServerConfig::default()
        });
        let mut client = Client::new(handle.addr());
        let a = client.submit(SPEC).unwrap();
        let b = client
            .submit(&SPEC.replace("\"seed\": 5", "\"seed\": 6"))
            .unwrap();
        assert_ne!(a.id, b.id);
        // Shut down immediately: both accepted jobs must still finish.
        handle.shutdown();
        join.join().unwrap();
        for id in [&a.id, &b.id] {
            let job = handle.job(id).expect("job registered");
            assert_eq!(job.status(), JobStatus::Done, "job {id} did not drain");
        }
        let m = handle.metrics();
        assert_eq!(m.jobs_done, 2);
        assert_eq!(m.jobs_running, 0);
        assert_eq!(m.jobs_queued, 0);
    }

    #[test]
    fn submissions_after_shutdown_are_refused() {
        let (handle, join) = start(ServerConfig::default());
        handle.shutdown();
        join.join().unwrap();
        assert!(handle.is_shutting_down());
        // The listener is gone; a fresh client cannot connect at all, or
        // (if racing the close) gets a 503 — either way, no job.
        let mut client = Client::new(handle.addr());
        assert!(client.submit(SPEC).is_err());
        assert_eq!(handle.metrics().cache_misses, 0);
    }
}
