//! The threaded HTTP server: accept loop, connection handling, routing,
//! and the job runners that feed the work-stealing experiment executor.
//!
//! Concurrency model:
//!
//! * one **accept** thread (the caller of [`Server::run`]) hands each
//!   connection to its own detached thread — connections are cheap,
//!   requests on them are served sequentially with keep-alive;
//! * a small pool of **runner** threads drains the job queue; each job
//!   runs through the server's [`SpecRunner`] — the local one schedules
//!   grid points on a shared [`Executor`], a fleet coordinator shards
//!   them across workers — so grid points, not jobs, stay the unit of
//!   simulation parallelism;
//! * the **point endpoints** (`POST /v1/points`, `GET
//!   /v1/points/{fingerprint}`) make any server a fleet worker: one
//!   grid point in, exact-integer measurements out, answered from a
//!   bounded content-addressed point cache when possible;
//! * **graceful shutdown** ([`ServerHandle::shutdown`]) stops accepting
//!   connections and submissions, then drains: every job already
//!   accepted runs to completion (all its grid points) before
//!   [`Server::run`] returns. [`ServerHandle::kill`] is the opposite —
//!   an abrupt simulated crash for worker-loss testing.

use std::collections::{HashMap, VecDeque};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use predllc_obs::series::registry_samples;
use predllc_obs::slo::Rule;
use predllc_obs::{
    fields, render_jsonl, Collector, CollectorConfig, Compare, Counter, SampleValue, SeriesStore,
    SloRuntime, TraceCtx, TraceId, Tracer, TRACE_HEADER,
};

use predllc_explore::hash::Fingerprint;
use predllc_explore::report::{render_attribution_json, render_csv, render_json};
use predllc_explore::{
    measure, run_spec_observed, run_spec_traced, Executor, ExperimentSpec, GridResult, PointError,
    PointRequest, SearchOutcome,
};

use predllc_core::ComponentSet;

use crate::http::{read_request, write_response, HttpError, Limits, Request, Response};
use crate::registry::{Job, JobResult, JobStatus, Metrics, MetricsSnapshot, Registry, SubmitError};
use predllc_explore::json::{render_string, Json};

/// Continuous-monitoring configuration: when set on
/// [`ServerConfig::monitor`], the server runs an in-process
/// [`Collector`] that snapshots `/metrics` into ring-buffered
/// time-series, evaluates SLO rules on every tick, and serves
/// `GET /v1/metrics/history`, `GET /v1/alerts` and `GET /dashboard`.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Collection interval.
    pub interval: Duration,
    /// Samples kept per series (drop-oldest past this).
    pub capacity: usize,
    /// Maximum distinct series collected.
    pub max_series: usize,
    /// SLO rules evaluated on every tick.
    pub rules: Vec<Rule>,
}

impl Default for MonitorConfig {
    /// One sample per second, ten minutes of history, and the stock
    /// serve rules ([`default_rules`]).
    fn default() -> Self {
        MonitorConfig {
            interval: Duration::from_secs(1),
            capacity: 600,
            max_series: 512,
            rules: default_rules(),
        }
    }
}

impl MonitorConfig {
    /// The default monitor at a different collection interval.
    pub fn with_interval(interval: Duration) -> MonitorConfig {
        MonitorConfig {
            interval,
            ..MonitorConfig::default()
        }
    }
}

/// The stock serve SLO rules: sustained queue depth and sustained p99
/// request latency.
pub fn default_rules() -> Vec<Rule> {
    vec![
        Rule::threshold("queue-depth", "predllc_jobs_queued", Compare::Above, 100.0)
            .for_duration(Duration::from_secs(5)),
        // The p99 series is derived per endpoint by the collector from
        // the request-latency histogram; the family selector covers
        // every endpoint label. 500ms in nanoseconds.
        Rule::threshold(
            "p99-request-latency",
            "predllc_http_request_duration_ns_p99",
            Compare::Above,
            500_000_000.0,
        )
        .for_duration(Duration::from_secs(5)),
    ]
}

/// Tunables for a server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads of the shared experiment [`Executor`] (`0` = one
    /// per available core).
    pub threads: usize,
    /// Concurrent job runners (jobs beyond this queue up).
    pub runners: usize,
    /// HTTP parsing bounds.
    pub limits: Limits,
    /// Per-connection idle read timeout; an idle keep-alive connection
    /// is closed after this long.
    pub idle_timeout: Duration,
    /// Most jobs the registry caches at once; past this the oldest
    /// finished job is evicted per new submission (see
    /// [`Registry::with_capacity`]).
    pub max_jobs: usize,
    /// Most simultaneously open connections; excess connections are
    /// answered `503` and closed.
    pub max_connections: usize,
    /// Most point measurements the shared point cache holds; past this
    /// the oldest entry is evicted (an evicted point simply
    /// re-simulates).
    pub max_points: usize,
    /// Fault injection for worker-loss tests: after this many point
    /// requests answered successfully, the next one crashes the server
    /// mid-response ([`ServerHandle::kill`] semantics — no response, no
    /// drain). `None` (the default) disables it.
    pub fail_after_points: Option<u64>,
    /// The tracer request/job spans record into. `None` (the default)
    /// gives the server its own; pass one to share it with a fleet
    /// coordinator or to drain it into a `--trace-out` file.
    pub tracer: Option<Arc<Tracer>>,
    /// Continuous monitoring: time-series collection, SLO alerts and
    /// the dashboard. `None` (the default) disables the collector
    /// thread and the three monitoring endpoints answer `404`.
    pub monitor: Option<MonitorConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 0,
            runners: 1,
            limits: Limits::default(),
            idle_timeout: Duration::from_secs(30),
            max_jobs: 1024,
            max_connections: 256,
            max_points: 4096,
            fail_after_points: None,
            tracer: None,
            monitor: None,
        }
    }
}

/// The outcome of running one experiment spec, however it was executed.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// One result per declared grid point, declaration order.
    pub grid: Vec<GridResult>,
    /// The partition-search outcome, when the spec declared one.
    pub search: Option<SearchOutcome>,
    /// Physically distinct grid points resolved.
    pub unique_points: usize,
}

/// How a server executes a whole experiment spec: locally on an
/// [`Executor`], or sharded across fleet workers by a coordinator.
///
/// Implementations must be deterministic functions of the spec — the
/// registry serves a job's rendered result forever, and a fleet
/// coordinator's contract is bit-identity with the local runner.
pub trait SpecRunner: Send + Sync {
    /// Runs `spec` end to end, reporting grid progress through
    /// `observe(done, unique_total)` (possibly from many threads).
    ///
    /// # Errors
    ///
    /// The rendered failure message served by the job status endpoint —
    /// positioned (naming the failing configuration/workload) wherever
    /// the underlying error is.
    fn run_spec(
        &self,
        spec: &ExperimentSpec,
        observe: &(dyn Fn(usize, usize) + Sync),
    ) -> Result<RunOutcome, String>;

    /// Like [`SpecRunner::run_spec`], recording spans under `ctx`
    /// (when given) as the run progresses. The default forwards to
    /// `run_spec` and records nothing extra; runners with interesting
    /// internal stages — the local executor's queue-wait/compute
    /// split, the fleet coordinator's dispatch pipeline — override it.
    /// Tracing never alters what is computed.
    fn run_spec_traced(
        &self,
        spec: &ExperimentSpec,
        observe: &(dyn Fn(usize, usize) + Sync),
        ctx: Option<TraceCtx<'_>>,
    ) -> Result<RunOutcome, String> {
        let _ = ctx;
        self.run_spec(spec, observe)
    }

    /// The thread count stamped into rendered JSON reports. A fleet
    /// coordinator reports `1` so documents are byte-identical across
    /// fleet shapes.
    fn threads_label(&self) -> usize;
}

/// The in-process [`SpecRunner`]: every grid point runs on this
/// server's own work-stealing [`Executor`].
pub struct LocalRunner {
    exec: Executor,
}

impl LocalRunner {
    /// A runner over `threads` executor threads (`0` = one per core).
    pub fn new(threads: usize) -> LocalRunner {
        LocalRunner {
            exec: Executor::new(threads),
        }
    }
}

impl SpecRunner for LocalRunner {
    fn run_spec(
        &self,
        spec: &ExperimentSpec,
        observe: &(dyn Fn(usize, usize) + Sync),
    ) -> Result<RunOutcome, String> {
        let report = run_spec_observed(spec, &self.exec, observe).map_err(|e| e.to_string())?;
        Ok(RunOutcome {
            grid: report.grid,
            search: report.search,
            unique_points: report.unique_points,
        })
    }

    fn run_spec_traced(
        &self,
        spec: &ExperimentSpec,
        observe: &(dyn Fn(usize, usize) + Sync),
        ctx: Option<TraceCtx<'_>>,
    ) -> Result<RunOutcome, String> {
        let report = run_spec_traced(spec, &self.exec, observe, ctx).map_err(|e| e.to_string())?;
        Ok(RunOutcome {
            grid: report.grid,
            search: report.search,
            unique_points: report.unique_points,
        })
    }

    fn threads_label(&self) -> usize {
        self.exec.threads()
    }
}

/// The bounded content-addressed point cache shared by the point
/// endpoints: fingerprint → rendered measurement JSON (rendered once,
/// served byte-identically forever).
struct PointCache {
    by_fp: HashMap<Fingerprint, String>,
    /// Insertion order; eviction drops the oldest entry.
    order: VecDeque<Fingerprint>,
    capacity: usize,
}

impl PointCache {
    fn new(capacity: usize) -> PointCache {
        PointCache {
            by_fp: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    fn get(&self, fp: &Fingerprint) -> Option<&str> {
        self.by_fp.get(fp).map(String::as_str)
    }

    fn insert(&mut self, fp: Fingerprint, rendered: String) {
        if self.by_fp.contains_key(&fp) {
            return;
        }
        if self.by_fp.len() >= self.capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.by_fp.remove(&oldest);
            }
        }
        self.by_fp.insert(fp, rendered);
        self.order.push_back(fp);
    }
}

/// State shared by the accept loop, connection threads, runners and
/// handles.
struct Shared {
    registry: Registry,
    runner: Arc<dyn SpecRunner>,
    shutdown: AtomicBool,
    /// Set by [`ServerHandle::kill`] or the fault injector: the server
    /// died abruptly — drop connections, drain nothing.
    killed: AtomicBool,
    /// Present while the service accepts work; dropped on shutdown so
    /// runner threads drain the queue and exit.
    queue: Mutex<Option<mpsc::Sender<Arc<Job>>>>,
    limits: Limits,
    idle_timeout: Duration,
    /// Simultaneously open connections, bounded by `max_connections`.
    connections: std::sync::atomic::AtomicUsize,
    max_connections: usize,
    /// Point measurements shared across workers of a fleet.
    points: Mutex<PointCache>,
    /// See [`ServerConfig::fail_after_points`].
    fail_after_points: Option<u64>,
    /// Point requests answered successfully (the fault injector's
    /// odometer).
    points_answered: AtomicU64,
    /// Where request/job/point spans are recorded.
    tracer: Arc<Tracer>,
    /// Mirror of [`Tracer::dropped`] so ring overflow is visible on
    /// `/metrics`; refreshed before every render and collector tick.
    trace_dropped: Counter,
    /// The continuous-monitoring state, when configured.
    monitor: Option<MonitorState>,
    /// Our own bound address, to wake the accept loop on kill.
    addr: SocketAddr,
}

/// The running monitor: the collector's store and SLO runtime (shared
/// with the endpoints) plus the collector handle itself, parked here
/// so [`Server::run`] can stop the thread on exit.
struct MonitorState {
    store: Arc<SeriesStore>,
    slo: Arc<SloRuntime>,
    collector: Mutex<Option<Collector>>,
    interval_ms: u64,
}

/// Refreshes the `predllc_trace_dropped_total` mirror from the tracer.
fn refresh_trace_dropped(shared: &Shared) {
    shared.trace_dropped.set(shared.tracer.dropped());
}

/// Simulates an abrupt crash: stop accepting, close the job queue, wake
/// the accept loop. Idempotent.
fn kill_shared(shared: &Shared) {
    if shared.killed.swap(true, Ordering::SeqCst) {
        return;
    }
    shared.queue.lock().unwrap().take();
    let _ = TcpStream::connect(shared.addr);
}

/// Decrements the live-connection count however the connection thread
/// exits.
struct ConnectionGuard<'a>(&'a Shared);

impl Drop for ConnectionGuard<'_> {
    fn drop(&mut self) {
        self.0
            .connections
            .fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
    }
}

/// A running experiment service bound to a TCP address.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
    queue_rx: mpsc::Receiver<Arc<Job>>,
    runners: usize,
}

/// A cloneable handle for talking to a running server from other
/// threads: trigger shutdown, read metrics, look jobs up.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
}

impl Server {
    /// Binds the service (pass port `0` for an ephemeral port, then read
    /// it back with [`Server::local_addr`]) with the in-process
    /// [`LocalRunner`].
    ///
    /// # Errors
    ///
    /// Any socket-level failure to bind.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> std::io::Result<Server> {
        let runner = Arc::new(LocalRunner::new(config.threads));
        Server::bind_with(addr, config, runner, Arc::new(Metrics::default()))
    }

    /// Like [`Server::bind`], with an explicit [`SpecRunner`] and an
    /// externally owned counter set — how a fleet coordinator serves
    /// the experiment API over its dispatch layer while `/metrics`
    /// reports both sides.
    ///
    /// # Errors
    ///
    /// Any socket-level failure to bind.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        runner: Arc<dyn SpecRunner>,
        metrics: Arc<Metrics>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let (tx, rx) = mpsc::channel();
        let tracer = config.tracer.unwrap_or_else(|| Arc::new(Tracer::new()));
        let trace_dropped = metrics.registry.counter(
            "predllc_trace_dropped_total",
            "Trace events dropped because a tracer ring buffer was full.",
        );
        let alerts_firing = metrics
            .registry
            .gauge("predllc_alerts_firing", "SLO rules currently firing.");
        let monitor = config.monitor.map(|mc| {
            let slo = Arc::new(
                SloRuntime::new(mc.rules)
                    .with_gauge(alerts_firing)
                    .with_tracer(Arc::clone(&tracer), TraceId::fresh()),
            );
            let sampler = {
                let metrics = Arc::clone(&metrics);
                let tracer = Arc::clone(&tracer);
                let trace_dropped = trace_dropped.clone();
                move || {
                    trace_dropped.set(tracer.dropped());
                    registry_samples(&metrics.registry)
                }
            };
            let collector = Collector::start(
                CollectorConfig {
                    interval: mc.interval,
                    capacity: mc.capacity,
                    max_series: mc.max_series,
                },
                sampler,
                Some(Arc::clone(&slo)),
            );
            MonitorState {
                store: collector.store(),
                slo,
                collector: Mutex::new(Some(collector)),
                interval_ms: u64::try_from(mc.interval.as_millis()).unwrap_or(u64::MAX),
            }
        });
        let shared = Arc::new(Shared {
            registry: Registry::with_metrics(config.max_jobs, metrics),
            runner,
            shutdown: AtomicBool::new(false),
            killed: AtomicBool::new(false),
            queue: Mutex::new(Some(tx)),
            limits: config.limits,
            idle_timeout: config.idle_timeout,
            connections: std::sync::atomic::AtomicUsize::new(0),
            max_connections: config.max_connections.max(1),
            points: Mutex::new(PointCache::new(config.max_points)),
            fail_after_points: config.fail_after_points,
            points_answered: AtomicU64::new(0),
            tracer,
            trace_dropped,
            monitor,
            addr,
        });
        Ok(Server {
            listener,
            addr,
            shared,
            queue_rx: rx,
            runners: config.runners.max(1),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle usable from other threads while (and after) the server
    /// runs.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
            addr: self.addr,
        }
    }

    /// Serves until [`ServerHandle::shutdown`] is called, then drains:
    /// runner threads finish every accepted job (all in-flight grid
    /// points) before this returns.
    ///
    /// # Errors
    ///
    /// Fatal accept-loop failures only; per-connection errors are
    /// answered on the wire and logged to stderr.
    pub fn run(self) -> std::io::Result<()> {
        let mut runner_handles = Vec::with_capacity(self.runners);
        let queue_rx = Arc::new(Mutex::new(self.queue_rx));
        for _ in 0..self.runners {
            let shared = Arc::clone(&self.shared);
            let rx = Arc::clone(&queue_rx);
            runner_handles.push(std::thread::spawn(move || run_jobs(&shared, &rx)));
        }

        for conn in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst)
                || self.shared.killed.load(Ordering::SeqCst)
            {
                break;
            }
            match conn {
                Ok(mut stream) => {
                    // Bound the connection-thread count: over the cap,
                    // answer 503 inline and close instead of spawning.
                    let live = self
                        .shared
                        .connections
                        .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    if live >= self.shared.max_connections {
                        self.shared
                            .connections
                            .fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
                        let _ = write_response(
                            &mut stream,
                            &error_response(503, "too many connections"),
                            false,
                        );
                        continue;
                    }
                    let shared = Arc::clone(&self.shared);
                    std::thread::spawn(move || {
                        let _guard = ConnectionGuard(&shared);
                        serve_connection(&shared, stream);
                    });
                }
                Err(e) => eprintln!("predllc-serve: accept failed: {e}"),
            }
        }
        // Drain: joining the runners waits for every accepted job.
        for h in runner_handles {
            let _ = h.join();
        }
        // Stop the monitor collector last: its thread joins on drop.
        if let Some(monitor) = &self.shared.monitor {
            monitor.collector.lock().unwrap().take();
        }
        Ok(())
    }
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates graceful shutdown: no new connections or submissions;
    /// accepted jobs drain. Idempotent.
    pub fn shutdown(&self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Closing the queue lets runner threads exit once drained.
        self.shared.queue.lock().unwrap().take();
        // Wake the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Simulates an abrupt crash for worker-loss testing: the server
    /// stops accepting, drops connections without responses and drains
    /// nothing — the opposite of [`ServerHandle::shutdown`]. Idempotent.
    pub fn kill(&self) {
        kill_shared(&self.shared);
    }

    /// Whether the server was killed (by [`ServerHandle::kill`] or the
    /// [`ServerConfig::fail_after_points`] fault injector).
    pub fn was_killed(&self) -> bool {
        self.shared.killed.load(Ordering::SeqCst)
    }

    /// A point-in-time copy of the service counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.registry.metrics.snapshot()
    }

    /// The server's tracer (the one passed via [`ServerConfig::tracer`]
    /// when supplied) — drain it into a `--trace-out` file, or inspect
    /// spans in tests.
    pub fn tracer(&self) -> Arc<Tracer> {
        Arc::clone(&self.shared.tracer)
    }

    /// Looks a job up by its hex id.
    pub fn job(&self, hex_id: &str) -> Option<Arc<Job>> {
        self.shared.registry.get(hex_id)
    }

    /// The monitor's time-series store, when monitoring is configured
    /// — lets tests and embedders read collected history directly.
    pub fn series_store(&self) -> Option<Arc<SeriesStore>> {
        self.shared.monitor.as_ref().map(|m| Arc::clone(&m.store))
    }

    /// Every SLO rule's current status, when monitoring is configured.
    pub fn alert_statuses(&self) -> Option<Vec<predllc_obs::AlertStatus>> {
        self.shared.monitor.as_ref().map(|m| m.slo.statuses())
    }
}

/// The runner loop: take jobs until the queue closes, run each through
/// the server's [`SpecRunner`], cache rendered results.
fn run_jobs(shared: &Shared, rx: &Mutex<mpsc::Receiver<Arc<Job>>>) {
    loop {
        // Hold the receiver lock only while waiting for the next job so
        // sibling runners can wait too.
        let job = match rx.lock().unwrap().recv() {
            Ok(job) => job,
            Err(_) => return, // queue closed and drained
        };
        if shared.killed.load(Ordering::SeqCst) {
            // A crashed server runs nothing; unregister the job.
            shared.registry.abandon(&job, "service was killed");
            continue;
        }
        let metrics = &shared.registry.metrics;
        job.start();
        // Gauge transitions run dec-before-inc (snapshot discipline).
        metrics.jobs_queued.dec();
        metrics.jobs_running.inc();
        let queue_wait = job.submitted.elapsed();
        metrics
            .registry
            .histogram(
                "predllc_job_queue_wait_ns",
                "Time a job waited between submission and a runner picking it up, nanoseconds.",
            )
            .record(queue_wait);
        let ctx = TraceCtx::new(&shared.tracer, job.trace);
        ctx.instant(
            "serve.job.dequeued",
            fields(&[
                ("job", job.id.to_hex().into()),
                ("queue_wait_ns", duration_ns(queue_wait).into()),
            ]),
        );
        let observe = |done: usize, _total: usize| job.record_progress(done);
        let outcome = {
            let _span = ctx.span("serve.job.run", fields(&[("job", job.id.to_hex().into())]));
            shared
                .runner
                .run_spec_traced(&job.spec, &observe, Some(ctx))
        };
        match outcome {
            Ok(outcome) => {
                // Rendered once; every later fetch serves these bytes.
                // No wall time in the JSON, so identical submissions
                // yield identical documents.
                let result = JobResult {
                    csv: render_csv(&outcome.grid),
                    json: render_json(
                        &job.spec.name,
                        shared.runner.threads_label(),
                        None,
                        &outcome.grid,
                        outcome.search.as_ref(),
                    ),
                    attribution: job
                        .spec
                        .attribution
                        .then(|| render_attribution_json(&job.spec.name, &outcome.grid)),
                    unique_points: outcome.unique_points,
                };
                for row in &outcome.grid {
                    if let Some(attr) = &row.attribution {
                        record_component_cycles(metrics, &attr.components);
                    }
                }
                metrics.points_simulated.add(outcome.unique_points as u64);
                metrics.jobs_running.dec();
                metrics.jobs_done.inc();
                job.finish(result);
            }
            Err(e) => {
                metrics.jobs_running.dec();
                metrics.jobs_failed.inc();
                job.fail(e);
            }
        }
    }
}

/// `Duration` → saturated nanoseconds.
fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Feeds an attributed measurement's exact per-component cycle totals
/// into the `predllc_latency_component_cycles{component="..."}` counter
/// family — the scrape/history/dashboard view of "where did my cycles
/// go". Attribution-off runs never touch the family, so the exposition
/// is unchanged for them.
fn record_component_cycles(metrics: &Metrics, components: &ComponentSet) {
    for (component, cycles) in components.iter() {
        metrics
            .registry
            .counter_with(
                "predllc_latency_component_cycles",
                "Exact simulated cycles attributed to each latency component.",
                "component",
                component.label(),
            )
            .add(cycles.as_u64());
    }
}

/// Serves one connection: a keep-alive loop of request → route →
/// response.
fn serve_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.idle_timeout));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let request = match read_request(&mut reader, &shared.limits) {
            Ok(Some(req)) => req,
            Ok(None) => return,              // clean close between requests
            Err(HttpError::Io(_)) => return, // peer gone or idle timeout
            Err(HttpError::TooLarge(what)) => {
                let status = if what == "body" { 413 } else { 431 };
                let _ = write_response(&mut writer, &error_response(status, what), false);
                return;
            }
            Err(HttpError::Malformed(what)) => {
                let _ = write_response(&mut writer, &error_response(400, what), false);
                return;
            }
        };
        if shared.killed.load(Ordering::SeqCst) {
            return; // a crashed server answers nothing
        }
        shared.registry.metrics.http_requests.inc();
        let started = Instant::now();
        let Some(response) = route(shared, &request) else {
            return; // the fault injector tripped mid-response
        };
        shared
            .registry
            .metrics
            .endpoint_latency(endpoint_label(&request))
            .record(started.elapsed());
        let keep_alive = request.keep_alive && !shared.shutdown.load(Ordering::SeqCst);
        if write_response(&mut writer, &response, keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}

/// A JSON error body: `{"error": "..."}`.
fn error_response(status: u16, message: &str) -> Response {
    Response::json(status, format!("{{\"error\":{}}}", render_string(message)))
}

/// Routes one request to its endpoint. `None` means the fault injector
/// tripped: the connection dies with no response, like a real crash.
fn route(shared: &Shared, req: &Request) -> Option<Response> {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    Some(match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => Response::text("ok\n"),
        // The exposition content type Prometheus scrapers negotiate on;
        // `Metrics::render` guarantees the trailing newline.
        ("GET", ["metrics"]) => {
            refresh_trace_dropped(shared);
            Response::new(
                200,
                "text/plain; version=0.0.4",
                shared.registry.metrics.render(),
            )
        }
        ("GET", ["v1", "metrics", "history"]) => metrics_history(shared, req),
        ("GET", ["v1", "alerts"]) => alerts(shared),
        ("GET", ["dashboard"]) => dashboard(shared),
        ("POST", ["v1", "experiments"]) => submit(shared, req),
        ("GET", ["v1", "experiments", id]) => status(shared, id),
        ("GET", ["v1", "experiments", id, "results"]) => results(shared, id, req),
        ("GET", ["v1", "experiments", id, "attribution"]) => attribution_results(shared, id),
        ("GET", ["v1", "jobs", id, "trace"]) => job_trace(shared, id),
        ("POST", ["v1", "points"]) => return point_post(shared, req),
        ("GET", ["v1", "points", fp]) => point_get(shared, fp),
        (_, ["healthz" | "metrics" | "dashboard"])
        | (_, ["v1", "experiments", ..])
        | (_, ["v1", "jobs", ..])
        | (_, ["v1", "points", ..])
        | (_, ["v1", "metrics", ..])
        | (_, ["v1", "alerts"]) => error_response(405, "method not allowed"),
        _ => error_response(404, "no such endpoint"),
    })
}

/// The configured monitor, or the `404` explaining how to enable it.
fn monitor_of(shared: &Shared) -> Result<&MonitorState, Response> {
    shared
        .monitor
        .as_ref()
        .ok_or_else(|| error_response(404, "monitoring is not enabled (set ServerConfig::monitor)"))
}

/// A positioned query-string rejection: `{"error": "...", "kind":
/// "query"}` at `400`, the error message naming the offending
/// parameter so clients see *which* one was bad.
fn query_error(key: &str, raw: &str, why: &str) -> Response {
    Response::json(
        400,
        format!(
            "{{\"error\":{},\"kind\":\"query\"}}",
            render_string(&format!("query parameter '{key}'={raw}: {why}"))
        ),
    )
}

/// Parses a history query parameter: absent means `default`, anything
/// explicit must be a positive integer. Zero and non-numeric values are
/// rejected ([`query_error`]) rather than silently coerced — a
/// `window=0` or `step=banana` request gets a `400` naming the
/// parameter, not an empty-looking history.
fn history_param(req: &Request, key: &str, default: u64) -> Result<u64, Response> {
    match req.query_param(key) {
        None => Ok(default),
        Some(raw) => match raw.parse::<u64>() {
            Ok(0) => Err(query_error(key, raw, "must be a positive integer")),
            Ok(v) => Ok(v),
            Err(_) => Err(query_error(key, raw, "must be a positive integer")),
        },
    }
}

/// Converts a collected sample value to JSON (exact integers stay
/// integers).
fn sample_json(v: SampleValue) -> Json {
    match v {
        SampleValue::U64(v) => Json::UInt(v),
        SampleValue::F64(f) => Json::Float(f),
    }
}

/// `GET /v1/metrics/history?window=<ms>&step=<ms>` — every collected
/// series' samples in the window, downsampled to one per step:
/// `{"now_ms", "window_ms", "step_ms", "interval_ms", "series":
/// [{"name", "samples": [[t_ms, value], ...]}, ...]}`. Explicit
/// `window`/`step` values must be positive integers; zero or
/// non-numeric gets a positioned `400` ([`history_param`]).
fn metrics_history(shared: &Shared, req: &Request) -> Response {
    let monitor = match monitor_of(shared) {
        Ok(m) => m,
        Err(resp) => return resp,
    };
    let window_ms = match history_param(req, "window", 300_000) {
        Ok(w) => w,
        Err(resp) => return resp,
    };
    let step_ms = match history_param(req, "step", 0) {
        Ok(s) => s,
        Err(resp) => return resp,
    };
    let (now_ms, histories) = monitor.store.history(window_ms, step_ms);
    let series: Vec<Json> = histories
        .into_iter()
        .map(|h| {
            let samples: Vec<Json> = h
                .samples
                .into_iter()
                .map(|(t, v)| Json::Array(vec![Json::UInt(t), sample_json(v)]))
                .collect();
            Json::Object(vec![
                ("name".to_string(), Json::Str(h.key)),
                ("samples".to_string(), Json::Array(samples)),
            ])
        })
        .collect();
    let body = Json::Object(vec![
        ("now_ms".to_string(), Json::UInt(now_ms)),
        ("window_ms".to_string(), Json::UInt(window_ms)),
        ("step_ms".to_string(), Json::UInt(step_ms.max(1))),
        ("interval_ms".to_string(), Json::UInt(monitor.interval_ms)),
        ("series".to_string(), Json::Array(series)),
    ]);
    Response::json(200, body.render())
}

/// `GET /v1/alerts` — every SLO rule's state with since-timestamps:
/// `{"now_ms", "firing", "alerts": [{"rule", "series", "state",
/// "since_ms", "value"}, ...]}`.
fn alerts(shared: &Shared) -> Response {
    let monitor = match monitor_of(shared) {
        Ok(m) => m,
        Err(resp) => return resp,
    };
    let statuses = monitor.slo.statuses();
    let alerts: Vec<Json> = statuses
        .iter()
        .map(|a| {
            Json::Object(vec![
                ("rule".to_string(), Json::Str(a.rule.clone())),
                ("series".to_string(), Json::Str(a.series.clone())),
                ("state".to_string(), Json::Str(a.state.as_str().to_string())),
                ("since_ms".to_string(), Json::UInt(a.since_ms)),
                ("value".to_string(), a.value.map_or(Json::Null, Json::Float)),
            ])
        })
        .collect();
    let body = Json::Object(vec![
        ("now_ms".to_string(), Json::UInt(monitor.store.now_ms())),
        ("firing".to_string(), Json::UInt(monitor.slo.firing())),
        ("alerts".to_string(), Json::Array(alerts)),
    ]);
    Response::json(200, body.render())
}

/// `GET /dashboard` — the self-contained HTML dashboard over the full
/// collected window.
fn dashboard(shared: &Shared) -> Response {
    let monitor = match monitor_of(shared) {
        Ok(m) => m,
        Err(resp) => return resp,
    };
    let (now_ms, histories) = monitor.store.history(u64::MAX, 0);
    let statuses = monitor.slo.statuses();
    let title = format!("predllc · {}", shared.addr);
    let html = predllc_obs::dash::render_dashboard(&title, now_ms, &histories, &statuses);
    Response::new(200, "text/html; charset=utf-8", html)
}

/// The low-cardinality label `/metrics` buckets request latencies
/// under — one per endpoint, never per id.
fn endpoint_label(req: &Request) -> &'static str {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => "healthz",
        ("GET", ["metrics"]) => "metrics",
        ("GET", ["v1", "metrics", "history"]) => "metrics_history",
        ("GET", ["v1", "alerts"]) => "alerts",
        ("GET", ["dashboard"]) => "dashboard",
        ("POST", ["v1", "experiments"]) => "submit",
        ("GET", ["v1", "experiments", _]) => "job_status",
        ("GET", ["v1", "experiments", _, "results"]) => "job_results",
        ("GET", ["v1", "experiments", _, "attribution"]) => "job_attribution",
        ("GET", ["v1", "jobs", _, "trace"]) => "job_trace",
        ("POST", ["v1", "points"]) => "point_post",
        ("GET", ["v1", "points", _]) => "point_get",
        _ => "other",
    }
}

/// `GET /v1/jobs/{id}/trace` — every buffered trace event for the
/// job's trace id, as JSON Lines (submission, queue wait, run span,
/// per-point timings — whatever the runner recorded).
fn job_trace(shared: &Shared, id: &str) -> Response {
    let Some(job) = shared.registry.get(id) else {
        return error_response(404, "unknown experiment id");
    };
    let events = shared.tracer.snapshot_trace(job.trace);
    Response::new(200, "application/x-ndjson", render_jsonl(&events))
}

/// The point endpoints' success body: the fingerprint, whether the
/// cache answered, and the measurement document.
fn point_body(fp: &Fingerprint, cached: bool, measurement: &str) -> Response {
    Response::json(
        200,
        format!(
            "{{\"fingerprint\":{},\"cached\":{cached},\"measurement\":{measurement}}}",
            render_string(&fp.to_hex()),
        ),
    )
}

/// A `422` body positioning a point failure: `{"error": ..., "kind":
/// "config"|"sim"}` — the coordinator surfaces these as positioned job
/// failures rather than generic transport errors.
fn point_error(kind: &str, message: &str) -> Response {
    Response::json(
        422,
        format!(
            "{{\"error\":{},\"kind\":{}}}",
            render_string(message),
            render_string(kind),
        ),
    )
}

/// `POST /v1/points` — simulate (or answer from cache) one grid point:
/// the endpoint that makes this server a fleet worker.
fn point_post(shared: &Shared, req: &Request) -> Option<Response> {
    if shared.shutdown.load(Ordering::SeqCst) {
        return Some(error_response(503, "service is shutting down"));
    }
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return Some(error_response(400, "body is not utf-8"));
    };
    let point = match PointRequest::parse(body) {
        Ok(p) => p,
        Err(e) => return Some(error_response(400, &e.to_string())),
    };
    let fp = point.fingerprint();
    let metrics = &shared.registry.metrics;

    // A coordinator propagates its trace id in the X-Predllc-Trace
    // header; the worker-side compute span records under the same id,
    // so one fleet point is reconstructable end to end.
    let trace = req.header(TRACE_HEADER).and_then(TraceId::parse_hex);
    let mut span = trace.map(|t| {
        shared.tracer.span(
            t,
            "worker.point",
            fields(&[("fingerprint", fp.to_hex().into())]),
        )
    });

    let cached = shared.points.lock().unwrap().get(&fp).map(str::to_string);
    let (was_cached, rendered) = match cached {
        Some(rendered) => {
            metrics.points_cache_shared.inc();
            (true, rendered)
        }
        None => {
            let config = match point.config.build(point.cores) {
                Ok(c) => c.with_attribution(point.attribution),
                Err(e) => return Some(point_error("config", &e.to_string())),
            };
            let workload = point.workload.spec.build(point.cores);
            let measurement = match measure(&config, &workload) {
                Ok(m) => m,
                Err(PointError::Config(e)) => return Some(point_error("config", &e.to_string())),
                Err(PointError::Sim(e)) => return Some(point_error("sim", &e.to_string())),
            };
            if let Some(attr) = &measurement.attribution {
                record_component_cycles(metrics, &attr.components);
            }
            let rendered = measurement.render();
            shared.points.lock().unwrap().insert(fp, rendered.clone());
            metrics.points_simulated.inc();
            (false, rendered)
        }
    };
    if let Some(span) = span.as_mut() {
        span.field("cached", u64::from(was_cached));
    }
    drop(span);

    // Fault injection: after `fail_after_points` successful answers, the
    // next one crashes mid-response — the worker-loss scenario the
    // coordinator's recovery path is tested against.
    if let Some(limit) = shared.fail_after_points {
        let n = shared.points_answered.fetch_add(1, Ordering::SeqCst) + 1;
        if n > limit {
            kill_shared(shared);
            return None;
        }
    } else {
        shared.points_answered.fetch_add(1, Ordering::SeqCst);
    }
    Some(point_body(&fp, was_cached, &rendered))
}

/// `GET /v1/points/{fingerprint}` — a cached measurement, if this
/// server has one (`404` otherwise; the caller simulates or POSTs).
fn point_get(shared: &Shared, fp_hex: &str) -> Response {
    let Some(fp) = Fingerprint::parse_hex(fp_hex) else {
        return error_response(404, "not a point fingerprint");
    };
    let cached = shared.points.lock().unwrap().get(&fp).map(str::to_string);
    match cached {
        Some(rendered) => {
            shared.registry.metrics.points_cache_shared.inc();
            point_body(&fp, true, &rendered)
        }
        None => error_response(404, "point not cached"),
    }
}

/// `POST /v1/experiments` — submit a spec; coalesces duplicates.
fn submit(shared: &Shared, req: &Request) -> Response {
    if shared.shutdown.load(Ordering::SeqCst) {
        return error_response(503, "service is shutting down");
    }
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return error_response(400, "body is not utf-8");
    };
    // Callers may supply the trace id (X-Predllc-Trace) so their own
    // spans and the server's share one trace; otherwise mint a fresh
    // one. A cache hit keeps the existing job's trace.
    let trace = req
        .header(TRACE_HEADER)
        .and_then(TraceId::parse_hex)
        .unwrap_or_else(TraceId::fresh);
    let submission = match shared.registry.submit_traced(body, trace) {
        Ok(s) => s,
        Err(e @ SubmitError::AtCapacity) => return error_response(503, &e.to_string()),
        Err(SubmitError::Spec(e)) => return error_response(400, &e.to_string()),
    };
    shared.tracer.instant(
        submission.job.trace,
        "serve.job.submitted",
        fields(&[
            ("job", submission.job.id.to_hex().into()),
            ("cached", u64::from(!submission.fresh).into()),
        ]),
    );
    if submission.fresh {
        // Enqueue for the runners; if the queue closed under us
        // (shutdown raced the submit), unregister the job so the
        // queued-jobs gauge and the cache stay truthful.
        let enqueued = match &*shared.queue.lock().unwrap() {
            Some(tx) => tx.send(Arc::clone(&submission.job)).is_ok(),
            None => false,
        };
        if !enqueued {
            shared
                .registry
                .abandon(&submission.job, "service is shutting down");
            return error_response(503, "service is shutting down");
        }
    }
    let job = &submission.job;
    let body = format!(
        "{{\"id\":{},\"name\":{},\"status\":{},\"cached\":{},\"points_total\":{}}}",
        render_string(&job.id.to_hex()),
        render_string(&job.name),
        render_string(job.status().as_str()),
        !submission.fresh,
        job.points_total,
    );
    Response::json(if submission.fresh { 202 } else { 200 }, body)
}

/// `GET /v1/experiments/{id}` — status and progress.
fn status(shared: &Shared, id: &str) -> Response {
    let Some(job) = shared.registry.get(id) else {
        return error_response(404, "unknown experiment id");
    };
    let status = job.status();
    let mut body = format!(
        "{{\"id\":{},\"name\":{},\"status\":{},\"points_done\":{},\"points_total\":{}",
        render_string(&job.id.to_hex()),
        render_string(&job.name),
        render_string(status.as_str()),
        // A done job's progress is complete by definition, even though
        // a cache-hit reader may race the last progress store.
        if status == JobStatus::Done {
            job.points_total
        } else {
            job.points_done()
        },
        job.points_total,
    );
    if let Some(error) = job.error() {
        body.push_str(&format!(",\"error\":{}", render_string(&error)));
    }
    body.push('}');
    Response::json(200, body)
}

/// `GET /v1/experiments/{id}/results?format=csv|json` — the cached
/// rendered result.
fn results(shared: &Shared, id: &str, req: &Request) -> Response {
    let Some(job) = shared.registry.get(id) else {
        return error_response(404, "unknown experiment id");
    };
    match job.status() {
        JobStatus::Done => {}
        JobStatus::Failed => {
            return error_response(500, &job.error().unwrap_or_else(|| "job failed".into()))
        }
        other => {
            return Response::json(
                409,
                format!(
                    "{{\"error\":\"results not ready\",\"status\":{}}}",
                    render_string(other.as_str())
                ),
            )
        }
    }
    let result = job.result().expect("status was Done");
    match req.query_param("format").unwrap_or("csv") {
        "csv" => Response::new(200, "text/csv; charset=utf-8", result.csv.clone()),
        "json" => Response::json(200, result.json.clone()),
        other => error_response(400, &format!("unknown format '{other}' (csv or json)")),
    }
}

/// `GET /v1/experiments/{id}/attribution` — the cached attribution
/// artifact (`report::render_attribution_json`). `404` when the job ran
/// without `"attribution": true`, so callers can distinguish "off" from
/// "not ready" (`409`) without parsing bodies.
fn attribution_results(shared: &Shared, id: &str) -> Response {
    let Some(job) = shared.registry.get(id) else {
        return error_response(404, "unknown experiment id");
    };
    match job.status() {
        JobStatus::Done => {}
        JobStatus::Failed => {
            return error_response(500, &job.error().unwrap_or_else(|| "job failed".into()))
        }
        other => {
            return Response::json(
                409,
                format!(
                    "{{\"error\":\"results not ready\",\"status\":{}}}",
                    render_string(other.as_str())
                ),
            )
        }
    }
    let result = job.result().expect("status was Done");
    match &result.attribution {
        Some(doc) => Response::json(200, doc.clone()),
        None => error_response(
            404,
            "attribution is off for this experiment (submit with \"attribution\": true)",
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    const SPEC: &str = r#"{
        "name": "server-test", "cores": 2,
        "configs": [{"partition": {"kind": "shared", "sets": 1, "ways": 4, "mode": "SS"}}],
        "workloads": [{"kind": "uniform", "range_bytes": 1024, "ops": 60, "seed": 5}]
    }"#;

    fn start(config: ServerConfig) -> (ServerHandle, std::thread::JoinHandle<()>) {
        let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral");
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run().expect("serve"));
        (handle, join)
    }

    #[test]
    fn serves_health_metrics_and_a_job_end_to_end() {
        let (handle, join) = start(ServerConfig {
            threads: 2,
            ..ServerConfig::default()
        });
        let mut client = Client::new(handle.addr());
        assert_eq!(client.healthz().unwrap(), "ok\n");

        let submitted = client.submit(SPEC).unwrap();
        assert!(!submitted.cached);
        let done = client
            .wait_done(&submitted.id, Duration::from_secs(120))
            .unwrap();
        assert_eq!(done.status, "done");
        assert_eq!(done.points_done, done.points_total);
        let csv = client.results_csv(&submitted.id).unwrap();
        assert!(csv.starts_with("config,workload,backend,"));
        let metrics = client.metrics().unwrap();
        assert!(metrics.contains("predllc_jobs_done 1"));

        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn shutdown_drains_accepted_jobs() {
        let (handle, join) = start(ServerConfig {
            threads: 1,
            ..ServerConfig::default()
        });
        let mut client = Client::new(handle.addr());
        let a = client.submit(SPEC).unwrap();
        let b = client
            .submit(&SPEC.replace("\"seed\": 5", "\"seed\": 6"))
            .unwrap();
        assert_ne!(a.id, b.id);
        // Shut down immediately: both accepted jobs must still finish.
        handle.shutdown();
        join.join().unwrap();
        for id in [&a.id, &b.id] {
            let job = handle.job(id).expect("job registered");
            assert_eq!(job.status(), JobStatus::Done, "job {id} did not drain");
        }
        let m = handle.metrics();
        assert_eq!(m.jobs_done, 2);
        assert_eq!(m.jobs_running, 0);
        assert_eq!(m.jobs_queued, 0);
    }

    #[test]
    fn submissions_after_shutdown_are_refused() {
        let (handle, join) = start(ServerConfig::default());
        handle.shutdown();
        join.join().unwrap();
        assert!(handle.is_shutting_down());
        // The listener is gone; a fresh client cannot connect at all, or
        // (if racing the close) gets a 503 — either way, no job.
        let mut client = Client::new(handle.addr());
        assert!(client.submit(SPEC).is_err());
        assert_eq!(handle.metrics().cache_misses, 0);
    }
}
