//! The threaded HTTP server: accept loop, connection handling, routing,
//! and the job runners that feed the work-stealing experiment executor.
//!
//! Concurrency model:
//!
//! * one **accept** thread (the caller of [`Server::run`]) hands each
//!   connection to its own detached thread — connections are cheap,
//!   requests on them are served sequentially with keep-alive;
//! * a small pool of **runner** threads drains the job queue; each job
//!   runs `run_spec_observed` on the shared [`Executor`], so grid
//!   points — not jobs — are the unit of simulation parallelism;
//! * **graceful shutdown** ([`ServerHandle::shutdown`]) stops accepting
//!   connections and submissions, then drains: every job already
//!   accepted runs to completion (all its grid points) before
//!   [`Server::run`] returns.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use predllc_explore::report::{render_csv, render_json};
use predllc_explore::{run_spec_observed, Executor};

use crate::http::{read_request, write_response, HttpError, Limits, Request, Response};
use crate::registry::{Job, JobResult, JobStatus, MetricsSnapshot, Registry, SubmitError};
use predllc_explore::json::render_string;

/// Tunables for a server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads of the shared experiment [`Executor`] (`0` = one
    /// per available core).
    pub threads: usize,
    /// Concurrent job runners (jobs beyond this queue up).
    pub runners: usize,
    /// HTTP parsing bounds.
    pub limits: Limits,
    /// Per-connection idle read timeout; an idle keep-alive connection
    /// is closed after this long.
    pub idle_timeout: Duration,
    /// Most jobs the registry caches at once; past this the oldest
    /// finished job is evicted per new submission (see
    /// [`Registry::with_capacity`]).
    pub max_jobs: usize,
    /// Most simultaneously open connections; excess connections are
    /// answered `503` and closed.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 0,
            runners: 1,
            limits: Limits::default(),
            idle_timeout: Duration::from_secs(30),
            max_jobs: 1024,
            max_connections: 256,
        }
    }
}

/// State shared by the accept loop, connection threads, runners and
/// handles.
struct Shared {
    registry: Registry,
    exec: Executor,
    shutdown: AtomicBool,
    /// Present while the service accepts work; dropped on shutdown so
    /// runner threads drain the queue and exit.
    queue: Mutex<Option<mpsc::Sender<Arc<Job>>>>,
    limits: Limits,
    idle_timeout: Duration,
    /// Simultaneously open connections, bounded by `max_connections`.
    connections: std::sync::atomic::AtomicUsize,
    max_connections: usize,
}

/// Decrements the live-connection count however the connection thread
/// exits.
struct ConnectionGuard<'a>(&'a Shared);

impl Drop for ConnectionGuard<'_> {
    fn drop(&mut self) {
        self.0
            .connections
            .fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
    }
}

/// A running experiment service bound to a TCP address.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
    queue_rx: mpsc::Receiver<Arc<Job>>,
    runners: usize,
}

/// A cloneable handle for talking to a running server from other
/// threads: trigger shutdown, read metrics, look jobs up.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
}

impl Server {
    /// Binds the service (pass port `0` for an ephemeral port, then read
    /// it back with [`Server::local_addr`]).
    ///
    /// # Errors
    ///
    /// Any socket-level failure to bind.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let (tx, rx) = mpsc::channel();
        let shared = Arc::new(Shared {
            registry: Registry::with_capacity(config.max_jobs),
            exec: Executor::new(config.threads),
            shutdown: AtomicBool::new(false),
            queue: Mutex::new(Some(tx)),
            limits: config.limits,
            idle_timeout: config.idle_timeout,
            connections: std::sync::atomic::AtomicUsize::new(0),
            max_connections: config.max_connections.max(1),
        });
        Ok(Server {
            listener,
            addr,
            shared,
            queue_rx: rx,
            runners: config.runners.max(1),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle usable from other threads while (and after) the server
    /// runs.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
            addr: self.addr,
        }
    }

    /// Serves until [`ServerHandle::shutdown`] is called, then drains:
    /// runner threads finish every accepted job (all in-flight grid
    /// points) before this returns.
    ///
    /// # Errors
    ///
    /// Fatal accept-loop failures only; per-connection errors are
    /// answered on the wire and logged to stderr.
    pub fn run(self) -> std::io::Result<()> {
        let mut runner_handles = Vec::with_capacity(self.runners);
        let queue_rx = Arc::new(Mutex::new(self.queue_rx));
        for _ in 0..self.runners {
            let shared = Arc::clone(&self.shared);
            let rx = Arc::clone(&queue_rx);
            runner_handles.push(std::thread::spawn(move || run_jobs(&shared, &rx)));
        }

        for conn in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match conn {
                Ok(mut stream) => {
                    // Bound the connection-thread count: over the cap,
                    // answer 503 inline and close instead of spawning.
                    let live = self
                        .shared
                        .connections
                        .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    if live >= self.shared.max_connections {
                        self.shared
                            .connections
                            .fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
                        let _ = write_response(
                            &mut stream,
                            &error_response(503, "too many connections"),
                            false,
                        );
                        continue;
                    }
                    let shared = Arc::clone(&self.shared);
                    std::thread::spawn(move || {
                        let _guard = ConnectionGuard(&shared);
                        serve_connection(&shared, stream);
                    });
                }
                Err(e) => eprintln!("predllc-serve: accept failed: {e}"),
            }
        }
        // Drain: joining the runners waits for every accepted job.
        for h in runner_handles {
            let _ = h.join();
        }
        Ok(())
    }
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates graceful shutdown: no new connections or submissions;
    /// accepted jobs drain. Idempotent.
    pub fn shutdown(&self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Closing the queue lets runner threads exit once drained.
        self.shared.queue.lock().unwrap().take();
        // Wake the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// A point-in-time copy of the service counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.registry.metrics.snapshot()
    }

    /// Looks a job up by its hex id.
    pub fn job(&self, hex_id: &str) -> Option<Arc<Job>> {
        self.shared.registry.get(hex_id)
    }
}

/// The runner loop: take jobs until the queue closes, run each on the
/// shared executor, cache rendered results.
fn run_jobs(shared: &Shared, rx: &Mutex<mpsc::Receiver<Arc<Job>>>) {
    loop {
        // Hold the receiver lock only while waiting for the next job so
        // sibling runners can wait too.
        let job = match rx.lock().unwrap().recv() {
            Ok(job) => job,
            Err(_) => return, // queue closed and drained
        };
        let metrics = &shared.registry.metrics;
        job.start();
        metrics.jobs_queued.fetch_sub(1, Ordering::Relaxed);
        metrics.jobs_running.fetch_add(1, Ordering::Relaxed);
        let observe = |done: usize, _total: usize| job.record_progress(done);
        match run_spec_observed(&job.spec, &shared.exec, &observe) {
            Ok(report) => {
                // Rendered once; every later fetch serves these bytes.
                // No wall time in the JSON, so identical submissions
                // yield identical documents.
                let result = JobResult {
                    csv: render_csv(&report.grid),
                    json: render_json(
                        &job.spec.name,
                        shared.exec.threads(),
                        None,
                        &report.grid,
                        report.search.as_ref(),
                    ),
                    unique_points: report.unique_points,
                };
                metrics
                    .points_simulated
                    .fetch_add(report.unique_points as u64, Ordering::Relaxed);
                metrics.jobs_done.fetch_add(1, Ordering::Relaxed);
                job.finish(result);
            }
            Err(e) => {
                metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
                job.fail(e.to_string());
            }
        }
        metrics.jobs_running.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Serves one connection: a keep-alive loop of request → route →
/// response.
fn serve_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.idle_timeout));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let request = match read_request(&mut reader, &shared.limits) {
            Ok(Some(req)) => req,
            Ok(None) => return,              // clean close between requests
            Err(HttpError::Io(_)) => return, // peer gone or idle timeout
            Err(HttpError::TooLarge(what)) => {
                let status = if what == "body" { 413 } else { 431 };
                let _ = write_response(&mut writer, &error_response(status, what), false);
                return;
            }
            Err(HttpError::Malformed(what)) => {
                let _ = write_response(&mut writer, &error_response(400, what), false);
                return;
            }
        };
        shared
            .registry
            .metrics
            .http_requests
            .fetch_add(1, Ordering::Relaxed);
        let response = route(shared, &request);
        let keep_alive = request.keep_alive && !shared.shutdown.load(Ordering::SeqCst);
        if write_response(&mut writer, &response, keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}

/// A JSON error body: `{"error": "..."}`.
fn error_response(status: u16, message: &str) -> Response {
    Response::json(status, format!("{{\"error\":{}}}", render_string(message)))
}

/// Routes one request to its endpoint.
fn route(shared: &Shared, req: &Request) -> Response {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => Response::text("ok\n"),
        ("GET", ["metrics"]) => Response::text(shared.registry.metrics.render()),
        ("POST", ["v1", "experiments"]) => submit(shared, req),
        ("GET", ["v1", "experiments", id]) => status(shared, id),
        ("GET", ["v1", "experiments", id, "results"]) => results(shared, id, req),
        (_, ["healthz" | "metrics"]) | (_, ["v1", "experiments", ..]) => {
            error_response(405, "method not allowed")
        }
        _ => error_response(404, "no such endpoint"),
    }
}

/// `POST /v1/experiments` — submit a spec; coalesces duplicates.
fn submit(shared: &Shared, req: &Request) -> Response {
    if shared.shutdown.load(Ordering::SeqCst) {
        return error_response(503, "service is shutting down");
    }
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return error_response(400, "body is not utf-8");
    };
    let submission = match shared.registry.submit(body) {
        Ok(s) => s,
        Err(e @ SubmitError::AtCapacity) => return error_response(503, &e.to_string()),
        Err(SubmitError::Spec(e)) => return error_response(400, &e.to_string()),
    };
    if submission.fresh {
        // Enqueue for the runners; if the queue closed under us
        // (shutdown raced the submit), unregister the job so the
        // queued-jobs gauge and the cache stay truthful.
        let enqueued = match &*shared.queue.lock().unwrap() {
            Some(tx) => tx.send(Arc::clone(&submission.job)).is_ok(),
            None => false,
        };
        if !enqueued {
            shared
                .registry
                .abandon(&submission.job, "service is shutting down");
            return error_response(503, "service is shutting down");
        }
    }
    let job = &submission.job;
    let body = format!(
        "{{\"id\":{},\"name\":{},\"status\":{},\"cached\":{},\"points_total\":{}}}",
        render_string(&job.id.to_hex()),
        render_string(&job.name),
        render_string(job.status().as_str()),
        !submission.fresh,
        job.points_total,
    );
    Response::json(if submission.fresh { 202 } else { 200 }, body)
}

/// `GET /v1/experiments/{id}` — status and progress.
fn status(shared: &Shared, id: &str) -> Response {
    let Some(job) = shared.registry.get(id) else {
        return error_response(404, "unknown experiment id");
    };
    let status = job.status();
    let mut body = format!(
        "{{\"id\":{},\"name\":{},\"status\":{},\"points_done\":{},\"points_total\":{}",
        render_string(&job.id.to_hex()),
        render_string(&job.name),
        render_string(status.as_str()),
        // A done job's progress is complete by definition, even though
        // a cache-hit reader may race the last progress store.
        if status == JobStatus::Done {
            job.points_total
        } else {
            job.points_done()
        },
        job.points_total,
    );
    if let Some(error) = job.error() {
        body.push_str(&format!(",\"error\":{}", render_string(&error)));
    }
    body.push('}');
    Response::json(200, body)
}

/// `GET /v1/experiments/{id}/results?format=csv|json` — the cached
/// rendered result.
fn results(shared: &Shared, id: &str, req: &Request) -> Response {
    let Some(job) = shared.registry.get(id) else {
        return error_response(404, "unknown experiment id");
    };
    match job.status() {
        JobStatus::Done => {}
        JobStatus::Failed => {
            return error_response(500, &job.error().unwrap_or_else(|| "job failed".into()))
        }
        other => {
            return Response::json(
                409,
                format!(
                    "{{\"error\":\"results not ready\",\"status\":{}}}",
                    render_string(other.as_str())
                ),
            )
        }
    }
    let result = job.result().expect("status was Done");
    match req.query_param("format").unwrap_or("csv") {
        "csv" => Response::new(200, "text/csv; charset=utf-8", result.csv.clone()),
        "json" => Response::json(200, result.json.clone()),
        other => error_response(400, &format!("unknown format '{other}' (csv or json)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    const SPEC: &str = r#"{
        "name": "server-test", "cores": 2,
        "configs": [{"partition": {"kind": "shared", "sets": 1, "ways": 4, "mode": "SS"}}],
        "workloads": [{"kind": "uniform", "range_bytes": 1024, "ops": 60, "seed": 5}]
    }"#;

    fn start(config: ServerConfig) -> (ServerHandle, std::thread::JoinHandle<()>) {
        let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral");
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run().expect("serve"));
        (handle, join)
    }

    #[test]
    fn serves_health_metrics_and_a_job_end_to_end() {
        let (handle, join) = start(ServerConfig {
            threads: 2,
            ..ServerConfig::default()
        });
        let mut client = Client::new(handle.addr());
        assert_eq!(client.healthz().unwrap(), "ok\n");

        let submitted = client.submit(SPEC).unwrap();
        assert!(!submitted.cached);
        let done = client
            .wait_done(&submitted.id, Duration::from_secs(120))
            .unwrap();
        assert_eq!(done.status, "done");
        assert_eq!(done.points_done, done.points_total);
        let csv = client.results_csv(&submitted.id).unwrap();
        assert!(csv.starts_with("config,workload,backend,"));
        let metrics = client.metrics().unwrap();
        assert!(metrics.contains("predllc_jobs_done 1"));

        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn shutdown_drains_accepted_jobs() {
        let (handle, join) = start(ServerConfig {
            threads: 1,
            ..ServerConfig::default()
        });
        let mut client = Client::new(handle.addr());
        let a = client.submit(SPEC).unwrap();
        let b = client
            .submit(&SPEC.replace("\"seed\": 5", "\"seed\": 6"))
            .unwrap();
        assert_ne!(a.id, b.id);
        // Shut down immediately: both accepted jobs must still finish.
        handle.shutdown();
        join.join().unwrap();
        for id in [&a.id, &b.id] {
            let job = handle.job(id).expect("job registered");
            assert_eq!(job.status(), JobStatus::Done, "job {id} did not drain");
        }
        let m = handle.metrics();
        assert_eq!(m.jobs_done, 2);
        assert_eq!(m.jobs_running, 0);
        assert_eq!(m.jobs_queued, 0);
    }

    #[test]
    fn submissions_after_shutdown_are_refused() {
        let (handle, join) = start(ServerConfig::default());
        handle.shutdown();
        join.join().unwrap();
        assert!(handle.is_shutting_down());
        // The listener is gone; a fresh client cannot connect at all, or
        // (if racing the close) gets a 503 — either way, no job.
        let mut client = Client::new(handle.addr());
        assert!(client.submit(SPEC).is_err());
        assert_eq!(handle.metrics().cache_misses, 0);
    }
}
