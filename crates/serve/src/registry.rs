//! The job registry: content-addressed experiment jobs, their lifecycle
//! and the service metrics.
//!
//! A job's identity is the [canonical
//! fingerprint](predllc_explore::hash::canonical_fingerprint) of its
//! parsed spec — key-order-insensitive, whitespace-free — so two
//! submissions of the same experiment (however formatted, however
//! concurrent) share one [`Job`]. The registry's map lock is the
//! coalescing point: the first submission inserts and runs, every later
//! one gets the existing entry back as a cache hit and waits on (or
//! immediately reads) the same result.
//!
//! Simulation is deterministic, so a cached result is exactly what a
//! re-run would produce; a finished job caches its **grid rows** (not
//! pre-rendered documents), and the deterministic renderers in
//! `predllc_explore::report` reproduce byte-identical CSV/JSON from
//! them on every read — one-shot via [`JobResult::csv`]/[`JobResult::json`]
//! or incrementally via the `*_stream` constructors, which the serve
//! layer writes as chunked responses without materializing the whole
//! document. The cache is **bounded**:
//! past [`Registry::with_capacity`]'s limit, the oldest *finished* job
//! is evicted to make room (an evicted experiment simply re-simulates
//! on its next submission); when every registered job is still queued
//! or running, new submissions are refused instead.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use predllc_explore::hash::{canonical_fingerprint, Fingerprint};
use predllc_explore::{json, report, unique_point_count, ExperimentSpec, SpecError};
use predllc_explore::{GridResult, SearchOutcome};
use predllc_obs::{Counter, Gauge, Registry as MetricRegistry, TimingHistogram};

use crate::http::BodyStream;

/// Why a submission was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitError {
    /// The body was not a valid experiment spec.
    Spec(SpecError),
    /// The registry is full of queued/running jobs; nothing is
    /// evictable.
    AtCapacity,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Spec(e) => write!(f, "{e}"),
            SubmitError::AtCapacity => f.write_str("service is at capacity; retry later"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A job's coarse lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted, not yet started.
    Queued,
    /// Executing on the experiment executor.
    Running,
    /// Finished; results are cached and served.
    Done,
    /// The run failed; the error message is cached instead.
    Failed,
}

impl JobStatus {
    /// The lowercase wire name (`"queued"`, `"running"`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
        }
    }
}

/// The immutable outcome of a finished job: the grid rows themselves
/// plus everything needed to render them.
///
/// Rendering is deterministic, so serving re-renders (whole or
/// streamed) instead of caching document strings — every read of the
/// same result is byte-identical, and large results never have to
/// exist in memory as one contiguous body.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// The spec's `name`, echoed into the JSON report head.
    pub name: String,
    /// The executor thread count label in the JSON report head.
    pub threads_label: usize,
    /// The simulated grid rows (shared with streaming bodies).
    pub grid: Arc<Vec<GridResult>>,
    /// The partition-search outcome, when the spec ran one.
    pub search: Option<SearchOutcome>,
    /// The attribution artifact (`report::render_attribution_json`),
    /// present only when the spec ran with `"attribution": true`.
    /// Pre-rendered (it embeds replayable witnesses, not grid rows)
    /// and shared with streaming bodies.
    pub attribution: Option<Arc<String>>,
    /// Unique grid points this job actually simulated.
    pub unique_points: usize,
}

/// Streamed bodies accumulate roughly this many bytes per chunk.
const CHUNK_TARGET: usize = 16 << 10;

impl JobResult {
    /// The grid rows as CSV (`report::render_csv`), rendered on demand.
    pub fn csv(&self) -> String {
        report::render_csv(&self.grid)
    }

    /// The full report as JSON (`report::render_json`, no wall time so
    /// re-submissions serve byte-identical documents).
    pub fn json(&self) -> String {
        report::render_json(
            &self.name,
            self.threads_label,
            None,
            &self.grid,
            self.search.as_ref(),
        )
    }

    /// A pull-based body streaming exactly the bytes of
    /// [`JobResult::csv`], a bundle of rows at a time.
    pub fn csv_stream(&self) -> Box<dyn BodyStream> {
        Box::new(CsvBody {
            grid: Arc::clone(&self.grid),
            next: 0,
            header_sent: false,
        })
    }

    /// A pull-based body streaming exactly the bytes of
    /// [`JobResult::json`].
    pub fn json_stream(&self) -> Box<dyn BodyStream> {
        Box::new(JsonBody {
            head: Some(report::json_head(&self.name, self.threads_label, None)),
            grid: Arc::clone(&self.grid),
            next: 0,
            tail: Some(report::json_tail(self.search.as_ref())),
        })
    }

    /// A pull-based body streaming the attribution artifact, when the
    /// job ran with attribution.
    pub fn attribution_stream(&self) -> Option<Box<dyn BodyStream>> {
        self.attribution.as_ref().map(|text| {
            Box::new(TextBody {
                text: Arc::clone(text),
                pos: 0,
            }) as Box<dyn BodyStream>
        })
    }
}

/// Streams `CSV_HEADER` + one `csv_row` per grid row, batched.
struct CsvBody {
    grid: Arc<Vec<GridResult>>,
    next: usize,
    header_sent: bool,
}

impl BodyStream for CsvBody {
    fn next_chunk(&mut self) -> Option<Vec<u8>> {
        let mut out = String::new();
        if !self.header_sent {
            out.push_str(report::CSV_HEADER);
            self.header_sent = true;
        }
        while self.next < self.grid.len() && out.len() < CHUNK_TARGET {
            out.push_str(&report::csv_row(&self.grid[self.next]));
            self.next += 1;
        }
        if out.is_empty() {
            None
        } else {
            Some(out.into_bytes())
        }
    }
}

/// Streams `json_head` + comma-joined `json_row`s + `json_tail`.
struct JsonBody {
    head: Option<String>,
    grid: Arc<Vec<GridResult>>,
    next: usize,
    tail: Option<String>,
}

impl BodyStream for JsonBody {
    fn next_chunk(&mut self) -> Option<Vec<u8>> {
        let mut out = self.head.take().unwrap_or_default();
        while self.next < self.grid.len() && out.len() < CHUNK_TARGET {
            if self.next > 0 {
                out.push(',');
            }
            out.push_str(&report::json_row(&self.grid[self.next]));
            self.next += 1;
        }
        if self.next == self.grid.len() && out.len() < CHUNK_TARGET {
            if let Some(tail) = self.tail.take() {
                out.push_str(&tail);
            }
        }
        if out.is_empty() {
            None
        } else {
            Some(out.into_bytes())
        }
    }
}

/// Streams a shared pre-rendered string in bounded slices.
struct TextBody {
    text: Arc<String>,
    pos: usize,
}

impl BodyStream for TextBody {
    fn next_chunk(&mut self) -> Option<Vec<u8>> {
        let bytes = self.text.as_bytes();
        if self.pos >= bytes.len() {
            return None;
        }
        let end = (self.pos + 4 * CHUNK_TARGET).min(bytes.len());
        let chunk = bytes[self.pos..end].to_vec();
        self.pos = end;
        Some(chunk)
    }
}

/// What a job is currently doing (interior of the state mutex).
#[derive(Debug, Clone)]
enum State {
    Queued,
    Running,
    Done(Arc<JobResult>),
    Failed(String),
}

/// One content-addressed experiment job.
#[derive(Debug)]
pub struct Job {
    /// The content address (hex form is the public experiment id).
    pub id: Fingerprint,
    /// The spec's `name` field, echoed in status responses.
    pub name: String,
    /// The parsed spec the runner executes.
    pub spec: ExperimentSpec,
    /// Unique grid points this job will simulate (denominator of the
    /// progress fraction, known at submission).
    pub points_total: usize,
    /// The trace id the job's spans record under — the submitter's
    /// (via `X-Predllc-Trace`) or a fresh one. Fixed at registration;
    /// coalesced duplicates share the first submission's trace.
    pub trace: predllc_obs::TraceId,
    /// When the job was registered — the queue-wait anchor.
    pub submitted: std::time::Instant,
    points_done: AtomicUsize,
    state: Mutex<State>,
    finished: Condvar,
}

impl Job {
    /// Current coarse status.
    pub fn status(&self) -> JobStatus {
        match *self.state.lock().unwrap() {
            State::Queued => JobStatus::Queued,
            State::Running => JobStatus::Running,
            State::Done(_) => JobStatus::Done,
            State::Failed(_) => JobStatus::Failed,
        }
    }

    /// Unique grid points completed so far.
    pub fn points_done(&self) -> usize {
        self.points_done.load(Ordering::Relaxed)
    }

    /// Records grid progress (called from executor workers).
    pub fn record_progress(&self, done: usize) {
        self.points_done.fetch_max(done, Ordering::Relaxed);
    }

    /// The cached result, when done.
    pub fn result(&self) -> Option<Arc<JobResult>> {
        match &*self.state.lock().unwrap() {
            State::Done(r) => Some(Arc::clone(r)),
            _ => None,
        }
    }

    /// The failure message, when failed.
    pub fn error(&self) -> Option<String> {
        match &*self.state.lock().unwrap() {
            State::Failed(e) => Some(e.clone()),
            _ => None,
        }
    }

    /// Marks the job running.
    pub fn start(&self) {
        *self.state.lock().unwrap() = State::Running;
    }

    /// Completes the job with rendered results and wakes waiters.
    pub fn finish(&self, result: JobResult) {
        *self.state.lock().unwrap() = State::Done(Arc::new(result));
        self.finished.notify_all();
    }

    /// Fails the job and wakes waiters.
    pub fn fail(&self, error: String) {
        *self.state.lock().unwrap() = State::Failed(error);
        self.finished.notify_all();
    }

    /// Blocks until the job is done or failed, or `timeout` elapses.
    /// Returns the final status reached (or the current one on
    /// timeout).
    pub fn wait(&self, timeout: Duration) -> JobStatus {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.state.lock().unwrap();
        loop {
            match &*state {
                State::Done(_) => return JobStatus::Done,
                State::Failed(_) => return JobStatus::Failed,
                _ => {}
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return match &*state {
                    State::Queued => JobStatus::Queued,
                    State::Running => JobStatus::Running,
                    State::Done(_) => JobStatus::Done,
                    State::Failed(_) => JobStatus::Failed,
                };
            }
            let (next, _) = self.finished.wait_timeout(state, deadline - now).unwrap();
            state = next;
        }
    }
}

/// The service metric set, backed by a [`predllc_obs::Registry`] and
/// rendered by `/metrics` in Prometheus text exposition format.
///
/// Every counter keeps its historical `predllc_*` sample name (the
/// compat aliases promised by the v0.8 migration), so existing scrapes
/// and [`crate::Client::metric`] keep working; the `# HELP`/`# TYPE`
/// metadata and the latency histogram families are additive.
///
/// Writers follow the snapshot-consistency discipline documented on
/// [`predllc_obs::metrics`]: the source counter (`cache_misses`) is
/// incremented before its derived counter (`jobs_queued`), and a state
/// gauge is decremented before its successor is incremented, so a
/// concurrent [`Metrics::snapshot`] never observes a torn pair.
#[derive(Debug)]
pub struct Metrics {
    /// The backing registry: extra families (per-endpoint request
    /// latencies, fleet RTT/heartbeat histograms) register here and
    /// render alongside the counters.
    pub registry: MetricRegistry,
    /// Jobs accepted and not yet started.
    pub jobs_queued: Gauge,
    /// Jobs currently executing.
    pub jobs_running: Gauge,
    /// Jobs finished successfully.
    pub jobs_done: Counter,
    /// Jobs that failed.
    pub jobs_failed: Counter,
    /// Submissions answered from the content-addressed cache (including
    /// coalesced concurrent duplicates).
    pub cache_hits: Counter,
    /// Submissions that created a new job.
    pub cache_misses: Counter,
    /// Unique grid points resolved across all finished jobs, plus
    /// every point computed by the worker point endpoint.
    pub points_simulated: Counter,
    /// HTTP requests served.
    pub http_requests: Counter,
    /// HTTP connections currently open (accepted and not yet closed).
    pub connections_open: Gauge,
    /// Requests shed with `429 Too Many Requests` because the dispatch
    /// executor queue was full (queue-depth backpressure).
    pub requests_shed: Counter,
    /// Fleet workers currently believed alive (a gauge: set by the
    /// coordinator, decremented as workers are lost).
    pub workers_alive: Gauge,
    /// Fleet workers declared lost (heartbeat or dispatch failure).
    pub workers_lost: Counter,
    /// Grid points dispatched to fleet workers (re-dispatches after a
    /// worker loss count again).
    pub points_assigned: Counter,
    /// Grid points requeued after their worker was lost mid-flight.
    pub points_retried: Counter,
    /// Point requests answered from a shared point cache instead of
    /// simulating (coordinator- or worker-side).
    pub points_cache_shared: Counter,
}

/// A point-in-time copy of [`Metrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Jobs accepted and not yet started.
    pub jobs_queued: u64,
    /// Jobs currently executing.
    pub jobs_running: u64,
    /// Jobs finished successfully.
    pub jobs_done: u64,
    /// Jobs that failed.
    pub jobs_failed: u64,
    /// Submissions answered from the cache.
    pub cache_hits: u64,
    /// Submissions that created a new job.
    pub cache_misses: u64,
    /// Unique grid points simulated.
    pub points_simulated: u64,
    /// HTTP requests served.
    pub http_requests: u64,
    /// HTTP connections currently open.
    pub connections_open: u64,
    /// Requests shed by dispatch-queue backpressure.
    pub requests_shed: u64,
    /// Fleet workers currently believed alive.
    pub workers_alive: u64,
    /// Fleet workers declared lost.
    pub workers_lost: u64,
    /// Grid points dispatched to fleet workers.
    pub points_assigned: u64,
    /// Grid points requeued after a worker loss.
    pub points_retried: u64,
    /// Point requests answered from a shared point cache.
    pub points_cache_shared: u64,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    /// A fresh metric set over its own registry.
    pub fn new() -> Metrics {
        let registry = MetricRegistry::new();
        let jobs_queued =
            registry.gauge("predllc_jobs_queued", "Jobs accepted and not yet started.");
        let jobs_running = registry.gauge("predllc_jobs_running", "Jobs currently executing.");
        let jobs_done = registry.counter("predllc_jobs_done", "Jobs finished successfully.");
        let jobs_failed = registry.counter("predllc_jobs_failed", "Jobs that failed.");
        let cache_hits = registry.counter(
            "predllc_cache_hits",
            "Submissions answered from the content-addressed cache.",
        );
        let cache_misses = registry.counter(
            "predllc_cache_misses",
            "Submissions that created a new job.",
        );
        let points_simulated = registry.counter(
            "predllc_points_simulated",
            "Unique grid points simulated (jobs plus the worker point endpoint).",
        );
        let http_requests = registry.counter("predllc_http_requests", "HTTP requests served.");
        let connections_open = registry.gauge(
            "predllc_connections_open",
            "HTTP connections currently open.",
        );
        let requests_shed = registry.counter(
            "predllc_requests_shed",
            "Requests shed with 429 because the dispatch queue was full.",
        );
        let workers_alive = registry.gauge(
            "predllc_workers_alive",
            "Fleet workers currently believed alive.",
        );
        let workers_lost = registry.counter(
            "predllc_workers_lost",
            "Fleet workers declared lost (heartbeat or dispatch failure).",
        );
        let points_assigned = registry.counter(
            "predllc_points_assigned",
            "Grid points dispatched to fleet workers (re-dispatches count again).",
        );
        let points_retried = registry.counter(
            "predllc_points_retried",
            "Grid points requeued after their worker was lost mid-flight.",
        );
        let points_cache_shared = registry.counter(
            "predllc_points_cache_shared",
            "Point requests answered from a shared point cache instead of simulating.",
        );
        Metrics {
            registry,
            jobs_queued,
            jobs_running,
            jobs_done,
            jobs_failed,
            cache_hits,
            cache_misses,
            points_simulated,
            http_requests,
            connections_open,
            requests_shed,
            workers_alive,
            workers_lost,
            points_assigned,
            points_retried,
            points_cache_shared,
        }
    }

    /// The wall-clock request-latency histogram for one endpoint label
    /// (registration is idempotent; recording is lock-free).
    pub fn endpoint_latency(&self, endpoint: &str) -> TimingHistogram {
        self.registry.histogram_with(
            "predllc_http_request_duration_ns",
            "Wall-clock HTTP request latency per endpoint, nanoseconds.",
            "endpoint",
            endpoint,
        )
    }

    /// Round-trip time of successful point dispatches to one worker.
    pub fn worker_rtt(&self, worker: &str) -> TimingHistogram {
        self.registry.histogram_with(
            "predllc_fleet_point_rtt_ns",
            "Round-trip time of successful point dispatches per worker, nanoseconds.",
            "worker",
            worker,
        )
    }

    /// Time burned on a failed dispatch attempt before the point was
    /// requeued, per worker.
    pub fn worker_requeue(&self, worker: &str) -> TimingHistogram {
        self.registry.histogram_with(
            "predllc_fleet_requeue_ns",
            "Time spent on a failed dispatch attempt before requeue, per worker, nanoseconds.",
            "worker",
            worker,
        )
    }

    /// Heartbeat probe latency per worker.
    pub fn worker_heartbeat(&self, worker: &str) -> TimingHistogram {
        self.registry.histogram_with(
            "predllc_fleet_heartbeat_ns",
            "Heartbeat probe latency per worker, nanoseconds.",
            "worker",
            worker,
        )
    }

    /// Copies every counter. Reads run derived-before-source (job
    /// states first, cache counters after), the mirror image of the
    /// writers' source-before-derived order, so the job-state sum never
    /// exceeds `cache_misses` in any observed snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            jobs_queued: self.jobs_queued.get(),
            jobs_running: self.jobs_running.get(),
            jobs_done: self.jobs_done.get(),
            jobs_failed: self.jobs_failed.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            points_simulated: self.points_simulated.get(),
            http_requests: self.http_requests.get(),
            connections_open: self.connections_open.get(),
            requests_shed: self.requests_shed.get(),
            workers_alive: self.workers_alive.get(),
            workers_lost: self.workers_lost.get(),
            points_assigned: self.points_assigned.get(),
            points_retried: self.points_retried.get(),
            points_cache_shared: self.points_cache_shared.get(),
        }
    }

    /// Renders the full Prometheus text exposition (`# HELP`/`# TYPE`
    /// plus every sample, newline-terminated).
    pub fn render(&self) -> String {
        self.registry.render()
    }
}

/// The outcome of a submission: the (new or existing) job and whether it
/// was freshly created.
#[derive(Debug, Clone)]
pub struct Submission {
    /// The job this spec coalesced onto.
    pub job: Arc<Job>,
    /// `true` when this submission created the job (a cache miss).
    pub fresh: bool,
}

/// Interior of the registry lock: the content-addressed map plus
/// insertion order for bounded eviction.
#[derive(Debug, Default)]
struct JobMap {
    by_id: HashMap<Fingerprint, Arc<Job>>,
    /// Insertion order; eviction scans from the front for the oldest
    /// finished job.
    order: VecDeque<Fingerprint>,
}

/// The content-addressed job map plus service metrics.
#[derive(Debug)]
pub struct Registry {
    jobs: Mutex<JobMap>,
    capacity: usize,
    /// The service counters (shared: a fleet coordinator hands the same
    /// instance to its dispatch layer so `/metrics` reflects both).
    pub metrics: Arc<Metrics>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// A registry bounded at 1024 cached jobs.
    pub fn new() -> Self {
        Registry::with_capacity(1024)
    }

    /// A registry holding at most `capacity` jobs: when full, the
    /// oldest finished job is evicted for each new submission, and if
    /// everything registered is still queued/running, submissions fail
    /// with [`SubmitError::AtCapacity`].
    pub fn with_capacity(capacity: usize) -> Self {
        Registry::with_metrics(capacity, Arc::new(Metrics::default()))
    }

    /// Like [`Registry::with_capacity`], with an externally owned
    /// counter set — how a fleet coordinator shares one [`Metrics`]
    /// between its HTTP registry and its dispatch loop.
    pub fn with_metrics(capacity: usize, metrics: Arc<Metrics>) -> Self {
        Registry {
            jobs: Mutex::new(JobMap::default()),
            capacity: capacity.max(1),
            metrics,
        }
    }

    /// Submits a spec document: parses and fingerprints it, then either
    /// coalesces onto the existing job for that content address (cache
    /// hit) or registers a fresh queued job (cache miss). The map lock
    /// is held across the lookup-or-insert, so concurrent duplicate
    /// submissions coalesce onto exactly one job.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Spec`] when the body is not a valid spec, or
    /// [`SubmitError::AtCapacity`] when the registry is full of
    /// unfinished jobs.
    pub fn submit(&self, body: &str) -> Result<Submission, SubmitError> {
        self.submit_traced(body, predllc_obs::TraceId::fresh())
    }

    /// Like [`Registry::submit`], stamping a freshly created job with
    /// `trace` (a cache hit keeps the existing job's trace id).
    ///
    /// # Errors
    ///
    /// As [`Registry::submit`].
    pub fn submit_traced(
        &self,
        body: &str,
        trace: predllc_obs::TraceId,
    ) -> Result<Submission, SubmitError> {
        let doc = json::parse(body).map_err(|e| SubmitError::Spec(SpecError::Json(e)))?;
        let id = canonical_fingerprint(&doc);
        let spec = ExperimentSpec::parse(body).map_err(SubmitError::Spec)?;

        let mut jobs = self.jobs.lock().unwrap();
        if let Some(job) = jobs.by_id.get(&id) {
            self.metrics.cache_hits.inc();
            return Ok(Submission {
                job: Arc::clone(job),
                fresh: false,
            });
        }
        if jobs.by_id.len() >= self.capacity {
            // Make room by dropping the oldest finished job; its next
            // submission will simply re-simulate.
            let JobMap { by_id, order } = &mut *jobs;
            let evictable = order
                .iter()
                .position(|fp| matches!(by_id[fp].status(), JobStatus::Done | JobStatus::Failed));
            match evictable {
                Some(at) => {
                    let fp = order.remove(at).expect("position came from order");
                    by_id.remove(&fp);
                }
                None => return Err(SubmitError::AtCapacity),
            }
        }
        let points_total = unique_point_count(&spec);
        let job = Arc::new(Job {
            id,
            name: spec.name.clone(),
            spec,
            points_total,
            trace,
            submitted: std::time::Instant::now(),
            points_done: AtomicUsize::new(0),
            state: Mutex::new(State::Queued),
            finished: Condvar::new(),
        });
        jobs.by_id.insert(id, Arc::clone(&job));
        jobs.order.push_back(id);
        // Source counter before derived gauge (snapshot discipline).
        self.metrics.cache_misses.inc();
        self.metrics.jobs_queued.inc();
        Ok(Submission { job, fresh: true })
    }

    /// Unregisters a freshly submitted job that will never run (the
    /// submit→enqueue window raced shutdown): marks it failed and
    /// settles the queued/failed counters so `/metrics` never reports a
    /// phantom queued job.
    pub fn abandon(&self, job: &Job, reason: &str) {
        let mut jobs = self.jobs.lock().unwrap();
        if jobs.by_id.remove(&job.id).is_some() {
            jobs.order.retain(|fp| *fp != job.id);
            job.fail(reason.to_string());
            self.metrics.jobs_queued.dec();
            self.metrics.jobs_failed.inc();
        }
    }

    /// Looks a job up by the hex form of its id.
    pub fn get(&self, hex_id: &str) -> Option<Arc<Job>> {
        let id = Fingerprint::parse_hex(hex_id)?;
        self.jobs.lock().unwrap().by_id.get(&id).cloned()
    }

    /// Number of registered jobs (all states).
    pub fn len(&self) -> usize {
        self.jobs.lock().unwrap().by_id.len()
    }

    /// Whether no job is currently registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"{
        "name": "reg-test", "cores": 2,
        "configs": [{"partition": {"kind": "shared", "sets": 1, "ways": 4, "mode": "SS"}}],
        "workloads": [{"kind": "uniform", "range_bytes": 1024, "ops": 40, "seed": 1}]
    }"#;

    fn empty_result(name: &str) -> JobResult {
        JobResult {
            name: name.into(),
            threads_label: 1,
            grid: Arc::new(Vec::new()),
            search: None,
            attribution: None,
            unique_points: 1,
        }
    }

    fn grid_row(seed: u64) -> GridResult {
        GridResult {
            config: format!("SS(1,{seed})"),
            workload: "u/1KiB".into(),
            backend: "fixed(30)".into(),
            x: 1024,
            requests: 40,
            p50: 100 + seed,
            p90: 200,
            p99: 300,
            p100: 350,
            observed_wcl: 350,
            mean_latency: 123.456,
            execution_time: 9_999,
            analytical_wcl: seed.is_multiple_of(2).then_some(4_000),
            row_hit_rate: 0.25,
            attribution: None,
        }
    }

    #[test]
    fn streamed_bodies_are_byte_identical_to_one_shot_renders() {
        let result = JobResult {
            name: "stream-test".into(),
            threads_label: 4,
            grid: Arc::new((0..500).map(grid_row).collect()),
            search: None,
            attribution: Some(Arc::new("{\"points\":[]}".repeat(10_000))),
            unique_points: 500,
        };
        let drain = |mut s: Box<dyn BodyStream>| {
            let mut chunks = 0usize;
            let mut out = Vec::new();
            while let Some(chunk) = s.next_chunk() {
                assert!(!chunk.is_empty(), "streams never yield empty chunks");
                chunks += 1;
                out.extend_from_slice(&chunk);
            }
            (out, chunks)
        };
        let (csv, csv_chunks) = drain(result.csv_stream());
        assert_eq!(String::from_utf8(csv).unwrap(), result.csv());
        assert!(csv_chunks > 1, "a large grid must stream in pieces");
        let (json, json_chunks) = drain(result.json_stream());
        assert_eq!(String::from_utf8(json).unwrap(), result.json());
        assert!(json_chunks > 1);
        let (attr, attr_chunks) = drain(result.attribution_stream().unwrap());
        assert_eq!(
            String::from_utf8(attr).unwrap(),
            *result.attribution.clone().unwrap()
        );
        assert!(attr_chunks > 1);
        // An empty grid still renders the CSV header / JSON skeleton.
        let empty = empty_result("empty");
        let (csv, _) = drain(empty.csv_stream());
        assert_eq!(String::from_utf8(csv).unwrap(), empty.csv());
        let (json, _) = drain(empty.json_stream());
        assert_eq!(String::from_utf8(json).unwrap(), empty.json());
        assert!(empty.attribution_stream().is_none());
    }

    #[test]
    fn duplicate_submissions_coalesce_by_content() {
        let reg = Registry::new();
        let first = reg.submit(SPEC).unwrap();
        assert!(first.fresh);
        assert_eq!(first.job.status(), JobStatus::Queued);
        assert_eq!(first.job.points_total, 1);
        // Same document, different formatting and key order.
        let reordered = r#"{
            "workloads": [{"seed": 1, "ops": 40, "range_bytes": 1024, "kind": "uniform"}],
            "configs": [{"partition": {"mode": "SS", "ways": 4, "sets": 1, "kind": "shared"}}],
            "cores": 2, "name": "reg-test"
        }"#;
        let second = reg.submit(reordered).unwrap();
        assert!(!second.fresh);
        assert_eq!(first.job.id, second.job.id);
        assert!(Arc::ptr_eq(&first.job, &second.job));
        let m = reg.metrics.snapshot();
        assert_eq!((m.cache_misses, m.cache_hits), (1, 1));
        assert_eq!(reg.len(), 1);
        // A genuinely different spec gets its own job.
        let other = SPEC.replace("\"seed\": 1", "\"seed\": 2");
        let third = reg.submit(&other).unwrap();
        assert!(third.fresh);
        assert_ne!(third.job.id, first.job.id);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn lookup_by_hex_id() {
        let reg = Registry::new();
        let sub = reg.submit(SPEC).unwrap();
        let hex = sub.job.id.to_hex();
        assert!(Arc::ptr_eq(&reg.get(&hex).unwrap(), &sub.job));
        assert!(reg.get("0000000000000000ffffffffffffffff").is_none());
        assert!(reg.get("not-an-id").is_none());
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let reg = Registry::new();
        assert!(matches!(
            reg.submit("{"),
            Err(SubmitError::Spec(SpecError::Json(_)))
        ));
        assert!(matches!(
            reg.submit(r#"{"name": "x"}"#),
            Err(SubmitError::Spec(SpecError::Invalid { .. }))
        ));
        assert!(reg.is_empty());
        assert_eq!(reg.metrics.snapshot().cache_misses, 0);
    }

    #[test]
    fn job_lifecycle_and_wait() {
        let reg = Registry::new();
        let job = reg.submit(SPEC).unwrap().job;
        assert_eq!(job.wait(Duration::from_millis(10)), JobStatus::Queued);
        job.start();
        assert_eq!(job.status(), JobStatus::Running);
        job.record_progress(1);
        assert_eq!(job.points_done(), 1);
        // Progress is monotonic even with racing reporters.
        job.record_progress(1);
        assert_eq!(job.points_done(), 1);
        let waiter = {
            let job = Arc::clone(&job);
            std::thread::spawn(move || job.wait(Duration::from_secs(10)))
        };
        job.finish(empty_result("reg-test"));
        assert_eq!(waiter.join().unwrap(), JobStatus::Done);
        let result = job.result().unwrap();
        assert_eq!(result.unique_points, 1);
        assert_eq!(result.csv(), predllc_explore::report::CSV_HEADER);
        assert_eq!(job.error(), None);
    }

    fn seeded(seed: u64) -> String {
        SPEC.replace("\"seed\": 1", &format!("\"seed\": {seed}"))
    }

    #[test]
    fn capacity_evicts_oldest_finished_jobs_only() {
        let reg = Registry::with_capacity(2);
        let a = reg.submit(&seeded(1)).unwrap().job;
        let b = reg.submit(&seeded(2)).unwrap().job;
        // Both unfinished: nothing evictable, the third is refused.
        assert_eq!(reg.submit(&seeded(3)).unwrap_err(), SubmitError::AtCapacity);
        assert_eq!(reg.len(), 2);
        // ...but a duplicate of a registered job still coalesces.
        assert!(!reg.submit(&seeded(1)).unwrap().fresh);

        // Finish the *newer* job: eviction must pick it (the oldest
        // finished), not the still-running older one.
        b.start();
        b.finish(empty_result("reg-test"));
        let c = reg.submit(&seeded(3)).unwrap();
        assert!(c.fresh);
        assert_eq!(reg.len(), 2);
        assert!(reg.get(&b.id.to_hex()).is_none(), "finished job evicted");
        assert!(reg.get(&a.id.to_hex()).is_some(), "unfinished job kept");
        // An evicted experiment re-submits as a fresh job (re-simulates).
        b.result().unwrap(); // the old handle still reads its result
        assert!(reg.get(&c.job.id.to_hex()).is_some());
    }

    #[test]
    fn abandon_settles_counters_and_unregisters() {
        let reg = Registry::new();
        let job = reg.submit(SPEC).unwrap().job;
        assert_eq!(reg.metrics.snapshot().jobs_queued, 1);
        reg.abandon(&job, "service is shutting down");
        assert_eq!(job.status(), JobStatus::Failed);
        assert!(reg.get(&job.id.to_hex()).is_none());
        let m = reg.metrics.snapshot();
        assert_eq!((m.jobs_queued, m.jobs_failed), (0, 1));
        // Idempotent: a second abandon is a no-op.
        reg.abandon(&job, "again");
        assert_eq!(reg.metrics.snapshot().jobs_failed, 1);
    }

    #[test]
    fn metrics_render_every_counter() {
        let m = Metrics::default();
        m.cache_hits.add(3);
        let text = m.render();
        assert!(text.contains("predllc_cache_hits 3\n"));
        assert!(text.ends_with('\n'));
        assert!(text.contains("# TYPE predllc_jobs_queued gauge\n"));
        assert!(text.contains("# TYPE predllc_jobs_done counter\n"));
        predllc_obs::expo::validate(&text).expect("metrics render must be valid exposition");
        for name in [
            "predllc_jobs_queued",
            "predllc_jobs_running",
            "predllc_jobs_done",
            "predllc_jobs_failed",
            "predllc_cache_misses",
            "predllc_points_simulated",
            "predllc_http_requests",
            "predllc_connections_open",
            "predllc_requests_shed",
            "predllc_workers_alive",
            "predllc_workers_lost",
            "predllc_points_assigned",
            "predllc_points_retried",
            "predllc_points_cache_shared",
        ] {
            assert!(text.contains(name), "missing {name}");
        }
    }
}
