//! The event-driven serve mode: a few reactor threads multiplex
//! thousands of nonblocking connections over `epoll`.
//!
//! Topology (see [`serve`]):
//!
//! * the **acceptor** (the caller's thread) accepts connections,
//!   takes a [`ConnTicket`] for each, and round-robins them to the
//!   reactors through per-reactor inboxes;
//! * each **reactor** owns an [`Epoll`] instance and a slab of
//!   connection state machines (read → parse → dispatch → write).
//!   Light endpoints run inline; heavy ones are queued to the
//!   [`DispatchPool`], and their connections park in `Dispatching`
//!   until the worker injects the outcome back;
//! * the **dispatch pool** is a bounded queue + worker threads. A full
//!   queue is the backpressure signal: the reactor answers `429` +
//!   `Retry-After` immediately instead of queueing (shedding by queue
//!   depth, not connection count).
//!
//! Timeout discipline: a connection's idle clock anchors at its last
//! *completed* activity (accept, response flushed, write progress) —
//! reading bytes does **not** reset it, so a slow-loris trickle cannot
//! hold a connection past `idle_timeout`. Connections parked in
//! `Dispatching` are never reaped (server-side slowness is not client
//! misbehavior). A stalled reader of a streamed response is bounded to
//! ~[`LOW_WATER`] buffered bytes and reaped once writes make no
//! progress for `idle_timeout`.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::api;
use crate::handler::{Dispatch, Router};
use crate::http::{
    encode_chunk, encode_last_chunk, head_bytes, try_parse, write_response, Body, BodyStream,
    Framing, Parse, Request,
};
use crate::server::{register_waker, ConnTicket, ReactorOptions, Shared};
use crate::sys::{Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};

/// Refill threshold for streamed bodies: the writer pulls more chunks
/// only while fewer than this many bytes sit unflushed, so a stalled
/// reader bounds buffered memory instead of draining the whole body.
const LOW_WATER: usize = 64 * 1024;
/// Consumed-prefix size past which the output buffer is compacted.
const COMPACT: usize = 256 * 1024;
/// The epoll token of a reactor's wake eventfd (connections start at 1).
const WAKE: u64 = 0;

/// Work injected into a reactor from another thread (the acceptor or a
/// dispatch worker); the reactor drains its inbox on every wake.
enum Injection {
    /// A freshly accepted connection (already nonblocking + nodelay)
    /// and its live claim against the connection cap.
    NewConn(TcpStream, ConnTicket),
    /// A heavy request's outcome, coming back from the dispatch pool.
    /// `seq` guards against slot reuse: a stale outcome for a closed
    /// connection is dropped.
    Done {
        token: u64,
        seq: u64,
        outcome: Dispatch,
    },
}

/// A reactor's cross-thread mailbox: push an [`Injection`], signal the
/// eventfd, and the parked `epoll_wait` returns.
struct ReactorShared {
    inbox: Mutex<Vec<Injection>>,
    wake: EventFd,
}

impl ReactorShared {
    fn new() -> io::Result<ReactorShared> {
        Ok(ReactorShared {
            inbox: Mutex::new(Vec::new()),
            wake: EventFd::new()?,
        })
    }

    fn inject(&self, injection: Injection) {
        self.inbox.lock().unwrap().push(injection);
        self.wake.signal();
    }
}

/// One heavy request in flight on the dispatch pool.
struct Job {
    req: Box<Request>,
    token: u64,
    seq: u64,
    reactor: Arc<ReactorShared>,
}

struct PoolState {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// The bounded dispatch executor's queue. Depth is the backpressure
/// signal: [`DispatchPool::try_submit`] refuses once `max` jobs wait,
/// and the reactor sheds that request with `429`.
struct DispatchPool {
    state: Mutex<PoolState>,
    cond: Condvar,
    max: usize,
}

impl DispatchPool {
    fn new(max: usize) -> DispatchPool {
        DispatchPool {
            state: Mutex::new(PoolState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            cond: Condvar::new(),
            max,
        }
    }

    /// Queues a job unless the queue is full (or closed); the rejected
    /// job comes back so the caller can answer `429` on its connection.
    fn try_submit(&self, job: Job) -> Result<(), Job> {
        let mut state = self.state.lock().unwrap();
        if state.closed || state.jobs.len() >= self.max {
            return Err(job);
        }
        state.jobs.push_back(job);
        self.cond.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once closed and drained.
    fn take(&self) -> Option<Job> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.cond.wait(state).unwrap();
        }
    }

    fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.cond.notify_all();
    }
}

/// Where a connection's state machine stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Accumulating request bytes until one parses complete.
    Reading,
    /// A heavy request is on the dispatch pool; waiting for its
    /// [`Injection::Done`].
    Dispatching,
    /// Flushing a response (head + body, possibly a pulled stream).
    Writing,
}

/// One connection's state, slotted in the reactor's slab.
struct Conn {
    stream: TcpStream,
    token: u64,
    /// Holds the connection's claim against `max_connections`; dropping
    /// the `Conn` releases it however the connection ends.
    _ticket: ConnTicket,
    /// Unparsed request bytes.
    buf: Vec<u8>,
    /// Rendered-but-unflushed response bytes (`out_pos` consumed).
    out: Vec<u8>,
    out_pos: usize,
    /// The streamed body still being pulled, when the response is
    /// chunked.
    stream_body: Option<Box<dyn BodyStream>>,
    state: State,
    /// The dispatch sequence number guarding [`Injection::Done`]
    /// delivery against slot reuse.
    seq: u64,
    http11: bool,
    pending_keep_alive: bool,
    /// The peer shut down its writing half: deliver the pending
    /// response, accept no further requests.
    half_closed: bool,
    /// Last completed activity (accept / response flushed / write
    /// progress). Read bytes do not touch it — see the module doc.
    anchor: Instant,
    /// Currently registered epoll interest mask.
    interest: u32,
}

/// Everything an event handler needs besides the connection itself.
struct Ctx<'a> {
    epoll: &'a Epoll,
    shared: &'a Arc<Shared>,
    router: &'a Arc<Router>,
    pool: &'a Arc<DispatchPool>,
    rshared: &'a Arc<ReactorShared>,
}

fn set_interest(epoll: &Epoll, conn: &mut Conn, mask: u32) {
    if conn.interest != mask {
        let _ = epoll.modify(conn.stream.as_raw_fd(), mask, conn.token);
        conn.interest = mask;
    }
}

enum Fill {
    /// More bytes may come later.
    Open,
    /// Orderly end of the peer's request stream.
    Eof,
    /// Transport error; nothing can be delivered.
    Dead,
}

/// Drains readable bytes into `conn.buf`.
fn fill_read(conn: &mut Conn) -> Fill {
    let mut tmp = [0u8; 16 * 1024];
    loop {
        match conn.stream.read(&mut tmp) {
            Ok(0) => return Fill::Eof,
            Ok(n) => conn.buf.extend_from_slice(&tmp[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Fill::Open,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Fill::Dead,
        }
    }
}

enum Pump {
    /// Everything (including any streamed body) is on the wire.
    Flushed,
    /// The socket would block; wait for writability.
    Parked,
    /// Transport error.
    Dead,
}

/// Writes as much pending output as the socket accepts, pulling more
/// chunks from a streamed body only while the unflushed backlog is
/// under [`LOW_WATER`].
fn pump_write(
    stream: &mut TcpStream,
    out: &mut Vec<u8>,
    out_pos: &mut usize,
    body: &mut Option<Box<dyn BodyStream>>,
) -> Pump {
    loop {
        while let Some(stream_body) = body.as_mut() {
            if out.len() - *out_pos >= LOW_WATER {
                break;
            }
            match stream_body.next_chunk() {
                Some(chunk) => encode_chunk(out, &chunk),
                None => {
                    encode_last_chunk(out);
                    *body = None;
                }
            }
        }
        if *out_pos >= out.len() && body.is_none() {
            out.clear();
            *out_pos = 0;
            return Pump::Flushed;
        }
        match stream.write(&out[*out_pos..]) {
            Ok(0) => return Pump::Dead,
            Ok(n) => {
                *out_pos += n;
                if *out_pos >= COMPACT {
                    out.drain(..*out_pos);
                    *out_pos = 0;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Pump::Parked,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Pump::Dead,
        }
    }
}

enum WriteEnd {
    /// Response fully flushed, keep-alive: back to `Reading`.
    BackToReading,
    /// Parked on writability; the state machine stays in `Writing`.
    Pending,
    /// Close the connection (hang-up, error, or keep-alive over).
    Close,
}

/// Begins writing a dispatch outcome: renders the head, stages the
/// body (inline bytes or a pulled stream), and pumps what the socket
/// will take now.
fn start_write(ctx: &Ctx<'_>, conn: &mut Conn, outcome: Dispatch) -> WriteEnd {
    let resp = match outcome {
        Dispatch::Hangup => return WriteEnd::Close,
        Dispatch::Reply(resp) => resp,
    };
    let keep = conn.pending_keep_alive && !ctx.shared.shutdown.load(Ordering::SeqCst);
    conn.pending_keep_alive = keep;
    // HTTP/1.0 peers don't speak chunked framing.
    let resp = if conn.http11 {
        resp
    } else {
        resp.materialized()
    };
    let framing = match &resp.body {
        Body::Full(bytes) => Framing::Length(bytes.len()),
        Body::Stream(_) => Framing::Chunked,
    };
    conn.out = head_bytes(&resp, framing, keep);
    conn.out_pos = 0;
    match resp.body {
        Body::Full(bytes) => conn.out.extend_from_slice(&bytes),
        Body::Stream(stream) => conn.stream_body = Some(stream),
    }
    conn.state = State::Writing;
    conn.anchor = Instant::now();
    drive_write(ctx, conn)
}

/// Pumps an in-progress `Writing` state and applies the transition.
fn drive_write(ctx: &Ctx<'_>, conn: &mut Conn) -> WriteEnd {
    match pump_write(
        &mut conn.stream,
        &mut conn.out,
        &mut conn.out_pos,
        &mut conn.stream_body,
    ) {
        Pump::Dead => WriteEnd::Close,
        Pump::Parked => {
            let mask = if conn.half_closed {
                EPOLLOUT
            } else {
                EPOLLOUT | EPOLLRDHUP
            };
            set_interest(ctx.epoll, conn, mask);
            WriteEnd::Pending
        }
        Pump::Flushed => {
            if conn.pending_keep_alive && !conn.half_closed {
                conn.state = State::Reading;
                set_interest(ctx.epoll, conn, EPOLLIN | EPOLLRDHUP);
                conn.anchor = Instant::now();
                WriteEnd::BackToReading
            } else {
                WriteEnd::Close
            }
        }
    }
}

/// Parses and serves as many buffered requests as possible (keep-alive
/// pipelining), returning `false` when the connection should close.
fn process_read(ctx: &Ctx<'_>, conn: &mut Conn, seq: &mut u64) -> bool {
    loop {
        if conn.state != State::Reading {
            return true;
        }
        match try_parse(&conn.buf, &ctx.shared.limits) {
            Parse::Partial => {
                set_interest(ctx.epoll, conn, EPOLLIN | EPOLLRDHUP);
                // A half-closed peer sends nothing more: whether the
                // buffer is empty (keep-alive over) or holds a request
                // prefix (it can never complete), the connection is
                // done.
                return !conn.half_closed;
            }
            Parse::Complete(req, consumed) => {
                conn.buf.drain(..consumed);
                conn.http11 = req.http11;
                conn.pending_keep_alive = req.keep_alive;
                *seq += 1;
                conn.seq = *seq;
                let end = if api::is_heavy(ctx.router, &req) {
                    let job = Job {
                        req,
                        token: conn.token,
                        seq: conn.seq,
                        reactor: Arc::clone(ctx.rshared),
                    };
                    match ctx.pool.try_submit(job) {
                        Ok(()) => {
                            conn.state = State::Dispatching;
                            let mask = if conn.half_closed { 0 } else { EPOLLRDHUP };
                            set_interest(ctx.epoll, conn, mask);
                            return true;
                        }
                        Err(_rejected) => {
                            // Shed: queue full. The request counter
                            // still ticks (a 429 is an answer).
                            let metrics = &ctx.shared.registry.metrics;
                            metrics.http_requests.inc();
                            metrics.requests_shed.inc();
                            start_write(ctx, conn, Dispatch::Reply(api::backpressure_response(1)))
                        }
                    }
                } else {
                    let outcome = api::dispatch(ctx.shared, ctx.router, &req);
                    start_write(ctx, conn, outcome)
                };
                match end {
                    WriteEnd::BackToReading => continue,
                    WriteEnd::Pending => return true,
                    WriteEnd::Close => return false,
                }
            }
            Parse::Invalid(e) => {
                return match api::parse_error_response(&e) {
                    Some(resp) => {
                        conn.pending_keep_alive = false;
                        match start_write(ctx, conn, Dispatch::Reply(resp)) {
                            WriteEnd::Pending => true,
                            WriteEnd::BackToReading | WriteEnd::Close => false,
                        }
                    }
                    None => false,
                };
            }
        }
    }
}

/// Handles one epoll event for a connection; `false` = close it.
fn on_event(ctx: &Ctx<'_>, conn: &mut Conn, bits: u32, seq: &mut u64) -> bool {
    if bits & (EPOLLERR | EPOLLHUP) != 0 {
        return false;
    }
    match conn.state {
        State::Reading => match fill_read(conn) {
            Fill::Dead => false,
            Fill::Open => process_read(ctx, conn, seq),
            Fill::Eof => {
                conn.half_closed = true;
                process_read(ctx, conn, seq)
            }
        },
        State::Dispatching => {
            if bits & EPOLLRDHUP != 0 {
                // Note the half-close once, then go quiet (level-
                // triggered RDHUP would otherwise wake every tick).
                conn.half_closed = true;
                set_interest(ctx.epoll, conn, 0);
            }
            true
        }
        State::Writing => {
            if bits & EPOLLRDHUP != 0 {
                conn.half_closed = true;
            }
            let before = conn.out_pos;
            match drive_write(ctx, conn) {
                WriteEnd::Close => false,
                WriteEnd::Pending => {
                    if conn.out_pos != before {
                        conn.anchor = Instant::now();
                    }
                    true
                }
                WriteEnd::BackToReading => process_read(ctx, conn, seq),
            }
        }
    }
}

/// A dispatch outcome arrived for a parked connection.
fn on_done(ctx: &Ctx<'_>, conn: &mut Conn, outcome: Dispatch, seq: &mut u64) -> bool {
    match start_write(ctx, conn, outcome) {
        WriteEnd::Close => false,
        WriteEnd::Pending => true,
        WriteEnd::BackToReading => process_read(ctx, conn, seq),
    }
}

/// One reactor thread: epoll loop over its slab of connections.
fn reactor_loop(
    shared: Arc<Shared>,
    router: Arc<Router>,
    pool: Arc<DispatchPool>,
    rshared: Arc<ReactorShared>,
) -> io::Result<()> {
    let epoll = Epoll::new()?;
    epoll.add(rshared.wake.raw(), EPOLLIN, WAKE)?;
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut live: usize = 0;
    let mut seq: u64 = 0;
    let mut events = vec![EpollEvent::zeroed(); 1024];
    let mut last_sweep = Instant::now();

    let close_conn = |epoll: &Epoll,
                      conns: &mut Vec<Option<Conn>>,
                      free: &mut Vec<usize>,
                      live: &mut usize,
                      idx: usize| {
        if let Some(conn) = conns[idx].take() {
            let _ = epoll.delete(conn.stream.as_raw_fd());
            free.push(idx);
            *live -= 1;
        }
    };

    loop {
        let fired = epoll.wait(&mut events, 100)?;
        if shared.killed.load(Ordering::SeqCst) {
            // A crashed server drops everything without a goodbye.
            return Ok(());
        }
        rshared.wake.drain();
        let ctx = Ctx {
            epoll: &epoll,
            shared: &shared,
            router: &router,
            pool: &pool,
            rshared: &rshared,
        };

        let injections = std::mem::take(&mut *rshared.inbox.lock().unwrap());
        for injection in injections {
            match injection {
                Injection::NewConn(stream, ticket) => {
                    let idx = free.pop().unwrap_or_else(|| {
                        conns.push(None);
                        conns.len() - 1
                    });
                    let token = idx as u64 + 1;
                    if epoll
                        .add(stream.as_raw_fd(), EPOLLIN | EPOLLRDHUP, token)
                        .is_err()
                    {
                        free.push(idx);
                        continue; // stream + ticket drop: count stays right
                    }
                    conns[idx] = Some(Conn {
                        stream,
                        token,
                        _ticket: ticket,
                        buf: Vec::new(),
                        out: Vec::new(),
                        out_pos: 0,
                        stream_body: None,
                        state: State::Reading,
                        seq: 0,
                        http11: true,
                        pending_keep_alive: true,
                        half_closed: false,
                        anchor: Instant::now(),
                        interest: EPOLLIN | EPOLLRDHUP,
                    });
                    live += 1;
                }
                Injection::Done {
                    token,
                    seq: done_seq,
                    outcome,
                } => {
                    let idx = (token - 1) as usize;
                    let Some(conn) = conns.get_mut(idx).and_then(Option::as_mut) else {
                        continue; // connection died while dispatched
                    };
                    if conn.seq != done_seq || conn.state != State::Dispatching {
                        continue; // stale outcome for a reused slot
                    }
                    if !on_done(&ctx, conn, outcome, &mut seq) {
                        close_conn(&epoll, &mut conns, &mut free, &mut live, idx);
                    }
                }
            }
        }

        for ev in events.iter().take(fired) {
            let ev = *ev; // copy out of the packed slice
            if ev.data == WAKE {
                continue;
            }
            let idx = (ev.data - 1) as usize;
            let Some(conn) = conns.get_mut(idx).and_then(Option::as_mut) else {
                continue; // already closed this tick
            };
            if !on_event(&ctx, conn, ev.events, &mut seq) {
                close_conn(&epoll, &mut conns, &mut free, &mut live, idx);
            }
        }

        let shutting_down = shared.shutdown.load(Ordering::SeqCst);
        if last_sweep.elapsed() >= Duration::from_millis(100) || shutting_down {
            last_sweep = Instant::now();
            let idle = shared.idle_timeout;
            for idx in 0..conns.len() {
                let reap = match &conns[idx] {
                    None => false,
                    // Server-side slowness is not client misbehavior.
                    Some(conn) if conn.state == State::Dispatching => false,
                    Some(conn) => {
                        if shutting_down {
                            // Idle keep-alive connections close now;
                            // anything mid-flight gets a short grace.
                            (conn.state == State::Reading && conn.buf.is_empty())
                                || conn.anchor.elapsed() >= idle.min(Duration::from_secs(1))
                        } else {
                            conn.anchor.elapsed() >= idle
                        }
                    }
                };
                if reap {
                    close_conn(&epoll, &mut conns, &mut free, &mut live, idx);
                }
            }
        }

        if shutting_down && live == 0 && rshared.inbox.lock().unwrap().is_empty() {
            return Ok(());
        }
    }
}

/// A dispatch-pool worker: run heavy requests, inject outcomes back
/// into the owning reactor.
fn worker_loop(shared: Arc<Shared>, router: Arc<Router>, pool: Arc<DispatchPool>) {
    while let Some(job) = pool.take() {
        let outcome = api::dispatch(&shared, &router, &job.req);
        job.reactor.inject(Injection::Done {
            token: job.token,
            seq: job.seq,
            outcome,
        });
    }
}

/// Runs the reactor serve mode: spawns reactors and dispatch workers,
/// then runs the accept loop on the calling thread until shutdown/kill,
/// and drains everything before returning.
///
/// # Errors
///
/// Fatal acceptor failures (epoll setup, listener registration).
pub(crate) fn serve(
    listener: TcpListener,
    shared: &Arc<Shared>,
    router: Arc<Router>,
    opts: &ReactorOptions,
) -> io::Result<()> {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let n_reactors = if opts.reactors == 0 {
        (cores / 4).max(1)
    } else {
        opts.reactors
    };
    let n_dispatchers = if opts.dispatchers == 0 {
        cores.max(2)
    } else {
        opts.dispatchers
    };

    let pool = Arc::new(DispatchPool::new(opts.max_dispatch_queue));
    let mut reactors = Vec::with_capacity(n_reactors);
    let mut reactor_threads = Vec::with_capacity(n_reactors);
    for i in 0..n_reactors {
        let rshared = Arc::new(ReactorShared::new()?);
        register_waker(shared, {
            let rshared = Arc::clone(&rshared);
            Box::new(move || rshared.wake.signal())
        });
        let thread = std::thread::Builder::new()
            .name(format!("predllc-reactor-{i}"))
            .spawn({
                let shared = Arc::clone(shared);
                let router = Arc::clone(&router);
                let pool = Arc::clone(&pool);
                let rshared = Arc::clone(&rshared);
                move || {
                    if let Err(e) = reactor_loop(shared, router, pool, rshared) {
                        eprintln!("predllc-serve: reactor failed: {e}");
                    }
                }
            })?;
        reactors.push(rshared);
        reactor_threads.push(thread);
    }
    let mut worker_threads = Vec::with_capacity(n_dispatchers);
    for i in 0..n_dispatchers {
        worker_threads.push(
            std::thread::Builder::new()
                .name(format!("predllc-dispatch-{i}"))
                .spawn({
                    let shared = Arc::clone(shared);
                    let router = Arc::clone(&router);
                    let pool = Arc::clone(&pool);
                    move || worker_loop(shared, router, pool)
                })?,
        );
    }

    // The acceptor: nonblocking listener + a wake eventfd on its own
    // epoll, so shutdown() interrupts a parked wait immediately.
    listener.set_nonblocking(true)?;
    let accept_wake = Arc::new(EventFd::new()?);
    register_waker(shared, {
        let accept_wake = Arc::clone(&accept_wake);
        Box::new(move || accept_wake.signal())
    });
    let epoll = Epoll::new()?;
    epoll.add(listener.as_raw_fd(), EPOLLIN, 0)?;
    epoll.add(accept_wake.raw(), EPOLLIN, 1)?;
    let mut events = [EpollEvent::zeroed(); 16];
    let mut next_reactor = 0usize;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) || shared.killed.load(Ordering::SeqCst) {
            break;
        }
        epoll.wait(&mut events, 500)?;
        accept_wake.drain();
        loop {
            match listener.accept() {
                Ok((mut stream, _)) => {
                    let ticket = ConnTicket::new(shared);
                    if ticket.over_capacity() {
                        // Accepted sockets are blocking (nonblocking is
                        // not inherited), so this small write is safe
                        // inline.
                        let _ = write_response(
                            &mut stream,
                            api::error_response(503, "unavailable", "too many connections"),
                            false,
                        );
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue; // stream + ticket drop
                    }
                    reactors[next_reactor % reactors.len()]
                        .inject(Injection::NewConn(stream, ticket));
                    next_reactor += 1;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    eprintln!("predllc-serve: accept failed: {e}");
                    break;
                }
            }
        }
    }
    // Refuse new connections during the drain, then let the reactors
    // finish in-flight work (dispatch workers stay up until the
    // reactors are gone — parked connections need their outcomes).
    drop(listener);
    for rshared in &reactors {
        rshared.wake.signal();
    }
    for thread in reactor_threads {
        let _ = thread.join();
    }
    pool.close();
    for thread in worker_threads {
        let _ = thread.join();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A body that never ends: the stalled-reader bound must come from
    /// the writer's refill discipline, not the body running dry.
    struct Endless;

    impl BodyStream for Endless {
        fn next_chunk(&mut self) -> Option<Vec<u8>> {
            Some(vec![b'x'; 4096])
        }
    }

    #[test]
    fn pump_write_bounds_backlog_when_the_reader_stalls() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let peer = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let mut out = Vec::new();
        let mut out_pos = 0usize;
        let mut body: Option<Box<dyn BodyStream>> = Some(Box::new(Endless));
        // The peer never reads: the kernel buffer fills, the write
        // parks — and must park rather than pull the endless body
        // forever.
        match pump_write(&mut server_side, &mut out, &mut out_pos, &mut body) {
            Pump::Parked => {}
            Pump::Flushed => panic!("an endless body cannot flush"),
            Pump::Dead => panic!("the socket is healthy"),
        }
        assert!(body.is_some(), "the body must not be drained");
        // Unflushed backlog is bounded by the refill threshold plus at
        // most one chunk and its framing overhead.
        let backlog = out.len() - out_pos;
        assert!(
            backlog < LOW_WATER + 4096 + 32,
            "backlog {backlog} exceeds the low-water bound"
        );
        drop(peer);
    }

    #[test]
    fn dispatch_pool_sheds_past_capacity_and_drains_on_close() {
        fn job(reactor: &Arc<ReactorShared>, seq: u64) -> Job {
            Job {
                req: Box::new(Request {
                    method: "GET".into(),
                    path: "/healthz".into(),
                    query: None,
                    headers: vec![],
                    body: vec![],
                    keep_alive: true,
                    http11: true,
                }),
                token: 1,
                seq,
                reactor: Arc::clone(reactor),
            }
        }
        let reactor = Arc::new(ReactorShared::new().unwrap());
        let pool = DispatchPool::new(1);
        assert!(pool.try_submit(job(&reactor, 1)).is_ok());
        // Queue depth 1 is the cap: the next submit is shed.
        assert!(pool.try_submit(job(&reactor, 2)).is_err());
        let taken = pool.take().expect("queued job");
        assert_eq!(taken.seq, 1);
        // Taking freed the slot.
        assert!(pool.try_submit(job(&reactor, 3)).is_ok());
        pool.close();
        assert_eq!(pool.take().map(|j| j.seq), Some(3));
        assert!(pool.take().is_none(), "closed and drained");
        assert!(pool.try_submit(job(&reactor, 4)).is_err(), "closed refuses");
    }
}
