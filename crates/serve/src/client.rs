//! A small blocking HTTP client for the experiment service — used by
//! the integration tests, the CI smoke binary, the fleet coordinator
//! and scripts that prefer Rust over `curl`.
//!
//! One [`Client`] holds one keep-alive connection and replays requests
//! over it, reconnecting transparently when the server (or an idle
//! timeout) closed it. Fresh-connection transport failures retry a
//! bounded number of times with capped exponential backoff — every
//! endpoint is idempotent (content-addressed), so a replay is always
//! safe.

use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use predllc_explore::json::{self, Json};

/// Any client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connect, read, write).
    Io(std::io::Error),
    /// The server answered with a non-success status.
    Status {
        /// The HTTP status code.
        status: u16,
        /// The response body (usually `{"error": "..."}`).
        body: String,
    },
    /// The server's bytes were not understandable.
    Protocol(String),
    /// The job did not finish within the wait deadline.
    Timeout {
        /// The job's last observed status.
        last_status: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport failed: {e}"),
            ClientError::Status { status, body } => {
                write!(f, "server answered {status}: {body}")
            }
            ClientError::Protocol(what) => write!(f, "protocol error: {what}"),
            ClientError::Timeout { last_status } => {
                write!(
                    f,
                    "timed out waiting for the job (last status: {last_status})"
                )
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// The answer to a spec submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Submitted {
    /// The experiment's content-addressed id (32 hex chars).
    pub id: String,
    /// The spec's name.
    pub name: String,
    /// Status at submission time.
    pub status: String,
    /// Whether the submission coalesced onto an existing job.
    pub cached: bool,
    /// Unique grid points the job simulates.
    pub points_total: u64,
}

/// A job-status report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Status {
    /// The experiment id.
    pub id: String,
    /// The spec's name.
    pub name: String,
    /// `queued` / `running` / `done` / `failed`.
    pub status: String,
    /// Unique grid points completed.
    pub points_done: u64,
    /// Unique grid points total.
    pub points_total: u64,
    /// The failure message, when failed.
    pub error: Option<String>,
}

/// The answer to a point request ([`Client::point`] /
/// [`Client::cached_point`]).
#[derive(Debug, Clone, PartialEq)]
pub struct PointReply {
    /// The point's content-addressed fingerprint (32 hex chars).
    pub fingerprint: String,
    /// Whether a point cache answered instead of simulating.
    pub cached: bool,
    /// The exact-integer measurement document
    /// (`predllc_explore::PointMeasurement` wire form).
    pub measurement: Json,
}

/// A blocking client for one service address.
pub struct Client {
    addr: SocketAddr,
    conn: Option<BufReader<TcpStream>>,
    /// Per-request read timeout.
    timeout: Duration,
    /// Most transport retries per request on a fresh connection.
    retries: u32,
    /// First retry delay; doubles per retry up to [`Client::BACKOFF_CAP`].
    backoff: Duration,
    /// Trace id announced in the `X-Predllc-Trace` header of every
    /// request, when set.
    trace: Option<predllc_obs::TraceId>,
}

impl Client {
    /// Longest delay between transport retries.
    const BACKOFF_CAP: Duration = Duration::from_millis(80);

    /// A client for the service at `addr`.
    pub fn new(addr: SocketAddr) -> Client {
        Client {
            addr,
            conn: None,
            timeout: Duration::from_secs(120),
            retries: 4,
            backoff: Duration::from_millis(5),
            trace: None,
        }
    }

    /// Propagates `trace` in the `X-Predllc-Trace` header of every
    /// subsequent request, so server-side spans record under the
    /// caller's trace id (`None` stops announcing one).
    pub fn set_trace(&mut self, trace: Option<predllc_obs::TraceId>) {
        self.trace = trace;
    }

    /// Overrides the per-request read timeout (default 120 s).
    pub fn with_timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    /// Overrides how many times a request is retried after a transport
    /// failure on a fresh connection (default 4; `0` fails fast). The
    /// single free replay after a dead keep-alive connection is not
    /// counted — that failure mode is routine, not a sick server.
    pub fn with_retries(mut self, retries: u32) -> Client {
        self.retries = retries;
        self
    }

    fn connect(&mut self) -> Result<&mut BufReader<TcpStream>, ClientError> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_read_timeout(Some(self.timeout))?;
            self.conn = Some(BufReader::new(stream));
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    /// One request/response exchange with bounded transport retries.
    ///
    /// A failure on a reused keep-alive connection gets one free,
    /// immediate replay on a fresh connection (the connection was
    /// simply stale). Failures on fresh connections — refused connects,
    /// resets from a crashing server — retry up to `self.retries` times
    /// with exponential backoff (doubling from `self.backoff`, capped
    /// at [`Client::BACKOFF_CAP`]). Every service endpoint is
    /// idempotent, so replays are safe.
    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), ClientError> {
        let mut attempts = 0u32;
        let mut delay = self.backoff;
        loop {
            let had_conn = self.conn.is_some();
            match self.exchange(method, path, body) {
                Ok(out) => return Ok(out),
                Err(e @ (ClientError::Io(_) | ClientError::Protocol(_))) => {
                    self.conn = None;
                    if had_conn {
                        continue; // stale keep-alive: free immediate replay
                    }
                    if attempts >= self.retries {
                        return Err(e);
                    }
                    attempts += 1;
                    std::thread::sleep(delay);
                    delay = (delay * 2).min(Client::BACKOFF_CAP);
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn exchange(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), ClientError> {
        let addr = self.addr;
        let trace_header = match self.trace {
            Some(trace) => format!("{}: {}\r\n", predllc_obs::TRACE_HEADER, trace.to_hex()),
            None => String::new(),
        };
        let conn = self.connect()?;
        let payload = body.unwrap_or("");
        conn.get_mut().write_all(
            format!(
                "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-type: application/json\r\n\
                 {trace_header}content-length: {}\r\n\r\n{payload}",
                payload.len()
            )
            .as_bytes(),
        )?;
        conn.get_mut().flush()?;

        // Status line.
        let mut line = String::new();
        if conn.read_line(&mut line)? == 0 {
            self.conn = None;
            return Err(ClientError::Protocol("connection closed".into()));
        }
        let mut parts = line.trim_end().splitn(3, ' ');
        let version = parts.next().unwrap_or("");
        let status: u16 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ClientError::Protocol(format!("bad status line {line:?}")))?;
        if !version.starts_with("HTTP/1.") {
            return Err(ClientError::Protocol(format!("bad version in {line:?}")));
        }

        // Headers.
        let mut content_length = 0usize;
        let mut keep_alive = true;
        loop {
            let mut header = String::new();
            if conn.read_line(&mut header)? == 0 {
                return Err(ClientError::Protocol("truncated headers".into()));
            }
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                match name.trim().to_ascii_lowercase().as_str() {
                    "content-length" => {
                        content_length = value
                            .trim()
                            .parse()
                            .map_err(|_| ClientError::Protocol("bad content-length".into()))?;
                    }
                    "connection" => {
                        keep_alive = !value.trim().eq_ignore_ascii_case("close");
                    }
                    _ => {}
                }
            }
        }

        // Body.
        let mut body = vec![0u8; content_length];
        conn.read_exact(&mut body)?;
        if !keep_alive {
            self.conn = None;
        }
        let body =
            String::from_utf8(body).map_err(|_| ClientError::Protocol("non-utf8 body".into()))?;
        if (200..300).contains(&status) {
            Ok((status, body))
        } else {
            Err(ClientError::Status { status, body })
        }
    }

    fn request_json(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<Json, ClientError> {
        let (_, text) = self.request(method, path, body)?;
        json::parse(&text).map_err(|e| ClientError::Protocol(format!("invalid json reply: {e}")))
    }

    /// `GET /healthz`.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or status failure.
    pub fn healthz(&mut self) -> Result<String, ClientError> {
        Ok(self.request("GET", "/healthz", None)?.1)
    }

    /// `GET /metrics` — the raw plain-text exposition.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or status failure.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        Ok(self.request("GET", "/metrics", None)?.1)
    }

    /// One counter out of [`Client::metrics`], by exact name.
    ///
    /// # Errors
    ///
    /// [`ClientError::Protocol`] when the counter is missing.
    pub fn metric(&mut self, name: &str) -> Result<u64, ClientError> {
        let text = self.metrics()?;
        text.lines()
            .find_map(|l| {
                let (n, v) = l.split_once(' ')?;
                (n == name).then(|| v.parse().ok())?
            })
            .ok_or_else(|| ClientError::Protocol(format!("no metric named {name}")))
    }

    /// `GET /v1/metrics/history` — collected time-series over the last
    /// `window` milliseconds, downsampled to one sample per `step`
    /// milliseconds (server defaults apply when `None`). Returns the
    /// parsed JSON document (`{"now_ms", .., "series": [...]}`).
    ///
    /// # Errors
    ///
    /// [`ClientError::Status`] carrying the server's 404 when
    /// monitoring is not enabled, or any transport failure.
    pub fn metrics_history(
        &mut self,
        window_ms: Option<u64>,
        step_ms: Option<u64>,
    ) -> Result<Json, ClientError> {
        let mut path = String::from("/v1/metrics/history");
        let mut sep = '?';
        if let Some(w) = window_ms {
            path.push_str(&format!("{sep}window={w}"));
            sep = '&';
        }
        if let Some(s) = step_ms {
            path.push_str(&format!("{sep}step={s}"));
        }
        self.request_json("GET", &path, None)
    }

    /// `GET /v1/alerts` — every SLO rule's current state, as the
    /// parsed JSON document (`{"now_ms", "firing", "alerts": [...]}`).
    ///
    /// # Errors
    ///
    /// [`ClientError::Status`] carrying the server's 404 when
    /// monitoring is not enabled, or any transport failure.
    pub fn alerts(&mut self) -> Result<Json, ClientError> {
        self.request_json("GET", "/v1/alerts", None)
    }

    /// `GET /dashboard` — the self-contained HTML dashboard page.
    ///
    /// # Errors
    ///
    /// [`ClientError::Status`] carrying the server's 404 when
    /// monitoring is not enabled, or any transport failure.
    pub fn dashboard(&mut self) -> Result<String, ClientError> {
        Ok(self.request("GET", "/dashboard", None)?.1)
    }

    /// `GET /v1/jobs/{id}/trace` — the job's trace events as JSON
    /// Lines (one event object per line).
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or status failure (404 for an
    /// unknown id).
    pub fn job_trace(&mut self, id: &str) -> Result<String, ClientError> {
        Ok(self
            .request("GET", &format!("/v1/jobs/{id}/trace"), None)?
            .1)
    }

    /// `POST /v1/experiments` — submit a spec document.
    ///
    /// # Errors
    ///
    /// [`ClientError::Status`] carrying the server's 400 for invalid
    /// specs, or any transport failure.
    pub fn submit(&mut self, spec: &str) -> Result<Submitted, ClientError> {
        let doc = self.request_json("POST", "/v1/experiments", Some(spec))?;
        Ok(Submitted {
            id: str_field(&doc, "id")?,
            name: str_field(&doc, "name")?,
            status: str_field(&doc, "status")?,
            cached: doc
                .get("cached")
                .and_then(Json::as_bool)
                .ok_or_else(|| ClientError::Protocol("missing 'cached'".into()))?,
            points_total: u64_field(&doc, "points_total")?,
        })
    }

    /// `GET /v1/experiments/{id}` — status and progress.
    ///
    /// # Errors
    ///
    /// [`ClientError::Status`] carrying the server's 404 for unknown
    /// ids, or any transport failure.
    pub fn status(&mut self, id: &str) -> Result<Status, ClientError> {
        let doc = self.request_json("GET", &format!("/v1/experiments/{id}"), None)?;
        Ok(Status {
            id: str_field(&doc, "id")?,
            name: str_field(&doc, "name")?,
            status: str_field(&doc, "status")?,
            points_done: u64_field(&doc, "points_done")?,
            points_total: u64_field(&doc, "points_total")?,
            error: doc.get("error").and_then(Json::as_str).map(str::to_string),
        })
    }

    /// Polls [`Client::status`] until the job is `done`, failing on
    /// `failed` or when `timeout` elapses.
    ///
    /// # Errors
    ///
    /// [`ClientError::Timeout`] when the deadline passes first, or
    /// [`ClientError::Status`] when the job failed server-side.
    pub fn wait_done(&mut self, id: &str, timeout: Duration) -> Result<Status, ClientError> {
        let deadline = Instant::now() + timeout;
        let mut delay = Duration::from_millis(2);
        loop {
            let status = self.status(id)?;
            match status.status.as_str() {
                "done" => return Ok(status),
                "failed" => {
                    return Err(ClientError::Status {
                        status: 500,
                        body: status.error.unwrap_or_else(|| "job failed".into()),
                    })
                }
                _ if Instant::now() >= deadline => {
                    return Err(ClientError::Timeout {
                        last_status: status.status,
                    })
                }
                _ => {
                    std::thread::sleep(delay);
                    // Back off to spare tiny jobs the polling overhead
                    // without making big ones laggy to observe.
                    delay = (delay * 2).min(Duration::from_millis(200));
                }
            }
        }
    }

    /// `GET /v1/experiments/{id}/results?format=csv`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Status`] for 404/409/500 answers, or any
    /// transport failure.
    pub fn results_csv(&mut self, id: &str) -> Result<String, ClientError> {
        Ok(self
            .request(
                "GET",
                &format!("/v1/experiments/{id}/results?format=csv"),
                None,
            )?
            .1)
    }

    /// `GET /v1/experiments/{id}/results?format=json`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Status`] for 404/409/500 answers, or any
    /// transport failure.
    pub fn results_json(&mut self, id: &str) -> Result<String, ClientError> {
        Ok(self
            .request(
                "GET",
                &format!("/v1/experiments/{id}/results?format=json"),
                None,
            )?
            .1)
    }

    /// `GET /v1/experiments/{id}/attribution` — the attribution
    /// artifact of a finished job that ran with `"attribution": true`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Status`] carrying the server's 404 when the
    /// experiment is unknown **or** ran without attribution, 409 while
    /// not yet done, or any transport failure.
    pub fn attribution(&mut self, id: &str) -> Result<String, ClientError> {
        Ok(self
            .request("GET", &format!("/v1/experiments/{id}/attribution"), None)?
            .1)
    }

    /// `POST /v1/points` — have the server simulate (or answer from its
    /// point cache) one grid point.
    ///
    /// # Errors
    ///
    /// [`ClientError::Status`] carrying the server's 400 for malformed
    /// requests or 422 for points that fail to build/simulate, or any
    /// transport failure.
    pub fn point(&mut self, request: &str) -> Result<PointReply, ClientError> {
        let doc = self.request_json("POST", "/v1/points", Some(request))?;
        point_reply(&doc)
    }

    /// `GET /v1/points/{fingerprint}` — a measurement the server already
    /// has cached.
    ///
    /// # Errors
    ///
    /// [`ClientError::Status`] carrying 404 when the point is not
    /// cached, or any transport failure.
    pub fn cached_point(&mut self, fingerprint: &str) -> Result<PointReply, ClientError> {
        let doc = self.request_json("GET", &format!("/v1/points/{fingerprint}"), None)?;
        point_reply(&doc)
    }
}

fn point_reply(doc: &Json) -> Result<PointReply, ClientError> {
    Ok(PointReply {
        fingerprint: str_field(doc, "fingerprint")?,
        cached: doc
            .get("cached")
            .and_then(Json::as_bool)
            .ok_or_else(|| ClientError::Protocol("missing 'cached'".into()))?,
        measurement: doc
            .get("measurement")
            .cloned()
            .ok_or_else(|| ClientError::Protocol("missing 'measurement'".into()))?,
    })
}

fn str_field(doc: &Json, key: &str) -> Result<String, ClientError> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| ClientError::Protocol(format!("missing '{key}'")))
}

fn u64_field(doc: &Json, key: &str) -> Result<u64, ClientError> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| ClientError::Protocol(format!("missing '{key}'")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// An address that refuses connections: bind an ephemeral port,
    /// read it back, drop the listener.
    fn dead_addr() -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap()
    }

    #[test]
    fn refused_connections_exhaust_bounded_retries() {
        let addr = dead_addr();
        let started = Instant::now();
        let mut client = Client::new(addr).with_retries(3);
        let err = client.healthz().unwrap_err();
        assert!(matches!(err, ClientError::Io(_)), "got {err}");
        // Three backoff sleeps happened: 5 + 10 + 20 ms.
        assert!(
            started.elapsed() >= Duration::from_millis(35),
            "retries returned too fast to have backed off: {:?}",
            started.elapsed()
        );
        // Zero retries fails fast with the same error class.
        let mut eager = Client::new(addr).with_retries(0);
        assert!(matches!(eager.healthz().unwrap_err(), ClientError::Io(_)));
    }

    #[test]
    fn retries_ride_out_dropped_connections() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            // Accept and immediately drop two connections (resets seen
            // client-side), then serve one canned response.
            for _ in 0..2 {
                drop(listener.accept().unwrap());
            }
            let (mut stream, _) = listener.accept().unwrap();
            let mut buf = [0u8; 512];
            let _ = stream.read(&mut buf);
            stream
                .write_all(
                    b"HTTP/1.1 200 OK\r\ncontent-type: text/plain\r\n\
                      content-length: 3\r\nconnection: close\r\n\r\nok\n",
                )
                .unwrap();
        });
        let mut client = Client::new(addr).with_retries(4);
        assert_eq!(client.healthz().unwrap(), "ok\n");
        server.join().unwrap();
    }
}
