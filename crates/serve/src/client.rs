//! A small blocking HTTP client for the experiment service — used by
//! the integration tests, the CI smoke binary and scripts that prefer
//! Rust over `curl`.
//!
//! One [`Client`] holds one keep-alive connection and replays requests
//! over it, reconnecting transparently when the server (or an idle
//! timeout) closed it.

use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use predllc_explore::json::{self, Json};

/// Any client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connect, read, write).
    Io(std::io::Error),
    /// The server answered with a non-success status.
    Status {
        /// The HTTP status code.
        status: u16,
        /// The response body (usually `{"error": "..."}`).
        body: String,
    },
    /// The server's bytes were not understandable.
    Protocol(String),
    /// The job did not finish within the wait deadline.
    Timeout {
        /// The job's last observed status.
        last_status: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport failed: {e}"),
            ClientError::Status { status, body } => {
                write!(f, "server answered {status}: {body}")
            }
            ClientError::Protocol(what) => write!(f, "protocol error: {what}"),
            ClientError::Timeout { last_status } => {
                write!(
                    f,
                    "timed out waiting for the job (last status: {last_status})"
                )
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// The answer to a spec submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Submitted {
    /// The experiment's content-addressed id (32 hex chars).
    pub id: String,
    /// The spec's name.
    pub name: String,
    /// Status at submission time.
    pub status: String,
    /// Whether the submission coalesced onto an existing job.
    pub cached: bool,
    /// Unique grid points the job simulates.
    pub points_total: u64,
}

/// A job-status report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Status {
    /// The experiment id.
    pub id: String,
    /// The spec's name.
    pub name: String,
    /// `queued` / `running` / `done` / `failed`.
    pub status: String,
    /// Unique grid points completed.
    pub points_done: u64,
    /// Unique grid points total.
    pub points_total: u64,
    /// The failure message, when failed.
    pub error: Option<String>,
}

/// A blocking client for one service address.
pub struct Client {
    addr: SocketAddr,
    conn: Option<BufReader<TcpStream>>,
    /// Per-request read timeout.
    timeout: Duration,
}

impl Client {
    /// A client for the service at `addr`.
    pub fn new(addr: SocketAddr) -> Client {
        Client {
            addr,
            conn: None,
            timeout: Duration::from_secs(120),
        }
    }

    /// Overrides the per-request read timeout (default 120 s).
    pub fn with_timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    fn connect(&mut self) -> Result<&mut BufReader<TcpStream>, ClientError> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_read_timeout(Some(self.timeout))?;
            self.conn = Some(BufReader::new(stream));
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    /// One request/response exchange; reconnects once if the cached
    /// keep-alive connection turned out dead.
    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), ClientError> {
        let had_conn = self.conn.is_some();
        match self.exchange(method, path, body) {
            Ok(out) => Ok(out),
            // A reused connection may have been closed under us (idle
            // timeout, server restart): retry once on a fresh one.
            Err(ClientError::Io(_)) | Err(ClientError::Protocol(_)) if had_conn => {
                self.conn = None;
                self.exchange(method, path, body)
            }
            Err(e) => Err(e),
        }
    }

    fn exchange(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), ClientError> {
        let addr = self.addr;
        let conn = self.connect()?;
        let payload = body.unwrap_or("");
        conn.get_mut().write_all(
            format!(
                "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-type: application/json\r\n\
                 content-length: {}\r\n\r\n{payload}",
                payload.len()
            )
            .as_bytes(),
        )?;
        conn.get_mut().flush()?;

        // Status line.
        let mut line = String::new();
        if conn.read_line(&mut line)? == 0 {
            self.conn = None;
            return Err(ClientError::Protocol("connection closed".into()));
        }
        let mut parts = line.trim_end().splitn(3, ' ');
        let version = parts.next().unwrap_or("");
        let status: u16 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ClientError::Protocol(format!("bad status line {line:?}")))?;
        if !version.starts_with("HTTP/1.") {
            return Err(ClientError::Protocol(format!("bad version in {line:?}")));
        }

        // Headers.
        let mut content_length = 0usize;
        let mut keep_alive = true;
        loop {
            let mut header = String::new();
            if conn.read_line(&mut header)? == 0 {
                return Err(ClientError::Protocol("truncated headers".into()));
            }
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                match name.trim().to_ascii_lowercase().as_str() {
                    "content-length" => {
                        content_length = value
                            .trim()
                            .parse()
                            .map_err(|_| ClientError::Protocol("bad content-length".into()))?;
                    }
                    "connection" => {
                        keep_alive = !value.trim().eq_ignore_ascii_case("close");
                    }
                    _ => {}
                }
            }
        }

        // Body.
        let mut body = vec![0u8; content_length];
        conn.read_exact(&mut body)?;
        if !keep_alive {
            self.conn = None;
        }
        let body =
            String::from_utf8(body).map_err(|_| ClientError::Protocol("non-utf8 body".into()))?;
        if (200..300).contains(&status) {
            Ok((status, body))
        } else {
            Err(ClientError::Status { status, body })
        }
    }

    fn request_json(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<Json, ClientError> {
        let (_, text) = self.request(method, path, body)?;
        json::parse(&text).map_err(|e| ClientError::Protocol(format!("invalid json reply: {e}")))
    }

    /// `GET /healthz`.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or status failure.
    pub fn healthz(&mut self) -> Result<String, ClientError> {
        Ok(self.request("GET", "/healthz", None)?.1)
    }

    /// `GET /metrics` — the raw plain-text exposition.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or status failure.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        Ok(self.request("GET", "/metrics", None)?.1)
    }

    /// One counter out of [`Client::metrics`], by exact name.
    ///
    /// # Errors
    ///
    /// [`ClientError::Protocol`] when the counter is missing.
    pub fn metric(&mut self, name: &str) -> Result<u64, ClientError> {
        let text = self.metrics()?;
        text.lines()
            .find_map(|l| {
                let (n, v) = l.split_once(' ')?;
                (n == name).then(|| v.parse().ok())?
            })
            .ok_or_else(|| ClientError::Protocol(format!("no metric named {name}")))
    }

    /// `POST /v1/experiments` — submit a spec document.
    ///
    /// # Errors
    ///
    /// [`ClientError::Status`] carrying the server's 400 for invalid
    /// specs, or any transport failure.
    pub fn submit(&mut self, spec: &str) -> Result<Submitted, ClientError> {
        let doc = self.request_json("POST", "/v1/experiments", Some(spec))?;
        Ok(Submitted {
            id: str_field(&doc, "id")?,
            name: str_field(&doc, "name")?,
            status: str_field(&doc, "status")?,
            cached: doc
                .get("cached")
                .and_then(Json::as_bool)
                .ok_or_else(|| ClientError::Protocol("missing 'cached'".into()))?,
            points_total: u64_field(&doc, "points_total")?,
        })
    }

    /// `GET /v1/experiments/{id}` — status and progress.
    ///
    /// # Errors
    ///
    /// [`ClientError::Status`] carrying the server's 404 for unknown
    /// ids, or any transport failure.
    pub fn status(&mut self, id: &str) -> Result<Status, ClientError> {
        let doc = self.request_json("GET", &format!("/v1/experiments/{id}"), None)?;
        Ok(Status {
            id: str_field(&doc, "id")?,
            name: str_field(&doc, "name")?,
            status: str_field(&doc, "status")?,
            points_done: u64_field(&doc, "points_done")?,
            points_total: u64_field(&doc, "points_total")?,
            error: doc.get("error").and_then(Json::as_str).map(str::to_string),
        })
    }

    /// Polls [`Client::status`] until the job is `done`, failing on
    /// `failed` or when `timeout` elapses.
    ///
    /// # Errors
    ///
    /// [`ClientError::Timeout`] when the deadline passes first, or
    /// [`ClientError::Status`] when the job failed server-side.
    pub fn wait_done(&mut self, id: &str, timeout: Duration) -> Result<Status, ClientError> {
        let deadline = Instant::now() + timeout;
        let mut delay = Duration::from_millis(2);
        loop {
            let status = self.status(id)?;
            match status.status.as_str() {
                "done" => return Ok(status),
                "failed" => {
                    return Err(ClientError::Status {
                        status: 500,
                        body: status.error.unwrap_or_else(|| "job failed".into()),
                    })
                }
                _ if Instant::now() >= deadline => {
                    return Err(ClientError::Timeout {
                        last_status: status.status,
                    })
                }
                _ => {
                    std::thread::sleep(delay);
                    // Back off to spare tiny jobs the polling overhead
                    // without making big ones laggy to observe.
                    delay = (delay * 2).min(Duration::from_millis(200));
                }
            }
        }
    }

    /// `GET /v1/experiments/{id}/results?format=csv`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Status`] for 404/409/500 answers, or any
    /// transport failure.
    pub fn results_csv(&mut self, id: &str) -> Result<String, ClientError> {
        Ok(self
            .request(
                "GET",
                &format!("/v1/experiments/{id}/results?format=csv"),
                None,
            )?
            .1)
    }

    /// `GET /v1/experiments/{id}/results?format=json`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Status`] for 404/409/500 answers, or any
    /// transport failure.
    pub fn results_json(&mut self, id: &str) -> Result<String, ClientError> {
        Ok(self
            .request(
                "GET",
                &format!("/v1/experiments/{id}/results?format=json"),
                None,
            )?
            .1)
    }
}

fn str_field(doc: &Json, key: &str) -> Result<String, ClientError> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| ClientError::Protocol(format!("missing '{key}'")))
}

fn u64_field(doc: &Json, key: &str) -> Result<u64, ClientError> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| ClientError::Protocol(format!("missing '{key}'")))
}
