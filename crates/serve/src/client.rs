//! A small blocking HTTP client for the experiment service — used by
//! the integration tests, the CI smoke binary, the fleet coordinator
//! and scripts that prefer Rust over `curl`.
//!
//! One [`Client`] holds one keep-alive connection and replays requests
//! over it, reconnecting transparently when the server (or an idle
//! timeout) closed it. Fresh-connection transport failures retry a
//! bounded number of times with capped exponential backoff — every
//! endpoint is idempotent (content-addressed), so a replay is always
//! safe.
//!
//! Result documents stream: [`Client::results`] hands back a
//! [`ResultBody`] that decodes the server's chunked transfer encoding
//! incrementally ([`ResultBody::read_chunk`]), so a large grid never
//! has to exist in client memory at once — or collapse it with
//! [`ResultBody::text`] when it comfortably fits.

use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use predllc_explore::json::{self, Json};

/// Any client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connect, read, write).
    Io(std::io::Error),
    /// The server answered with a non-success status.
    Status {
        /// The HTTP status code.
        status: u16,
        /// The response body (usually `{"error": "..."}`).
        body: String,
    },
    /// The server's bytes were not understandable.
    Protocol(String),
    /// The job did not finish within the wait deadline.
    Timeout {
        /// The job's last observed status.
        last_status: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport failed: {e}"),
            ClientError::Status { status, body } => {
                write!(f, "server answered {status}: {body}")
            }
            ClientError::Protocol(what) => write!(f, "protocol error: {what}"),
            ClientError::Timeout { last_status } => {
                write!(
                    f,
                    "timed out waiting for the job (last status: {last_status})"
                )
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// The answer to a spec submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Submitted {
    /// The experiment's content-addressed id (32 hex chars).
    pub id: String,
    /// The spec's name.
    pub name: String,
    /// Status at submission time.
    pub status: String,
    /// Whether the submission coalesced onto an existing job.
    pub cached: bool,
    /// Unique grid points the job simulates.
    pub points_total: u64,
}

/// A job-status report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Status {
    /// The experiment id.
    pub id: String,
    /// The spec's name.
    pub name: String,
    /// `queued` / `running` / `done` / `failed`.
    pub status: String,
    /// Unique grid points completed.
    pub points_done: u64,
    /// Unique grid points total.
    pub points_total: u64,
    /// The failure message, when failed.
    pub error: Option<String>,
}

/// The answer to a point request ([`Client::point`] /
/// [`Client::cached_point`]).
#[derive(Debug, Clone, PartialEq)]
pub struct PointReply {
    /// The point's content-addressed fingerprint (32 hex chars).
    pub fingerprint: String,
    /// Whether a point cache answered instead of simulating.
    pub cached: bool,
    /// The exact-integer measurement document
    /// (`predllc_explore::PointMeasurement` wire form).
    pub measurement: Json,
}

/// Which result document to fetch via [`Client::results`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// `GET /v1/experiments/{id}/results?format=csv`.
    Csv,
    /// `GET /v1/experiments/{id}/results?format=json`.
    Json,
    /// `GET /v1/experiments/{id}/attribution` — present only for jobs
    /// submitted with `"attribution": true`.
    Attribution,
}

impl Format {
    fn path(self, id: &str) -> String {
        match self {
            Format::Csv => format!("/v1/experiments/{id}/results?format=csv"),
            Format::Json => format!("/v1/experiments/{id}/results?format=json"),
            Format::Attribution => format!("/v1/experiments/{id}/attribution"),
        }
    }
}

/// How a response body is framed on the wire.
enum Transfer {
    /// `content-length: n` — exactly `n` bytes follow the head.
    Length(usize),
    /// `transfer-encoding: chunked` — hex-sized chunks until a zero
    /// chunk.
    Chunked,
}

/// One parsed response head; the body is still on the wire.
struct Head {
    status: u16,
    keep_alive: bool,
    transfer: Transfer,
}

/// Progress through a streamed response body.
enum BodyState {
    /// `remaining` bytes of a content-length body left to read.
    Length { remaining: usize },
    /// Inside a chunked body, `remaining` data bytes left in the
    /// current chunk (0 = next read starts at a chunk header).
    Chunk { remaining: usize },
    /// Fully consumed — the connection is clean.
    Done,
}

/// An in-flight result body borrowed off a [`Client`].
///
/// Pull it incrementally with [`ResultBody::read_chunk`] or collapse
/// it with [`ResultBody::text`]. Dropping it unfinished abandons the
/// underlying connection (the unread bytes make it unreusable); the
/// client transparently reconnects on its next request.
pub struct ResultBody<'c> {
    client: &'c mut Client,
    state: BodyState,
    keep_alive: bool,
}

impl ResultBody<'_> {
    /// The next slab of body bytes, or `None` once the body is fully
    /// consumed. Slabs are bounded (≤ 16 KiB), so memory stays flat no
    /// matter how large the result document is.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] / [`ClientError::Protocol`] when the
    /// transport dies or misframes mid-body; the connection is dropped
    /// and the body cannot be resumed.
    pub fn read_chunk(&mut self) -> Result<Option<Vec<u8>>, ClientError> {
        const SLAB: usize = 16 * 1024;
        loop {
            match self.state {
                BodyState::Done => return Ok(None),
                BodyState::Length { remaining } => {
                    if remaining == 0 {
                        self.finish();
                        return Ok(None);
                    }
                    let take = remaining.min(SLAB);
                    let mut buf = vec![0u8; take];
                    self.client.read_body_exact(&mut buf)?;
                    self.state = BodyState::Length {
                        remaining: remaining - take,
                    };
                    return Ok(Some(buf));
                }
                BodyState::Chunk { remaining } => {
                    if remaining == 0 {
                        let size = self.client.read_chunk_size()?;
                        if size == 0 {
                            self.client.consume_crlf()?;
                            self.finish();
                            return Ok(None);
                        }
                        self.state = BodyState::Chunk { remaining: size };
                        continue;
                    }
                    let take = remaining.min(SLAB);
                    let mut buf = vec![0u8; take];
                    self.client.read_body_exact(&mut buf)?;
                    let left = remaining - take;
                    if left == 0 {
                        self.client.consume_crlf()?;
                    }
                    self.state = BodyState::Chunk { remaining: left };
                    return Ok(Some(buf));
                }
            }
        }
    }

    /// Reads the remaining body to completion as one UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport failure or a non-UTF-8 body.
    pub fn text(mut self) -> Result<String, ClientError> {
        let mut out = Vec::new();
        while let Some(chunk) = self.read_chunk()? {
            out.extend_from_slice(&chunk);
        }
        String::from_utf8(out).map_err(|_| ClientError::Protocol("non-utf8 body".into()))
    }

    /// Marks the body consumed and releases (or retires) the
    /// connection per the response's keep-alive answer.
    fn finish(&mut self) {
        self.state = BodyState::Done;
        if !self.keep_alive {
            self.client.conn = None;
        }
    }
}

impl Drop for ResultBody<'_> {
    fn drop(&mut self) {
        // An unfinished body leaves unread bytes on the stream; the
        // connection cannot frame another response, so drop it.
        if !matches!(self.state, BodyState::Done) {
            self.client.conn = None;
        }
    }
}

/// A blocking client for one service address.
pub struct Client {
    addr: SocketAddr,
    conn: Option<BufReader<TcpStream>>,
    /// Per-request read timeout.
    timeout: Duration,
    /// Most transport retries per request on a fresh connection.
    retries: u32,
    /// First retry delay; doubles per retry up to [`Client::BACKOFF_CAP`].
    backoff: Duration,
    /// Trace id announced in the `X-Predllc-Trace` header of every
    /// request, when set.
    trace: Option<predllc_obs::TraceId>,
}

impl Client {
    /// Longest delay between transport retries.
    const BACKOFF_CAP: Duration = Duration::from_millis(80);

    /// A client for the service at `addr`.
    pub fn new(addr: SocketAddr) -> Client {
        Client {
            addr,
            conn: None,
            timeout: Duration::from_secs(120),
            retries: 4,
            backoff: Duration::from_millis(5),
            trace: None,
        }
    }

    /// Propagates `trace` in the `X-Predllc-Trace` header of every
    /// subsequent request, so server-side spans record under the
    /// caller's trace id (`None` stops announcing one).
    pub fn set_trace(&mut self, trace: Option<predllc_obs::TraceId>) {
        self.trace = trace;
    }

    /// Overrides the per-request read timeout (default 120 s).
    pub fn with_timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    /// Overrides how many times a request is retried after a transport
    /// failure on a fresh connection (default 4; `0` fails fast). The
    /// single free replay after a dead keep-alive connection is not
    /// counted — that failure mode is routine, not a sick server.
    pub fn with_retries(mut self, retries: u32) -> Client {
        self.retries = retries;
        self
    }

    fn connect(&mut self) -> Result<&mut BufReader<TcpStream>, ClientError> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_read_timeout(Some(self.timeout))?;
            self.conn = Some(BufReader::new(stream));
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    /// One request/response exchange with bounded transport retries.
    ///
    /// A failure on a reused keep-alive connection gets one free,
    /// immediate replay on a fresh connection (the connection was
    /// simply stale). Failures on fresh connections — refused connects,
    /// resets from a crashing server — retry up to `self.retries` times
    /// with exponential backoff (doubling from `self.backoff`, capped
    /// at [`Client::BACKOFF_CAP`]). Every service endpoint is
    /// idempotent, so replays are safe.
    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), ClientError> {
        let mut attempts = 0u32;
        let mut delay = self.backoff;
        loop {
            let had_conn = self.conn.is_some();
            match self.exchange(method, path, body) {
                Ok(out) => return Ok(out),
                Err(e @ (ClientError::Io(_) | ClientError::Protocol(_))) => {
                    self.conn = None;
                    if had_conn {
                        continue; // stale keep-alive: free immediate replay
                    }
                    if attempts >= self.retries {
                        return Err(e);
                    }
                    attempts += 1;
                    std::thread::sleep(delay);
                    delay = (delay * 2).min(Client::BACKOFF_CAP);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// One full buffered exchange: send, read the head, collapse the
    /// body (either framing), classify by status.
    fn exchange(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), ClientError> {
        self.send_request(method, path, body)?;
        let head = self.read_head()?;
        let body = self.read_full_body(&head)?;
        if (200..300).contains(&head.status) {
            Ok((head.status, body))
        } else {
            Err(ClientError::Status {
                status: head.status,
                body,
            })
        }
    }

    /// Writes one request (connecting lazily first).
    fn send_request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(), ClientError> {
        let addr = self.addr;
        let trace_header = match self.trace {
            Some(trace) => format!("{}: {}\r\n", predllc_obs::TRACE_HEADER, trace.to_hex()),
            None => String::new(),
        };
        let conn = self.connect()?;
        let payload = body.unwrap_or("");
        conn.get_mut().write_all(
            format!(
                "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-type: application/json\r\n\
                 {trace_header}content-length: {}\r\n\r\n{payload}",
                payload.len()
            )
            .as_bytes(),
        )?;
        conn.get_mut().flush()?;
        Ok(())
    }

    /// Reads one response head: status line plus headers, stopping at
    /// the blank line. The body (if any) is still on the wire, framed
    /// per [`Head::transfer`].
    fn read_head(&mut self) -> Result<Head, ClientError> {
        let conn = match self.conn.as_mut() {
            Some(conn) => conn,
            None => return Err(ClientError::Protocol("no connection to read from".into())),
        };

        // Status line.
        let mut line = String::new();
        if conn.read_line(&mut line)? == 0 {
            self.conn = None;
            return Err(ClientError::Protocol("connection closed".into()));
        }
        let mut parts = line.trim_end().splitn(3, ' ');
        let version = parts.next().unwrap_or("");
        let status: u16 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ClientError::Protocol(format!("bad status line {line:?}")))?;
        if !version.starts_with("HTTP/1.") {
            return Err(ClientError::Protocol(format!("bad version in {line:?}")));
        }

        // Headers.
        let mut content_length = 0usize;
        let mut chunked = false;
        let mut keep_alive = true;
        loop {
            let mut header = String::new();
            if conn.read_line(&mut header)? == 0 {
                return Err(ClientError::Protocol("truncated headers".into()));
            }
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                match name.trim().to_ascii_lowercase().as_str() {
                    "content-length" => {
                        content_length = value
                            .trim()
                            .parse()
                            .map_err(|_| ClientError::Protocol("bad content-length".into()))?;
                    }
                    "transfer-encoding" => {
                        chunked = value.trim().eq_ignore_ascii_case("chunked");
                    }
                    "connection" => {
                        keep_alive = !value.trim().eq_ignore_ascii_case("close");
                    }
                    _ => {}
                }
            }
        }
        let transfer = if chunked {
            Transfer::Chunked
        } else {
            Transfer::Length(content_length)
        };
        Ok(Head {
            status,
            keep_alive,
            transfer,
        })
    }

    /// Collapses a whole response body into one string, decoding the
    /// chunked transfer encoding when the server streamed it.
    fn read_full_body(&mut self, head: &Head) -> Result<String, ClientError> {
        let mut out;
        match head.transfer {
            Transfer::Length(n) => {
                out = vec![0u8; n];
                self.read_body_exact(&mut out)?;
            }
            Transfer::Chunked => {
                out = Vec::new();
                loop {
                    let size = self.read_chunk_size()?;
                    if size == 0 {
                        self.consume_crlf()?;
                        break;
                    }
                    let start = out.len();
                    out.resize(start + size, 0);
                    self.read_body_exact(&mut out[start..])?;
                    self.consume_crlf()?;
                }
            }
        }
        if !head.keep_alive {
            self.conn = None;
        }
        String::from_utf8(out).map_err(|_| ClientError::Protocol("non-utf8 body".into()))
    }

    /// `read_exact` over the live connection, dropping it on failure —
    /// a half-read body leaves the stream unframed, so it must not be
    /// reused.
    fn read_body_exact(&mut self, buf: &mut [u8]) -> Result<(), ClientError> {
        let result = match self.conn.as_mut() {
            Some(conn) => conn.read_exact(buf).map_err(ClientError::from),
            None => Err(ClientError::Protocol("connection lost mid-body".into())),
        };
        if result.is_err() {
            self.conn = None;
        }
        result
    }

    /// Reads one `<hex-size>\r\n` chunk header, dropping the connection
    /// on failure.
    fn read_chunk_size(&mut self) -> Result<usize, ClientError> {
        let result = match self.conn.as_mut() {
            Some(conn) => {
                let mut line = String::new();
                match conn.read_line(&mut line) {
                    Err(e) => Err(ClientError::Io(e)),
                    Ok(0) => Err(ClientError::Protocol("truncated chunked body".into())),
                    Ok(_) => usize::from_str_radix(line.trim(), 16)
                        .map_err(|_| ClientError::Protocol(format!("bad chunk size {line:?}"))),
                }
            }
            None => Err(ClientError::Protocol("connection lost mid-body".into())),
        };
        if result.is_err() {
            self.conn = None;
        }
        result
    }

    /// Consumes the `\r\n` that terminates a chunk (or the final
    /// zero-chunk), dropping the connection on failure.
    fn consume_crlf(&mut self) -> Result<(), ClientError> {
        let mut crlf = [0u8; 2];
        self.read_body_exact(&mut crlf)?;
        if crlf != *b"\r\n" {
            self.conn = None;
            return Err(ClientError::Protocol("missing chunk terminator".into()));
        }
        Ok(())
    }

    fn request_json(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<Json, ClientError> {
        let (_, text) = self.request(method, path, body)?;
        json::parse(&text).map_err(|e| ClientError::Protocol(format!("invalid json reply: {e}")))
    }

    /// `GET /healthz`.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or status failure.
    pub fn healthz(&mut self) -> Result<String, ClientError> {
        Ok(self.request("GET", "/healthz", None)?.1)
    }

    /// `GET /metrics` — the raw plain-text exposition.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or status failure.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        Ok(self.request("GET", "/metrics", None)?.1)
    }

    /// One counter out of [`Client::metrics`], by exact name.
    ///
    /// # Errors
    ///
    /// [`ClientError::Protocol`] when the counter is missing.
    pub fn metric(&mut self, name: &str) -> Result<u64, ClientError> {
        let text = self.metrics()?;
        text.lines()
            .find_map(|l| {
                let (n, v) = l.split_once(' ')?;
                (n == name).then(|| v.parse().ok())?
            })
            .ok_or_else(|| ClientError::Protocol(format!("no metric named {name}")))
    }

    /// `GET /v1/metrics/history` — collected time-series over the last
    /// `window` milliseconds, downsampled to one sample per `step`
    /// milliseconds (server defaults apply when `None`). Returns the
    /// parsed JSON document (`{"now_ms", .., "series": [...]}`).
    ///
    /// # Errors
    ///
    /// [`ClientError::Status`] carrying the server's 404 when
    /// monitoring is not enabled, or any transport failure.
    pub fn metrics_history(
        &mut self,
        window_ms: Option<u64>,
        step_ms: Option<u64>,
    ) -> Result<Json, ClientError> {
        let mut path = String::from("/v1/metrics/history");
        let mut sep = '?';
        if let Some(w) = window_ms {
            path.push_str(&format!("{sep}window={w}"));
            sep = '&';
        }
        if let Some(s) = step_ms {
            path.push_str(&format!("{sep}step={s}"));
        }
        self.request_json("GET", &path, None)
    }

    /// `GET /v1/alerts` — every SLO rule's current state, as the
    /// parsed JSON document (`{"now_ms", "firing", "alerts": [...]}`).
    ///
    /// # Errors
    ///
    /// [`ClientError::Status`] carrying the server's 404 when
    /// monitoring is not enabled, or any transport failure.
    pub fn alerts(&mut self) -> Result<Json, ClientError> {
        self.request_json("GET", "/v1/alerts", None)
    }

    /// `GET /dashboard` — the self-contained HTML dashboard page.
    ///
    /// # Errors
    ///
    /// [`ClientError::Status`] carrying the server's 404 when
    /// monitoring is not enabled, or any transport failure.
    pub fn dashboard(&mut self) -> Result<String, ClientError> {
        Ok(self.request("GET", "/dashboard", None)?.1)
    }

    /// `GET /v1/jobs/{id}/trace` — the job's trace events as JSON
    /// Lines (one event object per line).
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or status failure (404 for an
    /// unknown id).
    pub fn job_trace(&mut self, id: &str) -> Result<String, ClientError> {
        Ok(self
            .request("GET", &format!("/v1/jobs/{id}/trace"), None)?
            .1)
    }

    /// `POST /v1/experiments` — submit a spec document.
    ///
    /// # Errors
    ///
    /// [`ClientError::Status`] carrying the server's 400 for invalid
    /// specs, or any transport failure.
    pub fn submit(&mut self, spec: &str) -> Result<Submitted, ClientError> {
        let doc = self.request_json("POST", "/v1/experiments", Some(spec))?;
        Ok(Submitted {
            id: str_field(&doc, "id")?,
            name: str_field(&doc, "name")?,
            status: str_field(&doc, "status")?,
            cached: doc
                .get("cached")
                .and_then(Json::as_bool)
                .ok_or_else(|| ClientError::Protocol("missing 'cached'".into()))?,
            points_total: u64_field(&doc, "points_total")?,
        })
    }

    /// `GET /v1/experiments/{id}` — status and progress.
    ///
    /// # Errors
    ///
    /// [`ClientError::Status`] carrying the server's 404 for unknown
    /// ids, or any transport failure.
    pub fn status(&mut self, id: &str) -> Result<Status, ClientError> {
        let doc = self.request_json("GET", &format!("/v1/experiments/{id}"), None)?;
        Ok(Status {
            id: str_field(&doc, "id")?,
            name: str_field(&doc, "name")?,
            status: str_field(&doc, "status")?,
            points_done: u64_field(&doc, "points_done")?,
            points_total: u64_field(&doc, "points_total")?,
            error: doc.get("error").and_then(Json::as_str).map(str::to_string),
        })
    }

    /// Polls [`Client::status`] until the job is `done`, failing on
    /// `failed` or when `timeout` elapses.
    ///
    /// # Errors
    ///
    /// [`ClientError::Timeout`] when the deadline passes first, or
    /// [`ClientError::Status`] when the job failed server-side.
    pub fn wait_done(&mut self, id: &str, timeout: Duration) -> Result<Status, ClientError> {
        let deadline = Instant::now() + timeout;
        let mut delay = Duration::from_millis(2);
        loop {
            let status = self.status(id)?;
            match status.status.as_str() {
                "done" => return Ok(status),
                "failed" => {
                    return Err(ClientError::Status {
                        status: 500,
                        body: status.error.unwrap_or_else(|| "job failed".into()),
                    })
                }
                _ if Instant::now() >= deadline => {
                    return Err(ClientError::Timeout {
                        last_status: status.status,
                    })
                }
                _ => {
                    std::thread::sleep(delay);
                    // Back off to spare tiny jobs the polling overhead
                    // without making big ones laggy to observe.
                    delay = (delay * 2).min(Duration::from_millis(200));
                }
            }
        }
    }

    /// Opens a finished job's result document as a streamed body.
    ///
    /// The server chunk-encodes result documents, rendering them row
    /// by row; the returned [`ResultBody`] decodes that stream
    /// incrementally, so neither side materializes the whole grid.
    /// Transport retries apply to opening the stream (same policy as
    /// every other request); once bytes flow, a failure surfaces as an
    /// error from [`ResultBody::read_chunk`].
    ///
    /// # Errors
    ///
    /// [`ClientError::Status`] for 404 (unknown id, or
    /// [`Format::Attribution`] on a job run without
    /// `"attribution": true`), 409 while not yet done, 500 for a
    /// failed job — the error body is fully drained first, keeping the
    /// connection reusable. Any transport failure.
    pub fn results(&mut self, id: &str, format: Format) -> Result<ResultBody<'_>, ClientError> {
        let path = format.path(id);
        let mut attempts = 0u32;
        let mut delay = self.backoff;
        let head = loop {
            let had_conn = self.conn.is_some();
            let sent = self
                .send_request("GET", &path, None)
                .and_then(|()| self.read_head());
            match sent {
                Ok(head) => break head,
                Err(e @ (ClientError::Io(_) | ClientError::Protocol(_))) => {
                    self.conn = None;
                    if had_conn {
                        continue; // stale keep-alive: free immediate replay
                    }
                    if attempts >= self.retries {
                        return Err(e);
                    }
                    attempts += 1;
                    std::thread::sleep(delay);
                    delay = (delay * 2).min(Client::BACKOFF_CAP);
                }
                Err(e) => return Err(e),
            }
        };
        if !(200..300).contains(&head.status) {
            let body = self.read_full_body(&head)?;
            return Err(ClientError::Status {
                status: head.status,
                body,
            });
        }
        let state = match head.transfer {
            Transfer::Length(n) => BodyState::Length { remaining: n },
            Transfer::Chunked => BodyState::Chunk { remaining: 0 },
        };
        Ok(ResultBody {
            keep_alive: head.keep_alive,
            state,
            client: self,
        })
    }

    /// `GET /v1/experiments/{id}/results?format=csv`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Status`] for 404/409/500 answers, or any
    /// transport failure.
    #[deprecated(
        since = "0.11.0",
        note = "use `results(id, Format::Csv)` and stream it, or collapse with `.text()`"
    )]
    pub fn results_csv(&mut self, id: &str) -> Result<String, ClientError> {
        self.results(id, Format::Csv)?.text()
    }

    /// `GET /v1/experiments/{id}/results?format=json`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Status`] for 404/409/500 answers, or any
    /// transport failure.
    #[deprecated(
        since = "0.11.0",
        note = "use `results(id, Format::Json)` and stream it, or collapse with `.text()`"
    )]
    pub fn results_json(&mut self, id: &str) -> Result<String, ClientError> {
        self.results(id, Format::Json)?.text()
    }

    /// `GET /v1/experiments/{id}/attribution` — the attribution
    /// artifact of a finished job that ran with `"attribution": true`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Status`] carrying the server's 404 when the
    /// experiment is unknown **or** ran without attribution, 409 while
    /// not yet done, or any transport failure.
    #[deprecated(
        since = "0.11.0",
        note = "use `results(id, Format::Attribution)` and stream it, or collapse with `.text()`"
    )]
    pub fn attribution(&mut self, id: &str) -> Result<String, ClientError> {
        self.results(id, Format::Attribution)?.text()
    }

    /// `POST /v1/points` — have the server simulate (or answer from its
    /// point cache) one grid point.
    ///
    /// # Errors
    ///
    /// [`ClientError::Status`] carrying the server's 400 for malformed
    /// requests or 422 for points that fail to build/simulate, or any
    /// transport failure.
    pub fn point(&mut self, request: &str) -> Result<PointReply, ClientError> {
        let doc = self.request_json("POST", "/v1/points", Some(request))?;
        point_reply(&doc)
    }

    /// `GET /v1/points/{fingerprint}` — a measurement the server already
    /// has cached.
    ///
    /// # Errors
    ///
    /// [`ClientError::Status`] carrying 404 when the point is not
    /// cached, or any transport failure.
    pub fn cached_point(&mut self, fingerprint: &str) -> Result<PointReply, ClientError> {
        let doc = self.request_json("GET", &format!("/v1/points/{fingerprint}"), None)?;
        point_reply(&doc)
    }
}

fn point_reply(doc: &Json) -> Result<PointReply, ClientError> {
    Ok(PointReply {
        fingerprint: str_field(doc, "fingerprint")?,
        cached: doc
            .get("cached")
            .and_then(Json::as_bool)
            .ok_or_else(|| ClientError::Protocol("missing 'cached'".into()))?,
        measurement: doc
            .get("measurement")
            .cloned()
            .ok_or_else(|| ClientError::Protocol("missing 'measurement'".into()))?,
    })
}

fn str_field(doc: &Json, key: &str) -> Result<String, ClientError> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| ClientError::Protocol(format!("missing '{key}'")))
}

fn u64_field(doc: &Json, key: &str) -> Result<u64, ClientError> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| ClientError::Protocol(format!("missing '{key}'")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// An address that refuses connections: bind an ephemeral port,
    /// read it back, drop the listener.
    fn dead_addr() -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap()
    }

    #[test]
    fn refused_connections_exhaust_bounded_retries() {
        let addr = dead_addr();
        let started = Instant::now();
        let mut client = Client::new(addr).with_retries(3);
        let err = client.healthz().unwrap_err();
        assert!(matches!(err, ClientError::Io(_)), "got {err}");
        // Three backoff sleeps happened: 5 + 10 + 20 ms.
        assert!(
            started.elapsed() >= Duration::from_millis(35),
            "retries returned too fast to have backed off: {:?}",
            started.elapsed()
        );
        // Zero retries fails fast with the same error class.
        let mut eager = Client::new(addr).with_retries(0);
        assert!(matches!(eager.healthz().unwrap_err(), ClientError::Io(_)));
    }

    #[test]
    fn retries_ride_out_dropped_connections() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            // Accept and immediately drop two connections (resets seen
            // client-side), then serve one canned response.
            for _ in 0..2 {
                drop(listener.accept().unwrap());
            }
            let (mut stream, _) = listener.accept().unwrap();
            let mut buf = [0u8; 512];
            let _ = stream.read(&mut buf);
            stream
                .write_all(
                    b"HTTP/1.1 200 OK\r\ncontent-type: text/plain\r\n\
                      content-length: 3\r\nconnection: close\r\n\r\nok\n",
                )
                .unwrap();
        });
        let mut client = Client::new(addr).with_retries(4);
        assert_eq!(client.healthz().unwrap(), "ok\n");
        server.join().unwrap();
    }

    #[test]
    fn chunked_bodies_decode_chunk_by_chunk() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut buf = [0u8; 512];
            let _ = stream.read(&mut buf);
            stream
                .write_all(
                    b"HTTP/1.1 200 OK\r\ncontent-type: text/csv\r\n\
                      transfer-encoding: chunked\r\nconnection: close\r\n\r\n\
                      6\r\nhello \r\n5\r\nworld\r\n0\r\n\r\n",
                )
                .unwrap();
        });
        let mut client = Client::new(addr).with_retries(2);
        let mut body = client.results("x", Format::Csv).unwrap();
        assert_eq!(body.read_chunk().unwrap().unwrap(), b"hello ");
        assert_eq!(body.read_chunk().unwrap().unwrap(), b"world");
        assert!(body.read_chunk().unwrap().is_none());
        assert!(body.read_chunk().unwrap().is_none(), "Done state is sticky");
        server.join().unwrap();
    }

    #[test]
    fn abandoned_stream_poisons_the_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut buf = [0u8; 512];
            let _ = stream.read(&mut buf);
            stream
                .write_all(
                    b"HTTP/1.1 200 OK\r\ncontent-type: text/csv\r\n\
                      transfer-encoding: chunked\r\n\r\n\
                      6\r\nhello \r\n5\r\nworld\r\n0\r\n\r\n",
                )
                .unwrap();
        });
        let mut client = Client::new(addr).with_retries(2);
        let mut body = client.results("x", Format::Csv).unwrap();
        // Read one chunk, then abandon mid-body.
        assert_eq!(body.read_chunk().unwrap().unwrap(), b"hello ");
        drop(body);
        assert!(
            client.conn.is_none(),
            "an unfinished body must not leave a mis-framed connection behind"
        );
        server.join().unwrap();
    }
}
