//! The service endpoints, written once against the [`Handler`] API and
//! served identically by both the epoll reactor and the blocking
//! fallback.
//!
//! [`build_router`] registers every endpoint; [`dispatch`] is the one
//! entry point both serve modes call per request — it owns the killed
//! check, the request counter, per-endpoint latency metrics, the
//! 404/405 fallbacks, and panic containment (a panicking handler
//! answers `500 {"error","kind":"internal"}` instead of taking the
//! connection thread down).
//!
//! Every non-2xx JSON body has the shape `{"error": "...", "kind":
//! "..."}`; `kind` is a small closed vocabulary (`http`, `limits`,
//! `spec`, `format`, `query`, `point`, `not_found`,
//! `method_not_allowed`, `not_ready`, `config`, `sim`, `backpressure`,
//! `job`, `internal`, `unavailable`) so clients can branch without
//! parsing prose.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use predllc_explore::hash::Fingerprint;
use predllc_explore::json::{render_string, Json};
use predllc_explore::{measure, PointError, PointRequest};
use predllc_obs::{fields, render_jsonl, SampleValue, TraceId, TRACE_HEADER};

use crate::handler::{Dispatch, Lookup, Router};
use crate::http::{HttpError, Request, Response};
use crate::registry::{JobStatus, SubmitError};
use crate::server::{
    kill_shared, record_component_cycles, refresh_trace_dropped, MonitorState, Shared,
};

/// A JSON error body: `{"error": message, "kind": kind}`.
pub(crate) fn error_response(status: u16, kind: &str, message: &str) -> Response {
    Response::json(
        status,
        format!(
            "{{\"error\":{},\"kind\":{}}}",
            render_string(message),
            render_string(kind),
        ),
    )
}

/// Maps a request-parse failure to its wire answer, or `None` when the
/// transport is gone and no response can be delivered.
pub(crate) fn parse_error_response(e: &HttpError) -> Option<Response> {
    match e {
        HttpError::Io(_) => None,
        HttpError::TooLarge(what) => {
            let status = if *what == "body" { 413 } else { 431 };
            Some(error_response(status, "limits", what))
        }
        HttpError::Malformed(what) => Some(error_response(400, "http", what)),
    }
}

/// The `429` answer when the dispatch executor queue is full: shed the
/// request now, tell the client when to come back.
pub(crate) fn backpressure_response(retry_after: u64) -> Response {
    error_response(429, "backpressure", "dispatch queue is full; retry later")
        .with_retry_after(retry_after)
}

/// Whether the route a request resolves to is marked heavy (must run
/// on the dispatch executor rather than inline on a reactor thread).
/// Unroutable requests are light — answering 404/405 is cheap.
pub(crate) fn is_heavy(router: &Router, req: &Request) -> bool {
    matches!(
        router.lookup(&req.method, &req.path),
        Lookup::Matched { heavy: true, .. }
    )
}

/// Serves one parsed request end to end: killed check, request
/// counter, routing, the handler itself (panic-contained), fallback
/// 404/405 bodies, and the per-endpoint latency record.
pub(crate) fn dispatch(shared: &Shared, router: &Router, req: &Request) -> Dispatch {
    if shared.killed.load(Ordering::SeqCst) {
        return Dispatch::Hangup; // a crashed server answers nothing
    }
    let metrics = &shared.registry.metrics;
    metrics.http_requests.inc();
    let started = Instant::now();
    let (label, outcome) = match router.lookup(&req.method, &req.path) {
        Lookup::Matched {
            label,
            handler,
            params,
            ..
        } => {
            let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                handler.handle(req, &params)
            }));
            match run {
                Ok(outcome) => (label, outcome),
                Err(_) => (
                    label,
                    Dispatch::Reply(error_response(500, "internal", "internal server error")),
                ),
            }
        }
        Lookup::MethodNotAllowed => (
            "other",
            Dispatch::Reply(error_response(
                405,
                "method_not_allowed",
                "method not allowed",
            )),
        ),
        Lookup::NotFound => (
            "other",
            Dispatch::Reply(error_response(404, "not_found", "no such endpoint")),
        ),
    };
    metrics.endpoint_latency(label).record(started.elapsed());
    outcome
}

/// Registers every endpoint. Light routes run inline on a reactor
/// thread; heavy routes (body parsing, simulation, unbounded renders)
/// run on the dispatch executor, whose bounded queue is the
/// backpressure signal.
pub(crate) fn build_router(shared: &Arc<Shared>) -> Router {
    let mut router = Router::new();
    macro_rules! route {
        ($reg:ident, $method:literal, $pattern:literal, $label:literal, $f:expr) => {{
            let s = Arc::clone(shared);
            router.$reg(
                $method,
                $pattern,
                $label,
                move |req: &Request, params: &[&str]| $f(&s, req, params),
            );
        }};
    }
    route!(at, "GET", "/healthz", "healthz", healthz);
    route!(at, "GET", "/metrics", "metrics", metrics_exposition);
    route!(
        at_heavy,
        "GET",
        "/v1/metrics/history",
        "metrics_history",
        metrics_history
    );
    route!(at, "GET", "/v1/alerts", "alerts", alerts);
    route!(at_heavy, "GET", "/dashboard", "dashboard", dashboard);
    route!(at_heavy, "POST", "/v1/experiments", "submit", submit);
    route!(at, "GET", "/v1/experiments/{id}", "job_status", status);
    route!(
        at,
        "GET",
        "/v1/experiments/{id}/results",
        "job_results",
        results
    );
    route!(
        at,
        "GET",
        "/v1/experiments/{id}/attribution",
        "job_attribution",
        attribution_results
    );
    route!(
        at_heavy,
        "GET",
        "/v1/jobs/{id}/trace",
        "job_trace",
        job_trace
    );
    route!(at_heavy, "POST", "/v1/points", "point_post", point_post);
    route!(at, "GET", "/v1/points/{fp}", "point_get", point_get);
    router
}

/// `GET /healthz`.
fn healthz(_shared: &Shared, _req: &Request, _params: &[&str]) -> Dispatch {
    Dispatch::Reply(Response::text("ok\n"))
}

/// `GET /metrics` — the Prometheus text exposition (the content type
/// scrapers negotiate on; `Metrics::render` guarantees the trailing
/// newline).
fn metrics_exposition(shared: &Shared, _req: &Request, _params: &[&str]) -> Dispatch {
    refresh_trace_dropped(shared);
    Dispatch::Reply(Response::new(
        200,
        "text/plain; version=0.0.4",
        shared.registry.metrics.render(),
    ))
}

/// The configured monitor, or the `404` explaining how to enable it.
fn monitor_of(shared: &Shared) -> Result<&MonitorState, Response> {
    shared.monitor.as_ref().ok_or_else(|| {
        error_response(
            404,
            "not_found",
            "monitoring is not enabled (set ServerConfig::monitor)",
        )
    })
}

/// A positioned query-string rejection: `{"error": "...", "kind":
/// "query"}` at `400`, the error message naming the offending
/// parameter so clients see *which* one was bad.
fn query_error(key: &str, raw: &str, why: &str) -> Response {
    error_response(
        400,
        "query",
        &format!("query parameter '{key}'={raw}: {why}"),
    )
}

/// Parses a history query parameter: absent means `default`, anything
/// explicit must be a positive integer. Zero and non-numeric values are
/// rejected ([`query_error`]) rather than silently coerced — a
/// `window=0` or `step=banana` request gets a `400` naming the
/// parameter, not an empty-looking history.
fn history_param(req: &Request, key: &str, default: u64) -> Result<u64, Response> {
    match req.query_param(key) {
        None => Ok(default),
        Some(raw) => match raw.parse::<u64>() {
            Ok(0) => Err(query_error(key, raw, "must be a positive integer")),
            Ok(v) => Ok(v),
            Err(_) => Err(query_error(key, raw, "must be a positive integer")),
        },
    }
}

/// Converts a collected sample value to JSON (exact integers stay
/// integers).
fn sample_json(v: SampleValue) -> Json {
    match v {
        SampleValue::U64(v) => Json::UInt(v),
        SampleValue::F64(f) => Json::Float(f),
    }
}

/// `GET /v1/metrics/history?window=<ms>&step=<ms>` — every collected
/// series' samples in the window, downsampled to one per step:
/// `{"now_ms", "window_ms", "step_ms", "interval_ms", "series":
/// [{"name", "samples": [[t_ms, value], ...]}, ...]}`. Explicit
/// `window`/`step` values must be positive integers; zero or
/// non-numeric gets a positioned `400` ([`history_param`]).
fn metrics_history(shared: &Shared, req: &Request, _params: &[&str]) -> Dispatch {
    let monitor = match monitor_of(shared) {
        Ok(m) => m,
        Err(resp) => return Dispatch::Reply(resp),
    };
    let window_ms = match history_param(req, "window", 300_000) {
        Ok(w) => w,
        Err(resp) => return Dispatch::Reply(resp),
    };
    let step_ms = match history_param(req, "step", 0) {
        Ok(s) => s,
        Err(resp) => return Dispatch::Reply(resp),
    };
    let (now_ms, histories) = monitor.store.history(window_ms, step_ms);
    let series: Vec<Json> = histories
        .into_iter()
        .map(|h| {
            let samples: Vec<Json> = h
                .samples
                .into_iter()
                .map(|(t, v)| Json::Array(vec![Json::UInt(t), sample_json(v)]))
                .collect();
            Json::Object(vec![
                ("name".to_string(), Json::Str(h.key)),
                ("samples".to_string(), Json::Array(samples)),
            ])
        })
        .collect();
    let body = Json::Object(vec![
        ("now_ms".to_string(), Json::UInt(now_ms)),
        ("window_ms".to_string(), Json::UInt(window_ms)),
        ("step_ms".to_string(), Json::UInt(step_ms.max(1))),
        ("interval_ms".to_string(), Json::UInt(monitor.interval_ms)),
        ("series".to_string(), Json::Array(series)),
    ]);
    Dispatch::Reply(Response::json(200, body.render()))
}

/// `GET /v1/alerts` — every SLO rule's state with since-timestamps:
/// `{"now_ms", "firing", "alerts": [{"rule", "series", "state",
/// "since_ms", "value"}, ...]}`.
fn alerts(shared: &Shared, _req: &Request, _params: &[&str]) -> Dispatch {
    let monitor = match monitor_of(shared) {
        Ok(m) => m,
        Err(resp) => return Dispatch::Reply(resp),
    };
    let statuses = monitor.slo.statuses();
    let alerts: Vec<Json> = statuses
        .iter()
        .map(|a| {
            Json::Object(vec![
                ("rule".to_string(), Json::Str(a.rule.clone())),
                ("series".to_string(), Json::Str(a.series.clone())),
                ("state".to_string(), Json::Str(a.state.as_str().to_string())),
                ("since_ms".to_string(), Json::UInt(a.since_ms)),
                ("value".to_string(), a.value.map_or(Json::Null, Json::Float)),
            ])
        })
        .collect();
    let body = Json::Object(vec![
        ("now_ms".to_string(), Json::UInt(monitor.store.now_ms())),
        ("firing".to_string(), Json::UInt(monitor.slo.firing())),
        ("alerts".to_string(), Json::Array(alerts)),
    ]);
    Dispatch::Reply(Response::json(200, body.render()))
}

/// `GET /dashboard` — the self-contained HTML dashboard over the full
/// collected window.
fn dashboard(shared: &Shared, _req: &Request, _params: &[&str]) -> Dispatch {
    let monitor = match monitor_of(shared) {
        Ok(m) => m,
        Err(resp) => return Dispatch::Reply(resp),
    };
    let (now_ms, histories) = monitor.store.history(u64::MAX, 0);
    let statuses = monitor.slo.statuses();
    let title = format!("predllc · {}", shared.addr);
    let html = predllc_obs::dash::render_dashboard(&title, now_ms, &histories, &statuses);
    Dispatch::Reply(Response::new(200, "text/html; charset=utf-8", html))
}

/// `GET /v1/jobs/{id}/trace` — every buffered trace event for the
/// job's trace id, as JSON Lines (submission, queue wait, run span,
/// per-point timings — whatever the runner recorded).
fn job_trace(shared: &Shared, _req: &Request, params: &[&str]) -> Dispatch {
    let Some(job) = shared.registry.get(params[0]) else {
        return Dispatch::Reply(error_response(404, "not_found", "unknown experiment id"));
    };
    let events = shared.tracer.snapshot_trace(job.trace);
    Dispatch::Reply(Response::new(
        200,
        "application/x-ndjson",
        render_jsonl(&events),
    ))
}

/// The point endpoints' success body: the fingerprint, whether the
/// cache answered, and the measurement document.
fn point_body(fp: &Fingerprint, cached: bool, measurement: &str) -> Response {
    Response::json(
        200,
        format!(
            "{{\"fingerprint\":{},\"cached\":{cached},\"measurement\":{measurement}}}",
            render_string(&fp.to_hex()),
        ),
    )
}

/// A `422` body positioning a point failure: `{"error": ..., "kind":
/// "config"|"sim"}` — the coordinator surfaces these as positioned job
/// failures rather than generic transport errors.
fn point_error(kind: &str, message: &str) -> Response {
    error_response(422, kind, message)
}

/// `POST /v1/points` — simulate (or answer from cache) one grid point:
/// the endpoint that makes this server a fleet worker.
fn point_post(shared: &Shared, req: &Request, _params: &[&str]) -> Dispatch {
    if shared.shutdown.load(Ordering::SeqCst) {
        return Dispatch::Reply(error_response(
            503,
            "unavailable",
            "service is shutting down",
        ));
    }
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return Dispatch::Reply(error_response(400, "http", "body is not utf-8"));
    };
    let point = match PointRequest::parse(body) {
        Ok(p) => p,
        Err(e) => return Dispatch::Reply(error_response(400, "point", &e.to_string())),
    };
    let fp = point.fingerprint();
    let metrics = &shared.registry.metrics;

    // A coordinator propagates its trace id in the X-Predllc-Trace
    // header; the worker-side compute span records under the same id,
    // so one fleet point is reconstructable end to end.
    let trace = req.header(TRACE_HEADER).and_then(TraceId::parse_hex);
    let mut span = trace.map(|t| {
        shared.tracer.span(
            t,
            "worker.point",
            fields(&[("fingerprint", fp.to_hex().into())]),
        )
    });

    let cached = shared.points.lock().unwrap().get(&fp).map(str::to_string);
    let (was_cached, rendered) = match cached {
        Some(rendered) => {
            metrics.points_cache_shared.inc();
            (true, rendered)
        }
        None => {
            let config = match point.config.build(point.cores) {
                Ok(c) => c.with_attribution(point.attribution),
                Err(e) => return Dispatch::Reply(point_error("config", &e.to_string())),
            };
            let workload = point.workload.spec.build(point.cores);
            let measurement = match measure(&config, &workload) {
                Ok(m) => m,
                Err(PointError::Config(e)) => {
                    return Dispatch::Reply(point_error("config", &e.to_string()))
                }
                Err(PointError::Sim(e)) => {
                    return Dispatch::Reply(point_error("sim", &e.to_string()))
                }
            };
            if let Some(attr) = &measurement.attribution {
                record_component_cycles(metrics, &attr.components);
            }
            let rendered = measurement.render();
            shared.points.lock().unwrap().insert(fp, rendered.clone());
            metrics.points_simulated.inc();
            (false, rendered)
        }
    };
    if let Some(span) = span.as_mut() {
        span.field("cached", u64::from(was_cached));
    }
    drop(span);

    // Fault injection: after `fail_after_points` successful answers, the
    // next one crashes mid-response — the worker-loss scenario the
    // coordinator's recovery path is tested against.
    if let Some(limit) = shared.fail_after_points {
        let n = shared.points_answered.fetch_add(1, Ordering::SeqCst) + 1;
        if n > limit {
            kill_shared(shared);
            return Dispatch::Hangup;
        }
    } else {
        shared.points_answered.fetch_add(1, Ordering::SeqCst);
    }
    Dispatch::Reply(point_body(&fp, was_cached, &rendered))
}

/// `GET /v1/points/{fingerprint}` — a cached measurement, if this
/// server has one (`404` otherwise; the caller simulates or POSTs).
fn point_get(shared: &Shared, _req: &Request, params: &[&str]) -> Dispatch {
    let Some(fp) = Fingerprint::parse_hex(params[0]) else {
        return Dispatch::Reply(error_response(404, "not_found", "not a point fingerprint"));
    };
    let cached = shared.points.lock().unwrap().get(&fp).map(str::to_string);
    Dispatch::Reply(match cached {
        Some(rendered) => {
            shared.registry.metrics.points_cache_shared.inc();
            point_body(&fp, true, &rendered)
        }
        None => error_response(404, "not_found", "point not cached"),
    })
}

/// `POST /v1/experiments` — submit a spec; coalesces duplicates.
fn submit(shared: &Shared, req: &Request, _params: &[&str]) -> Dispatch {
    if shared.shutdown.load(Ordering::SeqCst) {
        return Dispatch::Reply(error_response(
            503,
            "unavailable",
            "service is shutting down",
        ));
    }
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return Dispatch::Reply(error_response(400, "http", "body is not utf-8"));
    };
    // Callers may supply the trace id (X-Predllc-Trace) so their own
    // spans and the server's share one trace; otherwise mint a fresh
    // one. A cache hit keeps the existing job's trace.
    let trace = req
        .header(TRACE_HEADER)
        .and_then(TraceId::parse_hex)
        .unwrap_or_else(TraceId::fresh);
    let submission = match shared.registry.submit_traced(body, trace) {
        Ok(s) => s,
        Err(e @ SubmitError::AtCapacity) => {
            return Dispatch::Reply(error_response(503, "unavailable", &e.to_string()))
        }
        Err(SubmitError::Spec(e)) => {
            return Dispatch::Reply(error_response(400, "spec", &e.to_string()))
        }
    };
    shared.tracer.instant(
        submission.job.trace,
        "serve.job.submitted",
        fields(&[
            ("job", submission.job.id.to_hex().into()),
            ("cached", u64::from(!submission.fresh).into()),
        ]),
    );
    if submission.fresh {
        // Enqueue for the runners; if the queue closed under us
        // (shutdown raced the submit), unregister the job so the
        // queued-jobs gauge and the cache stay truthful.
        let enqueued = match &*shared.queue.lock().unwrap() {
            Some(tx) => tx.send(Arc::clone(&submission.job)).is_ok(),
            None => false,
        };
        if !enqueued {
            shared
                .registry
                .abandon(&submission.job, "service is shutting down");
            return Dispatch::Reply(error_response(
                503,
                "unavailable",
                "service is shutting down",
            ));
        }
    }
    let job = &submission.job;
    let body = format!(
        "{{\"id\":{},\"name\":{},\"status\":{},\"cached\":{},\"points_total\":{}}}",
        render_string(&job.id.to_hex()),
        render_string(&job.name),
        render_string(job.status().as_str()),
        !submission.fresh,
        job.points_total,
    );
    Dispatch::Reply(Response::json(
        if submission.fresh { 202 } else { 200 },
        body,
    ))
}

/// `GET /v1/experiments/{id}` — status and progress.
fn status(shared: &Shared, _req: &Request, params: &[&str]) -> Dispatch {
    let Some(job) = shared.registry.get(params[0]) else {
        return Dispatch::Reply(error_response(404, "not_found", "unknown experiment id"));
    };
    let status = job.status();
    let mut body = format!(
        "{{\"id\":{},\"name\":{},\"status\":{},\"points_done\":{},\"points_total\":{}",
        render_string(&job.id.to_hex()),
        render_string(&job.name),
        render_string(status.as_str()),
        // A done job's progress is complete by definition, even though
        // a cache-hit reader may race the last progress store.
        if status == JobStatus::Done {
            job.points_total
        } else {
            job.points_done()
        },
        job.points_total,
    );
    if let Some(error) = job.error() {
        body.push_str(&format!(",\"error\":{}", render_string(&error)));
    }
    body.push('}');
    Dispatch::Reply(Response::json(200, body))
}

/// The shared done/failed/not-ready ladder of the result endpoints:
/// `Ok` hands back the finished job's result.
fn finished_result(shared: &Shared, id: &str) -> Result<Arc<crate::registry::JobResult>, Response> {
    let Some(job) = shared.registry.get(id) else {
        return Err(error_response(404, "not_found", "unknown experiment id"));
    };
    match job.status() {
        JobStatus::Done => Ok(job.result().expect("status was Done")),
        JobStatus::Failed => Err(error_response(
            500,
            "job",
            &job.error().unwrap_or_else(|| "job failed".into()),
        )),
        other => Err(Response::json(
            409,
            format!(
                "{{\"error\":\"results not ready\",\"kind\":\"not_ready\",\"status\":{}}}",
                render_string(other.as_str())
            ),
        )),
    }
}

/// `GET /v1/experiments/{id}/results?format=csv|json` — the finished
/// result, streamed chunk by chunk from the cached grid rows (the
/// bytes are identical to the one-shot renders; the whole document
/// never exists in server memory).
fn results(shared: &Shared, req: &Request, params: &[&str]) -> Dispatch {
    let result = match finished_result(shared, params[0]) {
        Ok(r) => r,
        Err(resp) => return Dispatch::Reply(resp),
    };
    Dispatch::Reply(match req.query_param("format").unwrap_or("csv") {
        "csv" => Response::stream(200, "text/csv; charset=utf-8", result.csv_stream()),
        "json" => Response::stream(200, "application/json", result.json_stream()),
        other => error_response(
            400,
            "format",
            &format!("unknown format '{other}' (csv or json)"),
        ),
    })
}

/// `GET /v1/experiments/{id}/attribution` — the attribution artifact,
/// streamed. `404` when the job ran without `"attribution": true`, so
/// callers can distinguish "off" from "not ready" (`409`) without
/// parsing bodies.
fn attribution_results(shared: &Shared, _req: &Request, params: &[&str]) -> Dispatch {
    let result = match finished_result(shared, params[0]) {
        Ok(r) => r,
        Err(resp) => return Dispatch::Reply(resp),
    };
    Dispatch::Reply(match result.attribution_stream() {
        Some(stream) => Response::stream(200, "application/json", stream),
        None => error_response(
            404,
            "not_found",
            "attribution is off for this experiment (submit with \"attribution\": true)",
        ),
    })
}
