//! A minimal HTTP/1.1 request/response layer over `std` I/O.
//!
//! The build is network-isolated (no hyper, no tokio), and the service
//! only needs the narrow slice of HTTP/1.1 that `curl`, browsers and the
//! in-tree [`client`](crate::client) speak: request line + headers +
//! `Content-Length` bodies, persistent connections by default, and a
//! handful of status codes. Everything is **bounded** — request-line
//! length, header count and size, body size — so a misbehaving client
//! cannot balloon server memory.

use std::fmt;
use std::io::{self, BufRead, Write};

/// Upper bounds applied while reading a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Longest accepted request line (method + target + version), bytes.
    pub max_request_line: usize,
    /// Longest accepted single header line, bytes.
    pub max_header_line: usize,
    /// Most accepted headers.
    pub max_headers: usize,
    /// Largest accepted body, bytes.
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_request_line: 8 << 10,
            max_header_line: 8 << 10,
            max_headers: 64,
            // Experiment specs are small; 1 MiB leaves two orders of
            // magnitude of headroom.
            max_body: 1 << 20,
        }
    }
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercased by the client (`GET`, `POST`, …).
    pub method: String,
    /// Decoded path component of the target (no query string).
    pub path: String,
    /// Raw query string after `?`, if any.
    pub query: Option<String>,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The value of query parameter `key`, if present (`k=v` pairs
    /// separated by `&`; no percent-decoding — the API's values are
    /// plain tokens).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.as_deref()?.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The underlying transport failed.
    Io(io::Error),
    /// The request violated a [`Limits`] bound (the field names the
    /// offending part; responds 413 or 431).
    TooLarge(&'static str),
    /// The bytes were not valid HTTP (responds 400).
    Malformed(&'static str),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::TooLarge(what) => write!(f, "{what} exceeds the configured limit"),
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
        }
    }
}

impl std::error::Error for HttpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HttpError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Reads one line (up to CRLF or LF), bounded by `max` bytes.
///
/// Returns `Ok(None)` on clean EOF before any byte.
fn read_line(
    r: &mut impl BufRead,
    max: usize,
    what: &'static str,
) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::Malformed("truncated line"));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    let text =
                        String::from_utf8(line).map_err(|_| HttpError::Malformed("non-utf8"))?;
                    return Ok(Some(text));
                }
                line.push(byte[0]);
                if line.len() > max {
                    return Err(HttpError::TooLarge(what));
                }
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

/// Reads one request from the stream.
///
/// Returns `Ok(None)` when the peer closed the connection cleanly
/// between requests (the normal end of a keep-alive session).
///
/// # Errors
///
/// [`HttpError`] describing the transport failure, violated bound or
/// malformed syntax; the caller maps these to 4xx responses where a
/// response is still possible.
pub fn read_request(r: &mut impl BufRead, limits: &Limits) -> Result<Option<Request>, HttpError> {
    let Some(request_line) = read_line(r, limits.max_request_line, "request line")? else {
        return Ok(None);
    };
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or(HttpError::Malformed("missing method"))?
        .to_string();
    let target = parts
        .next()
        .ok_or(HttpError::Malformed("missing target"))?
        .to_string();
    let version = parts
        .next()
        .ok_or(HttpError::Malformed("missing version"))?;
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("bad request line"));
    }
    // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close.
    let mut keep_alive = version == "HTTP/1.1";

    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let line = read_line(r, limits.max_header_line, "header line")?
            .ok_or(HttpError::Malformed("truncated headers"))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits.max_headers {
            return Err(HttpError::TooLarge("header count"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Malformed("header without ':'"))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        match name.as_str() {
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| HttpError::Malformed("bad content-length"))?;
                if content_length > limits.max_body {
                    return Err(HttpError::TooLarge("body"));
                }
            }
            "connection" => {
                let v = value.to_ascii_lowercase();
                if v.contains("close") {
                    keep_alive = false;
                } else if v.contains("keep-alive") {
                    keep_alive = true;
                }
            }
            "transfer-encoding" => {
                // Chunked uploads are out of scope; refusing beats
                // misreading the framing.
                return Err(HttpError::Malformed("transfer-encoding not supported"));
            }
            _ => {}
        }
        headers.push((name, value));
    }

    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body)?;

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target, None),
    };
    Ok(Some(Request {
        method,
        path,
        query,
        headers,
        body,
        keep_alive,
    }))
}

/// A response about to be written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with a text/JSON-ish string body.
    pub fn new(status: u16, content_type: &'static str, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type,
            body: body.into(),
        }
    }

    /// A `200 OK` plain-text response.
    pub fn text(body: impl Into<Vec<u8>>) -> Response {
        Response::new(200, "text/plain; charset=utf-8", body)
    }

    /// A JSON response at `status`.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response::new(status, "application/json", body)
    }
}

/// The reason phrase for the status codes the service uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes `resp`, framing with `Content-Length` and announcing
/// keep-alive intent.
///
/// # Errors
///
/// Any transport failure.
pub fn write_response(w: &mut impl Write, resp: &Response, keep_alive: bool) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    w.write_all(&resp.body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut Cursor::new(bytes.to_vec()), &Limits::default())
    }

    #[test]
    fn parses_a_post_with_body_and_query() {
        let req = parse(
            b"POST /v1/experiments?format=csv&x=1 HTTP/1.1\r\n\
              Host: localhost\r\nContent-Type: application/json\r\n\
              Content-Length: 7\r\n\r\n{\"a\":1}",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/experiments");
        assert_eq!(req.query_param("format"), Some("csv"));
        assert_eq!(req.query_param("x"), Some("1"));
        assert_eq!(req.query_param("missing"), None);
        assert_eq!(req.header("content-type"), Some("application/json"));
        assert_eq!(req.body, b"{\"a\":1}");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn connection_header_controls_keep_alive() {
        let close = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!close.keep_alive);
        let old = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!old.keep_alive);
        let old_ka = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(old_ka.keep_alive);
    }

    #[test]
    fn keep_alive_sessions_yield_multiple_requests() {
        let bytes = b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n";
        let mut cursor = Cursor::new(bytes.to_vec());
        let first = read_request(&mut cursor, &Limits::default())
            .unwrap()
            .unwrap();
        let second = read_request(&mut cursor, &Limits::default())
            .unwrap()
            .unwrap();
        assert_eq!(first.path, "/healthz");
        assert_eq!(second.path, "/metrics");
        // Clean EOF between requests is the normal session end.
        assert!(read_request(&mut cursor, &Limits::default())
            .unwrap()
            .is_none());
    }

    #[test]
    fn bounds_are_enforced() {
        let limits = Limits {
            max_request_line: 32,
            max_header_line: 32,
            max_headers: 2,
            max_body: 8,
        };
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(64));
        assert!(matches!(
            read_request(&mut Cursor::new(long_line.into_bytes()), &limits),
            Err(HttpError::TooLarge("request line"))
        ));
        let big_body = b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789";
        assert!(matches!(
            read_request(&mut Cursor::new(big_body.to_vec()), &limits),
            Err(HttpError::TooLarge("body"))
        ));
        let many_headers = b"GET / HTTP/1.1\r\nA: 1\r\nB: 2\r\nC: 3\r\n\r\n";
        assert!(matches!(
            read_request(&mut Cursor::new(many_headers.to_vec()), &limits),
            Err(HttpError::TooLarge("header count"))
        ));
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for bytes in [
            &b"NOT-HTTP\r\n\r\n"[..],
            &b"GET /\r\n\r\n"[..],
            &b"GET / FTP/1.1\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\nbad header\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"[..],
            &b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"[..],
        ] {
            assert!(
                matches!(parse(bytes), Err(HttpError::Malformed(_))),
                "accepted {:?}",
                String::from_utf8_lossy(bytes)
            );
        }
        // A clean EOF before any request is not an error.
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn responses_frame_with_content_length() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(202, r#"{"id":"x"}"#), true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 202 Accepted\r\n"));
        assert!(text.contains("content-length: 10\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"id\":\"x\"}"));
        let mut closed = Vec::new();
        write_response(&mut closed, &Response::text("ok\n"), false).unwrap();
        assert!(String::from_utf8(closed)
            .unwrap()
            .contains("connection: close"));
    }
}
