//! A minimal HTTP/1.1 request/response layer over `std` I/O.
//!
//! The build is network-isolated (no hyper, no tokio), and the service
//! only needs the narrow slice of HTTP/1.1 that `curl`, browsers and the
//! in-tree [`client`](crate::client) speak: request line + headers +
//! `Content-Length` bodies, persistent connections by default, and a
//! handful of status codes. Everything is **bounded** — request-line
//! length, header count and size, body size — so a misbehaving client
//! cannot balloon server memory.
//!
//! Responses carry a [`Body`] that is either fully materialized bytes
//! (framed with `Content-Length`) or a pull-based [`BodyStream`]
//! (framed with chunked `Transfer-Encoding` on HTTP/1.1), so large
//! results are rendered incrementally instead of being built in memory
//! first. [`try_parse`] is the incremental front of the same bounded
//! parser, used by the nonblocking reactor to parse requests out of an
//! accumulation buffer.

use std::fmt;
use std::io::{self, BufRead, Write};

/// Upper bounds applied while reading a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Longest accepted request line (method + target + version), bytes.
    pub max_request_line: usize,
    /// Longest accepted single header line, bytes.
    pub max_header_line: usize,
    /// Most accepted headers.
    pub max_headers: usize,
    /// Largest accepted body, bytes.
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_request_line: 8 << 10,
            max_header_line: 8 << 10,
            max_headers: 64,
            // Experiment specs are small; 1 MiB leaves two orders of
            // magnitude of headroom.
            max_body: 1 << 20,
        }
    }
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercased by the client (`GET`, `POST`, …).
    pub method: String,
    /// Decoded path component of the target (no query string).
    pub path: String,
    /// Raw query string after `?`, if any.
    pub query: Option<String>,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
    /// Whether the client spoke HTTP/1.1 (or later 1.x). Chunked
    /// `Transfer-Encoding` responses are only legal here; HTTP/1.0
    /// clients get streamed bodies materialized into `Content-Length`
    /// framing instead.
    pub http11: bool,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The value of query parameter `key`, if present (`k=v` pairs
    /// separated by `&`; no percent-decoding — the API's values are
    /// plain tokens).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.as_deref()?.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The underlying transport failed.
    Io(io::Error),
    /// The request violated a [`Limits`] bound (the field names the
    /// offending part; responds 413 or 431).
    TooLarge(&'static str),
    /// The bytes were not valid HTTP (responds 400).
    Malformed(&'static str),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::TooLarge(what) => write!(f, "{what} exceeds the configured limit"),
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
        }
    }
}

impl std::error::Error for HttpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HttpError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Reads one line (up to CRLF or LF), bounded by `max` bytes.
///
/// Returns `Ok(None)` on clean EOF before any byte.
fn read_line(
    r: &mut impl BufRead,
    max: usize,
    what: &'static str,
) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::Malformed("truncated line"));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    let text =
                        String::from_utf8(line).map_err(|_| HttpError::Malformed("non-utf8"))?;
                    return Ok(Some(text));
                }
                line.push(byte[0]);
                if line.len() > max {
                    return Err(HttpError::TooLarge(what));
                }
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

/// Reads one request from the stream.
///
/// Returns `Ok(None)` when the peer closed the connection cleanly
/// between requests (the normal end of a keep-alive session).
///
/// # Errors
///
/// [`HttpError`] describing the transport failure, violated bound or
/// malformed syntax; the caller maps these to 4xx responses where a
/// response is still possible.
pub fn read_request(r: &mut impl BufRead, limits: &Limits) -> Result<Option<Request>, HttpError> {
    let Some(request_line) = read_line(r, limits.max_request_line, "request line")? else {
        return Ok(None);
    };
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or(HttpError::Malformed("missing method"))?
        .to_string();
    let target = parts
        .next()
        .ok_or(HttpError::Malformed("missing target"))?
        .to_string();
    let version = parts
        .next()
        .ok_or(HttpError::Malformed("missing version"))?;
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("bad request line"));
    }
    // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close.
    let http11 = version != "HTTP/1.0";
    let mut keep_alive = http11;

    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let line = read_line(r, limits.max_header_line, "header line")?
            .ok_or(HttpError::Malformed("truncated headers"))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits.max_headers {
            return Err(HttpError::TooLarge("header count"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Malformed("header without ':'"))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        match name.as_str() {
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| HttpError::Malformed("bad content-length"))?;
                if content_length > limits.max_body {
                    return Err(HttpError::TooLarge("body"));
                }
            }
            "connection" => {
                let v = value.to_ascii_lowercase();
                if v.contains("close") {
                    keep_alive = false;
                } else if v.contains("keep-alive") {
                    keep_alive = true;
                }
            }
            "transfer-encoding" => {
                // Chunked uploads are out of scope; refusing beats
                // misreading the framing.
                return Err(HttpError::Malformed("transfer-encoding not supported"));
            }
            _ => {}
        }
        headers.push((name, value));
    }

    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body)?;

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target, None),
    };
    Ok(Some(Request {
        method,
        path,
        query,
        headers,
        body,
        keep_alive,
        http11,
    }))
}

/// The outcome of [`try_parse`] over an accumulation buffer.
#[derive(Debug)]
pub enum Parse {
    /// A complete request; `usize` is how many buffer bytes it consumed.
    Complete(Box<Request>, usize),
    /// The buffer holds a valid prefix of a request — read more bytes.
    Partial,
    /// The bytes can never become a valid request (or violated a
    /// bound); the connection should answer 4xx and close.
    Invalid(HttpError),
}

/// Incrementally parses the front of `buf` as one request.
///
/// This is the reactor-facing face of [`read_request`]: the same
/// bounded parser is run speculatively over the buffered bytes, and
/// "ran out of input mid-request" outcomes are classified as
/// [`Parse::Partial`] instead of errors. Because every [`Limits`]
/// bound is enforced *while* parsing, a buffer that keeps growing
/// without completing a request is guaranteed to hit
/// [`Parse::Invalid`] — the accumulation buffer is bounded by the
/// limits themselves.
pub fn try_parse(buf: &[u8], limits: &Limits) -> Parse {
    if buf.is_empty() {
        return Parse::Partial;
    }
    let mut cursor = io::Cursor::new(buf);
    match read_request(&mut cursor, limits) {
        Ok(Some(req)) => Parse::Complete(Box::new(req), cursor.position() as usize),
        // read_request only reports clean-EOF `None` on an empty
        // stream, handled above; treat it as needing more bytes.
        Ok(None) => Parse::Partial,
        Err(HttpError::Malformed("truncated line" | "truncated headers")) => Parse::Partial,
        Err(HttpError::Io(e)) if e.kind() == io::ErrorKind::UnexpectedEof => Parse::Partial,
        Err(e) => Parse::Invalid(e),
    }
}

/// A pull-based response body: the writer asks for the next chunk only
/// when it has drained what it already holds, so a slow or stalled
/// reader naturally stops the producer instead of ballooning memory
/// (write backpressure by construction).
pub trait BodyStream: Send {
    /// The next chunk of body bytes, or `None` when the body is done.
    /// Implementations should return kilobyte-scale chunks; empty
    /// chunks are skipped by the writers (an empty chunk would
    /// terminate chunked framing early).
    fn next_chunk(&mut self) -> Option<Vec<u8>>;
}

impl BodyStream for std::vec::IntoIter<Vec<u8>> {
    fn next_chunk(&mut self) -> Option<Vec<u8>> {
        self.next()
    }
}

/// A response body: fully materialized bytes, or a stream rendered
/// incrementally as the connection drains.
pub enum Body {
    /// The whole body, framed with `Content-Length`.
    Full(Vec<u8>),
    /// A pull-based stream, framed with chunked `Transfer-Encoding`
    /// on HTTP/1.1 (materialized for HTTP/1.0 clients).
    Stream(Box<dyn BodyStream>),
}

impl Body {
    /// Drains the body into plain bytes (pulls a stream to completion).
    pub fn into_bytes(self) -> Vec<u8> {
        match self {
            Body::Full(bytes) => bytes,
            Body::Stream(mut s) => {
                let mut out = Vec::new();
                while let Some(chunk) = s.next_chunk() {
                    out.extend_from_slice(&chunk);
                }
                out
            }
        }
    }
}

impl fmt::Debug for Body {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Body::Full(b) => write!(f, "Full({} bytes)", b.len()),
            Body::Stream(_) => write!(f, "Stream(..)"),
        }
    }
}

impl From<Vec<u8>> for Body {
    fn from(bytes: Vec<u8>) -> Body {
        Body::Full(bytes)
    }
}

impl From<String> for Body {
    fn from(s: String) -> Body {
        Body::Full(s.into_bytes())
    }
}

impl From<&str> for Body {
    fn from(s: &str) -> Body {
        Body::Full(s.as_bytes().to_vec())
    }
}

impl From<&[u8]> for Body {
    fn from(bytes: &[u8]) -> Body {
        Body::Full(bytes.to_vec())
    }
}

/// A response about to be written.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// The body.
    pub body: Body,
    /// Seconds for a `Retry-After` header (the 429 backpressure path).
    pub retry_after: Option<u64>,
}

impl Response {
    /// A response with a text/JSON-ish string body.
    pub fn new(status: u16, content_type: &'static str, body: impl Into<Body>) -> Response {
        Response {
            status,
            content_type,
            body: body.into(),
            retry_after: None,
        }
    }

    /// A `200 OK` plain-text response.
    pub fn text(body: impl Into<Body>) -> Response {
        Response::new(200, "text/plain; charset=utf-8", body)
    }

    /// A JSON response at `status`.
    pub fn json(status: u16, body: impl Into<Body>) -> Response {
        Response::new(status, "application/json", body)
    }

    /// A streamed response at `status`.
    pub fn stream(status: u16, content_type: &'static str, body: Box<dyn BodyStream>) -> Response {
        Response {
            status,
            content_type,
            body: Body::Stream(body),
            retry_after: None,
        }
    }

    /// Adds a `Retry-After: secs` header (used with 429).
    #[must_use]
    pub fn with_retry_after(mut self, secs: u64) -> Response {
        self.retry_after = Some(secs);
        self
    }

    /// Collapses a streamed body into `Content-Length` framing (for
    /// HTTP/1.0 clients, which predate chunked encoding).
    #[must_use]
    pub fn materialized(self) -> Response {
        Response {
            body: Body::Full(self.body.into_bytes()),
            ..self
        }
    }
}

/// The reason phrase for the status codes the service uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// How the body of a response is framed on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Framing {
    /// `Content-Length: n`.
    Length(usize),
    /// `Transfer-Encoding: chunked`.
    Chunked,
}

/// Renders the status line + headers (through the blank line) for a
/// response with the given framing and keep-alive intent.
pub fn head_bytes(resp: &Response, framing: Framing, keep_alive: bool) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
    );
    match framing {
        Framing::Length(n) => head.push_str(&format!("content-length: {n}\r\n")),
        Framing::Chunked => head.push_str("transfer-encoding: chunked\r\n"),
    }
    if let Some(secs) = resp.retry_after {
        head.push_str(&format!("retry-after: {secs}\r\n"));
    }
    head.push_str(if keep_alive {
        "connection: keep-alive\r\n\r\n"
    } else {
        "connection: close\r\n\r\n"
    });
    head.into_bytes()
}

/// Appends one chunked-encoding frame (`{len:x}\r\n` + data + `\r\n`)
/// to `out`. Empty chunks are skipped — a zero-length frame would be
/// the terminator.
pub fn encode_chunk(out: &mut Vec<u8>, data: &[u8]) {
    if data.is_empty() {
        return;
    }
    out.extend_from_slice(format!("{:x}\r\n", data.len()).as_bytes());
    out.extend_from_slice(data);
    out.extend_from_slice(b"\r\n");
}

/// Appends the chunked-encoding terminator (`0\r\n\r\n`) to `out`.
pub fn encode_last_chunk(out: &mut Vec<u8>) {
    out.extend_from_slice(b"0\r\n\r\n");
}

/// Writes `resp`, framing `Full` bodies with `Content-Length` and
/// `Stream` bodies with chunked `Transfer-Encoding`, and announcing
/// keep-alive intent. Callers serving an HTTP/1.0 peer must pass the
/// response through [`Response::materialized`] first.
///
/// Full responses are assembled into a single buffer and written with
/// one syscall; streamed responses flush chunk by chunk as the body is
/// pulled.
///
/// # Errors
///
/// Any transport failure.
pub fn write_response(w: &mut impl Write, resp: Response, keep_alive: bool) -> io::Result<()> {
    let framing = match &resp.body {
        Body::Full(bytes) => Framing::Length(bytes.len()),
        Body::Stream(_) => Framing::Chunked,
    };
    let head = head_bytes(&resp, framing, keep_alive);
    match resp.body {
        Body::Full(bytes) => {
            let mut out = head;
            out.extend_from_slice(&bytes);
            w.write_all(&out)?;
        }
        Body::Stream(mut stream) => {
            w.write_all(&head)?;
            let mut frame = Vec::new();
            while let Some(chunk) = stream.next_chunk() {
                frame.clear();
                encode_chunk(&mut frame, &chunk);
                w.write_all(&frame)?;
            }
            w.write_all(b"0\r\n\r\n")?;
        }
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut Cursor::new(bytes.to_vec()), &Limits::default())
    }

    #[test]
    fn parses_a_post_with_body_and_query() {
        let req = parse(
            b"POST /v1/experiments?format=csv&x=1 HTTP/1.1\r\n\
              Host: localhost\r\nContent-Type: application/json\r\n\
              Content-Length: 7\r\n\r\n{\"a\":1}",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/experiments");
        assert_eq!(req.query_param("format"), Some("csv"));
        assert_eq!(req.query_param("x"), Some("1"));
        assert_eq!(req.query_param("missing"), None);
        assert_eq!(req.header("content-type"), Some("application/json"));
        assert_eq!(req.body, b"{\"a\":1}");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn connection_header_controls_keep_alive() {
        let close = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!close.keep_alive);
        let old = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!old.keep_alive);
        let old_ka = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(old_ka.keep_alive);
    }

    #[test]
    fn keep_alive_sessions_yield_multiple_requests() {
        let bytes = b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n";
        let mut cursor = Cursor::new(bytes.to_vec());
        let first = read_request(&mut cursor, &Limits::default())
            .unwrap()
            .unwrap();
        let second = read_request(&mut cursor, &Limits::default())
            .unwrap()
            .unwrap();
        assert_eq!(first.path, "/healthz");
        assert_eq!(second.path, "/metrics");
        // Clean EOF between requests is the normal session end.
        assert!(read_request(&mut cursor, &Limits::default())
            .unwrap()
            .is_none());
    }

    #[test]
    fn bounds_are_enforced() {
        let limits = Limits {
            max_request_line: 32,
            max_header_line: 32,
            max_headers: 2,
            max_body: 8,
        };
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(64));
        assert!(matches!(
            read_request(&mut Cursor::new(long_line.into_bytes()), &limits),
            Err(HttpError::TooLarge("request line"))
        ));
        let big_body = b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789";
        assert!(matches!(
            read_request(&mut Cursor::new(big_body.to_vec()), &limits),
            Err(HttpError::TooLarge("body"))
        ));
        let many_headers = b"GET / HTTP/1.1\r\nA: 1\r\nB: 2\r\nC: 3\r\n\r\n";
        assert!(matches!(
            read_request(&mut Cursor::new(many_headers.to_vec()), &limits),
            Err(HttpError::TooLarge("header count"))
        ));
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for bytes in [
            &b"NOT-HTTP\r\n\r\n"[..],
            &b"GET /\r\n\r\n"[..],
            &b"GET / FTP/1.1\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\nbad header\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"[..],
            &b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"[..],
        ] {
            assert!(
                matches!(parse(bytes), Err(HttpError::Malformed(_))),
                "accepted {:?}",
                String::from_utf8_lossy(bytes)
            );
        }
        // A clean EOF before any request is not an error.
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn responses_frame_with_content_length() {
        let mut out = Vec::new();
        write_response(&mut out, Response::json(202, r#"{"id":"x"}"#), true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 202 Accepted\r\n"));
        assert!(text.contains("content-length: 10\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"id\":\"x\"}"));
        let mut closed = Vec::new();
        write_response(&mut closed, Response::text("ok\n"), false).unwrap();
        assert!(String::from_utf8(closed)
            .unwrap()
            .contains("connection: close"));
    }

    fn chunks(parts: &[&str]) -> Box<dyn BodyStream> {
        Box::new(
            parts
                .iter()
                .map(|p| p.as_bytes().to_vec())
                .collect::<Vec<_>>()
                .into_iter(),
        )
    }

    #[test]
    fn streamed_responses_frame_with_chunked_encoding() {
        let mut out = Vec::new();
        let resp = Response::stream(
            200,
            "text/csv; charset=utf-8",
            chunks(&["hello,", "world\n"]),
        );
        write_response(&mut out, resp, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("transfer-encoding: chunked\r\n"));
        assert!(!text.contains("content-length"));
        assert!(text.ends_with("\r\n\r\n6\r\nhello,\r\n6\r\nworld\n\r\n0\r\n\r\n"));
    }

    #[test]
    fn materialized_streams_collapse_to_content_length() {
        let resp = Response::stream(200, "text/plain; charset=utf-8", chunks(&["a", "", "bc"]));
        let mut out = Vec::new();
        write_response(&mut out, resp.materialized(), false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("content-length: 3\r\n"));
        assert!(text.ends_with("\r\n\r\nabc"));
    }

    #[test]
    fn retry_after_header_rides_along() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            Response::json(429, "{}").with_retry_after(2),
            true,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("retry-after: 2\r\n"));
    }

    #[test]
    fn try_parse_classifies_partial_complete_and_invalid() {
        let limits = Limits::default();
        let whole = b"POST /v1/points HTTP/1.1\r\ncontent-length: 4\r\n\r\nbody";
        // Every strict prefix is Partial; the full buffer is Complete.
        for cut in 1..whole.len() {
            assert!(
                matches!(try_parse(&whole[..cut], &limits), Parse::Partial),
                "prefix of {cut} bytes should be partial"
            );
        }
        assert!(matches!(try_parse(&[], &limits), Parse::Partial));
        match try_parse(whole, &limits) {
            Parse::Complete(req, consumed) => {
                assert_eq!(req.path, "/v1/points");
                assert_eq!(req.body, b"body");
                assert!(req.http11);
                assert_eq!(consumed, whole.len());
            }
            other => panic!("expected complete, got {other:?}"),
        }
        // Pipelined bytes past the first request are not consumed.
        let mut two = whole.to_vec();
        two.extend_from_slice(b"GET /healthz HTTP/1.1\r\n\r\n");
        match try_parse(&two, &limits) {
            Parse::Complete(_, consumed) => assert_eq!(consumed, whole.len()),
            other => panic!("expected complete, got {other:?}"),
        }
        // Garbage is Invalid even though a later request might follow.
        assert!(matches!(
            try_parse(b"NOT-HTTP\r\n\r\n", &limits),
            Parse::Invalid(HttpError::Malformed(_))
        ));
        // Bounds still fire incrementally: an endless request line
        // turns Invalid as soon as it crosses the limit.
        let long = vec![b'x'; limits.max_request_line + 2];
        assert!(matches!(
            try_parse(&long, &limits),
            Parse::Invalid(HttpError::TooLarge("request line"))
        ));
    }
}
