//! The redesigned dispatch API: endpoints are [`Handler`]s registered
//! on a [`Router`] instead of arms of one giant `match` in `server.rs`.
//!
//! A handler takes the parsed request plus any captured path
//! parameters and returns a [`Dispatch`]: either a [`Response`] to
//! write (whose body may be fully materialized bytes or a pull-based
//! stream) or a deliberate hang-up (the fault-injection path answers
//! nothing, like a crashed process). Both serve modes — the epoll
//! reactor and the preserved blocking fallback — drive the same
//! router, so an endpoint is written once and served identically.

use crate::http::{Request, Response};

/// What the dispatch layer decided to do with a request.
#[derive(Debug)]
pub enum Dispatch {
    /// Write this response (then keep the connection per its wishes).
    Reply(Response),
    /// Close the connection without answering (fault injection:
    /// simulates a process crash mid-request).
    Hangup,
}

/// One endpoint: a parsed request plus captured path parameters in,
/// a [`Dispatch`] out.
pub trait Handler: Send + Sync {
    /// Handles one request. `params` holds the path segments captured
    /// by `{placeholders}` in the route pattern, in order.
    fn handle(&self, req: &Request, params: &[&str]) -> Dispatch;
}

impl<F> Handler for F
where
    F: Fn(&Request, &[&str]) -> Dispatch + Send + Sync,
{
    fn handle(&self, req: &Request, params: &[&str]) -> Dispatch {
        self(req, params)
    }
}

/// One compiled route pattern segment.
#[derive(Debug, PartialEq, Eq)]
enum Seg {
    Lit(&'static str),
    Param,
}

struct Route {
    method: &'static str,
    segs: Vec<Seg>,
    label: &'static str,
    heavy: bool,
    handler: Box<dyn Handler>,
}

/// Where a request landed in the routing table.
pub enum Lookup<'r, 'p> {
    /// A route matched; run its handler with the captured params.
    Matched {
        /// The route's metric label (`predllc_endpoint_latency` etc.).
        label: &'static str,
        /// Whether the endpoint does heavy work (simulation, large
        /// renders) and must run on the dispatch executor rather than
        /// inline on a reactor thread.
        heavy: bool,
        /// The endpoint.
        handler: &'r dyn Handler,
        /// Captured `{placeholder}` path segments, in order.
        params: Vec<&'p str>,
    },
    /// The path shape exists but not under this method (405).
    MethodNotAllowed,
    /// Nothing matches (404).
    NotFound,
}

/// Method + path-pattern routing table over boxed [`Handler`]s.
///
/// Patterns are literal segments with `{name}` placeholders, e.g.
/// `/v1/experiments/{id}/results`. Lookup walks the routes in
/// registration order; a path that matches some route's pattern under
/// a different method reports 405, otherwise 404.
#[derive(Default)]
pub struct Router {
    routes: Vec<Route>,
}

impl Router {
    /// An empty router.
    pub fn new() -> Router {
        Router::default()
    }

    /// Registers a lightweight endpoint (cheap enough to run inline on
    /// a reactor thread: O(registry lookup) work, small allocations).
    pub fn at(
        &mut self,
        method: &'static str,
        pattern: &'static str,
        label: &'static str,
        handler: impl Handler + 'static,
    ) {
        self.route(method, pattern, label, false, handler);
    }

    /// Registers a heavyweight endpoint (parses arbitrary payloads,
    /// simulates, or renders large documents): both serve modes run it
    /// on the bounded dispatch executor, whose queue depth drives 429
    /// backpressure.
    pub fn at_heavy(
        &mut self,
        method: &'static str,
        pattern: &'static str,
        label: &'static str,
        handler: impl Handler + 'static,
    ) {
        self.route(method, pattern, label, true, handler);
    }

    fn route(
        &mut self,
        method: &'static str,
        pattern: &'static str,
        label: &'static str,
        heavy: bool,
        handler: impl Handler + 'static,
    ) {
        let segs = pattern
            .split('/')
            .filter(|s| !s.is_empty())
            .map(|s| {
                if s.starts_with('{') && s.ends_with('}') {
                    Seg::Param
                } else {
                    Seg::Lit(s)
                }
            })
            .collect();
        self.routes.push(Route {
            method,
            segs,
            label,
            heavy,
            handler: Box::new(handler),
        });
    }

    /// Routes `method path`.
    pub fn lookup<'p>(&self, method: &str, path: &'p str) -> Lookup<'_, 'p> {
        let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
        let mut shape_matched = false;
        for route in &self.routes {
            let Some(params) = capture(&route.segs, &segments) else {
                continue;
            };
            if route.method == method {
                return Lookup::Matched {
                    label: route.label,
                    heavy: route.heavy,
                    handler: route.handler.as_ref(),
                    params,
                };
            }
            shape_matched = true;
        }
        if shape_matched {
            Lookup::MethodNotAllowed
        } else {
            Lookup::NotFound
        }
    }
}

/// Matches `segments` against a pattern, capturing `{}` positions.
fn capture<'p>(pattern: &[Seg], segments: &[&'p str]) -> Option<Vec<&'p str>> {
    if pattern.len() != segments.len() {
        return None;
    }
    let mut params = Vec::new();
    for (seg, &actual) in pattern.iter().zip(segments) {
        match seg {
            Seg::Lit(lit) => {
                if *lit != actual {
                    return None;
                }
            }
            Seg::Param => params.push(actual),
        }
    }
    Some(params)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(method: &str, path: &str) -> Request {
        Request {
            method: method.into(),
            path: path.into(),
            query: None,
            headers: vec![],
            body: vec![],
            keep_alive: true,
            http11: true,
        }
    }

    fn table() -> Router {
        let mut router = Router::new();
        router.at("GET", "/healthz", "healthz", |_: &Request, _: &[&str]| {
            Dispatch::Reply(Response::text("ok\n"))
        });
        router.at(
            "GET",
            "/v1/experiments/{id}/results",
            "job_results",
            |_: &Request, params: &[&str]| Dispatch::Reply(Response::text(params[0].to_string())),
        );
        router.at_heavy(
            "POST",
            "/v1/experiments",
            "submit",
            |_: &Request, _: &[&str]| Dispatch::Reply(Response::json(202, "{}")),
        );
        router
    }

    fn run(router: &Router, method: &str, path: &str) -> (&'static str, bool, Vec<String>) {
        match router.lookup(method, path) {
            Lookup::Matched {
                label,
                heavy,
                params,
                ..
            } => (label, heavy, params.iter().map(|p| p.to_string()).collect()),
            Lookup::MethodNotAllowed => ("405", false, vec![]),
            Lookup::NotFound => ("404", false, vec![]),
        }
    }

    #[test]
    fn literal_and_param_routes_match_with_captures() {
        let router = table();
        assert_eq!(run(&router, "GET", "/healthz"), ("healthz", false, vec![]));
        assert_eq!(
            run(&router, "GET", "/v1/experiments/abc123/results"),
            ("job_results", false, vec!["abc123".to_string()])
        );
        assert_eq!(
            run(&router, "POST", "/v1/experiments"),
            ("submit", true, vec![])
        );
    }

    #[test]
    fn wrong_method_is_405_unknown_path_is_404() {
        let router = table();
        assert_eq!(run(&router, "POST", "/healthz").0, "405");
        assert_eq!(run(&router, "GET", "/v1/experiments").0, "405");
        assert_eq!(run(&router, "GET", "/nope").0, "404");
        assert_eq!(run(&router, "GET", "/v1/experiments/x/nope").0, "404");
        // Param segments match any value but not a different arity.
        assert_eq!(
            run(&router, "GET", "/v1/experiments/x/results/extra").0,
            "404"
        );
    }

    #[test]
    fn handlers_see_the_request_they_were_routed() {
        let router = table();
        let r = req("GET", "/v1/experiments/deadbeef/results");
        match router.lookup(&r.method, &r.path) {
            Lookup::Matched {
                handler, params, ..
            } => match handler.handle(&r, &params) {
                Dispatch::Reply(resp) => {
                    assert_eq!(resp.body.into_bytes(), b"deadbeef");
                }
                Dispatch::Hangup => panic!("unexpected hangup"),
            },
            _ => panic!("route must match"),
        }
    }
}
