//! Deterministic workload generators.
//!
//! Every generator implements the streaming [`Workload`] trait: the
//! engine pulls operations one at a time, so a run over a million-op
//! generator allocates no trace storage at all. The materializing
//! helpers ([`UniformGen::traces`], [`StrideGen::trace`], …) remain for
//! golden files and equivalence tests, and are defined as the collected
//! streams — streamed and materialized runs are identical by
//! construction.

use predllc_model::{Address, CoreId, MemOp};

use crate::rng::Rng64;
use crate::workload::{OpStream, Workload};

/// Derives a per-core RNG from a workload seed so that every core's trace
/// is independent yet reproducible.
fn core_rng(seed: u64, core: CoreId) -> Rng64 {
    // splitmix-style mixing of the core index into the seed.
    let mut z = seed ^ (u64::from(core.index()).wrapping_add(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    Rng64::new(z ^ (z >> 31))
}

/// The paper's workload: uniformly random line-aligned addresses within a
/// per-core address range of `range_bytes`, disjoint across cores (core
/// `i` owns `[i·range, (i+1)·range)`).
///
/// As a [`Workload`] it drives [`UniformGen::cores`] cores (builder:
/// [`UniformGen::with_cores`]); each core's stream is generated lazily in
/// O(1) memory.
///
/// # Examples
///
/// ```
/// use predllc_workload::gen::UniformGen;
/// use predllc_workload::Workload;
///
/// // A 2 KiB range per core, 50 operations, 25% writes, two cores.
/// let gen = UniformGen::new(2048, 50).with_write_fraction(0.25).with_cores(2);
/// assert_eq!(gen.num_cores(), 2);
/// let traces = gen.traces(2);
/// assert!(traces[0].iter().all(|op| op.addr.as_u64() < 2048));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct UniformGen {
    /// Size of each core's private address range in bytes.
    pub range_bytes: u64,
    /// Operations per core.
    pub ops: usize,
    /// Fraction of operations that are writes (`0.0 ..= 1.0`).
    pub write_fraction: f64,
    /// RNG seed; the same seed reproduces the same traces.
    pub seed: u64,
    /// Alignment of generated addresses (default: the 64-byte line).
    pub align: u64,
    /// Number of cores the workload drives (default: 1).
    pub cores: u16,
}

impl UniformGen {
    /// Creates a single-core generator with no writes and the default
    /// seed.
    pub fn new(range_bytes: u64, ops: usize) -> Self {
        UniformGen {
            range_bytes,
            ops,
            write_fraction: 0.0,
            seed: 0xD0E5_11C5,
            align: 64,
            cores: 1,
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the write fraction.
    pub fn with_write_fraction(mut self, f: f64) -> Self {
        self.write_fraction = f;
        self
    }

    /// Sets the number of cores driven when used as a [`Workload`].
    pub fn with_cores(mut self, cores: u16) -> Self {
        self.cores = cores;
        self
    }

    /// The lazy operation stream of one core.
    ///
    /// # Panics
    ///
    /// Panics if `range_bytes < align` (no addressable line).
    pub fn core_stream(&self, core: CoreId) -> UniformOps {
        assert!(
            self.range_bytes >= self.align,
            "address range must contain at least one line"
        );
        UniformOps {
            rng: core_rng(self.seed, core),
            base: u64::from(core.index()) * self.range_bytes,
            lines: self.range_bytes / self.align,
            align: self.align,
            write_fraction: self.write_fraction,
            remaining: self.ops,
        }
    }

    /// Generates the materialized trace of one core (the collected
    /// stream).
    ///
    /// # Panics
    ///
    /// Panics if `range_bytes < align` (no addressable line).
    pub fn core_trace(&self, core: CoreId) -> Vec<MemOp> {
        self.core_stream(core).collect()
    }

    /// Generates materialized traces for cores `c0 … c(n-1)`.
    pub fn traces(&self, n: u16) -> Vec<Vec<MemOp>> {
        CoreId::first(n).map(|c| self.core_trace(c)).collect()
    }
}

impl Workload for UniformGen {
    fn num_cores(&self) -> u16 {
        self.cores
    }

    fn core_ops(&self, core: CoreId) -> OpStream<'_> {
        Box::new(self.core_stream(core))
    }

    fn len_hint(&self, _core: CoreId) -> Option<usize> {
        Some(self.ops)
    }
}

/// The lazy per-core stream of a [`UniformGen`].
#[derive(Debug, Clone)]
pub struct UniformOps {
    rng: Rng64,
    base: u64,
    lines: u64,
    align: u64,
    write_fraction: f64,
    remaining: usize,
}

impl Iterator for UniformOps {
    type Item = MemOp;

    fn next(&mut self) -> Option<MemOp> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let addr = Address::new(self.base + self.rng.below(self.lines) * self.align);
        Some(if self.rng.chance(self.write_fraction) {
            MemOp::write(addr)
        } else {
            MemOp::read(addr)
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for UniformOps {}

/// Guards the single-stream generators' [`Workload`] impls: they drive
/// exactly one core (compose them with
/// [`MultiCore`](crate::workload::MultiCore) for more).
fn expect_core_zero(core: CoreId, what: &str) {
    assert!(
        core.index() == 0,
        "{what} is a single-core workload; {core} requested"
    );
}

/// A constant-stride sweep (array walk): `start, start+stride, …`,
/// wrapping at `start + range_bytes`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrideGen {
    /// First address.
    pub start: u64,
    /// Stride in bytes.
    pub stride: u64,
    /// Wrap-around window size in bytes.
    pub range_bytes: u64,
    /// Operations to generate.
    pub ops: usize,
}

impl StrideGen {
    /// Creates a line-stride sweep over `range_bytes` starting at
    /// `start`.
    pub fn new(start: u64, range_bytes: u64, ops: usize) -> Self {
        StrideGen {
            start,
            stride: 64,
            range_bytes,
            ops,
        }
    }

    /// Overrides the stride.
    pub fn with_stride(mut self, stride: u64) -> Self {
        self.stride = stride;
        self
    }

    /// The lazy operation stream.
    ///
    /// # Panics
    ///
    /// Panics if `stride` or `range_bytes` is zero.
    pub fn stream(&self) -> StrideOps {
        assert!(self.stride > 0 && self.range_bytes > 0);
        StrideOps { gen: *self, at: 0 }
    }

    /// Generates the materialized trace (the collected stream).
    ///
    /// # Panics
    ///
    /// Panics if `stride` or `range_bytes` is zero.
    pub fn trace(&self) -> Vec<MemOp> {
        self.stream().collect()
    }
}

impl Workload for StrideGen {
    fn num_cores(&self) -> u16 {
        1
    }

    fn core_ops(&self, core: CoreId) -> OpStream<'_> {
        expect_core_zero(core, "StrideGen");
        Box::new(self.stream())
    }

    fn len_hint(&self, _core: CoreId) -> Option<usize> {
        Some(self.ops)
    }
}

/// The lazy stream of a [`StrideGen`].
#[derive(Debug, Clone)]
pub struct StrideOps {
    gen: StrideGen,
    at: usize,
}

impl Iterator for StrideOps {
    type Item = MemOp;

    fn next(&mut self) -> Option<MemOp> {
        if self.at >= self.gen.ops {
            return None;
        }
        let off = (self.at as u64 * self.gen.stride) % self.gen.range_bytes;
        self.at += 1;
        Some(MemOp::read(Address::new(self.gen.start + off)))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.gen.ops - self.at;
        (left, Some(left))
    }
}

impl ExactSizeIterator for StrideOps {}

/// A pointer chase: a random permutation cycle over the lines of a
/// range, walked repeatedly — worst-case temporal locality with perfect
/// spatial disjointness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointerChaseGen {
    /// First address of the region.
    pub start: u64,
    /// Region size in bytes (must hold ≥ 1 line).
    pub range_bytes: u64,
    /// Operations to generate.
    pub ops: usize,
    /// Permutation seed.
    pub seed: u64,
}

impl PointerChaseGen {
    /// Creates a chase over `[start, start + range_bytes)`.
    pub fn new(start: u64, range_bytes: u64, ops: usize) -> Self {
        PointerChaseGen {
            start,
            range_bytes,
            ops,
            seed: 0x000C_4A5E,
        }
    }

    /// Sets the permutation seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The lazy operation stream. Memory use is proportional to the
    /// *region* (one permutation of its lines), not the stream length.
    ///
    /// # Panics
    ///
    /// Panics if the range holds no full line.
    pub fn stream(&self) -> ChaseOps {
        let lines = (self.range_bytes / 64) as usize;
        assert!(lines > 0, "range must hold at least one line");
        // Fisher-Yates a permutation of the line indices.
        let mut rng = Rng64::new(self.seed);
        let mut perm: Vec<usize> = (0..lines).collect();
        for i in (1..lines).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            perm.swap(i, j);
        }
        ChaseOps {
            start: self.start,
            perm,
            at: 0,
            remaining: self.ops,
        }
    }

    /// Generates the materialized trace (the collected stream).
    ///
    /// # Panics
    ///
    /// Panics if the range holds no full line.
    pub fn trace(&self) -> Vec<MemOp> {
        self.stream().collect()
    }
}

impl Workload for PointerChaseGen {
    fn num_cores(&self) -> u16 {
        1
    }

    fn core_ops(&self, core: CoreId) -> OpStream<'_> {
        expect_core_zero(core, "PointerChaseGen");
        Box::new(self.stream())
    }

    fn len_hint(&self, _core: CoreId) -> Option<usize> {
        Some(self.ops)
    }
}

/// The lazy stream of a [`PointerChaseGen`].
#[derive(Debug, Clone)]
pub struct ChaseOps {
    start: u64,
    perm: Vec<usize>,
    at: usize,
    remaining: usize,
}

impl Iterator for ChaseOps {
    type Item = MemOp;

    fn next(&mut self) -> Option<MemOp> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let addr = Address::new(self.start + self.perm[self.at] as u64 * 64);
        self.at = (self.at + 1) % self.perm.len();
        Some(MemOp::read(addr))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for ChaseOps {}

/// A hot/cold mix: most accesses go to a small hot region, the rest to
/// the cold remainder — the classic working-set shape cache partitions
/// are sized for.
#[derive(Debug, Clone, PartialEq)]
pub struct HotColdGen {
    /// First address of the region.
    pub start: u64,
    /// Region size in bytes.
    pub range_bytes: u64,
    /// Fraction of the region that is hot (`0.0 ..= 1.0`).
    pub hot_fraction: f64,
    /// Probability that an access targets the hot region.
    pub hot_probability: f64,
    /// Operations to generate.
    pub ops: usize,
    /// RNG seed.
    pub seed: u64,
}

impl HotColdGen {
    /// Creates a 10%-hot / 90%-of-accesses generator.
    pub fn new(start: u64, range_bytes: u64, ops: usize) -> Self {
        HotColdGen {
            start,
            range_bytes,
            hot_fraction: 0.1,
            hot_probability: 0.9,
            ops,
            seed: 0x0407_C01D,
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The lazy operation stream.
    ///
    /// # Panics
    ///
    /// Panics if the region holds fewer than two full lines (one hot and
    /// one cold line are always carved out, whatever `hot_fraction`
    /// says).
    pub fn stream(&self) -> HotColdOps {
        let lines = self.range_bytes / 64;
        assert!(
            lines >= 2,
            "region must hold at least one hot and one cold line"
        );
        // At least one line each, whatever the fraction rounds to.
        let hot_lines = ((lines as f64 * self.hot_fraction) as u64).clamp(1, lines - 1);
        let cold_lines = lines - hot_lines;
        HotColdOps {
            rng: Rng64::new(self.seed),
            start: self.start,
            hot_lines,
            cold_lines,
            hot_probability: self.hot_probability,
            remaining: self.ops,
        }
    }

    /// Generates the materialized trace (the collected stream).
    ///
    /// # Panics
    ///
    /// Panics if the region holds fewer than two full lines.
    pub fn trace(&self) -> Vec<MemOp> {
        self.stream().collect()
    }
}

impl Workload for HotColdGen {
    fn num_cores(&self) -> u16 {
        1
    }

    fn core_ops(&self, core: CoreId) -> OpStream<'_> {
        expect_core_zero(core, "HotColdGen");
        Box::new(self.stream())
    }

    fn len_hint(&self, _core: CoreId) -> Option<usize> {
        Some(self.ops)
    }
}

/// The lazy stream of a [`HotColdGen`].
#[derive(Debug, Clone)]
pub struct HotColdOps {
    rng: Rng64,
    start: u64,
    hot_lines: u64,
    cold_lines: u64,
    hot_probability: f64,
    remaining: usize,
}

impl Iterator for HotColdOps {
    type Item = MemOp;

    fn next(&mut self) -> Option<MemOp> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let line = if self.rng.chance(self.hot_probability) {
            self.rng.below(self.hot_lines)
        } else {
            self.hot_lines + self.rng.below(self.cold_lines)
        };
        Some(MemOp::read(Address::new(self.start + line * 64)))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for HotColdOps {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn uniform_ranges_are_disjoint_per_core() {
        let g = UniformGen::new(1024, 200);
        let traces = g.traces(3);
        for (i, t) in traces.iter().enumerate() {
            let base = i as u64 * 1024;
            assert!(t
                .iter()
                .all(|op| (base..base + 1024).contains(&op.addr.as_u64())));
        }
    }

    #[test]
    fn uniform_is_line_aligned_and_deterministic() {
        let g = UniformGen::new(4096, 100).with_seed(42);
        let t1 = g.core_trace(CoreId::new(0));
        let t2 = g.core_trace(CoreId::new(0));
        assert_eq!(t1, t2);
        assert!(t1.iter().all(|op| op.addr.as_u64() % 64 == 0));
        // Different seeds differ.
        let t3 = UniformGen::new(4096, 100)
            .with_seed(43)
            .core_trace(CoreId::new(0));
        assert_ne!(t1, t3);
    }

    #[test]
    fn uniform_stream_equals_trace() {
        let g = UniformGen::new(8192, 300)
            .with_write_fraction(0.3)
            .with_seed(7);
        let streamed: Vec<MemOp> = g.core_stream(CoreId::new(2)).collect();
        assert_eq!(streamed, g.core_trace(CoreId::new(2)));
        assert_eq!(g.core_stream(CoreId::new(2)).len(), 300);
    }

    #[test]
    fn uniform_write_fraction_mixes_kinds() {
        let g = UniformGen::new(4096, 400).with_write_fraction(0.5);
        let t = g.core_trace(CoreId::new(0));
        let writes = t.iter().filter(|op| op.kind.is_write()).count();
        assert!((100..300).contains(&writes), "roughly half: {writes}");
        let none = UniformGen::new(4096, 100).core_trace(CoreId::new(0));
        assert!(none.iter().all(|op| !op.kind.is_write()));
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn uniform_rejects_sub_line_range() {
        UniformGen::new(32, 1).core_trace(CoreId::new(0));
    }

    #[test]
    fn stride_wraps_at_range() {
        let t = StrideGen::new(0, 256, 6).trace();
        let addrs: Vec<u64> = t.iter().map(|op| op.addr.as_u64()).collect();
        assert_eq!(addrs, [0, 64, 128, 192, 0, 64]);
    }

    #[test]
    fn stride_with_custom_stride() {
        let t = StrideGen::new(1000, 512, 4).with_stride(128).trace();
        let addrs: Vec<u64> = t.iter().map(|op| op.addr.as_u64()).collect();
        assert_eq!(addrs, [1000, 1128, 1256, 1384]);
    }

    #[test]
    fn pointer_chase_visits_every_line_once_per_lap() {
        let t = PointerChaseGen::new(0, 512, 8).trace(); // 8 lines, 1 lap
        let distinct: HashSet<u64> = t.iter().map(|op| op.addr.as_u64()).collect();
        assert_eq!(distinct.len(), 8);
        // A second lap repeats the same order.
        let t2 = PointerChaseGen::new(0, 512, 16).trace();
        assert_eq!(&t2[..8], &t2[8..]);
    }

    #[test]
    fn hot_cold_concentrates_accesses() {
        let g = HotColdGen::new(0, 64 * 100, 1000);
        let t = g.trace();
        let hot_end = 10 * 64; // 10% of 100 lines
        let hot = t.iter().filter(|op| op.addr.as_u64() < hot_end).count();
        assert!(hot > 800, "≈90% should be hot, got {hot}");
    }

    #[test]
    fn generators_are_reproducible() {
        assert_eq!(
            PointerChaseGen::new(0, 1024, 32).trace(),
            PointerChaseGen::new(0, 1024, 32).trace()
        );
        assert_eq!(
            HotColdGen::new(0, 4096, 64).trace(),
            HotColdGen::new(0, 4096, 64).trace()
        );
    }

    #[test]
    #[should_panic(expected = "single-core workload")]
    fn single_stream_generators_reject_other_cores() {
        let _ = StrideGen::new(0, 256, 4).core_ops(CoreId::new(1));
    }
}
