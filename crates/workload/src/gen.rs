//! Deterministic trace generators.

use predllc_model::{Address, CoreId, MemOp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Derives a per-core RNG from a workload seed so that every core's trace
/// is independent yet reproducible.
fn core_rng(seed: u64, core: CoreId) -> StdRng {
    // splitmix-style mixing of the core index into the seed.
    let mut z = seed ^ (u64::from(core.index()).wrapping_add(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

/// The paper's workload: uniformly random line-aligned addresses within a
/// per-core address range of `range_bytes`, disjoint across cores (core
/// `i` owns `[i·range, (i+1)·range)`).
///
/// # Examples
///
/// ```
/// use predllc_workload::gen::UniformGen;
///
/// // A 2 KiB range per core, 50 operations, 25% writes.
/// let traces = UniformGen::new(2048, 50).with_write_fraction(0.25).traces(2);
/// assert!(traces[0].iter().all(|op| op.addr.as_u64() < 2048));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct UniformGen {
    /// Size of each core's private address range in bytes.
    pub range_bytes: u64,
    /// Operations per core.
    pub ops: usize,
    /// Fraction of operations that are writes (`0.0 ..= 1.0`).
    pub write_fraction: f64,
    /// RNG seed; the same seed reproduces the same traces.
    pub seed: u64,
    /// Alignment of generated addresses (default: the 64-byte line).
    pub align: u64,
}

impl UniformGen {
    /// Creates a generator with no writes and the default seed.
    pub fn new(range_bytes: u64, ops: usize) -> Self {
        UniformGen {
            range_bytes,
            ops,
            write_fraction: 0.0,
            seed: 0xD0E5_11C5,
            align: 64,
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the write fraction.
    pub fn with_write_fraction(mut self, f: f64) -> Self {
        self.write_fraction = f;
        self
    }

    /// Generates the trace of one core.
    ///
    /// # Panics
    ///
    /// Panics if `range_bytes < align` (no addressable line).
    pub fn core_trace(&self, core: CoreId) -> Vec<MemOp> {
        assert!(
            self.range_bytes >= self.align,
            "address range must contain at least one line"
        );
        let mut rng = core_rng(self.seed, core);
        let base = u64::from(core.index()) * self.range_bytes;
        let lines = self.range_bytes / self.align;
        (0..self.ops)
            .map(|_| {
                let addr = Address::new(base + rng.gen_range(0..lines) * self.align);
                if rng.gen_bool(self.write_fraction) {
                    MemOp::write(addr)
                } else {
                    MemOp::read(addr)
                }
            })
            .collect()
    }

    /// Generates traces for cores `c0 … c(n-1)`.
    pub fn traces(&self, n: u16) -> Vec<Vec<MemOp>> {
        CoreId::first(n).map(|c| self.core_trace(c)).collect()
    }
}

/// A constant-stride sweep (array walk): `start, start+stride, …`,
/// wrapping at `start + range_bytes`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrideGen {
    /// First address.
    pub start: u64,
    /// Stride in bytes.
    pub stride: u64,
    /// Wrap-around window size in bytes.
    pub range_bytes: u64,
    /// Operations to generate.
    pub ops: usize,
}

impl StrideGen {
    /// Creates a line-stride sweep over `range_bytes` starting at
    /// `start`.
    pub fn new(start: u64, range_bytes: u64, ops: usize) -> Self {
        StrideGen {
            start,
            stride: 64,
            range_bytes,
            ops,
        }
    }

    /// Overrides the stride.
    pub fn with_stride(mut self, stride: u64) -> Self {
        self.stride = stride;
        self
    }

    /// Generates the trace.
    ///
    /// # Panics
    ///
    /// Panics if `stride` or `range_bytes` is zero.
    pub fn trace(&self) -> Vec<MemOp> {
        assert!(self.stride > 0 && self.range_bytes > 0);
        (0..self.ops)
            .map(|i| {
                let off = (i as u64 * self.stride) % self.range_bytes;
                MemOp::read(Address::new(self.start + off))
            })
            .collect()
    }
}

/// A pointer chase: a random permutation cycle over the lines of a
/// range, walked repeatedly — worst-case temporal locality with perfect
/// spatial disjointness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointerChaseGen {
    /// First address of the region.
    pub start: u64,
    /// Region size in bytes (must hold ≥ 1 line).
    pub range_bytes: u64,
    /// Operations to generate.
    pub ops: usize,
    /// Permutation seed.
    pub seed: u64,
}

impl PointerChaseGen {
    /// Creates a chase over `[start, start + range_bytes)`.
    pub fn new(start: u64, range_bytes: u64, ops: usize) -> Self {
        PointerChaseGen {
            start,
            range_bytes,
            ops,
            seed: 0x000C_4A5E,
        }
    }

    /// Sets the permutation seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the trace.
    ///
    /// # Panics
    ///
    /// Panics if the range holds no full line.
    pub fn trace(&self) -> Vec<MemOp> {
        let lines = (self.range_bytes / 64) as usize;
        assert!(lines > 0, "range must hold at least one line");
        // Fisher-Yates a permutation of the line indices.
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut perm: Vec<usize> = (0..lines).collect();
        for i in (1..lines).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        let mut at = 0usize;
        (0..self.ops)
            .map(|_| {
                let addr = Address::new(self.start + perm[at] as u64 * 64);
                at = (at + 1) % lines;
                MemOp::read(addr)
            })
            .collect()
    }
}

/// A hot/cold mix: most accesses go to a small hot region, the rest to
/// the cold remainder — the classic working-set shape cache partitions
/// are sized for.
#[derive(Debug, Clone, PartialEq)]
pub struct HotColdGen {
    /// First address of the region.
    pub start: u64,
    /// Region size in bytes.
    pub range_bytes: u64,
    /// Fraction of the region that is hot (`0.0 ..= 1.0`).
    pub hot_fraction: f64,
    /// Probability that an access targets the hot region.
    pub hot_probability: f64,
    /// Operations to generate.
    pub ops: usize,
    /// RNG seed.
    pub seed: u64,
}

impl HotColdGen {
    /// Creates a 10%-hot / 90%-of-accesses generator.
    pub fn new(start: u64, range_bytes: u64, ops: usize) -> Self {
        HotColdGen {
            start,
            range_bytes,
            hot_fraction: 0.1,
            hot_probability: 0.9,
            ops,
            seed: 0x0407_C01D,
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the trace.
    ///
    /// # Panics
    ///
    /// Panics if the hot or cold region holds no full line.
    pub fn trace(&self) -> Vec<MemOp> {
        let lines = self.range_bytes / 64;
        let hot_lines = ((lines as f64 * self.hot_fraction) as u64).max(1);
        let cold_lines = (lines - hot_lines).max(1);
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.ops)
            .map(|_| {
                let line = if rng.gen_bool(self.hot_probability) {
                    rng.gen_range(0..hot_lines)
                } else {
                    hot_lines + rng.gen_range(0..cold_lines)
                };
                MemOp::read(Address::new(self.start + line * 64))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn uniform_ranges_are_disjoint_per_core() {
        let g = UniformGen::new(1024, 200);
        let traces = g.traces(3);
        for (i, t) in traces.iter().enumerate() {
            let base = i as u64 * 1024;
            assert!(t
                .iter()
                .all(|op| (base..base + 1024).contains(&op.addr.as_u64())));
        }
    }

    #[test]
    fn uniform_is_line_aligned_and_deterministic() {
        let g = UniformGen::new(4096, 100).with_seed(42);
        let t1 = g.core_trace(CoreId::new(0));
        let t2 = g.core_trace(CoreId::new(0));
        assert_eq!(t1, t2);
        assert!(t1.iter().all(|op| op.addr.as_u64() % 64 == 0));
        // Different seeds differ.
        let t3 = UniformGen::new(4096, 100).with_seed(43).core_trace(CoreId::new(0));
        assert_ne!(t1, t3);
    }

    #[test]
    fn uniform_write_fraction_mixes_kinds() {
        let g = UniformGen::new(4096, 400).with_write_fraction(0.5);
        let t = g.core_trace(CoreId::new(0));
        let writes = t.iter().filter(|op| op.kind.is_write()).count();
        assert!((100..300).contains(&writes), "roughly half: {writes}");
        let none = UniformGen::new(4096, 100).core_trace(CoreId::new(0));
        assert!(none.iter().all(|op| !op.kind.is_write()));
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn uniform_rejects_sub_line_range() {
        UniformGen::new(32, 1).core_trace(CoreId::new(0));
    }

    #[test]
    fn stride_wraps_at_range() {
        let t = StrideGen::new(0, 256, 6).trace();
        let addrs: Vec<u64> = t.iter().map(|op| op.addr.as_u64()).collect();
        assert_eq!(addrs, [0, 64, 128, 192, 0, 64]);
    }

    #[test]
    fn stride_with_custom_stride() {
        let t = StrideGen::new(1000, 512, 4).with_stride(128).trace();
        let addrs: Vec<u64> = t.iter().map(|op| op.addr.as_u64()).collect();
        assert_eq!(addrs, [1000, 1128, 1256, 1384]);
    }

    #[test]
    fn pointer_chase_visits_every_line_once_per_lap() {
        let t = PointerChaseGen::new(0, 512, 8).trace(); // 8 lines, 1 lap
        let distinct: HashSet<u64> = t.iter().map(|op| op.addr.as_u64()).collect();
        assert_eq!(distinct.len(), 8);
        // A second lap repeats the same order.
        let t2 = PointerChaseGen::new(0, 512, 16).trace();
        assert_eq!(&t2[..8], &t2[8..]);
    }

    #[test]
    fn hot_cold_concentrates_accesses() {
        let g = HotColdGen::new(0, 64 * 100, 1000);
        let t = g.trace();
        let hot_end = 10 * 64; // 10% of 100 lines
        let hot = t.iter().filter(|op| op.addr.as_u64() < hot_end).count();
        assert!(hot > 800, "≈90% should be hot, got {hot}");
    }

    #[test]
    fn generators_are_reproducible() {
        assert_eq!(
            PointerChaseGen::new(0, 1024, 32).trace(),
            PointerChaseGen::new(0, 1024, 32).trace()
        );
        assert_eq!(
            HotColdGen::new(0, 4096, 64).trace(),
            HotColdGen::new(0, 4096, 64).trace()
        );
    }
}
