//! Spec-driven workload construction: a plain-data description of a
//! generator family that builds a runnable [`Workload`] for any core
//! count.
//!
//! A [`WorkloadSpec`] is the value an experiment file deserializes into:
//! cloneable, comparable, and independent of the core count, so one spec
//! line fans out across every configuration of a design-space grid. The
//! single-stream generator families (stride, pointer-chase, hot/cold)
//! are replicated per core over **disjoint address windows** — core `i`
//! owns `[i·range, (i+1)·range)` — matching [`UniformGen`]'s
//! layout and the paper's no-shared-data methodology; per-core seeds are
//! derived from the spec seed so streams are independent yet
//! reproducible.

use crate::gen::{HotColdGen, PointerChaseGen, StrideGen, UniformGen};
use crate::workload::{MultiCore, Workload};

/// A buildable description of one workload family.
///
/// # Examples
///
/// ```
/// use predllc_workload::spec::WorkloadSpec;
/// use predllc_workload::Workload;
///
/// let spec = WorkloadSpec::Stride { range_bytes: 4096, stride: 64, ops: 100 };
/// assert_eq!(spec.validate(), Ok(()));
/// let w = spec.build(2);
/// assert_eq!(w.num_cores(), 2);
/// // Core windows are disjoint: core 1 starts one range up.
/// assert!(w.core_ops(predllc_model::CoreId::new(1)).all(|op| op.addr.as_u64() >= 4096));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// The paper's uniform-random workload ([`UniformGen`]).
    Uniform {
        /// Per-core address range in bytes.
        range_bytes: u64,
        /// Operations per core.
        ops: usize,
        /// RNG seed.
        seed: u64,
        /// Fraction of operations that are writes.
        write_fraction: f64,
    },
    /// A constant-stride sweep per core ([`StrideGen`]).
    Stride {
        /// Per-core window size in bytes.
        range_bytes: u64,
        /// Stride in bytes.
        stride: u64,
        /// Operations per core.
        ops: usize,
    },
    /// A pointer chase per core ([`PointerChaseGen`]).
    PointerChase {
        /// Per-core region size in bytes.
        range_bytes: u64,
        /// Operations per core.
        ops: usize,
        /// Permutation seed (each core mixes in its index).
        seed: u64,
    },
    /// A hot/cold mix per core ([`HotColdGen`]).
    HotCold {
        /// Per-core region size in bytes.
        range_bytes: u64,
        /// Operations per core.
        ops: usize,
        /// RNG seed (each core mixes in its index).
        seed: u64,
        /// Fraction of the region that is hot.
        hot_fraction: f64,
        /// Probability an access targets the hot region.
        hot_probability: f64,
    },
}

impl WorkloadSpec {
    /// The family name (`uniform`, `stride`, `chase`, `hotcold`) — the
    /// `kind` tag of the JSON spec schema.
    pub fn kind(&self) -> &'static str {
        match self {
            WorkloadSpec::Uniform { .. } => "uniform",
            WorkloadSpec::Stride { .. } => "stride",
            WorkloadSpec::PointerChase { .. } => "chase",
            WorkloadSpec::HotCold { .. } => "hotcold",
        }
    }

    /// Checks the parameters the generators would otherwise panic on.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first invalid parameter.
    pub fn validate(&self) -> Result<(), String> {
        let check_range = |range: u64, min_lines: u64| {
            if range < 64 * min_lines {
                Err(format!(
                    "{}: range_bytes {range} holds fewer than {min_lines} cache line(s)",
                    self.kind()
                ))
            } else {
                Ok(())
            }
        };
        match *self {
            WorkloadSpec::Uniform {
                range_bytes,
                write_fraction,
                ..
            } => {
                check_range(range_bytes, 1)?;
                if !(0.0..=1.0).contains(&write_fraction) {
                    return Err(format!(
                        "uniform: write_fraction {write_fraction} not in 0..=1"
                    ));
                }
                Ok(())
            }
            WorkloadSpec::Stride {
                range_bytes,
                stride,
                ..
            } => {
                check_range(range_bytes, 1)?;
                if stride == 0 {
                    return Err("stride: stride must be non-zero".into());
                }
                Ok(())
            }
            WorkloadSpec::PointerChase { range_bytes, .. } => check_range(range_bytes, 1),
            WorkloadSpec::HotCold {
                range_bytes,
                hot_fraction,
                hot_probability,
                ..
            } => {
                check_range(range_bytes, 2)?;
                for (name, v) in [
                    ("hot_fraction", hot_fraction),
                    ("hot_probability", hot_probability),
                ] {
                    if !(0.0..=1.0).contains(&v) {
                        return Err(format!("hotcold: {name} {v} not in 0..=1"));
                    }
                }
                Ok(())
            }
        }
    }

    /// Builds the runnable workload for `cores` cores.
    ///
    /// Each core streams over its own disjoint window; the build is
    /// deterministic, so two builds of the same spec are
    /// replay-identical.
    ///
    /// # Panics
    ///
    /// Panics on parameters [`WorkloadSpec::validate`] rejects.
    pub fn build(&self, cores: u16) -> Box<dyn Workload> {
        match *self {
            WorkloadSpec::Uniform {
                range_bytes,
                ops,
                seed,
                write_fraction,
            } => Box::new(
                UniformGen::new(range_bytes, ops)
                    .with_seed(seed)
                    .with_write_fraction(write_fraction)
                    .with_cores(cores),
            ),
            WorkloadSpec::Stride {
                range_bytes,
                stride,
                ops,
            } => Box::new(per_core(
                cores,
                |_, start| StrideGen::new(start, range_bytes, ops).with_stride(stride),
                range_bytes,
            )),
            WorkloadSpec::PointerChase {
                range_bytes,
                ops,
                seed,
            } => Box::new(per_core(
                cores,
                |i, start| {
                    PointerChaseGen::new(start, range_bytes, ops).with_seed(seed.wrapping_add(i))
                },
                range_bytes,
            )),
            WorkloadSpec::HotCold {
                range_bytes,
                ops,
                seed,
                hot_fraction,
                hot_probability,
            } => Box::new(per_core(
                cores,
                |i, start| {
                    let mut g =
                        HotColdGen::new(start, range_bytes, ops).with_seed(seed.wrapping_add(i));
                    g.hot_fraction = hot_fraction;
                    g.hot_probability = hot_probability;
                    g
                },
                range_bytes,
            )),
        }
    }
}

/// Replicates a single-stream generator over per-core disjoint windows.
fn per_core<G: Workload + 'static>(
    cores: u16,
    make: impl Fn(u64, u64) -> G,
    range_bytes: u64,
) -> MultiCore {
    let mut w = MultiCore::new();
    for i in 0..u64::from(cores) {
        w = w.core(make(i, i * range_bytes));
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use predllc_model::{CoreId, MemOp};

    fn ops(w: &dyn Workload, core: u16) -> Vec<MemOp> {
        w.core_ops(CoreId::new(core)).collect()
    }

    #[test]
    fn every_family_builds_disjoint_core_windows() {
        let specs = [
            WorkloadSpec::Uniform {
                range_bytes: 2048,
                ops: 50,
                seed: 7,
                write_fraction: 0.2,
            },
            WorkloadSpec::Stride {
                range_bytes: 2048,
                stride: 64,
                ops: 50,
            },
            WorkloadSpec::PointerChase {
                range_bytes: 2048,
                ops: 50,
                seed: 7,
            },
            WorkloadSpec::HotCold {
                range_bytes: 2048,
                ops: 50,
                seed: 7,
                hot_fraction: 0.1,
                hot_probability: 0.9,
            },
        ];
        for spec in specs {
            spec.validate().unwrap();
            let w = spec.build(3);
            assert_eq!(w.num_cores(), 3, "{}", spec.kind());
            for core in 0..3u16 {
                let window = u64::from(core) * 2048..u64::from(core + 1) * 2048;
                assert!(
                    ops(w.as_ref(), core)
                        .iter()
                        .all(|op| window.contains(&op.addr.as_u64())),
                    "{} core {core} escaped its window",
                    spec.kind()
                );
            }
        }
    }

    #[test]
    fn builds_are_replay_identical() {
        let spec = WorkloadSpec::HotCold {
            range_bytes: 4096,
            ops: 80,
            seed: 11,
            hot_fraction: 0.2,
            hot_probability: 0.8,
        };
        let a = spec.build(2);
        let b = spec.build(2);
        assert_eq!(a.materialize(), b.materialize());
        // Distinct cores get distinct streams (seed mixing).
        assert_ne!(
            ops(a.as_ref(), 0)
                .iter()
                .map(|o| o.addr.as_u64() % 4096)
                .collect::<Vec<_>>(),
            ops(a.as_ref(), 1)
                .iter()
                .map(|o| o.addr.as_u64() % 4096)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn validation_rejects_degenerate_parameters() {
        assert!(WorkloadSpec::Uniform {
            range_bytes: 32,
            ops: 1,
            seed: 0,
            write_fraction: 0.0
        }
        .validate()
        .is_err());
        assert!(WorkloadSpec::Uniform {
            range_bytes: 64,
            ops: 1,
            seed: 0,
            write_fraction: 1.5
        }
        .validate()
        .is_err());
        assert!(WorkloadSpec::Stride {
            range_bytes: 64,
            stride: 0,
            ops: 1
        }
        .validate()
        .is_err());
        assert!(WorkloadSpec::HotCold {
            range_bytes: 64,
            ops: 1,
            seed: 0,
            hot_fraction: 0.1,
            hot_probability: 0.9
        }
        .validate()
        .is_err());
        assert_eq!(
            WorkloadSpec::Stride {
                range_bytes: 128,
                stride: 64,
                ops: 1
            }
            .validate(),
            Ok(())
        );
    }

    #[test]
    fn kinds_name_the_families() {
        assert_eq!(
            WorkloadSpec::PointerChase {
                range_bytes: 64,
                ops: 1,
                seed: 0
            }
            .kind(),
            "chase"
        );
    }
}
