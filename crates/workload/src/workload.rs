//! The streaming [`Workload`] trait: the contract between workload
//! sources and the simulation engine.
//!
//! A workload is a bundle of per-core [`MemOp`] streams. The engine pulls
//! operations on demand, one core at a time, so a workload never has to
//! materialize a `Vec<MemOp>` — a generator can synthesize a billion-op
//! stream in constant memory, and a trace file can be decoded
//! incrementally. Fully materialized traces still work: `Vec<Vec<MemOp>>`
//! and [`TraceSet`] implement the trait by streaming over their contents.
//!
//! Because [`Workload::core_ops`] takes `&self`, one workload value can
//! be replayed any number of times (across sharing modes, partitionings,
//! or repeated runs) and always yields the same operations — the paper's
//! "same addresses across configurations" methodology falls out of the
//! type signature.
//!
//! # Examples
//!
//! ```
//! use predllc_model::{Address, MemOp};
//! use predllc_workload::Workload;
//!
//! let traces: Vec<Vec<MemOp>> = vec![
//!     vec![MemOp::read(Address::new(0))],
//!     vec![MemOp::write(Address::new(64)), MemOp::read(Address::new(0))],
//! ];
//! assert_eq!(traces.num_cores(), 2);
//! assert_eq!(traces.len_hint(predllc_model::CoreId::new(1)), Some(2));
//! let ops: Vec<MemOp> = traces.core_ops(predllc_model::CoreId::new(0)).collect();
//! assert_eq!(ops, traces[0]);
//! ```

use predllc_model::{CoreId, MemOp};

use crate::trace::TraceSet;

/// A stream of memory operations for one core.
///
/// Boxed so the trait stays object-safe; the engine pulls from it lazily.
pub type OpStream<'a> = Box<dyn Iterator<Item = MemOp> + 'a>;

/// A bundle of per-core memory-operation streams.
///
/// Implementors must be **replayable**: every call to
/// [`Workload::core_ops`] for the same core yields the same sequence.
/// The `Send + Sync` supertraits let sweeps fan runs out across threads.
pub trait Workload: Send + Sync {
    /// How many cores this workload drives. Core `i` is fed by
    /// `core_ops(CoreId::new(i))` for `i` in `0..num_cores()`.
    fn num_cores(&self) -> u16;

    /// The operation stream of one core.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `core.index() >= num_cores()`.
    fn core_ops(&self, core: CoreId) -> OpStream<'_>;

    /// The exact stream length for one core, when cheaply known.
    ///
    /// Generators with an `ops` parameter and materialized traces return
    /// `Some`; open-ended sources (sockets, compressed files) may return
    /// `None`. Purely advisory — the engine never trusts it for
    /// termination.
    fn len_hint(&self, core: CoreId) -> Option<usize> {
        let _ = core;
        None
    }

    /// Collects every stream into plain per-core vectors.
    ///
    /// This is the bridge back to the materialized world (serialization,
    /// golden files, twin-run equivalence tests) — by construction it
    /// yields exactly what the engine would have streamed.
    fn materialize(&self) -> Vec<Vec<MemOp>> {
        CoreId::first(self.num_cores())
            .map(|c| self.core_ops(c).collect())
            .collect()
    }
}

impl<W: Workload + ?Sized> Workload for &W {
    fn num_cores(&self) -> u16 {
        (**self).num_cores()
    }

    fn core_ops(&self, core: CoreId) -> OpStream<'_> {
        (**self).core_ops(core)
    }

    fn len_hint(&self, core: CoreId) -> Option<usize> {
        (**self).len_hint(core)
    }
}

impl Workload for Box<dyn Workload> {
    fn num_cores(&self) -> u16 {
        (**self).num_cores()
    }

    fn core_ops(&self, core: CoreId) -> OpStream<'_> {
        (**self).core_ops(core)
    }

    fn len_hint(&self, core: CoreId) -> Option<usize> {
        (**self).len_hint(core)
    }
}

/// Backward-compatibility adapter: a fully materialized set of per-core
/// traces is a workload (trace `i` feeds core `i`).
impl Workload for Vec<Vec<MemOp>> {
    fn num_cores(&self) -> u16 {
        self.len() as u16
    }

    fn core_ops(&self, core: CoreId) -> OpStream<'_> {
        Box::new(self[core.as_usize()].iter().copied())
    }

    fn len_hint(&self, core: CoreId) -> Option<usize> {
        Some(self[core.as_usize()].len())
    }
}

impl Workload for TraceSet {
    fn num_cores(&self) -> u16 {
        TraceSet::num_cores(self)
    }

    fn core_ops(&self, core: CoreId) -> OpStream<'_> {
        Box::new(self.traces[core.as_usize()].iter().copied())
    }

    fn len_hint(&self, core: CoreId) -> Option<usize> {
        Some(self.traces[core.as_usize()].len())
    }
}

/// A heterogeneous multi-core workload: one single-core (or wider)
/// workload per core, each contributing its core-0 stream.
///
/// This is how the single-stream generators ([`StrideGen`],
/// [`PointerChaseGen`], [`HotColdGen`]) compose into a multicore run.
///
/// [`StrideGen`]: crate::gen::StrideGen
/// [`PointerChaseGen`]: crate::gen::PointerChaseGen
/// [`HotColdGen`]: crate::gen::HotColdGen
///
/// # Examples
///
/// ```
/// use predllc_workload::gen::StrideGen;
/// use predllc_workload::{MultiCore, Workload};
///
/// let w = MultiCore::new()
///     .core(StrideGen::new(0, 1024, 10))
///     .core(StrideGen::new(16_384, 1024, 10));
/// assert_eq!(w.num_cores(), 2);
/// assert_eq!(w.len_hint(predllc_model::CoreId::new(0)), Some(10));
/// ```
#[derive(Default)]
pub struct MultiCore {
    parts: Vec<Box<dyn Workload>>,
}

impl MultiCore {
    /// Creates an empty composition.
    pub fn new() -> Self {
        MultiCore { parts: Vec::new() }
    }

    /// Appends the next core's workload (its core-0 stream is used).
    pub fn core(mut self, w: impl Workload + 'static) -> Self {
        self.parts.push(Box::new(w));
        self
    }
}

impl Workload for MultiCore {
    fn num_cores(&self) -> u16 {
        self.parts.len() as u16
    }

    fn core_ops(&self, core: CoreId) -> OpStream<'_> {
        self.parts[core.as_usize()].core_ops(CoreId::new(0))
    }

    fn len_hint(&self, core: CoreId) -> Option<usize> {
        self.parts[core.as_usize()].len_hint(CoreId::new(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{StrideGen, UniformGen};
    use predllc_model::Address;

    fn c(i: u16) -> CoreId {
        CoreId::new(i)
    }

    #[test]
    fn vec_adapter_streams_each_trace() {
        let traces = vec![
            vec![MemOp::read(Address::new(0)), MemOp::write(Address::new(64))],
            vec![MemOp::read(Address::new(128))],
        ];
        assert_eq!(Workload::num_cores(&traces), 2);
        assert_eq!(traces.len_hint(c(0)), Some(2));
        let got: Vec<MemOp> = traces.core_ops(c(1)).collect();
        assert_eq!(got, traces[1]);
    }

    #[test]
    fn trace_set_streams_and_hints() {
        let set = TraceSet::new("t", vec![vec![MemOp::read(Address::new(0))], vec![]]);
        assert_eq!(Workload::num_cores(&set), 2);
        assert_eq!(set.len_hint(c(1)), Some(0));
        assert_eq!(set.core_ops(c(0)).count(), 1);
    }

    #[test]
    fn materialize_matches_streams() {
        let g = UniformGen::new(2048, 40).with_cores(3).with_seed(5);
        let m = g.materialize();
        assert_eq!(m.len(), 3);
        for (i, t) in m.iter().enumerate() {
            let streamed: Vec<MemOp> = g.core_ops(c(i as u16)).collect();
            assert_eq!(&streamed, t);
        }
    }

    #[test]
    fn replay_is_stable() {
        let g = UniformGen::new(2048, 64).with_cores(2);
        let a: Vec<MemOp> = g.core_ops(c(1)).collect();
        let b: Vec<MemOp> = g.core_ops(c(1)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn multicore_routes_each_part_to_its_core() {
        let w = MultiCore::new()
            .core(StrideGen::new(0, 256, 4))
            .core(StrideGen::new(4096, 256, 4));
        let a: Vec<u64> = w.core_ops(c(0)).map(|op| op.addr.as_u64()).collect();
        let b: Vec<u64> = w.core_ops(c(1)).map(|op| op.addr.as_u64()).collect();
        assert_eq!(a, [0, 64, 128, 192]);
        assert_eq!(b, [4096, 4160, 4224, 4288]);
    }

    #[test]
    fn reference_and_box_forward() {
        let g = UniformGen::new(1024, 8).with_cores(1);
        let g_ref: &UniformGen = &g;
        let by_ref: Vec<MemOp> = g_ref.core_ops(c(0)).collect();
        let boxed: Box<dyn Workload> = Box::new(g.clone());
        let by_box: Vec<MemOp> = boxed.core_ops(c(0)).collect();
        assert_eq!(by_ref, by_box);
        assert_eq!(boxed.len_hint(c(0)), Some(8));
    }
}
