//! Trace (de)serialization: JSON for interchange.
//!
//! Traces are small structured data; JSON keeps them inspectable and
//! diff-able, which matters more for experiment provenance than
//! compactness. The codec is self-contained (the build runs in
//! network-isolated environments, so no serde): it writes and reads the
//! fixed schema
//!
//! ```json
//! {"name":"demo","traces":[[{"kind":"Read","addr":0}, …], …]}
//! ```

use std::io::{Read, Write};

use predllc_model::{AccessKind, Address, MemOp};

use crate::trace::TraceSet;

/// Errors from trace I/O.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceIoError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// The stream did not contain a valid trace set.
    Format {
        /// What the decoder expected or found.
        message: String,
        /// Byte offset of the failure in the input.
        offset: usize,
    },
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o failed: {e}"),
            TraceIoError::Format { message, offset } => {
                write!(f, "trace format invalid at byte {offset}: {message}")
            }
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Format { .. } => None,
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Writes a trace set as JSON, streamed op by op — memory use is
/// independent of the trace length. A `&mut` writer works too; wrap a
/// raw file in a `BufWriter` for throughput.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_json<W: Write>(set: &TraceSet, mut writer: W) -> Result<(), TraceIoError> {
    writer.write_all(b"{\"name\":")?;
    write_json_string(&mut writer, &set.name)?;
    writer.write_all(b",\"traces\":[")?;
    for (i, trace) in set.traces.iter().enumerate() {
        if i > 0 {
            writer.write_all(b",")?;
        }
        writer.write_all(b"[")?;
        for (j, op) in trace.iter().enumerate() {
            if j > 0 {
                writer.write_all(b",")?;
            }
            let kind = match op.kind {
                AccessKind::Read => "Read",
                AccessKind::Write => "Write",
                AccessKind::InstrFetch => "InstrFetch",
            };
            write!(
                writer,
                "{{\"kind\":\"{kind}\",\"addr\":{}}}",
                op.addr.as_u64()
            )?;
        }
        writer.write_all(b"]")?;
    }
    writer.write_all(b"]}")?;
    Ok(())
}

fn write_json_string<W: Write>(writer: &mut W, s: &str) -> Result<(), TraceIoError> {
    writer.write_all(b"\"")?;
    for ch in s.chars() {
        match ch {
            '"' => writer.write_all(b"\\\"")?,
            '\\' => writer.write_all(b"\\\\")?,
            '\n' => writer.write_all(b"\\n")?,
            '\r' => writer.write_all(b"\\r")?,
            '\t' => writer.write_all(b"\\t")?,
            c if (c as u32) < 0x20 => write!(writer, "\\u{:04x}", c as u32)?,
            c => write!(writer, "{c}")?,
        }
    }
    writer.write_all(b"\"")?;
    Ok(())
}

/// Reads a trace set from JSON. A `&mut` reader works too.
///
/// # Errors
///
/// Propagates deserialization and I/O failures.
pub fn read_json<R: Read>(mut reader: R) -> Result<TraceSet, TraceIoError> {
    let mut buf = Vec::new();
    reader.read_to_end(&mut buf)?;
    let mut p = Parser { buf: &buf, at: 0 };
    let set = p.trace_set()?;
    p.skip_ws();
    if p.at != p.buf.len() {
        return Err(p.fail("trailing data after the trace set"));
    }
    Ok(set)
}

/// A recursive-descent decoder for the fixed trace-set schema.
struct Parser<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn fail(&self, message: impl Into<String>) -> TraceIoError {
        TraceIoError::Format {
            message: message.into(),
            offset: self.at,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.buf.get(self.at) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.at += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), TraceIoError> {
        self.skip_ws();
        if self.buf.get(self.at) == Some(&byte) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.fail(format!("expected '{}'", byte as char)))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.buf.get(self.at).copied()
    }

    fn string(&mut self) -> Result<String, TraceIoError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.buf.get(self.at) else {
                return Err(self.fail("unterminated string"));
            };
            self.at += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.buf.get(self.at) else {
                        return Err(self.fail("unterminated escape"));
                    };
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .buf
                                .get(self.at..self.at + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.fail("invalid \\u escape"))?;
                            self.at += 4;
                            // The writer never emits surrogate pairs
                            // (only control characters), so a lone code
                            // point suffices.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.fail("invalid \\u code point"))?;
                            out.push(c);
                        }
                        _ => return Err(self.fail("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 sequences from the raw
                    // input.
                    let start = self.at - 1;
                    let len = utf8_len(b).ok_or_else(|| self.fail("invalid utf-8"))?;
                    let slice = self
                        .buf
                        .get(start..start + len)
                        .ok_or_else(|| self.fail("truncated utf-8"))?;
                    let s = std::str::from_utf8(slice).map_err(|_| self.fail("invalid utf-8"))?;
                    out.push_str(s);
                    self.at = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<u64, TraceIoError> {
        self.skip_ws();
        let start = self.at;
        while self.buf.get(self.at).is_some_and(|b| b.is_ascii_digit()) {
            self.at += 1;
        }
        if start == self.at {
            return Err(self.fail("expected a number"));
        }
        std::str::from_utf8(&self.buf[start..self.at])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| self.fail("number out of range"))
    }

    fn mem_op(&mut self) -> Result<MemOp, TraceIoError> {
        self.expect(b'{')?;
        let mut kind: Option<AccessKind> = None;
        let mut addr: Option<u64> = None;
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            match key.as_str() {
                "kind" => {
                    let v = self.string()?;
                    kind = Some(match v.as_str() {
                        "Read" => AccessKind::Read,
                        "Write" => AccessKind::Write,
                        "InstrFetch" => AccessKind::InstrFetch,
                        other => return Err(self.fail(format!("unknown access kind '{other}'"))),
                    });
                }
                "addr" => addr = Some(self.number()?),
                other => return Err(self.fail(format!("unknown op field '{other}'"))),
            }
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    break;
                }
                _ => return Err(self.fail("expected ',' or '}' in op")),
            }
        }
        match (kind, addr) {
            (Some(kind), Some(addr)) => Ok(MemOp {
                kind,
                addr: Address::new(addr),
            }),
            _ => Err(self.fail("op needs both 'kind' and 'addr'")),
        }
    }

    fn trace(&mut self) -> Result<Vec<MemOp>, TraceIoError> {
        self.expect(b'[')?;
        let mut ops = Vec::new();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(ops);
        }
        loop {
            ops.push(self.mem_op()?);
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(ops);
                }
                _ => return Err(self.fail("expected ',' or ']' in trace")),
            }
        }
    }

    fn trace_set(&mut self) -> Result<TraceSet, TraceIoError> {
        self.expect(b'{')?;
        let mut name: Option<String> = None;
        let mut traces: Option<Vec<Vec<MemOp>>> = None;
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            match key.as_str() {
                "name" => name = Some(self.string()?),
                "traces" => {
                    self.expect(b'[')?;
                    let mut ts = Vec::new();
                    if self.peek() == Some(b']') {
                        self.at += 1;
                    } else {
                        loop {
                            ts.push(self.trace()?);
                            match self.peek() {
                                Some(b',') => self.at += 1,
                                Some(b']') => {
                                    self.at += 1;
                                    break;
                                }
                                _ => return Err(self.fail("expected ',' or ']'")),
                            }
                        }
                    }
                    traces = Some(ts);
                }
                other => return Err(self.fail(format!("unknown field '{other}'"))),
            }
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    break;
                }
                _ => return Err(self.fail("expected ',' or '}'")),
            }
        }
        match (name, traces) {
            (Some(name), Some(traces)) => Ok(TraceSet { name, traces }),
            _ => Err(self.fail("trace set needs both 'name' and 'traces'")),
        }
    }
}

const fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7f => Some(1),
        0xc0..=0xdf => Some(2),
        0xe0..=0xef => Some(3),
        0xf0..=0xf7 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::UniformGen;

    #[test]
    fn json_roundtrip_preserves_traces() {
        let set = TraceSet::new("rt", UniformGen::new(2048, 25).traces(3));
        let mut buf = Vec::new();
        write_json(&set, &mut buf).unwrap();
        let back = read_json(buf.as_slice()).unwrap();
        assert_eq!(back, set);
    }

    #[test]
    fn roundtrip_covers_kinds_names_and_whitespace() {
        use predllc_model::{Address, MemOp};
        let set = TraceSet::new(
            "quote\" slash\\ tab\t",
            vec![vec![
                MemOp::read(Address::new(0)),
                MemOp::write(Address::new(u64::MAX)),
                MemOp::fetch(Address::new(4096)),
            ]],
        );
        let mut buf = Vec::new();
        write_json(&set, &mut buf).unwrap();
        let back = read_json(buf.as_slice()).unwrap();
        assert_eq!(back, set);
        // Whitespace-tolerant parsing.
        let spaced =
            br#" { "name" : "x" , "traces" : [ [ { "kind" : "Read" , "addr" : 64 } ] ] } "#;
        let got = read_json(spaced.as_slice()).unwrap();
        assert_eq!(got.name, "x");
        assert_eq!(got.traces[0][0], MemOp::read(Address::new(64)));
    }

    #[test]
    fn malformed_json_is_a_format_error() {
        let err = read_json(b"not json".as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::Format { .. }));
        assert!(err.to_string().contains("format"));
    }

    #[test]
    fn unknown_kind_is_rejected_with_offset() {
        let bad = br#"{"name":"x","traces":[[{"kind":"Skim","addr":0}]]}"#;
        let err = read_json(bad.as_slice()).unwrap_err();
        match err {
            TraceIoError::Format { message, offset } => {
                assert!(message.contains("Skim"));
                assert!(offset > 0);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_good<E: std::error::Error + Send + Sync + 'static>() {}
        assert_good::<TraceIoError>();
    }
}
