//! Trace (de)serialization: JSON for interchange.
//!
//! Traces are small structured data; JSON keeps them inspectable and
//! diff-able, which matters more for experiment provenance than
//! compactness.

use std::io::{Read, Write};

use crate::trace::TraceSet;

/// Errors from trace I/O.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceIoError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// The stream did not contain a valid trace set.
    Format(serde_json::Error),
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o failed: {e}"),
            TraceIoError::Format(e) => write!(f, "trace format invalid: {e}"),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Format(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

impl From<serde_json::Error> for TraceIoError {
    fn from(e: serde_json::Error) -> Self {
        TraceIoError::Format(e)
    }
}

/// Writes a trace set as JSON. A `&mut` writer works too.
///
/// # Errors
///
/// Propagates serialization and I/O failures.
pub fn write_json<W: Write>(set: &TraceSet, writer: W) -> Result<(), TraceIoError> {
    serde_json::to_writer(writer, set)?;
    Ok(())
}

/// Reads a trace set from JSON. A `&mut` reader works too.
///
/// # Errors
///
/// Propagates deserialization and I/O failures.
pub fn read_json<R: Read>(reader: R) -> Result<TraceSet, TraceIoError> {
    Ok(serde_json::from_reader(reader)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::UniformGen;

    #[test]
    fn json_roundtrip_preserves_traces() {
        let set = TraceSet::new("rt", UniformGen::new(2048, 25).traces(3));
        let mut buf = Vec::new();
        write_json(&set, &mut buf).unwrap();
        let back = read_json(buf.as_slice()).unwrap();
        assert_eq!(back, set);
    }

    #[test]
    fn malformed_json_is_a_format_error() {
        let err = read_json(b"not json".as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::Format(_)));
        assert!(err.to_string().contains("format"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_good<E: std::error::Error + Send + Sync + 'static>() {}
        assert_good::<TraceIoError>();
    }
}
