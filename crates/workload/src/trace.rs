//! A named bundle of per-core traces.

use predllc_model::MemOp;

/// The traces of all cores for one experiment, with a human-readable
/// name, ready for (de)serialization.
///
/// # Examples
///
/// ```
/// use predllc_model::{Address, MemOp};
/// use predllc_workload::TraceSet;
///
/// let set = TraceSet::new(
///     "demo",
///     vec![vec![MemOp::read(Address::new(0))], vec![]],
/// );
/// assert_eq!(set.num_cores(), 2);
/// assert_eq!(set.total_ops(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSet {
    /// Experiment/workload name.
    pub name: String,
    /// One trace per core, indexed by core.
    pub traces: Vec<Vec<MemOp>>,
}

impl TraceSet {
    /// Creates a trace set.
    pub fn new(name: impl Into<String>, traces: Vec<Vec<MemOp>>) -> Self {
        TraceSet {
            name: name.into(),
            traces,
        }
    }

    /// Number of cores covered.
    pub fn num_cores(&self) -> u16 {
        self.traces.len() as u16
    }

    /// Total operations across all cores.
    pub fn total_ops(&self) -> usize {
        self.traces.iter().map(Vec::len).sum()
    }

    /// Consumes the set, yielding the plain per-core traces.
    ///
    /// Rarely needed since [`TraceSet`] implements the
    /// [`Workload`](crate::Workload) trait and can be handed to
    /// `Simulator::run` directly (by reference).
    pub fn into_traces(self) -> Vec<Vec<MemOp>> {
        self.traces
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predllc_model::Address;

    #[test]
    fn counts() {
        let set = TraceSet::new(
            "t",
            vec![
                vec![MemOp::read(Address::new(0)), MemOp::write(Address::new(64))],
                vec![MemOp::read(Address::new(128))],
            ],
        );
        assert_eq!(set.num_cores(), 2);
        assert_eq!(set.total_ops(), 3);
        assert_eq!(set.into_traces().len(), 2);
    }
}
