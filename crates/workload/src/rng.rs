//! A small deterministic PRNG for the trace generators.
//!
//! The simulator's reproducibility contract (same seed ⇒ byte-identical
//! run) only needs a deterministic, well-mixed sequence — not
//! cryptographic quality — so the generators use a self-contained
//! splitmix64 stream instead of an external RNG crate. The stream is
//! stable across platforms and releases: traces generated from a seed
//! are part of experiment provenance.

/// Deterministic 64-bit PRNG (splitmix64).
///
/// # Examples
///
/// ```
/// use predllc_workload::rng::Rng64;
///
/// let mut a = Rng64::new(7);
/// let mut b = Rng64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// assert!(a.below(10) < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        Rng64 { state: seed }
    }

    /// The next raw 64-bit value (splitmix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `0..n` via the multiply-shift reduction.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) has no valid value");
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }

    /// `true` with probability `p`.
    ///
    /// `p = 0.0` is always `false`; `p = 1.0` is always `true`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0` — a probability outside the unit
    /// interval is a misconfigured experiment, not a samplable value.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "probability {p} outside 0.0 ..= 1.0"
        );
        // 53 uniform mantissa bits in [0, 1).
        let frac = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        frac < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_are_deterministic_and_seed_sensitive() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(1);
        let mut c = Rng64::new(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn below_stays_in_range_and_covers_it() {
        let mut r = Rng64::new(42);
        let mut seen = [false; 8];
        for _ in 0..512 {
            let v = r.below(8);
            assert!(v < 8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 values appear in 512 draws");
    }

    #[test]
    fn chance_extremes_are_exact() {
        let mut r = Rng64::new(3);
        assert!((0..64).all(|_| !r.chance(0.0)));
        assert!((0..64).all(|_| r.chance(1.0)));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = Rng64::new(9);
        let hits = (0..4000).filter(|_| r.chance(0.25)).count();
        assert!((800..1200).contains(&hits), "≈1000 expected, got {hits}");
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        Rng64::new(0).below(0);
    }

    #[test]
    #[should_panic(expected = "outside 0.0 ..= 1.0")]
    fn chance_rejects_invalid_probability() {
        Rng64::new(0).chance(1.5);
    }
}
