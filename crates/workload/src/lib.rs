//! Workloads for the `predllc` simulator: the streaming [`Workload`]
//! trait and deterministic synthetic generators.
//!
//! The paper's evaluation (§5) uses "synthetic workloads consisting of
//! memory requests to random addresses within various address ranges",
//! with **disjoint address ranges per core** (no shared data) and the
//! *same* address sequence reused across partition configurations so the
//! configurations are directly comparable. [`gen::UniformGen`] implements
//! exactly that; the other generators (stride, pointer-chase, hot/cold)
//! cover the access patterns real safety-critical tasks exhibit and are
//! used by the examples and the ablation experiments.
//!
//! Every workload source implements [`Workload`]: per-core [`MemOp`]
//! streams the engine pulls on demand, so simulating a million-op
//! generator needs no trace storage, and one workload value replays
//! identically across any number of runs. `Vec<Vec<MemOp>>` and
//! [`TraceSet`] implement the trait too, so materialized traces remain
//! first-class.
//!
//! All generators are deterministic given their seed.
//!
//! [`MemOp`]: predllc_model::MemOp
//!
//! # Examples
//!
//! ```
//! use predllc_model::CoreId;
//! use predllc_workload::gen::UniformGen;
//! use predllc_workload::Workload;
//!
//! let gen = UniformGen::new(4096, 100).with_seed(7).with_cores(4);
//! assert_eq!(gen.num_cores(), 4);
//! // Streaming: no trace is materialized.
//! assert_eq!(gen.core_ops(CoreId::new(0)).count(), 100);
//! // Disjoint ranges: core 1's addresses start 4096 bytes up.
//! assert!(gen.core_ops(CoreId::new(1)).all(|op| op.addr.as_u64() >= 4096));
//! // Determinism: replaying the stream yields the same operations, and
//! // the materialized twin is identical by construction.
//! let traces = gen.traces(4);
//! assert_eq!(gen.materialize(), traces);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod io;
pub mod rng;
pub mod spec;
pub mod trace;
pub mod workload;

pub use spec::WorkloadSpec;
pub use trace::TraceSet;
pub use workload::{MultiCore, OpStream, Workload};
