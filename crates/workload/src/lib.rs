//! Synthetic workload generation for the `predllc` simulator.
//!
//! The paper's evaluation (§5) uses "synthetic workloads consisting of
//! memory requests to random addresses within various address ranges",
//! with **disjoint address ranges per core** (no shared data) and the
//! *same* address sequence reused across partition configurations so the
//! configurations are directly comparable. [`gen::UniformGen`] implements
//! exactly that; the other generators (stride, pointer-chase, hot/cold)
//! cover the access patterns real safety-critical tasks exhibit and are
//! used by the examples and the ablation experiments.
//!
//! All generators are deterministic given their seed.
//!
//! # Examples
//!
//! ```
//! use predllc_workload::gen::UniformGen;
//!
//! let gen = UniformGen::new(4096, 100).with_seed(7);
//! let traces = gen.traces(4);
//! assert_eq!(traces.len(), 4);
//! assert_eq!(traces[0].len(), 100);
//! // Disjoint ranges: core 1's addresses start 4096 bytes up.
//! assert!(traces[1].iter().all(|op| op.addr.as_u64() >= 4096));
//! // Determinism: the same generator yields the same trace.
//! assert_eq!(UniformGen::new(4096, 100).with_seed(7).traces(4), traces);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod io;
pub mod trace;

pub use trace::TraceSet;
