//! Replacement policies for set-associative caches.
//!
//! The paper's WCL analysis holds for *any* replacement policy (§4.3:
//! "our observation is agnostic of replacement policy … including
//! least-recently used"). To let experiments exercise that claim, the
//! simulator accepts any implementor of [`ReplacementPolicy`]; this module
//! ships LRU (the default), FIFO, round-robin, and a deterministic
//! xorshift-based pseudo-random policy.

use std::fmt;

use predllc_model::{CacheGeometry, SetIdx, WayIdx};

/// Per-set victim selection and usage bookkeeping for one cache.
///
/// A policy instance is owned by exactly one cache and is notified of every
/// fill, hit and invalidation so it can maintain recency/insertion state.
/// Victim selection receives an *eligibility mask* because callers often
/// must exclude ways — the LLC excludes ways outside the active partition
/// and ways whose lines are mid-eviction.
///
/// Implementors must be deterministic: the simulator's reproducibility
/// guarantees (same seed ⇒ same cycle-exact run) depend on it.
pub trait ReplacementPolicy: fmt::Debug + Send {
    /// Notifies the policy that `way` of `set` was filled with a new line.
    fn on_fill(&mut self, set: SetIdx, way: WayIdx);

    /// Notifies the policy that `way` of `set` was hit.
    fn on_hit(&mut self, set: SetIdx, way: WayIdx);

    /// Notifies the policy that `way` of `set` was invalidated.
    fn on_invalidate(&mut self, set: SetIdx, way: WayIdx) {
        let _ = (set, way);
    }

    /// Chooses a victim way in `set` among ways where `eligible[way]` is
    /// `true`, or `None` if no way is eligible.
    ///
    /// The returned way, if any, always satisfies `eligible[way]`.
    fn choose_victim(&mut self, set: SetIdx, eligible: &[bool]) -> Option<WayIdx>;
}

/// The selectable replacement policies, as configuration data.
///
/// # Examples
///
/// ```
/// use predllc_cache::ReplacementKind;
/// use predllc_model::CacheGeometry;
///
/// let policy = ReplacementKind::Lru.build(CacheGeometry::PAPER_L2);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplacementKind {
    /// Least-recently-used (per-set recency stack).
    #[default]
    Lru,
    /// First-in-first-out (victimize oldest fill, ignore hits).
    Fifo,
    /// Round-robin pointer per set.
    RoundRobin,
    /// Deterministic pseudo-random (xorshift64*), seeded.
    Random {
        /// Seed for the xorshift state; same seed ⇒ same victim sequence.
        seed: u64,
    },
}

impl ReplacementKind {
    /// Instantiates the policy for a cache of the given geometry.
    pub fn build(self, geometry: CacheGeometry) -> Box<dyn ReplacementPolicy> {
        let sets = geometry.sets() as usize;
        let ways = geometry.ways() as usize;
        match self {
            ReplacementKind::Lru => Box::new(Lru::new(sets, ways)),
            ReplacementKind::Fifo => Box::new(Fifo::new(sets, ways)),
            ReplacementKind::RoundRobin => Box::new(RoundRobin::new(sets)),
            ReplacementKind::Random { seed } => Box::new(XorShiftRandom::new(seed)),
        }
    }
}

impl fmt::Display for ReplacementKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplacementKind::Lru => f.write_str("LRU"),
            ReplacementKind::Fifo => f.write_str("FIFO"),
            ReplacementKind::RoundRobin => f.write_str("round-robin"),
            ReplacementKind::Random { seed } => write!(f, "random(seed={seed})"),
        }
    }
}

/// Least-recently-used: per set, a monotonically increasing timestamp per
/// way; the eligible way with the smallest timestamp is the victim.
#[derive(Debug)]
struct Lru {
    /// `stamp[set][way]`: last-use time; 0 means "never used".
    stamp: Vec<Vec<u64>>,
    clock: u64,
}

impl Lru {
    fn new(sets: usize, ways: usize) -> Self {
        Lru {
            stamp: vec![vec![0; ways]; sets],
            clock: 0,
        }
    }

    fn touch(&mut self, set: SetIdx, way: WayIdx) {
        self.clock += 1;
        self.stamp[set.as_usize()][way.as_usize()] = self.clock;
    }
}

impl ReplacementPolicy for Lru {
    fn on_fill(&mut self, set: SetIdx, way: WayIdx) {
        self.touch(set, way);
    }

    fn on_hit(&mut self, set: SetIdx, way: WayIdx) {
        self.touch(set, way);
    }

    fn on_invalidate(&mut self, set: SetIdx, way: WayIdx) {
        self.stamp[set.as_usize()][way.as_usize()] = 0;
    }

    fn choose_victim(&mut self, set: SetIdx, eligible: &[bool]) -> Option<WayIdx> {
        let stamps = &self.stamp[set.as_usize()];
        eligible
            .iter()
            .enumerate()
            .filter(|(_, &e)| e)
            .min_by_key(|(w, _)| stamps[*w])
            .map(|(w, _)| WayIdx(w as u32))
    }
}

/// FIFO: like LRU but hits do not refresh the timestamp.
#[derive(Debug)]
struct Fifo {
    stamp: Vec<Vec<u64>>,
    clock: u64,
}

impl Fifo {
    fn new(sets: usize, ways: usize) -> Self {
        Fifo {
            stamp: vec![vec![0; ways]; sets],
            clock: 0,
        }
    }
}

impl ReplacementPolicy for Fifo {
    fn on_fill(&mut self, set: SetIdx, way: WayIdx) {
        self.clock += 1;
        self.stamp[set.as_usize()][way.as_usize()] = self.clock;
    }

    fn on_hit(&mut self, _set: SetIdx, _way: WayIdx) {}

    fn on_invalidate(&mut self, set: SetIdx, way: WayIdx) {
        self.stamp[set.as_usize()][way.as_usize()] = 0;
    }

    fn choose_victim(&mut self, set: SetIdx, eligible: &[bool]) -> Option<WayIdx> {
        let stamps = &self.stamp[set.as_usize()];
        eligible
            .iter()
            .enumerate()
            .filter(|(_, &e)| e)
            .min_by_key(|(w, _)| stamps[*w])
            .map(|(w, _)| WayIdx(w as u32))
    }
}

/// Round-robin: a rotating pointer per set; the next eligible way at or
/// after the pointer is the victim, and the pointer advances past it.
#[derive(Debug)]
struct RoundRobin {
    next: Vec<usize>,
}

impl RoundRobin {
    fn new(sets: usize) -> Self {
        RoundRobin {
            next: vec![0; sets],
        }
    }
}

impl ReplacementPolicy for RoundRobin {
    fn on_fill(&mut self, _set: SetIdx, _way: WayIdx) {}

    fn on_hit(&mut self, _set: SetIdx, _way: WayIdx) {}

    fn choose_victim(&mut self, set: SetIdx, eligible: &[bool]) -> Option<WayIdx> {
        let ways = eligible.len();
        if ways == 0 {
            return None;
        }
        let start = self.next[set.as_usize()] % ways;
        for i in 0..ways {
            let w = (start + i) % ways;
            if eligible[w] {
                self.next[set.as_usize()] = (w + 1) % ways;
                return Some(WayIdx(w as u32));
            }
        }
        None
    }
}

/// Deterministic pseudo-random selection using xorshift64*.
///
/// "Random" replacement in real hardware is a cheap LFSR; this models the
/// same behaviour reproducibly.
#[derive(Debug)]
struct XorShiftRandom {
    state: u64,
}

impl XorShiftRandom {
    fn new(seed: u64) -> Self {
        // Scramble the seed with splitmix64 so that nearby seeds diverge
        // and zero never becomes the xorshift state.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        XorShiftRandom { state: z | 1 }
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

impl ReplacementPolicy for XorShiftRandom {
    fn on_fill(&mut self, _set: SetIdx, _way: WayIdx) {}

    fn on_hit(&mut self, _set: SetIdx, _way: WayIdx) {}

    fn choose_victim(&mut self, _set: SetIdx, eligible: &[bool]) -> Option<WayIdx> {
        let count = eligible.iter().filter(|&&e| e).count();
        if count == 0 {
            return None;
        }
        let pick = (self.next() % count as u64) as usize;
        eligible
            .iter()
            .enumerate()
            .filter(|(_, &e)| e)
            .nth(pick)
            .map(|(w, _)| WayIdx(w as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S0: SetIdx = SetIdx(0);

    fn all_eligible(n: usize) -> Vec<bool> {
        vec![true; n]
    }

    #[test]
    fn lru_victimizes_least_recently_used() {
        let mut p = Lru::new(1, 4);
        for w in 0..4 {
            p.on_fill(S0, WayIdx(w));
        }
        p.on_hit(S0, WayIdx(0)); // 0 is now MRU; 1 is LRU
        assert_eq!(p.choose_victim(S0, &all_eligible(4)), Some(WayIdx(1)));
    }

    #[test]
    fn lru_respects_eligibility_mask() {
        let mut p = Lru::new(1, 4);
        for w in 0..4 {
            p.on_fill(S0, WayIdx(w));
        }
        // way0 is LRU but masked out.
        let mask = [false, true, true, true];
        assert_eq!(p.choose_victim(S0, &mask), Some(WayIdx(1)));
    }

    #[test]
    fn lru_prefers_invalidated_ways() {
        let mut p = Lru::new(1, 2);
        p.on_fill(S0, WayIdx(0));
        p.on_fill(S0, WayIdx(1));
        p.on_invalidate(S0, WayIdx(1));
        assert_eq!(p.choose_victim(S0, &all_eligible(2)), Some(WayIdx(1)));
    }

    #[test]
    fn lru_returns_none_when_nothing_eligible() {
        let mut p = Lru::new(1, 2);
        assert_eq!(p.choose_victim(S0, &[false, false]), None);
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut p = Fifo::new(1, 3);
        p.on_fill(S0, WayIdx(0));
        p.on_fill(S0, WayIdx(1));
        p.on_fill(S0, WayIdx(2));
        p.on_hit(S0, WayIdx(0)); // does not refresh
        assert_eq!(p.choose_victim(S0, &all_eligible(3)), Some(WayIdx(0)));
    }

    #[test]
    fn round_robin_rotates() {
        let mut p = RoundRobin::new(1);
        let e = all_eligible(3);
        assert_eq!(p.choose_victim(S0, &e), Some(WayIdx(0)));
        assert_eq!(p.choose_victim(S0, &e), Some(WayIdx(1)));
        assert_eq!(p.choose_victim(S0, &e), Some(WayIdx(2)));
        assert_eq!(p.choose_victim(S0, &e), Some(WayIdx(0)));
    }

    #[test]
    fn round_robin_skips_ineligible() {
        let mut p = RoundRobin::new(1);
        let mask = [false, true, false];
        assert_eq!(p.choose_victim(S0, &mask), Some(WayIdx(1)));
        assert_eq!(p.choose_victim(S0, &mask), Some(WayIdx(1)));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let picks = |seed: u64| -> Vec<Option<WayIdx>> {
            let mut p = XorShiftRandom::new(seed);
            (0..16)
                .map(|_| p.choose_victim(S0, &all_eligible(8)))
                .collect()
        };
        assert_eq!(picks(42), picks(42));
        assert_ne!(picks(42), picks(43));
    }

    #[test]
    fn random_only_picks_eligible_ways() {
        let mut p = XorShiftRandom::new(7);
        let mask = [false, false, true, false, true, false];
        for _ in 0..64 {
            let w = p.choose_victim(S0, &mask).unwrap();
            assert!(mask[w.as_usize()], "picked ineligible way {w}");
        }
    }

    #[test]
    fn random_handles_empty_mask() {
        let mut p = XorShiftRandom::new(7);
        assert_eq!(p.choose_victim(S0, &[false; 4]), None);
        assert_eq!(p.choose_victim(S0, &[]), None);
    }

    #[test]
    fn kind_builds_and_displays() {
        let g = CacheGeometry::new(2, 2, 64).unwrap();
        for (kind, name) in [
            (ReplacementKind::Lru, "LRU"),
            (ReplacementKind::Fifo, "FIFO"),
            (ReplacementKind::RoundRobin, "round-robin"),
            (ReplacementKind::Random { seed: 1 }, "random(seed=1)"),
        ] {
            let mut p = kind.build(g);
            assert_eq!(kind.to_string(), name);
            // Every freshly built policy can pick a victim from a full mask.
            assert!(p.choose_victim(S0, &[true, true]).is_some());
        }
        assert_eq!(ReplacementKind::default(), ReplacementKind::Lru);
    }
}
