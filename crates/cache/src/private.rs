//! The private cache hierarchy of one core: L1I + L1D over a unified L2.
//!
//! Inclusion discipline (paper §3): the LLC is inclusive of L2, and L2 is
//! inclusive of both L1s, so an LLC eviction forces evictions "in both the
//! L1 and L2 private caches". This module maintains the L1 ⊆ L2 half; the
//! LLC ⊇ L2 half is driven from `predllc-core` through
//! [`PrivateHierarchy::back_invalidate`].
//!
//! Writes are write-back/write-allocate: a store dirties the L1 line, an L1
//! eviction folds dirtiness into L2, and only an L2 eviction (or an LLC
//! back-invalidation) produces bus traffic.

use predllc_model::{CacheGeometry, LineAddr, MemOp};

use crate::replacement::ReplacementKind;
use crate::set_assoc::SetAssocCache;

/// Where a private-hierarchy lookup was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrivateLookup {
    /// Hit in the L1 (instruction or data, depending on the access kind).
    L1Hit,
    /// Miss in L1, hit in L2; the line was promoted into L1.
    L2Hit,
    /// Miss in both private levels; the request must go to the LLC.
    Miss,
}

/// Side effects of refilling a line after an LLC response.
///
/// At most one of the two fields is `Some`: an L2 victim either needs a
/// real write-back on the bus (it was dirty somewhere in the private
/// hierarchy) or is silently dropped (clean).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefillEffect {
    /// A dirty L2 victim that must be written back to the LLC.
    pub dirty_writeback: Option<LineAddr>,
    /// A clean L2 victim dropped without bus traffic. The LLC's sharer
    /// bookkeeping becomes conservatively stale, which only ever *adds*
    /// back-invalidation work — consistent with worst-case analysis.
    pub clean_drop: Option<LineAddr>,
}

/// Result of an LLC-initiated back-invalidation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackInvalOutcome {
    /// Whether any private level actually held the line.
    pub had_line: bool,
    /// Whether any private copy was dirty (the write-back carries data).
    pub dirty: bool,
}

/// The private L1I/L1D/L2 hierarchy of a single core.
///
/// # Examples
///
/// ```
/// use predllc_cache::{PrivateHierarchy, PrivateLookup};
/// use predllc_model::{Address, CacheGeometry, MemOp};
///
/// let mut h = PrivateHierarchy::paper_default();
/// let op = MemOp::read(Address::new(0x40));
/// assert_eq!(h.access(op), PrivateLookup::Miss);
/// h.refill(op); // LLC responded
/// assert_eq!(h.access(op), PrivateLookup::L1Hit);
/// ```
#[derive(Debug)]
pub struct PrivateHierarchy {
    l1i: SetAssocCache<()>,
    l1d: SetAssocCache<()>,
    l2: SetAssocCache<()>,
}

impl PrivateHierarchy {
    /// Builds a hierarchy with explicit geometries and one replacement
    /// policy for all levels.
    pub fn new(
        l1i: CacheGeometry,
        l1d: CacheGeometry,
        l2: CacheGeometry,
        replacement: ReplacementKind,
    ) -> Self {
        PrivateHierarchy {
            l1i: SetAssocCache::new(l1i, replacement),
            l1d: SetAssocCache::new(l1d, replacement),
            l2: SetAssocCache::new(l2, replacement),
        }
    }

    /// The paper's configuration: 4-way × 16-set L2, small default L1s,
    /// LRU everywhere.
    pub fn paper_default() -> Self {
        PrivateHierarchy::new(
            CacheGeometry::DEFAULT_L1,
            CacheGeometry::DEFAULT_L1,
            CacheGeometry::PAPER_L2,
            ReplacementKind::Lru,
        )
    }

    /// The L2 geometry (needed by the WCL analysis: `m_cua` is the private
    /// capacity in lines).
    pub fn l2_geometry(&self) -> CacheGeometry {
        self.l2.geometry()
    }

    /// Performs a lookup for `op`, updating recency and dirtiness.
    ///
    /// On [`PrivateLookup::L2Hit`] the line is promoted into the
    /// appropriate L1 (possibly folding an L1 victim's dirtiness into L2).
    /// On [`PrivateLookup::Miss`] no state changes; the caller must later
    /// call [`Self::refill`] with the same operation once the LLC
    /// responds.
    pub fn access(&mut self, op: MemOp) -> PrivateLookup {
        let line = op.addr.line();
        let l1 = if op.kind.is_instr() {
            &mut self.l1i
        } else {
            &mut self.l1d
        };
        if let Some(e) = l1.lookup(line) {
            if op.kind.is_write() {
                e.dirty = true;
            }
            return PrivateLookup::L1Hit;
        }
        if self.l2.lookup(line).is_some() {
            self.promote_to_l1(op);
            return PrivateLookup::L2Hit;
        }
        PrivateLookup::Miss
    }

    /// Installs `op`'s line after an LLC response, enforcing L1 ⊆ L2.
    ///
    /// Returns which L2 victim (if any) must be written back on the bus or
    /// was dropped clean.
    pub fn refill(&mut self, op: MemOp) -> RefillEffect {
        let line = op.addr.line();
        let mut effect = RefillEffect::default();
        debug_assert!(
            !self.l2.contains(line),
            "refill of {line} already present in L2"
        );
        // 1. Make room in L2 (victim leaves the private hierarchy
        //    entirely, per inclusion).
        let set = self.l2.set_of(line);
        if let Some(victim) = self.l2.evict_victim_in(set) {
            let mut dirty = victim.dirty;
            if let Some(e) = self.l1i.invalidate(victim.line) {
                dirty |= e.dirty;
            }
            if let Some(e) = self.l1d.invalidate(victim.line) {
                dirty |= e.dirty;
            }
            if dirty {
                effect.dirty_writeback = Some(victim.line);
            } else {
                effect.clean_drop = Some(victim.line);
            }
        }
        // 2. Install in L2 (clean; dirtiness lives in L1 until folded).
        self.l2.fill(line, false, ());
        // 3. Install in the right L1.
        self.promote_to_l1(op);
        effect
    }

    /// Removes `line` from every private level (LLC-initiated eviction).
    pub fn back_invalidate(&mut self, line: LineAddr) -> BackInvalOutcome {
        let mut had = false;
        let mut dirty = false;
        if let Some(e) = self.l1i.invalidate(line) {
            had = true;
            dirty |= e.dirty;
        }
        if let Some(e) = self.l1d.invalidate(line) {
            had = true;
            dirty |= e.dirty;
        }
        if let Some(e) = self.l2.invalidate(line) {
            had = true;
            dirty |= e.dirty;
        }
        BackInvalOutcome {
            had_line: had,
            dirty,
        }
    }

    /// Whether any private level holds `line`.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.l1i.contains(line) || self.l1d.contains(line) || self.l2.contains(line)
    }

    /// Whether the L2 holds `line`.
    pub fn l2_contains(&self, line: LineAddr) -> bool {
        self.l2.contains(line)
    }

    /// Number of lines currently held in L2.
    pub fn l2_occupancy(&self) -> usize {
        self.l2.occupancy()
    }

    /// Iterates over the lines currently held in L2.
    pub fn l2_lines(&self) -> impl Iterator<Item = LineAddr> + '_ {
        self.l2.iter().map(|e| e.line)
    }

    /// Checks the L1 ⊆ L2 inclusion invariant.
    ///
    /// # Errors
    ///
    /// Returns the first violating line, for test diagnostics.
    pub fn check_inclusion(&self) -> Result<(), LineAddr> {
        for e in self.l1i.iter().chain(self.l1d.iter()) {
            if !self.l2.contains(e.line) {
                return Err(e.line);
            }
        }
        Ok(())
    }

    /// Promotes `op`'s line (known to be in L2) into the appropriate L1,
    /// folding any L1 victim's dirtiness into L2.
    fn promote_to_l1(&mut self, op: MemOp) {
        let line = op.addr.line();
        let dirty = op.kind.is_write();
        let l1 = if op.kind.is_instr() {
            &mut self.l1i
        } else {
            &mut self.l1d
        };
        if let Some(e) = l1.lookup(line) {
            e.dirty |= dirty;
            return;
        }
        if let Some(victim) = l1.fill(line, dirty, ()) {
            if victim.dirty {
                // Inclusion guarantees the victim is still in L2. Use
                // peek_mut: folding a dirty bit is not a use for recency.
                if let Some(e) = self.l2.peek_mut(victim.line) {
                    e.dirty = true;
                } else {
                    debug_assert!(false, "L1 victim {} missing from L2", victim.line);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predllc_model::Address;

    fn tiny() -> PrivateHierarchy {
        // L1: 1 set × 1 way; L2: 1 set × 2 ways. Tiny enough to force
        // every eviction path.
        PrivateHierarchy::new(
            CacheGeometry::new(1, 1, 64).unwrap(),
            CacheGeometry::new(1, 1, 64).unwrap(),
            CacheGeometry::new(1, 2, 64).unwrap(),
            ReplacementKind::Lru,
        )
    }

    fn read(line: u64) -> MemOp {
        MemOp::read(Address::new(line * 64))
    }

    fn write(line: u64) -> MemOp {
        MemOp::write(Address::new(line * 64))
    }

    #[test]
    fn miss_refill_hit_cycle() {
        let mut h = tiny();
        assert_eq!(h.access(read(0)), PrivateLookup::Miss);
        let eff = h.refill(read(0));
        assert_eq!(eff, RefillEffect::default());
        assert_eq!(h.access(read(0)), PrivateLookup::L1Hit);
    }

    #[test]
    fn l2_hit_promotes_into_l1() {
        let mut h = tiny();
        h.refill(read(0));
        h.refill(read(1)); // L1D (1-entry) now holds line 1; line 0 only in L2
        assert_eq!(h.access(read(0)), PrivateLookup::L2Hit);
        // Promoted: next access is an L1 hit.
        assert_eq!(h.access(read(0)), PrivateLookup::L1Hit);
    }

    #[test]
    fn clean_l2_victim_drops_silently() {
        let mut h = tiny();
        h.refill(read(0));
        h.refill(read(1));
        let eff = h.refill(read(2)); // evicts LRU line 0, clean
        assert_eq!(eff.clean_drop, Some(LineAddr::new(0)));
        assert_eq!(eff.dirty_writeback, None);
        assert!(!h.contains(LineAddr::new(0)));
    }

    #[test]
    fn dirty_line_forces_writeback_on_l2_eviction() {
        let mut h = tiny();
        h.refill(write(0)); // dirty in L1
        h.refill(read(1));
        let eff = h.refill(read(2)); // evicts line 0; dirtiness was in L1
        assert_eq!(eff.dirty_writeback, Some(LineAddr::new(0)));
        assert_eq!(eff.clean_drop, None);
    }

    #[test]
    fn l1_victim_dirtiness_folds_into_l2() {
        let mut h = tiny();
        h.refill(write(0)); // line 0 dirty in L1D
        h.refill(read(1)); // L1D 1-entry: victim line 0 folds dirty into L2
                           // Now evicting line 0 from L2 must report dirty even though the L1
                           // copy is gone.
        let eff = h.refill(read(2));
        assert_eq!(eff.dirty_writeback, Some(LineAddr::new(0)));
    }

    #[test]
    fn back_invalidate_reports_dirtiness_and_clears() {
        let mut h = tiny();
        h.refill(write(0));
        let out = h.back_invalidate(LineAddr::new(0));
        assert_eq!(
            out,
            BackInvalOutcome {
                had_line: true,
                dirty: true
            }
        );
        assert!(!h.contains(LineAddr::new(0)));
        // Second invalidation: nothing there.
        let out = h.back_invalidate(LineAddr::new(0));
        assert!(!out.had_line);
        assert!(!out.dirty);
    }

    #[test]
    fn back_invalidate_clean_line() {
        let mut h = tiny();
        h.refill(read(0));
        let out = h.back_invalidate(LineAddr::new(0));
        assert!(out.had_line);
        assert!(!out.dirty);
    }

    #[test]
    fn instruction_and_data_streams_use_separate_l1s() {
        let mut h = tiny();
        h.refill(MemOp::fetch(Address::new(0)));
        h.refill(read(1));
        // Both L1s hold their lines (1-entry each) without evicting the
        // other stream's line.
        assert_eq!(
            h.access(MemOp::fetch(Address::new(0))),
            PrivateLookup::L1Hit
        );
        assert_eq!(h.access(read(1)), PrivateLookup::L1Hit);
    }

    #[test]
    fn inclusion_invariant_holds_under_churn() {
        let mut h = PrivateHierarchy::paper_default();
        for i in 0..1000u64 {
            let line = (i * 7 + i / 3) % 256;
            let op = if i % 3 == 0 { write(line) } else { read(line) };
            if h.access(op) == PrivateLookup::Miss {
                h.refill(op);
            }
            h.check_inclusion().expect("L1 subset of L2");
        }
    }

    #[test]
    fn write_hit_dirties_without_refill() {
        let mut h = tiny();
        h.refill(read(0)); // clean everywhere
        assert_eq!(h.access(write(0)), PrivateLookup::L1Hit); // dirties L1
        h.refill(read(1));
        let eff = h.refill(read(2));
        assert_eq!(eff.dirty_writeback, Some(LineAddr::new(0)));
    }

    #[test]
    fn paper_default_l2_geometry() {
        let h = PrivateHierarchy::paper_default();
        assert_eq!(h.l2_geometry().lines(), 64);
    }

    #[test]
    fn l2_occupancy_and_lines() {
        let mut h = tiny();
        h.refill(read(0));
        h.refill(read(1));
        assert_eq!(h.l2_occupancy(), 2);
        let mut lines: Vec<_> = h.l2_lines().map(LineAddr::as_u64).collect();
        lines.sort_unstable();
        assert_eq!(lines, vec![0, 1]);
    }
}
