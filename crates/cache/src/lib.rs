//! Cache substrate for the `predllc` simulator: set-associative cache
//! structures, replacement policies, and the private per-core L1/L2
//! hierarchy. (The DRAM model moved to the `predllc-dram` crate; a
//! deprecated [`Dram`] alias remains here.)
//!
//! The shared last-level cache itself lives in `predllc-core` because its
//! behaviour (partitioning, eviction state machine, set sequencer) *is* the
//! paper's contribution; this crate provides the conventional machinery the
//! LLC and the private levels are built from.
//!
//! The paper's analysis is explicitly agnostic of the replacement policy
//! ("we assume a replacement policy that can select any of the cache
//! lines", §4.3), so [`replacement`] provides several interchangeable
//! policies behind one trait.
//!
//! # Examples
//!
//! ```
//! use predllc_cache::{ReplacementKind, SetAssocCache};
//! use predllc_model::{CacheGeometry, LineAddr};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut cache: SetAssocCache<()> =
//!     SetAssocCache::new(CacheGeometry::new(2, 2, 64)?, ReplacementKind::Lru);
//! assert!(cache.lookup(LineAddr::new(0)).is_none());
//! cache.fill(LineAddr::new(0), false, ());
//! assert!(cache.lookup(LineAddr::new(0)).is_some());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dram;
pub mod private;
pub mod replacement;
pub mod set_assoc;

#[allow(deprecated)]
pub use dram::Dram;
pub use private::{BackInvalOutcome, PrivateHierarchy, PrivateLookup, RefillEffect};
pub use replacement::{ReplacementKind, ReplacementPolicy};
pub use set_assoc::{Entry, SetAssocCache};
