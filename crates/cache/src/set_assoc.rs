//! A generic set-associative cache structure.
//!
//! [`SetAssocCache`] stores per-line metadata of any type `T`, so the same
//! structure backs the private L1/L2 caches (`T = ()`) and, in
//! `predllc-core`, the shared LLC (where `T` carries sharer bitmaps and the
//! eviction state machine).

use predllc_model::{CacheGeometry, LineAddr, SetIdx, WayIdx};

use crate::replacement::{ReplacementKind, ReplacementPolicy};

/// One occupied cache line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry<T> {
    /// The line address stored in this way.
    pub line: LineAddr,
    /// Whether the line holds modifications not yet written back.
    pub dirty: bool,
    /// Caller-defined metadata (sharers, eviction state, …).
    pub meta: T,
}

/// A set-associative cache with pluggable replacement and per-line
/// metadata.
///
/// The structure is purely functional bookkeeping: it never initiates
/// memory traffic itself. Timing, bus protocol and inclusion enforcement
/// live in the callers.
///
/// # Examples
///
/// ```
/// use predllc_cache::{ReplacementKind, SetAssocCache};
/// use predllc_model::{CacheGeometry, LineAddr};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut c: SetAssocCache<u8> =
///     SetAssocCache::new(CacheGeometry::new(4, 2, 64)?, ReplacementKind::Lru);
/// c.fill(LineAddr::new(8), true, 7);
/// let e = c.lookup(LineAddr::new(8)).expect("just filled");
/// assert!(e.dirty);
/// assert_eq!(e.meta, 7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SetAssocCache<T> {
    geometry: CacheGeometry,
    /// `ways[set][way]`.
    ways: Vec<Vec<Option<Entry<T>>>>,
    policy: Box<dyn ReplacementPolicy>,
}

impl<T> SetAssocCache<T> {
    /// Creates an empty cache of the given geometry and replacement
    /// policy.
    pub fn new(geometry: CacheGeometry, replacement: ReplacementKind) -> Self {
        let sets = geometry.sets() as usize;
        let ways = geometry.ways() as usize;
        SetAssocCache {
            geometry,
            ways: (0..sets)
                .map(|_| (0..ways).map(|_| None).collect())
                .collect(),
            policy: replacement.build(geometry),
        }
    }

    /// The cache's geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// The set a line address maps to.
    pub fn set_of(&self, line: LineAddr) -> SetIdx {
        self.geometry.set_of(line)
    }

    /// Finds the way holding `line`, if present.
    pub fn way_of(&self, line: LineAddr) -> Option<WayIdx> {
        let set = self.set_of(line);
        self.ways[set.as_usize()]
            .iter()
            .position(|e| e.as_ref().is_some_and(|e| e.line == line))
            .map(|w| WayIdx(w as u32))
    }

    /// Returns the entry for `line` without touching replacement state.
    pub fn peek(&self, line: LineAddr) -> Option<&Entry<T>> {
        let set = self.set_of(line);
        self.ways[set.as_usize()]
            .iter()
            .flatten()
            .find(|e| e.line == line)
    }

    /// Returns the entry for `line` mutably without touching replacement
    /// state.
    ///
    /// Used for metadata folding (e.g. merging an L1 victim's dirty bit
    /// into its L2 copy) that must not count as a use for recency.
    pub fn peek_mut(&mut self, line: LineAddr) -> Option<&mut Entry<T>> {
        let set = self.set_of(line);
        self.ways[set.as_usize()]
            .iter_mut()
            .flatten()
            .find(|e| e.line == line)
    }

    /// Looks up `line`, updating replacement recency on a hit.
    pub fn lookup(&mut self, line: LineAddr) -> Option<&mut Entry<T>> {
        let set = self.set_of(line);
        let way = self.way_of(line)?;
        self.policy.on_hit(set, way);
        self.ways[set.as_usize()][way.as_usize()].as_mut()
    }

    /// Whether `line` is present.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.peek(line).is_some()
    }

    /// Returns a free way in `line`'s set, if any (lowest index first).
    pub fn free_way(&self, line: LineAddr) -> Option<WayIdx> {
        let set = self.set_of(line);
        self.free_way_in(set)
    }

    /// Returns a free way in `set`, if any (lowest index first).
    pub fn free_way_in(&self, set: SetIdx) -> Option<WayIdx> {
        self.ways[set.as_usize()]
            .iter()
            .position(Option::is_none)
            .map(|w| WayIdx(w as u32))
    }

    /// Inserts `line`, evicting if the set is full. Returns the evicted
    /// entry, if any.
    ///
    /// This is the "conventional cache" fill path used by the private
    /// levels, where the cache chooses its own victim internally. The LLC
    /// instead drives allocation explicitly via [`Self::install_at`] /
    /// [`Self::take`], because its evictions are a multi-slot protocol.
    ///
    /// # Panics
    ///
    /// Panics if the replacement policy fails to produce a victim for a
    /// full set (which would indicate a policy bug, not a caller error).
    pub fn fill(&mut self, line: LineAddr, dirty: bool, meta: T) -> Option<Entry<T>> {
        debug_assert!(!self.contains(line), "fill of already-present {line}");
        let set = self.set_of(line);
        let (way, evicted) = match self.free_way_in(set) {
            Some(way) => (way, None),
            None => {
                let eligible = vec![true; self.geometry.ways() as usize];
                let way = self
                    .policy
                    .choose_victim(set, &eligible)
                    .expect("replacement policy must pick a victim from a full mask");
                let old = self.ways[set.as_usize()][way.as_usize()].take();
                self.policy.on_invalidate(set, way);
                (way, old)
            }
        };
        self.ways[set.as_usize()][way.as_usize()] = Some(Entry { line, dirty, meta });
        self.policy.on_fill(set, way);
        evicted
    }

    /// Installs `line` at an explicit `(set, way)` slot, which must be
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if the slot is occupied.
    pub fn install_at(&mut self, set: SetIdx, way: WayIdx, line: LineAddr, dirty: bool, meta: T) {
        let slot = &mut self.ways[set.as_usize()][way.as_usize()];
        assert!(slot.is_none(), "install into occupied {set}/{way}");
        *slot = Some(Entry { line, dirty, meta });
        self.policy.on_fill(set, way);
    }

    /// Removes and returns the entry at `(set, way)`.
    pub fn take(&mut self, set: SetIdx, way: WayIdx) -> Option<Entry<T>> {
        let e = self.ways[set.as_usize()][way.as_usize()].take();
        if e.is_some() {
            self.policy.on_invalidate(set, way);
        }
        e
    }

    /// Removes `line` if present, returning its entry.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<Entry<T>> {
        let set = self.set_of(line);
        let way = self.way_of(line)?;
        self.take(set, way)
    }

    /// Chooses a victim way in `set` among ways where `eligible` is true.
    ///
    /// Exposed for the LLC, which restricts eligibility to the active
    /// partition's ways minus lines that are already mid-eviction.
    pub fn choose_victim(&mut self, set: SetIdx, eligible: &[bool]) -> Option<WayIdx> {
        self.policy.choose_victim(set, eligible)
    }

    /// Direct access to the entry at `(set, way)`.
    pub fn entry(&self, set: SetIdx, way: WayIdx) -> Option<&Entry<T>> {
        self.ways[set.as_usize()][way.as_usize()].as_ref()
    }

    /// Direct mutable access to the entry at `(set, way)`.
    pub fn entry_mut(&mut self, set: SetIdx, way: WayIdx) -> Option<&mut Entry<T>> {
        self.ways[set.as_usize()][way.as_usize()].as_mut()
    }

    /// Marks `(set, way)` as recently used.
    pub fn touch(&mut self, set: SetIdx, way: WayIdx) {
        self.policy.on_hit(set, way);
    }

    /// Iterates over all occupied entries.
    pub fn iter(&self) -> impl Iterator<Item = &Entry<T>> {
        self.ways.iter().flatten().flatten()
    }

    /// Iterates over the occupied entries of one set.
    pub fn iter_set(&self, set: SetIdx) -> impl Iterator<Item = (WayIdx, &Entry<T>)> {
        self.ways[set.as_usize()]
            .iter()
            .enumerate()
            .filter_map(|(w, e)| e.as_ref().map(|e| (WayIdx(w as u32), e)))
    }

    /// The number of occupied lines.
    pub fn occupancy(&self) -> usize {
        self.iter().count()
    }

    /// Removes every line, leaving the cache empty.
    pub fn clear(&mut self) {
        let sets = self.geometry.sets();
        let ways = self.geometry.ways();
        for s in 0..sets {
            for w in 0..ways {
                self.take(SetIdx(s), WayIdx(w));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache<u32> {
        SetAssocCache::new(CacheGeometry::new(2, 2, 64).unwrap(), ReplacementKind::Lru)
    }

    // Lines 0,2,4,… map to set 0 of a 2-set cache; 1,3,5,… to set 1.
    const L0: LineAddr = LineAddr::new(0);
    const L2: LineAddr = LineAddr::new(2);
    const L4: LineAddr = LineAddr::new(4);
    const L6: LineAddr = LineAddr::new(6);

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        assert!(!c.contains(L0));
        assert!(c.fill(L0, false, 1).is_none());
        assert!(c.contains(L0));
        assert_eq!(c.lookup(L0).unwrap().meta, 1);
    }

    #[test]
    fn fill_evicts_lru_when_set_full() {
        let mut c = small();
        c.fill(L0, false, 1);
        c.fill(L2, false, 2);
        c.lookup(L0); // L0 becomes MRU, L2 LRU
        let evicted = c.fill(L4, false, 3).expect("set was full");
        assert_eq!(evicted.line, L2);
        assert!(c.contains(L0) && c.contains(L4) && !c.contains(L2));
    }

    #[test]
    fn dirty_flag_travels_with_eviction() {
        let mut c = small();
        c.fill(L0, true, 0);
        c.fill(L2, false, 0);
        c.lookup(L2);
        let evicted = c.fill(L4, false, 0).unwrap();
        assert_eq!(evicted.line, L0);
        assert!(evicted.dirty);
    }

    #[test]
    fn sets_are_independent() {
        let mut c = small();
        c.fill(L0, false, 0);
        c.fill(LineAddr::new(1), false, 0);
        c.fill(L2, false, 0);
        c.fill(LineAddr::new(3), false, 0);
        assert_eq!(c.occupancy(), 4);
        // Filling set 0 again does not disturb set 1.
        c.fill(L4, false, 0);
        assert!(c.contains(LineAddr::new(1)) && c.contains(LineAddr::new(3)));
    }

    #[test]
    fn invalidate_removes_and_frees() {
        let mut c = small();
        c.fill(L0, true, 9);
        let e = c.invalidate(L0).unwrap();
        assert_eq!(e.meta, 9);
        assert!(!c.contains(L0));
        assert_eq!(c.free_way(L0), Some(WayIdx(0)));
        assert!(c.invalidate(L0).is_none());
    }

    #[test]
    fn install_take_roundtrip() {
        let mut c = small();
        let set = c.set_of(L0);
        c.install_at(set, WayIdx(1), L0, false, 5);
        assert_eq!(c.way_of(L0), Some(WayIdx(1)));
        let e = c.take(set, WayIdx(1)).unwrap();
        assert_eq!(e.line, L0);
        assert!(c.take(set, WayIdx(1)).is_none());
    }

    #[test]
    #[should_panic(expected = "install into occupied")]
    fn install_into_occupied_panics() {
        let mut c = small();
        let set = c.set_of(L0);
        c.install_at(set, WayIdx(0), L0, false, 0);
        c.install_at(set, WayIdx(0), L2, false, 0);
    }

    #[test]
    fn free_way_reports_lowest() {
        let mut c = small();
        assert_eq!(c.free_way(L0), Some(WayIdx(0)));
        c.fill(L0, false, 0);
        assert_eq!(c.free_way(L2), Some(WayIdx(1)));
        c.fill(L2, false, 0);
        assert_eq!(c.free_way(L4), None);
    }

    #[test]
    fn iter_set_reports_ways() {
        let mut c = small();
        c.fill(L0, false, 1);
        c.fill(L2, false, 2);
        let set0: Vec<_> = c.iter_set(SetIdx(0)).map(|(w, e)| (w, e.line)).collect();
        assert_eq!(set0, vec![(WayIdx(0), L0), (WayIdx(1), L2)]);
        assert_eq!(c.iter_set(SetIdx(1)).count(), 0);
    }

    #[test]
    fn clear_empties_everything() {
        let mut c = small();
        for l in [L0, L2, L4, L6] {
            c.fill(l, false, 0);
        }
        c.clear();
        assert_eq!(c.occupancy(), 0);
        assert_eq!(c.free_way(L0), Some(WayIdx(0)));
    }

    #[test]
    fn peek_does_not_disturb_recency() {
        let mut c = small();
        c.fill(L0, false, 0);
        c.fill(L2, false, 0);
        // peek L0 (no recency update) then fill: LRU victim must be L0.
        assert!(c.peek(L0).is_some());
        let evicted = c.fill(L4, false, 0).unwrap();
        assert_eq!(evicted.line, L0);
    }
}
