//! A generic set-associative cache structure.
//!
//! [`SetAssocCache`] stores per-line metadata of any type `T`, so the same
//! structure backs the private L1/L2 caches (`T = ()`) and, in
//! `predllc-core`, the shared LLC (where `T` carries sharer bitmaps and the
//! eviction state machine).
//!
//! The storage is a single flat slot array (`set × ways + way`) with the
//! replacement bookkeeping inlined as flat per-way state, so the hit path
//! — the hottest loop of the whole simulator — is one bounded scan with no
//! pointer chasing and no dynamic dispatch. Replacement behaviour is
//! bit-identical to the boxed [`ReplacementPolicy`](crate::replacement)
//! implementations (same victim order, same tie-breaking, same
//! deterministic random sequence); the trait remains available for
//! external experimentation.

use predllc_model::{CacheGeometry, LineAddr, SetIdx, WayIdx};

use crate::replacement::ReplacementKind;

/// One occupied cache line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry<T> {
    /// The line address stored in this way.
    pub line: LineAddr,
    /// Whether the line holds modifications not yet written back.
    pub dirty: bool,
    /// Caller-defined metadata (sharers, eviction state, …).
    pub meta: T,
}

/// Inlined replacement state: the same policies as
/// [`crate::replacement`], stored flat and dispatched by a match instead
/// of a vtable. Victim selection and recency updates are byte-for-byte
/// the boxed policies' behaviour.
#[derive(Debug)]
enum Replacer {
    /// LRU (`refresh_on_hit`) and FIFO (`!refresh_on_hit`): a per-way
    /// last-use/fill stamp driven by one monotonically increasing clock;
    /// the eligible way with the smallest stamp is the victim (ties to
    /// the lowest way, matching `min_by_key`).
    Stamped {
        refresh_on_hit: bool,
        /// `stamp[set * ways + way]`; 0 means "never used".
        stamp: Vec<u64>,
        clock: u64,
    },
    /// Round-robin pointer per set.
    RoundRobin { next: Vec<usize> },
    /// Deterministic xorshift64* selection.
    Random { state: u64 },
}

impl Replacer {
    fn new(kind: ReplacementKind, sets: usize, ways: usize) -> Self {
        match kind {
            ReplacementKind::Lru => Replacer::Stamped {
                refresh_on_hit: true,
                stamp: vec![0; sets * ways],
                clock: 0,
            },
            ReplacementKind::Fifo => Replacer::Stamped {
                refresh_on_hit: false,
                stamp: vec![0; sets * ways],
                clock: 0,
            },
            ReplacementKind::RoundRobin => Replacer::RoundRobin {
                next: vec![0; sets],
            },
            ReplacementKind::Random { seed } => {
                // Scramble the seed with splitmix64 so that nearby seeds
                // diverge and zero never becomes the xorshift state
                // (identical to `replacement::XorShiftRandom`).
                let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^= z >> 31;
                Replacer::Random { state: z | 1 }
            }
        }
    }

    #[inline]
    fn on_fill(&mut self, slot: usize) {
        if let Replacer::Stamped { stamp, clock, .. } = self {
            *clock += 1;
            stamp[slot] = *clock;
        }
    }

    #[inline]
    fn on_hit(&mut self, slot: usize) {
        if let Replacer::Stamped {
            refresh_on_hit: true,
            stamp,
            clock,
        } = self
        {
            *clock += 1;
            stamp[slot] = *clock;
        }
    }

    #[inline]
    fn on_invalidate(&mut self, slot: usize) {
        if let Replacer::Stamped { stamp, .. } = self {
            stamp[slot] = 0;
        }
    }

    /// Victim selection with every way eligible — the private-cache fill
    /// path, where no way is ever excluded. Bit-identical to
    /// `choose_victim(set, ways, &[true; ways])` without materializing
    /// the mask.
    fn choose_victim_all(&mut self, set: usize, ways: usize) -> Option<WayIdx> {
        if ways == 0 {
            return None;
        }
        match self {
            Replacer::Stamped { stamp, .. } => {
                let stamps = &stamp[set * ways..(set + 1) * ways];
                let mut best = 0usize;
                for (w, &s) in stamps.iter().enumerate().skip(1) {
                    if s < stamps[best] {
                        best = w;
                    }
                }
                Some(WayIdx(best as u32))
            }
            Replacer::RoundRobin { next } => {
                let w = next[set] % ways;
                next[set] = (w + 1) % ways;
                Some(WayIdx(w as u32))
            }
            Replacer::Random { state } => {
                let mut x = *state;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                *state = x;
                let pick = (x.wrapping_mul(0x2545_f491_4f6c_dd1d) % ways as u64) as usize;
                Some(WayIdx(pick as u32))
            }
        }
    }

    fn choose_victim(&mut self, set: usize, ways: usize, eligible: &[bool]) -> Option<WayIdx> {
        match self {
            Replacer::Stamped { stamp, .. } => {
                let stamps = &stamp[set * ways..set * ways + eligible.len().min(ways)];
                eligible
                    .iter()
                    .enumerate()
                    .filter(|(_, &e)| e)
                    .min_by_key(|(w, _)| stamps[*w])
                    .map(|(w, _)| WayIdx(w as u32))
            }
            Replacer::RoundRobin { next } => {
                let n = eligible.len();
                if n == 0 {
                    return None;
                }
                let start = next[set] % n;
                for i in 0..n {
                    let w = (start + i) % n;
                    if eligible[w] {
                        next[set] = (w + 1) % n;
                        return Some(WayIdx(w as u32));
                    }
                }
                None
            }
            Replacer::Random { state } => {
                let count = eligible.iter().filter(|&&e| e).count();
                if count == 0 {
                    return None;
                }
                let mut x = *state;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                *state = x;
                let pick = (x.wrapping_mul(0x2545_f491_4f6c_dd1d) % count as u64) as usize;
                eligible
                    .iter()
                    .enumerate()
                    .filter(|(_, &e)| e)
                    .nth(pick)
                    .map(|(w, _)| WayIdx(w as u32))
            }
        }
    }
}

/// A set-associative cache with pluggable replacement and per-line
/// metadata.
///
/// The structure is purely functional bookkeeping: it never initiates
/// memory traffic itself. Timing, bus protocol and inclusion enforcement
/// live in the callers.
///
/// # Examples
///
/// ```
/// use predllc_cache::{ReplacementKind, SetAssocCache};
/// use predllc_model::{CacheGeometry, LineAddr};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut c: SetAssocCache<u8> =
///     SetAssocCache::new(CacheGeometry::new(4, 2, 64)?, ReplacementKind::Lru);
/// c.fill(LineAddr::new(8), true, 7);
/// let e = c.lookup(LineAddr::new(8)).expect("just filled");
/// assert!(e.dirty);
/// assert_eq!(e.meta, 7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SetAssocCache<T> {
    geometry: CacheGeometry,
    /// Associativity, cached as `usize` for indexing.
    ways: usize,
    /// `sets - 1` when the set count is a power of two (the common case:
    /// the index is a mask instead of a division), `0` otherwise.
    set_mask: u64,
    /// Flat slot storage: `slots[set * ways + way]`.
    slots: Vec<Option<Entry<T>>>,
    /// Redundant flat index of the line address in each slot
    /// (`EMPTY_LINE` when free), kept in lockstep with `slots` — the
    /// match scan of a lookup walks 8 bytes per way instead of a whole
    /// `Option<Entry>`, which is what the simulator's hottest loop does
    /// millions of times.
    lines: Vec<u64>,
    replacer: Replacer,
}

/// The `lines` sentinel for an empty way.
///
/// `u64::MAX` *is* representable as a line address (a 1-byte-line
/// geometry maps `Address::new(u64::MAX)` to it), so every sentinel
/// scan is backed by a guarded fallback: probes for the literal value
/// take [`SetAssocCache::find_way_slow`], and a sentinel match in the
/// free-way scans is confirmed against the slot itself. Real workloads
/// never hit either branch.
const EMPTY_LINE: u64 = u64::MAX;

impl<T> SetAssocCache<T> {
    /// Creates an empty cache of the given geometry and replacement
    /// policy.
    pub fn new(geometry: CacheGeometry, replacement: ReplacementKind) -> Self {
        let sets = geometry.sets() as usize;
        let ways = geometry.ways() as usize;
        let set_mask = if geometry.sets().is_power_of_two() {
            u64::from(geometry.sets()) - 1
        } else {
            0
        };
        SetAssocCache {
            geometry,
            ways,
            set_mask,
            slots: (0..sets * ways).map(|_| None).collect(),
            lines: vec![EMPTY_LINE; sets * ways],
            replacer: Replacer::new(replacement, sets, ways),
        }
    }

    /// The cache's geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// The set a line address maps to, as a flat index.
    #[inline]
    fn set_index(&self, line: LineAddr) -> usize {
        if self.set_mask != 0 {
            (line.as_u64() & self.set_mask) as usize
        } else {
            self.geometry.set_index(line) as usize
        }
    }

    #[inline]
    fn slot_index(&self, set: SetIdx, way: WayIdx) -> usize {
        set.as_usize() * self.ways + way.as_usize()
    }

    /// The set a line address maps to.
    #[inline]
    pub fn set_of(&self, line: LineAddr) -> SetIdx {
        SetIdx(self.set_index(line) as u32)
    }

    /// Way index of `line` within its set, via the flat line index —
    /// with the guarded fallback for the sentinel-colliding address.
    #[inline]
    fn find_way(&self, base: usize, line: LineAddr) -> Option<usize> {
        let raw = line.as_u64();
        if raw == EMPTY_LINE {
            return self.find_way_slow(base, line);
        }
        self.lines[base..base + self.ways]
            .iter()
            .position(|&l| l == raw)
    }

    /// Slot-array scan for the one line address that collides with the
    /// empty-way sentinel.
    #[cold]
    fn find_way_slow(&self, base: usize, line: LineAddr) -> Option<usize> {
        self.slots[base..base + self.ways]
            .iter()
            .position(|e| e.as_ref().is_some_and(|e| e.line == line))
    }

    /// Finds the way holding `line`, if present.
    #[inline]
    pub fn way_of(&self, line: LineAddr) -> Option<WayIdx> {
        let base = self.set_index(line) * self.ways;
        self.find_way(base, line).map(|w| WayIdx(w as u32))
    }

    /// Returns the entry for `line` without touching replacement state.
    pub fn peek(&self, line: LineAddr) -> Option<&Entry<T>> {
        let base = self.set_index(line) * self.ways;
        let w = self.find_way(base, line)?;
        self.slots[base + w].as_ref()
    }

    /// Returns the entry for `line` mutably without touching replacement
    /// state.
    ///
    /// Used for metadata folding (e.g. merging an L1 victim's dirty bit
    /// into its L2 copy) that must not count as a use for recency.
    pub fn peek_mut(&mut self, line: LineAddr) -> Option<&mut Entry<T>> {
        let base = self.set_index(line) * self.ways;
        let w = self.find_way(base, line)?;
        self.slots[base + w].as_mut()
    }

    /// Looks up `line`, updating replacement recency on a hit.
    #[inline]
    pub fn lookup(&mut self, line: LineAddr) -> Option<&mut Entry<T>> {
        let base = self.set_index(line) * self.ways;
        let way = self.find_way(base, line)?;
        self.replacer.on_hit(base + way);
        self.slots[base + way].as_mut()
    }

    /// Whether `line` is present.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.peek(line).is_some()
    }

    /// First truly empty way at or after `base` — the sentinel scan,
    /// confirmed against the slot array (a stored line address equal to
    /// the sentinel must not read as a free way).
    fn free_way_idx(&self, base: usize) -> Option<usize> {
        let mut from = 0;
        while let Some(w) = self.lines[base + from..base + self.ways]
            .iter()
            .position(|&l| l == EMPTY_LINE)
        {
            let w = from + w;
            if self.slots[base + w].is_none() {
                return Some(w);
            }
            from = w + 1;
        }
        None
    }

    /// Returns a free way in `line`'s set, if any (lowest index first).
    pub fn free_way(&self, line: LineAddr) -> Option<WayIdx> {
        let base = self.set_index(line) * self.ways;
        self.free_way_idx(base).map(|w| WayIdx(w as u32))
    }

    /// Returns a free way in `set`, if any (lowest index first).
    pub fn free_way_in(&self, set: SetIdx) -> Option<WayIdx> {
        let base = set.as_usize() * self.ways;
        self.free_way_idx(base).map(|w| WayIdx(w as u32))
    }

    /// Inserts `line`, evicting if the set is full. Returns the evicted
    /// entry, if any.
    ///
    /// This is the "conventional cache" fill path used by the private
    /// levels, where the cache chooses its own victim internally. The LLC
    /// instead drives allocation explicitly via [`Self::install_at`] /
    /// [`Self::take`], because its evictions are a multi-slot protocol.
    ///
    /// # Panics
    ///
    /// Panics if the replacement policy fails to produce a victim for a
    /// full set (which would indicate a policy bug, not a caller error).
    pub fn fill(&mut self, line: LineAddr, dirty: bool, meta: T) -> Option<Entry<T>> {
        debug_assert!(!self.contains(line), "fill of already-present {line}");
        let set = self.set_index(line);
        let base = set * self.ways;
        let (way, evicted) = match self.free_way_in(SetIdx(set as u32)) {
            Some(way) => (way.as_usize(), None),
            None => {
                let way = self
                    .replacer
                    .choose_victim_all(set, self.ways)
                    .expect("replacement policy must pick a victim from a full mask")
                    .as_usize();
                let old = self.slots[base + way].take();
                self.replacer.on_invalidate(base + way);
                (way, old)
            }
        };
        self.slots[base + way] = Some(Entry { line, dirty, meta });
        self.lines[base + way] = line.as_u64();
        self.replacer.on_fill(base + way);
        evicted
    }

    /// Installs `line` at an explicit `(set, way)` slot, which must be
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if the slot is occupied.
    pub fn install_at(&mut self, set: SetIdx, way: WayIdx, line: LineAddr, dirty: bool, meta: T) {
        let idx = self.slot_index(set, way);
        let slot = &mut self.slots[idx];
        assert!(slot.is_none(), "install into occupied {set}/{way}");
        *slot = Some(Entry { line, dirty, meta });
        self.lines[idx] = line.as_u64();
        self.replacer.on_fill(idx);
    }

    /// Removes and returns the entry at `(set, way)`.
    pub fn take(&mut self, set: SetIdx, way: WayIdx) -> Option<Entry<T>> {
        let idx = self.slot_index(set, way);
        let e = self.slots[idx].take();
        if e.is_some() {
            self.lines[idx] = EMPTY_LINE;
            self.replacer.on_invalidate(idx);
        }
        e
    }

    /// Removes `line` if present, returning its entry.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<Entry<T>> {
        let set = self.set_of(line);
        let way = self.way_of(line)?;
        self.take(set, way)
    }

    /// Chooses a victim way in `set` among ways where `eligible` is true.
    ///
    /// Exposed for the LLC, which restricts eligibility to the active
    /// partition's ways minus lines that are already mid-eviction.
    pub fn choose_victim(&mut self, set: SetIdx, eligible: &[bool]) -> Option<WayIdx> {
        self.replacer
            .choose_victim(set.as_usize(), self.ways, eligible)
    }

    /// Chooses a victim with every way eligible and removes it from the
    /// cache — the conventional fill path's eviction, without the caller
    /// having to materialize an all-`true` eligibility mask. Returns
    /// `None` only when the set has an empty way (nothing to evict).
    pub fn evict_victim_in(&mut self, set: SetIdx) -> Option<Entry<T>> {
        if self.free_way_in(set).is_some() {
            return None;
        }
        let way = self
            .replacer
            .choose_victim_all(set.as_usize(), self.ways)
            .expect("replacement policy must pick a victim from a full set");
        self.take(set, way)
    }

    /// Direct access to the entry at `(set, way)`.
    pub fn entry(&self, set: SetIdx, way: WayIdx) -> Option<&Entry<T>> {
        self.slots[self.slot_index(set, way)].as_ref()
    }

    /// Direct mutable access to the entry at `(set, way)`.
    pub fn entry_mut(&mut self, set: SetIdx, way: WayIdx) -> Option<&mut Entry<T>> {
        let idx = self.slot_index(set, way);
        self.slots[idx].as_mut()
    }

    /// Marks `(set, way)` as recently used.
    pub fn touch(&mut self, set: SetIdx, way: WayIdx) {
        self.replacer.on_hit(self.slot_index(set, way));
    }

    /// Iterates over all occupied entries.
    pub fn iter(&self) -> impl Iterator<Item = &Entry<T>> {
        self.slots.iter().flatten()
    }

    /// Iterates over the occupied entries of one set.
    pub fn iter_set(&self, set: SetIdx) -> impl Iterator<Item = (WayIdx, &Entry<T>)> {
        let base = set.as_usize() * self.ways;
        self.slots[base..base + self.ways]
            .iter()
            .enumerate()
            .filter_map(|(w, e)| e.as_ref().map(|e| (WayIdx(w as u32), e)))
    }

    /// The number of occupied lines.
    pub fn occupancy(&self) -> usize {
        self.iter().count()
    }

    /// Removes every line, leaving the cache empty.
    pub fn clear(&mut self) {
        let sets = self.geometry.sets();
        let ways = self.geometry.ways();
        for s in 0..sets {
            for w in 0..ways {
                self.take(SetIdx(s), WayIdx(w));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache<u32> {
        SetAssocCache::new(CacheGeometry::new(2, 2, 64).unwrap(), ReplacementKind::Lru)
    }

    // Lines 0,2,4,… map to set 0 of a 2-set cache; 1,3,5,… to set 1.
    const L0: LineAddr = LineAddr::new(0);
    const L2: LineAddr = LineAddr::new(2);
    const L4: LineAddr = LineAddr::new(4);
    const L6: LineAddr = LineAddr::new(6);

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        assert!(!c.contains(L0));
        assert!(c.fill(L0, false, 1).is_none());
        assert!(c.contains(L0));
        assert_eq!(c.lookup(L0).unwrap().meta, 1);
    }

    #[test]
    fn fill_evicts_lru_when_set_full() {
        let mut c = small();
        c.fill(L0, false, 1);
        c.fill(L2, false, 2);
        c.lookup(L0); // L0 becomes MRU, L2 LRU
        let evicted = c.fill(L4, false, 3).expect("set was full");
        assert_eq!(evicted.line, L2);
        assert!(c.contains(L0) && c.contains(L4) && !c.contains(L2));
    }

    #[test]
    fn dirty_flag_travels_with_eviction() {
        let mut c = small();
        c.fill(L0, true, 0);
        c.fill(L2, false, 0);
        c.lookup(L2);
        let evicted = c.fill(L4, false, 0).unwrap();
        assert_eq!(evicted.line, L0);
        assert!(evicted.dirty);
    }

    #[test]
    fn sets_are_independent() {
        let mut c = small();
        c.fill(L0, false, 0);
        c.fill(LineAddr::new(1), false, 0);
        c.fill(L2, false, 0);
        c.fill(LineAddr::new(3), false, 0);
        assert_eq!(c.occupancy(), 4);
        // Filling set 0 again does not disturb set 1.
        c.fill(L4, false, 0);
        assert!(c.contains(LineAddr::new(1)) && c.contains(LineAddr::new(3)));
    }

    #[test]
    fn invalidate_removes_and_frees() {
        let mut c = small();
        c.fill(L0, true, 9);
        let e = c.invalidate(L0).unwrap();
        assert_eq!(e.meta, 9);
        assert!(!c.contains(L0));
        assert_eq!(c.free_way(L0), Some(WayIdx(0)));
        assert!(c.invalidate(L0).is_none());
    }

    #[test]
    fn install_take_roundtrip() {
        let mut c = small();
        let set = c.set_of(L0);
        c.install_at(set, WayIdx(1), L0, false, 5);
        assert_eq!(c.way_of(L0), Some(WayIdx(1)));
        let e = c.take(set, WayIdx(1)).unwrap();
        assert_eq!(e.line, L0);
        assert!(c.take(set, WayIdx(1)).is_none());
    }

    #[test]
    #[should_panic(expected = "install into occupied")]
    fn install_into_occupied_panics() {
        let mut c = small();
        let set = c.set_of(L0);
        c.install_at(set, WayIdx(0), L0, false, 0);
        c.install_at(set, WayIdx(0), L2, false, 0);
    }

    #[test]
    fn free_way_reports_lowest() {
        let mut c = small();
        assert_eq!(c.free_way(L0), Some(WayIdx(0)));
        c.fill(L0, false, 0);
        assert_eq!(c.free_way(L2), Some(WayIdx(1)));
        c.fill(L2, false, 0);
        assert_eq!(c.free_way(L4), None);
    }

    #[test]
    fn iter_set_reports_ways() {
        let mut c = small();
        c.fill(L0, false, 1);
        c.fill(L2, false, 2);
        let set0: Vec<_> = c.iter_set(SetIdx(0)).map(|(w, e)| (w, e.line)).collect();
        assert_eq!(set0, vec![(WayIdx(0), L0), (WayIdx(1), L2)]);
        assert_eq!(c.iter_set(SetIdx(1)).count(), 0);
    }

    #[test]
    fn clear_empties_everything() {
        let mut c = small();
        for l in [L0, L2, L4, L6] {
            c.fill(l, false, 0);
        }
        c.clear();
        assert_eq!(c.occupancy(), 0);
        assert_eq!(c.free_way(L0), Some(WayIdx(0)));
    }

    #[test]
    fn peek_does_not_disturb_recency() {
        let mut c = small();
        c.fill(L0, false, 0);
        c.fill(L2, false, 0);
        // peek L0 (no recency update) then fill: LRU victim must be L0.
        assert!(c.peek(L0).is_some());
        let evicted = c.fill(L4, false, 0).unwrap();
        assert_eq!(evicted.line, L0);
    }

    #[test]
    fn sentinel_colliding_line_address_behaves_like_any_other() {
        // `u64::MAX` is a representable line address (e.g. under a
        // 1-byte-line geometry); it must not read as an empty way.
        let mut c: SetAssocCache<u8> =
            SetAssocCache::new(CacheGeometry::new(2, 2, 1).unwrap(), ReplacementKind::Lru);
        let max = LineAddr::new(u64::MAX);
        assert!(!c.contains(max));
        assert!(c.lookup(max).is_none());
        assert!(c.fill(max, true, 9).is_none());
        assert!(c.contains(max));
        assert_eq!(c.lookup(max).unwrap().meta, 9);
        // Its way is occupied: the free-way scan must skip it, and a
        // second fill in the same set must not clobber it.
        let way = c.way_of(max).unwrap();
        assert_ne!(c.free_way(max), Some(way));
        let other = LineAddr::new(u64::MAX - 2); // same set (odd), 2 sets
        c.fill(other, false, 4);
        assert!(c.contains(max) && c.contains(other));
        assert_eq!(c.free_way(max), None);
        let e = c.invalidate(max).unwrap();
        assert_eq!((e.meta, e.dirty), (9, true));
        assert!(!c.contains(max) && c.contains(other));
        assert_eq!(c.free_way(max), Some(way));
    }

    #[test]
    fn non_power_of_two_sets_index_by_modulo() {
        let mut c: SetAssocCache<()> =
            SetAssocCache::new(CacheGeometry::new(3, 1, 64).unwrap(), ReplacementKind::Lru);
        assert_eq!(c.set_of(LineAddr::new(7)), SetIdx(1));
        c.fill(LineAddr::new(7), false, ());
        assert!(c.contains(LineAddr::new(7)));
        assert_eq!(c.way_of(LineAddr::new(4)), None);
    }

    /// The inlined replacer must reproduce the boxed policies' victim
    /// sequences exactly — same stamps, same rotation, same xorshift
    /// stream.
    #[test]
    fn inlined_replacers_match_boxed_policies() {
        for kind in [
            ReplacementKind::Lru,
            ReplacementKind::Fifo,
            ReplacementKind::RoundRobin,
            ReplacementKind::Random { seed: 99 },
        ] {
            let g = CacheGeometry::new(4, 4, 64).unwrap();
            let mut cache: SetAssocCache<()> = SetAssocCache::new(g, kind);
            let mut boxed = kind.build(g);
            // Drive an identical access pattern through both.
            let mut x = 12345u64;
            for _ in 0..500 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let set = SetIdx((x >> 33) as u32 % 4);
                let way = WayIdx((x >> 20) as u32 % 4);
                match x % 4 {
                    0 => {
                        cache.replacer.on_fill(cache.slot_index(set, way));
                        boxed.on_fill(set, way);
                    }
                    1 => {
                        cache.touch(set, way);
                        boxed.on_hit(set, way);
                    }
                    2 => {
                        cache.replacer.on_invalidate(cache.slot_index(set, way));
                        boxed.on_invalidate(set, way);
                    }
                    _ => {
                        let mask: Vec<bool> = (0..4).map(|w| (x >> w) & 1 == 1).collect();
                        assert_eq!(
                            cache.choose_victim(set, &mask),
                            boxed.choose_victim(set, &mask),
                            "victim divergence under {kind:?}"
                        );
                    }
                }
            }
        }
    }
}
