//! Deprecated home of the DRAM backing-store model.
//!
//! The memory system now lives in the `predllc-dram` crate behind the
//! [`MemoryBackend`](predllc_dram::MemoryBackend) trait; the seed's
//! fixed-latency model became [`predllc_dram::FixedLatency`]. This
//! module re-exports it under the old names so seed-era code keeps
//! compiling — see `MIGRATION.md` at the repository root.

/// Traffic counters for the fixed-latency DRAM model (re-export of
/// [`predllc_dram::DramStats`]).
pub use predllc_dram::DramStats;

/// The seed's fixed-latency DRAM, now [`predllc_dram::FixedLatency`].
#[deprecated(
    since = "0.3.0",
    note = "use predllc_dram::FixedLatency (or another predllc_dram::MemoryBackend)"
)]
pub type Dram = predllc_dram::FixedLatency;

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use predllc_model::{Cycles, LineAddr};

    #[test]
    fn deprecated_alias_preserves_the_seed_api() {
        let mut d = Dram::default();
        assert_eq!(Dram::DEFAULT_LATENCY, Cycles::new(30));
        assert_eq!(d.latency(), Cycles::new(30));
        assert_eq!(d.fetch(LineAddr::new(4)), Cycles::new(30));
        d.write_back(LineAddr::new(4));
        assert_eq!(
            d.stats(),
            DramStats {
                reads: 1,
                writes: 1
            }
        );
        d.reset_stats();
        assert_eq!(d.stats(), DramStats::default());
    }
}
