//! The DRAM backing-store model.
//!
//! The paper's system model lets the LLC "interface with a DRAM directly"
//! and requires a miss fill to complete *within the requester's slot*
//! (§3), i.e. the TDM slot width is provisioned to cover a worst-case DRAM
//! access. The DRAM model is therefore purely an accounting device: it
//! charges a fixed latency (checked against the slot budget by the
//! simulator configuration) and counts traffic.

use predllc_model::{Cycles, LineAddr};

/// A fixed-latency DRAM with access counters.
///
/// # Examples
///
/// ```
/// use predllc_cache::Dram;
/// use predllc_model::{Cycles, LineAddr};
///
/// let mut dram = Dram::new(Cycles::new(30));
/// dram.fetch(LineAddr::new(4));
/// dram.write_back(LineAddr::new(4));
/// assert_eq!(dram.stats().reads, 1);
/// assert_eq!(dram.stats().writes, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    latency: Cycles,
    stats: DramStats,
}

/// Traffic counters for the DRAM model.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DramStats {
    /// Number of line fetches (LLC miss fills).
    pub reads: u64,
    /// Number of line write-backs (dirty LLC evictions).
    pub writes: u64,
}

impl Dram {
    /// The paper-calibrated default access latency: 30 cycles, comfortably
    /// inside the 50-cycle slot together with the LLC tag lookup.
    pub const DEFAULT_LATENCY: Cycles = Cycles::new(30);

    /// Creates a DRAM with the given fixed access latency.
    pub fn new(latency: Cycles) -> Self {
        Dram {
            latency,
            stats: DramStats::default(),
        }
    }

    /// The fixed access latency.
    pub fn latency(&self) -> Cycles {
        self.latency
    }

    /// Fetches a line (an LLC miss fill), returning the access latency.
    pub fn fetch(&mut self, _line: LineAddr) -> Cycles {
        self.stats.reads += 1;
        self.latency
    }

    /// Writes back a dirty line evicted from the LLC, returning the access
    /// latency.
    pub fn write_back(&mut self, _line: LineAddr) -> Cycles {
        self.stats.writes += 1;
        self.latency
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Resets the traffic counters.
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
    }
}

impl Default for Dram {
    fn default() -> Self {
        Dram::new(Dram::DEFAULT_LATENCY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_traffic() {
        let mut d = Dram::default();
        assert_eq!(d.latency(), Cycles::new(30));
        for i in 0..3 {
            assert_eq!(d.fetch(LineAddr::new(i)), Cycles::new(30));
        }
        d.write_back(LineAddr::new(0));
        assert_eq!(
            d.stats(),
            DramStats {
                reads: 3,
                writes: 1
            }
        );
        d.reset_stats();
        assert_eq!(d.stats(), DramStats::default());
    }
}
