//! # predllc-obs — zero-dependency observability for the predllc stack
//!
//! Three small, composable pieces, threaded through every layer of the
//! workspace (engine, executor, experiment service, fleet):
//!
//! * [`metrics`] — a metric **registry** of counters, gauges and
//!   log-bucketed timing histograms, rendered in the Prometheus text
//!   exposition format (`text/plain; version=0.0.4`). The histogram
//!   bucket scheme is the same log-linear HDR-style layout as
//!   `predllc_core`'s `LatencyHistogram` (8 sub-buckets per power-of-two
//!   octave), applied to wall-clock nanoseconds instead of simulated
//!   cycles.
//! * [`trace`] — structured tracing: [`TraceEvent`] records with span
//!   begin/end, collected into per-thread bounded ring buffers (the
//!   recording path never contends with other recording threads), keyed
//!   by 128-bit [`TraceId`]s that propagate coordinator → worker over
//!   the `X-Predllc-Trace` HTTP header.
//! * [`expo`] — an in-tree validator for the exposition format, so CI
//!   can prove every `/metrics` line parses without an external
//!   Prometheus.
//!
//! The cardinal rule, inherited from the repo's bit-identical-results
//! invariant: observability **reads** time, it never feeds it back into
//! simulation. Nothing in this crate can influence what a simulator
//! computes — disabled instrumentation compiles down to a single
//! predictable branch on the hot paths that carry it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expo;
pub mod metrics;
pub mod trace;

pub use metrics::{Counter, Gauge, HistogramSnapshot, Registry, TimingHistogram};
pub use trace::{
    fields, render_jsonl, EventKind, FieldValue, SpanGuard, TraceCtx, TraceEvent, TraceId, Tracer,
    TRACE_HEADER,
};
