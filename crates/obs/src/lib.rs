//! # predllc-obs — zero-dependency observability for the predllc stack
//!
//! Three small, composable pieces, threaded through every layer of the
//! workspace (engine, executor, experiment service, fleet):
//!
//! * [`metrics`] — a metric **registry** of counters, gauges and
//!   log-bucketed timing histograms, rendered in the Prometheus text
//!   exposition format (`text/plain; version=0.0.4`). The histogram
//!   bucket scheme is the same log-linear HDR-style layout as
//!   `predllc_core`'s `LatencyHistogram` (8 sub-buckets per power-of-two
//!   octave), applied to wall-clock nanoseconds instead of simulated
//!   cycles.
//! * [`trace`] — structured tracing: [`TraceEvent`] records with span
//!   begin/end, collected into per-thread bounded ring buffers (the
//!   recording path never contends with other recording threads), keyed
//!   by 128-bit [`TraceId`]s that propagate coordinator → worker over
//!   the `X-Predllc-Trace` HTTP header.
//! * [`expo`] — an in-tree validator **and parser** for the exposition
//!   format, so CI can prove every `/metrics` line parses without an
//!   external Prometheus, and the fleet coordinator can scrape its
//!   workers' expositions back into structured data.
//!
//! On top of those, the continuous-monitoring layer:
//!
//! * [`series`] — a [`Collector`] thread snapshotting a registry at a
//!   fixed interval into bounded per-series ring buffers
//!   ([`SeriesStore`]): local time-series history with zero external
//!   storage.
//! * [`slo`] — declarative alert rules (threshold, rate-of-change,
//!   multi-window burn-rate) evaluated on every collector tick, with
//!   firing/pending/resolved state machines and since-timestamps.
//! * [`dash`] — a single-page, self-contained HTML dashboard (inline
//!   SVG sparklines, no scripts) rendered straight from the store.
//!
//! The cardinal rule, inherited from the repo's bit-identical-results
//! invariant: observability **reads** time, it never feeds it back into
//! simulation. Nothing in this crate can influence what a simulator
//! computes — disabled instrumentation compiles down to a single
//! predictable branch on the hot paths that carry it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dash;
pub mod expo;
pub mod metrics;
pub mod series;
pub mod slo;
pub mod trace;

pub use metrics::{Counter, Gauge, HistogramSnapshot, Registry, TimingHistogram};
pub use series::{Collector, CollectorConfig, SampleValue, SeriesHistory, SeriesStore};
pub use slo::{AlertState, AlertStatus, Compare, Condition, Rule, SloRuntime};
pub use trace::{
    fields, render_jsonl, EventKind, FieldValue, SpanGuard, TraceCtx, TraceEvent, TraceId, Tracer,
    TRACE_HEADER,
};
