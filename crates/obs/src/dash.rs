//! The in-tree dashboard: one self-contained HTML page — inline CSS,
//! inline SVG sparklines, zero scripts, zero external references — so
//! `GET /dashboard` works from any browser (or `curl`) against an
//! air-gapped deployment. The renderer is a pure function from
//! collected data to a `String`, which keeps it unit-testable without
//! a server.

use crate::series::{SampleValue, SeriesHistory};
use crate::slo::AlertStatus;

/// Sparkline viewBox width.
const SPARK_W: f64 = 240.0;
/// Sparkline viewBox height.
const SPARK_H: f64 = 48.0;

/// Renders the dashboard page: an alert table (when any rules exist)
/// followed by one sparkline card per series. `now_ms` is the
/// store-relative timestamp the histories were taken at.
pub fn render_dashboard(
    title: &str,
    now_ms: u64,
    series: &[SeriesHistory],
    alerts: &[AlertStatus],
) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
    out.push_str(&format!("<title>{}</title>\n", esc(title)));
    out.push_str("<style>\n");
    out.push_str(concat!(
        "body{font-family:monospace;background:#101418;color:#d8dee6;margin:1.5rem}\n",
        "h1{font-size:1.2rem}h2{font-size:1rem;margin-top:1.5rem}\n",
        "table{border-collapse:collapse;margin:.5rem 0}\n",
        "td,th{border:1px solid #2c333b;padding:.25rem .6rem;text-align:left}\n",
        ".firing{color:#ff6b6b;font-weight:bold}.pending{color:#ffc14d}\n",
        ".resolved{color:#7ec8a9}.inactive{color:#6b7683}\n",
        ".cards{display:flex;flex-wrap:wrap;gap:.75rem}\n",
        ".card{border:1px solid #2c333b;padding:.5rem;min-width:260px}\n",
        ".card .k{font-size:.75rem;color:#9aa7b4;word-break:break-all}\n",
        ".card .v{font-size:.9rem}\n",
        "svg{display:block;margin-top:.25rem}\n",
        "polyline{fill:none;stroke:#5ab0f0;stroke-width:1.5}\n",
    ));
    out.push_str("</style>\n</head>\n<body>\n");
    out.push_str(&format!("<h1>{}</h1>\n", esc(title)));
    out.push_str(&format!(
        "<p>generated at t={now_ms}ms · {} series · {} alert rules</p>\n",
        series.len(),
        alerts.len()
    ));
    if !alerts.is_empty() {
        out.push_str("<h2>Alerts</h2>\n<table>\n");
        out.push_str(
            "<tr><th>rule</th><th>state</th><th>since</th><th>series</th><th>value</th></tr>\n",
        );
        for a in alerts {
            let state = a.state.as_str();
            let value = a.value.map(format_value).unwrap_or_else(|| "–".to_string());
            out.push_str(&format!(
                "<tr><td>{}</td><td class=\"{state}\">{state}</td><td>{}ms</td><td>{}</td><td>{}</td></tr>\n",
                esc(&a.rule),
                a.since_ms,
                esc(&a.series),
                esc(&value),
            ));
        }
        out.push_str("</table>\n");
    }
    out.push_str("<h2>Series</h2>\n<div class=\"cards\">\n");
    for s in series {
        out.push_str("<div class=\"card\">\n");
        out.push_str(&format!("<div class=\"k\">{}</div>\n", esc(&s.key)));
        let values: Vec<f64> = s.samples.iter().map(|&(_, v)| v.as_f64()).collect();
        let last = s.samples.last();
        let summary = match (values.iter().cloned().reduce(f64::min), last) {
            (Some(min), Some(&(t, v))) => {
                let max = values.iter().cloned().fold(f64::MIN, f64::max);
                format!(
                    "last {} @ {t}ms · min {} · max {}",
                    format_sample(v),
                    format_value(min),
                    format_value(max)
                )
            }
            _ => "no samples in window".to_string(),
        };
        out.push_str(&format!("<div class=\"v\">{}</div>\n", esc(&summary)));
        out.push_str(&sparkline(&s.samples));
        out.push_str("</div>\n");
    }
    out.push_str("</div>\n</body>\n</html>\n");
    out
}

/// One inline-SVG sparkline over `(t_ms, value)` samples. Always emits
/// an `<svg>` element — an empty window renders an empty frame rather
/// than collapsing the card.
fn sparkline(samples: &[(u64, SampleValue)]) -> String {
    let mut out = format!(
        "<svg viewBox=\"0 0 {SPARK_W} {SPARK_H}\" width=\"{SPARK_W}\" height=\"{SPARK_H}\" role=\"img\">"
    );
    if !samples.is_empty() {
        let t0 = samples.first().map(|&(t, _)| t).unwrap_or(0) as f64;
        let t1 = samples.last().map(|&(t, _)| t).unwrap_or(0) as f64;
        let values: Vec<f64> = samples.iter().map(|&(_, v)| v.as_f64()).collect();
        let vmin = values.iter().cloned().fold(f64::MAX, f64::min);
        let vmax = values.iter().cloned().fold(f64::MIN, f64::max);
        let tspan = if t1 > t0 { t1 - t0 } else { 1.0 };
        let vspan = if vmax > vmin { vmax - vmin } else { 1.0 };
        let pad = 3.0;
        let points: Vec<String> = samples
            .iter()
            .map(|&(t, v)| {
                let x = pad + (t as f64 - t0) / tspan * (SPARK_W - 2.0 * pad);
                // A flat series draws mid-height, not on the floor.
                let norm = if vmax > vmin {
                    (v.as_f64() - vmin) / vspan
                } else {
                    0.5
                };
                let y = SPARK_H - pad - norm * (SPARK_H - 2.0 * pad);
                format!("{x:.1},{y:.1}")
            })
            .collect();
        if points.len() == 1 {
            // A single sample gets a visible dot.
            let xy = points[0].split_once(',').expect("formatted above");
            out.push_str(&format!(
                "<circle cx=\"{}\" cy=\"{}\" r=\"2\" fill=\"#5ab0f0\"/>",
                xy.0, xy.1
            ));
        } else {
            out.push_str(&format!("<polyline points=\"{}\"/>", points.join(" ")));
        }
    }
    out.push_str("</svg>\n");
    out
}

/// Formats a sample for display: exact integers stay exact.
fn format_sample(v: SampleValue) -> String {
    match v {
        SampleValue::U64(v) => v.to_string(),
        SampleValue::F64(f) => format_value(f),
    }
}

/// Formats an `f64` tersely (integers without the `.0`).
fn format_value(v: f64) -> String {
    if v.is_finite() && v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

/// Escapes text for HTML element content and attribute values.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slo::AlertState;

    fn histories() -> Vec<SeriesHistory> {
        vec![
            SeriesHistory {
                key: "predllc_jobs_done".to_string(),
                samples: vec![
                    (0, SampleValue::U64(1)),
                    (100, SampleValue::U64(4)),
                    (200, SampleValue::U64(9)),
                ],
            },
            SeriesHistory {
                key: "predllc_rtt_p99{worker=\"<w0>\"}".to_string(),
                samples: vec![(150, SampleValue::F64(123.5))],
            },
            SeriesHistory {
                key: "predllc_stale".to_string(),
                samples: vec![],
            },
        ]
    }

    #[test]
    fn dashboard_is_self_contained_html_with_svg_per_series() {
        let alerts = vec![AlertStatus {
            rule: "queue-depth".to_string(),
            series: "predllc_jobs_queued".to_string(),
            state: AlertState::Firing,
            since_ms: 42,
            value: Some(120.0),
        }];
        let html = render_dashboard("predllc", 250, &histories(), &alerts);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.ends_with("</html>\n"));
        assert_eq!(html.matches("<svg").count(), 3, "one sparkline per series");
        assert!(html.contains("<polyline points="), "multi-sample polyline");
        assert!(html.contains("<circle"), "single-sample dot");
        assert!(html.contains("class=\"firing\""));
        assert!(html.contains("queue-depth"));
        assert!(html.contains("since"));
        assert!(html.contains("no samples in window"), "stale series card");
        // Self-contained: no scripts, no external fetches.
        assert!(!html.contains("<script"));
        assert!(!html.contains("http://"));
        assert!(!html.contains("https://"));
    }

    #[test]
    fn html_escapes_keys_and_titles() {
        let html = render_dashboard("a<b>&\"c\"", 0, &histories(), &[]);
        assert!(html.contains("a&lt;b&gt;&amp;&quot;c&quot;"));
        assert!(html.contains("predllc_rtt_p99{worker=&quot;&lt;w0&gt;&quot;}"));
        assert!(!html.contains("<w0>"));
    }

    #[test]
    fn flat_and_empty_series_render_without_degenerate_geometry() {
        let flat = vec![SeriesHistory {
            key: "flat".to_string(),
            samples: vec![(0, SampleValue::U64(7)), (100, SampleValue::U64(7))],
        }];
        let html = render_dashboard("t", 100, &flat, &[]);
        // Flat series: mid-height line, no NaN coordinates.
        assert!(html.contains("<polyline"));
        assert!(!html.contains("NaN"));
        let empty = vec![SeriesHistory {
            key: "empty".to_string(),
            samples: vec![],
        }];
        let html = render_dashboard("t", 0, &empty, &[]);
        assert!(html.contains("<svg"), "empty frame still renders");
        assert!(!html.contains("NaN"));
    }
}
