//! The metric registry: counters, gauges and log-bucketed timing
//! histograms, rendered in the Prometheus text exposition format.
//!
//! Handles ([`Counter`], [`Gauge`], [`TimingHistogram`]) are cheap
//! `Arc` clones of the registered cell, so the struct that *records* a
//! metric and the [`Registry`] that *renders* it share storage without
//! any lookup on the hot path. Registration is idempotent: asking for
//! an already-registered name returns a handle to the existing cell, so
//! layers can re-declare the metrics they touch without coordination.
//!
//! Counter and gauge updates are sequentially consistent, and they are
//! deliberately cheap enough to leave on all the time; the histograms
//! use relaxed bucket counters (they are recorded from sampled or
//! per-request call sites, never from the simulator's inner loop).
//!
//! # Snapshot consistency
//!
//! Layers that maintain *derived* counters (e.g. "every registered job
//! came from a cache miss") follow a write discipline — increment the
//! source counter before the derived one, decrement a state gauge
//! before incrementing its successor — and read snapshots in the
//! reverse order. With sequentially consistent operations on both
//! sides, a snapshot can observe a momentarily *smaller* derived value,
//! but never a torn pair (a derived count without its source).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^GROUP_BITS` linear sub-buckets — the same scheme as
/// `predllc_core`'s `LatencyHistogram`, here over nanoseconds.
const GROUP_BITS: u32 = 3;
/// Sub-buckets per octave.
const SUB: u64 = 1 << GROUP_BITS;
/// Total bucket count (group 0 holds the exact values `0..SUB`).
const BUCKETS: usize = (64 - GROUP_BITS as usize + 1) * SUB as usize;

/// The bucket a value is counted in.
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let group = (msb - GROUP_BITS + 1) as usize;
    let offset = ((v >> (msb - GROUP_BITS)) - SUB) as usize;
    group * SUB as usize + offset
}

/// The largest value that maps to bucket `i` (inclusive) — the
/// histogram's `le` bound for that bucket.
fn bucket_high(i: usize) -> u64 {
    if i < SUB as usize {
        return i as u64;
    }
    let group = (i / SUB as usize) as u32;
    let offset = (i % SUB as usize) as u64;
    let shift = group - 1;
    ((SUB + offset) << shift) + ((1u64 << shift) - 1)
}

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::SeqCst);
    }

    /// Overwrites the value. This exists for *mirrors*: a federation
    /// layer (the fleet coordinator) re-exporting a counter it scraped
    /// from another process sets the observed value outright instead of
    /// counting locally. Never mix `set` with `inc`/`add` on the same
    /// series — monotonicity is then the upstream's business, not ours.
    pub fn set(&self, v: u64) {
        self.cell.store(v, Ordering::SeqCst);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::SeqCst)
    }
}

/// A gauge: a value that can go up, down, or be set outright.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Adds one.
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::SeqCst);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.cell.fetch_sub(1, Ordering::SeqCst);
    }

    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.cell.store(v, Ordering::SeqCst);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::SeqCst)
    }
}

/// Interior of a [`TimingHistogram`]: lock-free atomic bucket counters.
#[derive(Debug)]
struct HistogramCell {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramCell {
    fn default() -> Self {
        HistogramCell {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// A log-bucketed histogram of wall-clock durations in nanoseconds.
///
/// Same bucket layout as the simulator's `LatencyHistogram` (values
/// below 8 get exact buckets; every power-of-two octave above splits
/// into 8 linear sub-buckets, relative quantile error ≤ 12.5%), but
/// with atomic counters so many threads record concurrently without a
/// lock. Recording is O(1): one bucket increment plus the count/sum/
/// extreme updates.
#[derive(Debug, Clone, Default)]
pub struct TimingHistogram {
    cell: Arc<HistogramCell>,
}

/// A point-in-time copy of a [`TimingHistogram`]'s aggregates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Recorded samples.
    pub count: u64,
    /// Sum of all recorded nanosecond values.
    pub sum: u64,
    /// Exact smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
    /// Exact largest recorded value (0 when empty).
    pub max: u64,
    /// `(inclusive_high_bound, count)` for every non-empty bucket, in
    /// increasing bound order.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// The value at percentile `p` (0–100), resolved to a bucket's high
    /// bound; the 100th percentile is the exact recorded maximum.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if p >= 100.0 {
            return self.max;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(high, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return high.min(self.max);
            }
        }
        self.max
    }
}

impl TimingHistogram {
    /// Records one duration.
    pub fn record(&self, d: Duration) {
        self.record_ns(duration_ns(d));
    }

    /// Records one raw nanosecond value.
    pub fn record_ns(&self, ns: u64) {
        let c = &*self.cell;
        c.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(ns, Ordering::Relaxed);
        c.min.fetch_min(ns, Ordering::Relaxed);
        c.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Recorded samples so far.
    pub fn count(&self) -> u64 {
        self.cell.count.load(Ordering::Relaxed)
    }

    /// Copies the aggregates out.
    ///
    /// Recording is not one atomic step (bucket, then count), so a
    /// snapshot racing a writer can observe a bucket increment whose
    /// count increment has not landed yet. The count is clamped up to
    /// the bucket total so the snapshot is always internally
    /// consistent: cumulative bucket counts never exceed `count`, and
    /// a render mid-write still passes the exposition validator.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let c = &*self.cell;
        let buckets: Vec<(u64, u64)> = c
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_high(i), n))
            })
            .collect();
        let total: u64 = buckets.iter().map(|&(_, n)| n).sum();
        HistogramSnapshot {
            count: c.count.load(Ordering::Relaxed).max(total),
            sum: c.sum.load(Ordering::Relaxed),
            min: c.min.load(Ordering::Relaxed),
            max: c.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// `Duration` → saturated nanoseconds.
fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// What kind of metric a family holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

/// One registered value cell (a labelled series within a family).
#[derive(Debug, Clone)]
enum Value {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(TimingHistogram),
}

/// A metric family: one name/help/type, one or more labelled series.
#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    kind: Kind,
    /// `(label_key, label_value)` pairs per series; empty for the
    /// unlabelled singleton series.
    series: Vec<(Vec<(String, String)>, Value)>,
}

/// One family copied out of the registry lock: `(name, help, kind,
/// series)`, with each series carrying its label pairs.
type FamilySnapshot = (String, String, Kind, Vec<(Vec<(String, String)>, Value)>);

/// The metric registry: an ordered set of families, rendered in
/// registration order as Prometheus text exposition.
///
/// All registration methods are idempotent on `(name, labels)`: the
/// first call creates the cell, later calls return a handle to it.
/// Registering one name as two different kinds panics — that is a
/// programming error, not a runtime condition.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers (or finds) an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        match self.series(name, help, Kind::Counter, &[], || {
            Value::Counter(Counter::default())
        }) {
            Value::Counter(c) => c,
            _ => unreachable!("kind was checked"),
        }
    }

    /// Registers (or finds) a labelled counter series.
    pub fn counter_with(&self, name: &str, help: &str, key: &str, value: &str) -> Counter {
        let labels = [(key, value)];
        match self.series(name, help, Kind::Counter, &labels, || {
            Value::Counter(Counter::default())
        }) {
            Value::Counter(c) => c,
            _ => unreachable!("kind was checked"),
        }
    }

    /// Registers (or finds) a counter series under an arbitrary label
    /// set — the fleet aggregation path, where a scraped series keeps
    /// its original labels plus a `worker` label.
    pub fn counter_labeled(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.series(name, help, Kind::Counter, labels, || {
            Value::Counter(Counter::default())
        }) {
            Value::Counter(c) => c,
            _ => unreachable!("kind was checked"),
        }
    }

    /// Registers (or finds) an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        match self.series(name, help, Kind::Gauge, &[], || {
            Value::Gauge(Gauge::default())
        }) {
            Value::Gauge(g) => g,
            _ => unreachable!("kind was checked"),
        }
    }

    /// Registers (or finds) a gauge series under an arbitrary label
    /// set (see [`Registry::counter_labeled`]).
    pub fn gauge_labeled(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.series(name, help, Kind::Gauge, labels, || {
            Value::Gauge(Gauge::default())
        }) {
            Value::Gauge(g) => g,
            _ => unreachable!("kind was checked"),
        }
    }

    /// Registers (or finds) an unlabelled timing histogram.
    pub fn histogram(&self, name: &str, help: &str) -> TimingHistogram {
        match self.series(name, help, Kind::Histogram, &[], || {
            Value::Histogram(TimingHistogram::default())
        }) {
            Value::Histogram(h) => h,
            _ => unreachable!("kind was checked"),
        }
    }

    /// Registers (or finds) a labelled timing-histogram series —
    /// per-endpoint request latencies, per-worker RTTs, per-stage
    /// engine timings.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        key: &str,
        value: &str,
    ) -> TimingHistogram {
        let labels = [(key, value)];
        match self.series(name, help, Kind::Histogram, &labels, || {
            Value::Histogram(TimingHistogram::default())
        }) {
            Value::Histogram(h) => h,
            _ => unreachable!("kind was checked"),
        }
    }

    fn series(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Value,
    ) -> Value {
        assert!(valid_name(name), "invalid metric name '{name}'");
        for (k, _) in labels {
            assert!(valid_name(k), "invalid label name '{k}'");
        }
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let mut families = self.families.lock().unwrap();
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert!(
                    f.kind == kind,
                    "metric '{name}' registered as both {} and {}",
                    f.kind.as_str(),
                    kind.as_str()
                );
                f
            }
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    series: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some((_, v)) = family.series.iter().find(|(l, _)| *l == labels) {
            return v.clone();
        }
        let v = make();
        family.series.push((labels, v.clone()));
        v
    }

    /// The declared kind of family `name` (`"counter"` / `"gauge"` /
    /// `"histogram"`), or `None` if it has never been registered. Lets
    /// a mirror layer skip incompatible scraped families instead of
    /// tripping the registry's kind-conflict panic.
    pub fn family_kind(&self, name: &str) -> Option<&'static str> {
        self.families
            .lock()
            .unwrap()
            .iter()
            .find(|f| f.name == name)
            .map(|f| f.kind.as_str())
    }

    /// Copies the family list out of the lock: `(name, help, kind,
    /// series)` in registration order. The [`Value`]s are `Arc` clones
    /// of the live cells, so reading them afterwards sees current data
    /// without holding the registry lock.
    fn snapshot_families(&self) -> Vec<FamilySnapshot> {
        self.families
            .lock()
            .unwrap()
            .iter()
            .map(|f| (f.name.clone(), f.help.clone(), f.kind, f.series.clone()))
            .collect()
    }

    /// A point-in-time copy of every registered series' value, in
    /// registration order — the feed for the time-series
    /// [`Collector`](crate::series::Collector).
    pub fn snapshot_series(&self) -> Vec<SeriesSnapshot> {
        let mut out = Vec::new();
        for (name, _help, _kind, series) in self.snapshot_families() {
            for (labels, value) in series {
                let value = match value {
                    Value::Counter(c) => SnapshotValue::Counter(c.get()),
                    Value::Gauge(g) => SnapshotValue::Gauge(g.get()),
                    Value::Histogram(h) => SnapshotValue::Histogram(h.snapshot()),
                };
                out.push(SeriesSnapshot {
                    name: name.clone(),
                    labels,
                    value,
                });
            }
        }
        out
    }

    /// Renders every family as Prometheus text exposition (`# HELP` /
    /// `# TYPE` then the samples), in registration order. The output
    /// always ends with a newline.
    ///
    /// The family list is snapshotted first and the text is built
    /// outside the registry lock, so a slow scrape (or a huge
    /// exposition) never stalls threads recording metrics.
    pub fn render(&self) -> String {
        let families = self.snapshot_families();
        let mut out = String::new();
        for (name, help, kind, series) in &families {
            out.push_str(&format!("# HELP {name} {}\n", escape_help(help)));
            out.push_str(&format!("# TYPE {name} {}\n", kind.as_str()));
            for (labels, value) in series {
                match value {
                    Value::Counter(c) => {
                        out.push_str(&sample(name, labels, &[], c.get()));
                    }
                    Value::Gauge(g) => {
                        out.push_str(&sample(name, labels, &[], g.get()));
                    }
                    Value::Histogram(h) => {
                        let snap = h.snapshot();
                        let mut cumulative = 0u64;
                        for &(high, n) in &snap.buckets {
                            cumulative += n;
                            out.push_str(&sample_le(name, labels, &high.to_string(), cumulative));
                        }
                        out.push_str(&sample_le(name, labels, "+Inf", snap.count));
                        out.push_str(&sample(&format!("{name}_sum"), labels, &[], snap.sum));
                        out.push_str(&sample(&format!("{name}_count"), labels, &[], snap.count));
                    }
                }
            }
        }
        if !out.ends_with('\n') {
            out.push('\n');
        }
        out
    }
}

/// A point-in-time view of one labelled series, as returned by
/// [`Registry::snapshot_series`].
#[derive(Debug, Clone)]
pub struct SeriesSnapshot {
    /// The family name.
    pub name: String,
    /// The series' label pairs (empty for the unlabelled singleton).
    pub labels: Vec<(String, String)>,
    /// The value at snapshot time.
    pub value: SnapshotValue,
}

impl SeriesSnapshot {
    /// The series' exposition-style key: `name` or
    /// `name{k="v",...}` with label values escaped exactly as
    /// [`Registry::render`] escapes them.
    pub fn key(&self) -> String {
        series_key(&self.name, &self.labels)
    }
}

/// The value half of a [`SeriesSnapshot`].
#[derive(Debug, Clone)]
pub enum SnapshotValue {
    /// A counter reading.
    Counter(u64),
    /// A gauge reading.
    Gauge(u64),
    /// A full histogram snapshot.
    Histogram(HistogramSnapshot),
}

/// Renders a series key (`name` or `name{k="v",...}`) with the same
/// label escaping as the exposition renderer.
pub fn series_key(name: &str, labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{name}{{{}}}", pairs.join(","))
}

/// One `name{labels} value` sample line.
fn sample(name: &str, labels: &[(String, String)], extra: &[(&str, &str)], value: u64) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    pairs.extend(
        extra
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))),
    );
    if pairs.is_empty() {
        format!("{name} {value}\n")
    } else {
        format!("{name}{{{}}} {value}\n", pairs.join(","))
    }
}

/// One `name_bucket{...,le="bound"} value` line.
fn sample_le(name: &str, labels: &[(String, String)], le: &str, value: u64) -> String {
    sample(&format!("{name}_bucket"), labels, &[("le", le)], value)
}

/// Whether `name` is a legal Prometheus metric/label name.
fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Escapes a HELP line (`\` and newlines).
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value (`\`, `"` and newlines).
fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_scheme_matches_the_core_histogram_layout() {
        // The first 8 values get exact buckets.
        for v in 0..8u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_high(v as usize), v);
        }
        // Every value lands in a bucket whose bounds contain it, and
        // bounds tile the u64 range in order.
        for v in [8, 9, 100, 1000, 123_456_789, u64::MAX / 3, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_high(i), "{v} above its bucket high");
            assert!(i == 0 || bucket_high(i - 1) < v, "{v} below its bucket");
        }
        assert_eq!(bucket_high(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn counters_gauges_and_histograms_register_idempotently() {
        let reg = Registry::new();
        let a = reg.counter("predllc_test_total", "help");
        let b = reg.counter("predllc_test_total", "help");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let g = reg.gauge("predllc_test_gauge", "help");
        g.set(5);
        g.dec();
        assert_eq!(g.get(), 4);
        let h1 = reg.histogram_with("predllc_test_ns", "help", "stage", "a");
        let h2 = reg.histogram_with("predllc_test_ns", "help", "stage", "a");
        let other = reg.histogram_with("predllc_test_ns", "help", "stage", "b");
        h1.record_ns(10);
        h2.record_ns(20);
        assert_eq!(h1.count(), 2);
        assert_eq!(other.count(), 0);
    }

    #[test]
    #[should_panic(expected = "registered as both")]
    fn kind_conflicts_panic() {
        let reg = Registry::new();
        reg.counter("predllc_conflict", "help");
        reg.gauge("predllc_conflict", "help");
    }

    #[test]
    fn render_is_exposition_shaped_and_newline_terminated() {
        let reg = Registry::new();
        reg.counter("predllc_a_total", "a counter").inc();
        let h = reg.histogram_with("predllc_b_ns", "a histogram", "endpoint", "x");
        h.record_ns(5);
        h.record_ns(5000);
        let text = reg.render();
        assert!(text.ends_with('\n'));
        assert!(text.contains("# TYPE predllc_a_total counter\n"));
        assert!(text.contains("predllc_a_total 1\n"));
        assert!(text.contains("# TYPE predllc_b_ns histogram\n"));
        assert!(text.contains("predllc_b_ns_bucket{endpoint=\"x\",le=\"+Inf\"} 2\n"));
        assert!(text.contains("predllc_b_ns_sum{endpoint=\"x\"} 5005\n"));
        assert!(text.contains("predllc_b_ns_count{endpoint=\"x\"} 2\n"));
    }

    #[test]
    fn labeled_registration_and_counter_set_mirror_semantics() {
        let reg = Registry::new();
        let c = reg.counter_labeled(
            "predllc_mirror_total",
            "mirrored",
            &[("worker", "w-0"), ("kind", "hit")],
        );
        c.set(41);
        c.set(7); // a mirror follows the upstream, even downwards
        assert_eq!(c.get(), 7);
        let again = reg.counter_labeled(
            "predllc_mirror_total",
            "mirrored",
            &[("worker", "w-0"), ("kind", "hit")],
        );
        assert_eq!(again.get(), 7, "idempotent on the full label set");
        let g = reg.gauge_labeled("predllc_mirror_depth", "mirrored", &[("worker", "w-1")]);
        g.set(3);
        assert_eq!(reg.family_kind("predllc_mirror_total"), Some("counter"));
        assert_eq!(reg.family_kind("predllc_mirror_depth"), Some("gauge"));
        assert_eq!(reg.family_kind("predllc_absent"), None);
        let text = reg.render();
        assert!(text.contains("predllc_mirror_total{worker=\"w-0\",kind=\"hit\"} 7\n"));
        assert!(text.contains("predllc_mirror_depth{worker=\"w-1\"} 3\n"));
    }

    #[test]
    fn snapshot_series_covers_every_kind_with_exposition_keys() {
        let reg = Registry::new();
        reg.counter("predllc_snap_total", "c").add(5);
        reg.gauge_labeled("predllc_snap_depth", "g", &[("q", "a\"b")])
            .set(2);
        reg.histogram("predllc_snap_ns", "h").record_ns(100);
        let snaps = reg.snapshot_series();
        assert_eq!(snaps.len(), 3);
        assert_eq!(snaps[0].key(), "predllc_snap_total");
        assert!(matches!(snaps[0].value, SnapshotValue::Counter(5)));
        assert_eq!(snaps[1].key(), "predllc_snap_depth{q=\"a\\\"b\"}");
        assert!(matches!(snaps[1].value, SnapshotValue::Gauge(2)));
        match &snaps[2].value {
            SnapshotValue::Histogram(h) => assert_eq!(h.count, 1),
            other => panic!("expected histogram snapshot, got {other:?}"),
        }
    }

    #[test]
    fn histogram_snapshot_percentiles_and_extremes_are_exact_at_the_ends() {
        let h = TimingHistogram::default();
        for v in [100u64, 150, 150, 900] {
            h.record_ns(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 1300);
        assert_eq!(s.min, 100);
        assert_eq!(s.max, 900);
        assert_eq!(s.percentile(100.0), 900);
        let p50 = s.percentile(50.0);
        assert!((144..=159).contains(&p50), "p50 {p50} out of bucket");
        // Cumulative bucket counts total the sample count.
        assert_eq!(s.buckets.iter().map(|&(_, n)| n).sum::<u64>(), 4);
    }
}
